"""Labeled benchmark corpora: instances with ground-truth verdicts.

A :class:`Benchmark` is an iterable collection of
:class:`CorpusInstance`\\ s, each carrying an id, source text, a source
language (frontend name), an entry method and a ground-truth
:class:`Label` in {TERM, NONTERM, UNKNOWN}.  Benchmarks own a *class
mapping* translating their native label vocabulary (``"Y"``/``"N"``,
``"true"``/``"false"``, SV-COMP ``expected_verdict`` strings, ...) onto
the standard labels, so the scoring layer (:mod:`repro.corpus.score`)
never sees benchmark-specific classes -- the shape of DEFAME's
``eval/benchmark.py``.

Three loaders ship in-tree:

* :class:`RegistryBenchmark` -- the hand-ported fig10/fig11 programs of
  :mod:`repro.bench.programs` (the paper's evaluation corpus);
* :class:`DirectoryBenchmark` -- a directory of source files with a
  ``labels.json`` manifest (``examples/st_controllers/`` is the first
  instance; SV-COMP-style task sets ingest the same way);
* :class:`~repro.corpus.generate.GeneratedBenchmark` -- the
  property-based random program generator whose labels are true *by
  construction* (and double-checked against the concrete interpreter).
"""

from __future__ import annotations

import enum
import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.pipeline import Verdict


class Label(enum.Enum):
    """Standard ground-truth classes for termination corpora.

    ``TERM`` -- the entry method halts for **all** inputs (and all
    nondeterministic choices); ``NONTERM`` -- **some** input (and choice
    sequence) diverges; ``UNKNOWN`` -- the corpus does not commit (also
    spelled ``MAYBE`` in some task sets).  The vocabulary deliberately
    matches :class:`repro.core.pipeline.Verdict` one-to-one so verdicts
    score directly against labels.
    """

    TERM = "TERM"
    NONTERM = "NONTERM"
    UNKNOWN = "UNKNOWN"

    def __str__(self) -> str:
        return self.value


#: Names accepted for each label in manifests and class mappings, beyond
#: the canonical spelling (case-insensitive).
_LABEL_ALIASES: Dict[str, Label] = {
    "TERM": Label.TERM,
    "TERMINATING": Label.TERM,
    "Y": Label.TERM,
    "TRUE": Label.TERM,
    "NONTERM": Label.NONTERM,
    "NONTERMINATING": Label.NONTERM,
    "N": Label.NONTERM,
    "FALSE": Label.NONTERM,
    "UNKNOWN": Label.UNKNOWN,
    "MAYBE": Label.UNKNOWN,
    "U": Label.UNKNOWN,
}


def parse_label(text: str) -> Label:
    """A :class:`Label` from any accepted spelling (case-insensitive)."""
    try:
        return _LABEL_ALIASES[str(text).strip().upper()]
    except KeyError:
        raise ValueError(f"unknown ground-truth label {text!r}") from None


def verdict_to_label(verdict: Optional[Verdict]) -> Label:
    """Collapse a tool verdict (``None`` = timeout) onto the label axis."""
    if verdict is Verdict.TERMINATING:
        return Label.TERM
    if verdict is Verdict.NONTERMINATING:
        return Label.NONTERM
    return Label.UNKNOWN


def label_to_verdict(label: Label) -> Verdict:
    """The verdict a perfectly precise tool would return for *label*."""
    return {
        Label.TERM: Verdict.TERMINATING,
        Label.NONTERM: Verdict.NONTERMINATING,
        Label.UNKNOWN: Verdict.UNKNOWN,
    }[label]


@dataclass(frozen=True)
class CorpusInstance:
    """One labeled program of a benchmark.

    *witness* is an optional input vector for NONTERM instances: entry
    arguments under which the program provably diverges (generated
    instances carry one by construction; manifest instances may).
    *origin* records where the instance came from (file path, seed, or
    registry name) for reporting.  Heap-spec'd registry programs cannot
    be rebuilt from source alone, so an instance may carry its
    :class:`~repro.bench.programs.BenchProgram` directly.
    """

    id: str
    source: str
    language: str
    entry: str
    label: Label
    origin: str = ""
    witness: Optional[Tuple[int, ...]] = None
    bench: Optional[object] = field(default=None, compare=False, repr=False)

    def program(self):
        """The parsed (sugared) :class:`~repro.lang.ast.Program`."""
        if self.bench is not None:
            return self.bench.program()
        from repro.lang.frontends import get_frontend

        return get_frontend(self.language).parse(self.source)

    def to_bench(self):
        """This instance as a :class:`~repro.bench.programs.BenchProgram`
        so the sharded bench runner can execute it unchanged."""
        if self.bench is not None:
            return self.bench
        from repro.bench.programs import BenchProgram

        return BenchProgram(
            name=self.id,
            category="corpus",
            source=self.source,
            main=self.entry,
            expected=label_to_verdict(self.label),
            language=self.language,
        )


class Benchmark:
    """An iterable labeled corpus with a benchmark-specific class mapping.

    Subclasses populate ``self._instances`` (or override
    :meth:`instances`).  ``class_mapping`` translates the benchmark's
    native label vocabulary to :class:`Label`; loaders apply it at
    ingestion time so every instance already carries a standard label.
    """

    #: native label -> standard Label; subclasses/manifests may override.
    class_mapping: Dict[str, Label] = dict(_LABEL_ALIASES)

    def __init__(self, name: str):
        self.name = name
        self._instances: List[CorpusInstance] = []

    def map_class(self, native: str) -> Label:
        """*native* through this benchmark's class mapping."""
        key = str(native).strip()
        for candidate in (key, key.upper()):
            if candidate in self.class_mapping:
                return self.class_mapping[candidate]
        raise ValueError(
            f"benchmark {self.name!r}: unmapped class {native!r} "
            f"(mapping knows {sorted(self.class_mapping)})"
        )

    def instances(self) -> List[CorpusInstance]:
        return list(self._instances)

    def labels(self) -> List[Label]:
        """Ground-truth labels, in corpus order."""
        return [inst.label for inst in self]

    def classes(self) -> List[Label]:
        """Distinct labels occurring in this corpus, in Label order."""
        present = {inst.label for inst in self}
        return [lab for lab in Label if lab in present]

    def get_by_id(self, instance_id: str) -> CorpusInstance:
        for inst in self:
            if inst.id == instance_id:
                return inst
        raise KeyError(f"no instance with id {instance_id!r}")

    def __iter__(self) -> Iterator[CorpusInstance]:
        return iter(self.instances())

    def __len__(self) -> int:
        return len(self.instances())


class RegistryBenchmark(Benchmark):
    """The hand-ported fig10/fig11 programs as a labeled corpus.

    The registry's ground truth is already a
    :class:`~repro.core.pipeline.Verdict`, so the class mapping is the
    identity on ``Y``/``N``/``U``.  *categories* restricts to a subset
    (default: the four paper categories, in registry order).
    """

    def __init__(self, categories: Optional[Sequence[str]] = None,
                 name: str = "fig-programs"):
        super().__init__(name)
        from repro.bench.programs import CATEGORIES, all_programs

        wanted = tuple(categories) if categories is not None else CATEGORIES
        for bench in all_programs():
            if bench.category not in wanted:
                continue
            self._instances.append(
                CorpusInstance(
                    id=bench.name,
                    source=bench.source,
                    language=bench.language,
                    entry=bench.main,
                    label=self.map_class(str(bench.expected)),
                    origin=f"registry:{bench.category}",
                    bench=bench,
                )
            )


#: Manifest filename a :class:`DirectoryBenchmark` looks for.
MANIFEST_NAME = "labels.json"


class ManifestError(ValueError):
    """A labels manifest is missing, malformed, or inconsistent."""


class DirectoryBenchmark(Benchmark):
    """A directory of source files with a ``labels.json`` manifest.

    Manifest schema (``docs/corpus.md``)::

        {
          "benchmark": "st-controllers",          // corpus name
          "language": "st",                       // default frontend
          "class_mapping": {"Y": "TERM", ...},    // optional; native->std
          "instances": [
            {"file": "ramp_up.st", "entry": "RampUp", "label": "Y",
             "language": "st",                    // optional override
             "witness": [3, 0]}                   // optional, NONTERM
          ]
        }

    Files are read relative to the manifest's directory; the instance id
    is the file name without its extension.  Unknown labels, missing
    files and duplicate ids all raise :class:`ManifestError` at load
    time -- a corpus must be wholly well-formed before anything runs.
    """

    def __init__(self, path, name: Optional[str] = None,
                 language: Optional[str] = None):
        directory = pathlib.Path(path)
        manifest_path = directory / MANIFEST_NAME
        if directory.is_file():  # pointing at the manifest itself is fine
            manifest_path, directory = directory, directory.parent
        if not manifest_path.is_file():
            raise ManifestError(f"no {MANIFEST_NAME} manifest in {directory}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise ManifestError(f"{manifest_path}: invalid JSON: {exc}") from None
        if not isinstance(manifest, dict) or "instances" not in manifest:
            raise ManifestError(f"{manifest_path}: no 'instances' list")
        super().__init__(
            name or manifest.get("benchmark") or directory.name
        )
        if "class_mapping" in manifest:
            try:
                self.class_mapping = {
                    str(k): parse_label(v)
                    for k, v in manifest["class_mapping"].items()
                }
            except (AttributeError, ValueError) as exc:
                raise ManifestError(
                    f"{manifest_path}: bad class_mapping: {exc}"
                ) from None
        # an explicit constructor override beats both manifest levels
        default_language = manifest.get("language", "native")
        seen: set = set()
        for entry in manifest["instances"]:
            try:
                fname = entry["file"]
                label = self.map_class(entry["label"])
                entry_method = entry["entry"]
            except (TypeError, KeyError) as exc:
                raise ManifestError(
                    f"{manifest_path}: instance needs file/entry/label "
                    f"({exc})"
                ) from None
            except ValueError as exc:
                raise ManifestError(f"{manifest_path}: {exc}") from None
            source_path = directory / fname
            if not source_path.is_file():
                raise ManifestError(f"{manifest_path}: no such file {fname!r}")
            instance_id = source_path.stem
            if instance_id in seen:
                raise ManifestError(
                    f"{manifest_path}: duplicate instance id {instance_id!r}"
                )
            seen.add(instance_id)
            witness = entry.get("witness")
            self._instances.append(
                CorpusInstance(
                    id=instance_id,
                    source=source_path.read_text(),
                    language=language or entry.get(
                        "language", default_language
                    ),
                    entry=entry_method,
                    label=label,
                    origin=str(source_path),
                    witness=tuple(witness) if witness is not None else None,
                )
            )


def builtin_benchmarks() -> List[Benchmark]:
    """The corpora shipped in-tree: the fig10/fig11 registry programs and
    the labeled ST controller directory (when its checkout exists)."""
    out: List[Benchmark] = [RegistryBenchmark()]
    st_dir = (
        pathlib.Path(__file__).resolve().parents[3]
        / "examples" / "st_controllers"
    )
    if (st_dir / MANIFEST_NAME).is_file():
        out.append(DirectoryBenchmark(st_dir))
    return out


def load_benchmark(spec: str) -> Benchmark:
    """A benchmark from a CLI-style *spec*: the name of a builtin corpus
    (``fig-programs``, ``st-controllers``) or a directory path holding a
    ``labels.json`` manifest."""
    for bench in builtin_benchmarks():
        if bench.name == spec:
            return bench
    path = pathlib.Path(spec)
    if path.exists():
        return DirectoryBenchmark(path)
    raise ManifestError(
        f"no builtin benchmark or manifest directory named {spec!r}"
    )
