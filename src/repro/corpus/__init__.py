"""Ground-truth corpus harness: labeled benchmarks, a known-verdict
program generator, and precision/recall scoring (``docs/corpus.md``)."""

from repro.corpus.benchmark import (
    Benchmark,
    CorpusInstance,
    DirectoryBenchmark,
    Label,
    MANIFEST_NAME,
    ManifestError,
    RegistryBenchmark,
    builtin_benchmarks,
    label_to_verdict,
    load_benchmark,
    parse_label,
    verdict_to_label,
)
from repro.corpus.generate import (
    GeneratedBenchmark,
    generate_instance,
    generate_program,
)
from repro.corpus.run import (
    CorpusResult,
    Disagreement,
    crosscheck_instance,
    inject_flip,
    minimize_violation,
    run_corpus,
)
from repro.corpus.score import ClassScore, ScoreReport, Violation, score
from repro.corpus.shrink import shrink_program

__all__ = [
    "Benchmark",
    "ClassScore",
    "CorpusInstance",
    "CorpusResult",
    "DirectoryBenchmark",
    "Disagreement",
    "GeneratedBenchmark",
    "Label",
    "MANIFEST_NAME",
    "ManifestError",
    "RegistryBenchmark",
    "ScoreReport",
    "Violation",
    "builtin_benchmarks",
    "crosscheck_instance",
    "generate_instance",
    "generate_program",
    "inject_flip",
    "label_to_verdict",
    "load_benchmark",
    "minimize_violation",
    "parse_label",
    "run_corpus",
    "score",
    "shrink_program",
    "verdict_to_label",
]
