"""Greedy structural shrinking of counterexample programs.

When the fuzz harness finds a disagreement (an oracle observation or a
tool verdict contradicting a constructed label), the offending program is
minimized before it is reported: :func:`shrink_program` repeatedly tries
structure-removing edits -- dropping whole methods, deleting sequence
elements, replacing loops and branches by their sub-statements,
simplifying initializers -- and keeps any edit under which the caller's
*predicate* (``"the disagreement still reproduces"``) stays true.  A
ddmin-flavoured greedy fixpoint, not a full delta debugger: candidate
order favours the largest deletions first, and every accepted edit
restarts the scan, so the result is 1-minimal with respect to the edit
set.

Predicates run on *candidate programs that may be ill-formed* (deleting a
declaration can orphan its uses); predicates must treat any exception as
"does not reproduce" -- :func:`pred_guard` wraps that convention.
"""

from __future__ import annotations

from typing import Callable, Iterator, Tuple

from repro.lang.ast import (
    If,
    IntLit,
    Method,
    Program,
    Seq,
    Skip,
    Stmt,
    VarDecl,
    While,
    seq,
)

#: Upper bound on predicate evaluations per shrink (a predicate runs the
#: interpreter or the analyzer, so each call is expensive).
MAX_PREDICATE_CALLS = 400


def pred_guard(predicate: Callable[[Program], bool]) -> Callable[[Program], bool]:
    """*predicate* with every exception read as "does not reproduce"
    (shrinking edits may produce ill-formed programs; those are simply
    uninteresting, never fatal)."""

    def guarded(program: Program) -> bool:
        try:
            return bool(predicate(program))
        except Exception:
            return False

    return guarded


def _stmt_variants(stmt: Stmt) -> Iterator[Stmt]:
    """Strictly smaller replacements for *stmt*, boldest first."""
    if isinstance(stmt, Seq):
        n = len(stmt.stmts)
        for i in range(n):  # drop one element
            yield seq(*(s for j, s in enumerate(stmt.stmts) if j != i))
        for i in range(n):  # shrink one element in place
            for variant in _stmt_variants(stmt.stmts[i]):
                yield seq(
                    *(variant if j == i else s
                      for j, s in enumerate(stmt.stmts))
                )
    elif isinstance(stmt, While):
        yield Skip()
        yield stmt.body  # run the body once, unguarded
        for variant in _stmt_variants(stmt.body):
            yield While(stmt.cond, variant)
    elif isinstance(stmt, If):
        yield Skip()
        yield stmt.then
        yield stmt.els
        for variant in _stmt_variants(stmt.then):
            yield If(stmt.cond, variant, stmt.els)
        for variant in _stmt_variants(stmt.els):
            yield If(stmt.cond, stmt.then, variant)
    elif isinstance(stmt, VarDecl):
        if stmt.init is not None and stmt.init != IntLit(0):
            yield VarDecl(stmt.type, stmt.name, IntLit(0))


def _program_variants(program: Program, entry: str) -> Iterator[Program]:
    """Strictly smaller candidate programs, boldest first: whole-method
    drops, then per-method body edits."""
    for name in program.methods:
        if name != entry:
            yield Program(
                data_decls=dict(program.data_decls),
                methods={
                    n: m for n, m in program.methods.items() if n != name
                },
            )
    for name, method in program.methods.items():
        if method.body is None:
            continue
        for body in _stmt_variants(method.body):
            replacement = Method(
                method.ret_type, name, list(method.params), body,
                requires=method.requires, ensures=method.ensures,
                heap_specs=list(method.heap_specs),
                is_primitive=method.is_primitive,
                source_loop=method.source_loop,
            )
            yield Program(
                data_decls=dict(program.data_decls),
                methods={
                    n: (replacement if n == name else m)
                    for n, m in program.methods.items()
                },
            )


def program_size(program: Program) -> int:
    """A crude node count (pretty-printed length) used only to confirm
    shrinking made progress."""
    return sum(
        len(str(m.body)) for m in program.methods.values()
        if m.body is not None
    )


def shrink_program(
    program: Program,
    entry: str,
    predicate: Callable[[Program], bool],
    max_calls: int = MAX_PREDICATE_CALLS,
) -> Tuple[Program, int]:
    """Greedily minimize *program* while ``predicate(candidate)`` holds.

    The predicate is wrapped by :func:`pred_guard` (exceptions read as
    non-reproducing).  Returns ``(minimized, predicate_calls)``; the
    original program is returned unchanged if the predicate does not even
    hold on it (nothing to preserve).
    """
    check = pred_guard(predicate)
    calls = 1
    if not check(program):
        return program, calls
    current = program
    progress = True
    while progress and calls < max_calls:
        progress = False
        for candidate in _program_variants(current, entry):
            if calls >= max_calls:
                break
            calls += 1
            if check(candidate):
                current = candidate
                progress = True
                break  # restart the scan from the smaller program
    return current, calls
