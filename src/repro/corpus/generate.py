"""Property-based random program generator with verdicts known by construction.

Every generated program is assembled exclusively from fragments whose
termination behaviour is decided *structurally*, so the ground-truth
label never depends on running (or analyzing) anything:

* **TERM fragments** terminate for all inputs and all nondeterministic
  choices: straight-line assignments, branches whose arms are both TERM,
  counting/countdown loops whose counter moves monotonically by a
  non-zero constant toward a bound that is provably loop-invariant
  (constants, or variables the loop body is forbidden to assign), and
  calls to helpers that are TERM for all arguments (including a
  structurally-decreasing recursion template).
* **DIVERGENT fragments** diverge whenever control reaches them, for
  every state: a pumped loop ``d = 1; while (d > 0) { d = d + s }`` with
  ``s >= 0``, a parity-stuck loop ``d = odd; while (d != 0) { d = d - 2 }``
  (an odd counter stepped by 2 never meets 0), and calls to helpers
  built from the same fragments (including an ``f(x) = f(x + 1)``
  recursion template).

The entry method of a **TERM-labeled** program is a sequence of TERM
fragments.  A **NONTERM-labeled** program is the same with one divergent
fragment spliced in -- either unconditionally (any input is a divergence
witness) or guarded by ``if (p > 0)`` on an entry parameter (witness:
``p = 1``).  Entry parameters are *never assigned*, so guard
reachability is decided at entry; every fragment before the divergence
point is TERM, so the witness provably reaches it.  The recorded witness
makes each NONTERM instance falsifiable by the concrete interpreter
(:func:`repro.lang.interp.observe`), which is exactly what the fuzz
harness checks (:mod:`repro.corpus.run`).

Generation is seeded and reproducible: instance *i* of
``GeneratedBenchmark(n, seed)`` depends only on ``(seed, i)``, and the
emitted source is the pretty-printed AST, so a seeded rerun is
byte-identical.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.corpus.benchmark import Benchmark, CorpusInstance, Label
from repro.lang.ast import (
    Assign,
    Binary,
    CallExpr,
    CallStmt,
    Expr,
    If,
    IntLit,
    Method,
    Nondet,
    Param,
    Program,
    Return,
    Skip,
    Stmt,
    Var,
    VarDecl,
    While,
    INT,
    VOID,
    seq,
)
from repro.lang.pretty import pretty_program

#: Hard caps keeping generated programs small enough that a TERM program
#: always halts well inside the oracle's fuel budget: loop bounds and
#: literals stay in [0, _MAX_CONST], loop nesting below _MAX_DEPTH, and
#: oracle sample inputs in [-_SAMPLE_SPAN, _SAMPLE_SPAN].
_MAX_CONST = 8
_MAX_DEPTH = 2
_SAMPLE_SPAN = 6


class _Gen:
    """One program's worth of seeded generation state."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.fresh = 0
        # (name, arity, returns_int) of helpers TERM for all arguments
        self.term_helpers: List[Tuple[str, int, bool]] = []
        # (name, arity) of helpers divergent for all arguments
        self.div_helpers: List[Tuple[str, int]] = []
        self.methods: List[Method] = []

    def fresh_name(self, prefix: str) -> str:
        self.fresh += 1
        return f"{prefix}{self.fresh}"

    # -- expressions --------------------------------------------------------

    def const(self, lo: int = 0, hi: int = _MAX_CONST) -> IntLit:
        return IntLit(self.rng.randint(lo, hi))

    def linexpr(self, scope: Sequence[str], nondet_ok: bool = True) -> Expr:
        """A small arithmetic expression over *scope* (values stay modest:
        sums/differences and 2x/3x scalings of in-scope values)."""
        rng = self.rng
        kinds = ["const", "var", "var+c", "var-c", "var+var", "c*var"]
        if nondet_ok:
            kinds.append("nondet")
        if not scope:
            kinds = ["const"] + (["nondet"] if nondet_ok else [])
        kind = rng.choice(kinds)
        if kind == "const":
            return self.const()
        if kind == "nondet":
            return Nondet()
        v = Var(rng.choice(list(scope)))
        if kind == "var":
            return v
        if kind == "var+c":
            return Binary("+", v, self.const())
        if kind == "var-c":
            return Binary("-", v, self.const())
        if kind == "var+var":
            return Binary("+", v, Var(rng.choice(list(scope))))
        return Binary("*", IntLit(rng.randint(2, 3)), v)

    def guard(self, scope: Sequence[str]) -> Expr:
        """A comparison usable as a branch condition (never a loop guard:
        loop guards are owned by the loop templates)."""
        rng = self.rng
        op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
        if scope and rng.random() < 0.85:
            left: Expr = Var(rng.choice(list(scope)))
        else:
            left = self.const()
        if scope and rng.random() < 0.5:
            right: Expr = Var(rng.choice(list(scope)))
        else:
            right = self.const()
        return Binary(op, left, right)

    # -- TERM fragments -----------------------------------------------------

    def term_block(self, scope: List[str], protected: frozenset,
                   budget: int, depth: int) -> List[Stmt]:
        """*budget* TERM fragments; may append fresh locals to *scope*
        (same-block declarations, visible to later fragments)."""
        out: List[Stmt] = []
        for _ in range(budget):
            out.extend(self.term_fragment(scope, protected, depth))
        return out

    def term_fragment(self, scope: List[str], protected: frozenset,
                      depth: int) -> List[Stmt]:
        rng = self.rng
        kinds = ["decl", "assign", "assign"]
        if depth < _MAX_DEPTH:
            kinds += ["count_loop", "down_loop", "branch"]
        if self.term_helpers:
            kinds.append("call")
        kind = rng.choice(kinds)
        if kind == "decl":
            name = self.fresh_name("t")
            stmt = VarDecl(INT, name, self.linexpr(scope))
            scope.append(name)
            return [stmt]
        if kind == "assign":
            targets = [v for v in scope if v not in protected]
            if not targets:  # everything in scope is protected: declare
                name = self.fresh_name("t")
                stmt = VarDecl(INT, name, self.linexpr(scope))
                scope.append(name)
                return [stmt]
            return [Assign(rng.choice(targets), self.linexpr(scope))]
        if kind == "call":
            name, arity, returns_int = rng.choice(self.term_helpers)
            args = tuple(self.linexpr(scope) for _ in range(arity))
            if returns_int:
                out = self.fresh_name("t")
                stmt = VarDecl(INT, out, CallExpr(name, args))
                scope.append(out)
                return [stmt]
            return [CallStmt(name, args)]
        if kind == "branch":
            then_scope, else_scope = list(scope), list(scope)
            return [
                If(
                    self.guard(scope),
                    seq(*self.term_block(then_scope, protected, 1, depth + 1)),
                    seq(*self.term_block(else_scope, protected, 1, depth + 1)),
                )
            ]
        if kind == "count_loop":
            return self.counting_loop(scope, protected, depth)
        return self.countdown_loop(scope, protected, depth)

    def counting_loop(self, scope: List[str], protected: frozenset,
                      depth: int) -> List[Stmt]:
        """``int i = 0; while (i < B) { body; i = i + s; }`` -- terminates
        for all inputs: ``s >= 1`` is constant, ``i`` strictly increases,
        and the bound ``B`` (a constant or an in-scope variable) is
        protected from assignment for the loop's extent."""
        rng = self.rng
        i = self.fresh_name("i")
        step = rng.randint(1, 3)
        if scope and rng.random() < 0.5:
            bound: Expr = Var(rng.choice(list(scope)))
            inner_protected = protected | {i, bound.name}
        else:
            bound = self.const(1, _MAX_CONST)
            inner_protected = protected | {i}
        body_scope = list(scope) + [i]
        body = self.term_block(
            body_scope, inner_protected, rng.randint(0, 2), depth + 1
        )
        body.append(Assign(i, Binary("+", Var(i), IntLit(step))))
        return [
            VarDecl(INT, i, IntLit(0)),
            While(Binary("<", Var(i), bound), seq(*body)),
        ]

    def countdown_loop(self, scope: List[str], protected: frozenset,
                       depth: int) -> List[Stmt]:
        """``int i = E; while (i > 0) { body; i = i - s; }`` -- terminates
        for all inputs: ``s >= 1`` is constant and ``i`` strictly
        decreases toward the fixed zero bound."""
        rng = self.rng
        i = self.fresh_name("i")
        step = rng.randint(1, 3)
        init = self.linexpr(scope)
        body_scope = list(scope) + [i]
        body = self.term_block(
            body_scope, protected | {i}, rng.randint(0, 2), depth + 1
        )
        body.append(Assign(i, Binary("-", Var(i), IntLit(step))))
        return [
            VarDecl(INT, i, init),
            While(Binary(">", Var(i), IntLit(0)), seq(*body)),
        ]

    # -- divergent fragments ------------------------------------------------

    def divergent_fragment(self, scope: List[str],
                           protected: frozenset) -> List[Stmt]:
        """A fragment that diverges whenever control reaches it, for every
        program state and every nondeterministic choice."""
        kinds = ["pump", "parity"]
        if self.div_helpers:
            kinds.append("call")
        kind = self.rng.choice(kinds)
        if kind == "call":
            name, arity = self.rng.choice(self.div_helpers)
            args = tuple(self.linexpr(scope) for _ in range(arity))
            return [CallStmt(name, args)]
        d = self.fresh_name("d")
        if kind == "pump":
            # d starts at 1 and never decreases: d > 0 holds forever.
            step = self.rng.randint(0, 3)
            body_scope = list(scope) + [d]
            body = self.term_block(
                body_scope, protected | {d}, self.rng.randint(0, 1), _MAX_DEPTH
            )
            body.append(Assign(d, Binary("+", Var(d), IntLit(step))))
            return [
                VarDecl(INT, d, IntLit(1)),
                While(Binary(">", Var(d), IntLit(0)), seq(*body)),
            ]
        # parity-stuck: an odd counter stepped by 2 never meets 0.
        start = 2 * self.rng.randint(0, _MAX_CONST // 2) + 1
        return [
            VarDecl(INT, d, IntLit(start)),
            While(
                Binary("!=", Var(d), IntLit(0)),
                Assign(d, Binary("-", Var(d), IntLit(2))),
            ),
        ]

    # -- helpers ------------------------------------------------------------

    def emit_term_helper(self) -> None:
        """A helper method that terminates for every argument vector."""
        rng = self.rng
        name = self.fresh_name("h")
        arity = rng.randint(1, 2)
        params = [Param(INT, f"a{k}") for k in range(arity)]
        pnames = [p.name for p in params]
        shape = rng.choice(["loopy", "loopy", "recursive"])
        if shape == "recursive":
            # f(n, ...) = f(n - c, ...), bottoming out at n <= 0: the
            # first argument strictly decreases by a positive constant.
            dec = rng.randint(1, 3)
            rec_args: Tuple[Expr, ...] = tuple(
                Binary("-", Var(pnames[0]), IntLit(dec))
                if k == 0 else Var(pnames[k])
                for k in range(arity)
            )
            body = If(
                Binary("<=", Var(pnames[0]), IntLit(0)),
                Return(),
                seq(CallStmt(name, rec_args), Return()),
            )
            self.methods.append(Method(VOID, name, params, body))
            self.term_helpers.append((name, arity, False))
            return
        scope = list(pnames)
        stmts = self.term_block(
            scope, frozenset(pnames), rng.randint(1, 2), 1
        )
        returns_int = rng.random() < 0.5
        if returns_int:
            stmts.append(Return(self.linexpr(scope, nondet_ok=False)))
            self.methods.append(Method(INT, name, params, seq(*stmts)))
        else:
            self.methods.append(
                Method(VOID, name, params, seq(*stmts) if stmts else Skip())
            )
        self.term_helpers.append((name, arity, returns_int))

    def emit_divergent_helper(self) -> None:
        """A helper method that diverges for every argument vector."""
        rng = self.rng
        name = self.fresh_name("g")
        arity = rng.randint(1, 2)
        params = [Param(INT, f"a{k}") for k in range(arity)]
        if rng.random() < 0.4:
            # unconditional recursion: g(x, ...) = g(x + 1, ...)
            rec_args: Tuple[Expr, ...] = tuple(
                Binary("+", Var(params[0].name), IntLit(1))
                if k == 0 else Var(params[k].name)
                for k in range(arity)
            )
            body: Stmt = seq(CallStmt(name, rec_args), Return())
        else:
            scope = [p.name for p in params]
            body = seq(*self.divergent_fragment(scope, frozenset(scope)))
        self.methods.append(Method(VOID, name, params, body))
        self.div_helpers.append((name, arity))


def generate_program(
    seed: str, index: int
) -> Tuple[Program, str, Label, Tuple[int, ...]]:
    """Build instance *index* of the corpus seeded by *seed*.

    Returns ``(program, entry, label, witness)``; *witness* is an entry
    argument vector that provably reaches a divergent fragment (NONTERM)
    or an arbitrary sample (TERM -- any vector halts).
    """
    rng = random.Random(f"repro-corpus:{seed}:{index}")
    gen = _Gen(rng)
    label = Label.NONTERM if rng.random() < 0.5 else Label.TERM
    for _ in range(rng.randint(0, 2)):
        gen.emit_term_helper()
    if label is Label.NONTERM and rng.random() < 0.5:
        gen.emit_divergent_helper()

    arity = rng.randint(1, 3)
    params = [Param(INT, f"p{k}") for k in range(arity)]
    pnames = [p.name for p in params]
    protected = frozenset(pnames)  # entry params are never assigned
    scope = list(pnames)
    stmts = gen.term_block(scope, protected, rng.randint(1, 3), 0)
    witness = tuple([0] * arity)
    if label is Label.NONTERM:
        divergence = gen.divergent_fragment(scope, protected)
        placement = rng.choice(["unconditional", "guarded"])
        if placement == "guarded":
            k = rng.randrange(arity)
            witness = tuple(1 if j == k else 0 for j in range(arity))
            else_scope = list(scope)
            stmts.append(
                If(
                    Binary(">", Var(pnames[k]), IntLit(0)),
                    seq(*divergence),
                    seq(*gen.term_block(else_scope, protected, 1, 1)),
                )
            )
        else:
            stmts.extend(divergence)
            # anything after an unconditional divergence is unreachable;
            # occasionally add TERM code there to stress dead-code paths
            if rng.random() < 0.3:
                stmts.extend(gen.term_block(scope, protected, 1, 0))
    entry = "main"
    gen.methods.append(Method(VOID, entry, params, seq(*stmts)))
    program = Program(data_decls={}, methods={m.name: m for m in gen.methods})
    return program, entry, label, witness


def generate_instance(seed: str, index: int) -> CorpusInstance:
    """Instance *index* of the seeded corpus, as a
    :class:`~repro.corpus.benchmark.CorpusInstance` whose source is the
    pretty-printed AST (round-trips through the native parser)."""
    program, entry, label, witness = generate_program(seed, index)
    return CorpusInstance(
        id=f"gen-{seed}-{index:04d}",
        source=pretty_program(program) + "\n",
        language="native",
        entry=entry,
        label=label,
        origin=f"generate(seed={seed!r}, index={index})",
        witness=witness,
    )


class GeneratedBenchmark(Benchmark):
    """*n* seeded known-verdict programs as a labeled corpus."""

    def __init__(self, n: int, seed: str = "demo"):
        super().__init__(f"generated(n={n}, seed={seed!r})")
        self.seed = seed
        self.n = n
        self._instances = [generate_instance(seed, i) for i in range(n)]
