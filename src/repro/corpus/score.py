"""Precision/recall scoring of tool verdicts against ground-truth labels.

The scoring contract (the shape of DEFAME's ``compute_score.py``, adapted
to a soundness-critical domain):

* Verdicts collapse onto the label axis (Y -> TERM, N -> NONTERM,
  U/timeout -> UNKNOWN) and fill a labels-by-predictions confusion
  matrix.
* Per definite class (TERM, NONTERM): **precision** is computed over
  instances with a *definite* ground truth (an UNKNOWN-labeled instance
  can never count against a definite answer -- the corpus simply does
  not know), **recall** over the instances carrying that label.
* A **soundness violation** -- the tool commits to TERM on a
  NONTERM-labeled instance or vice versa -- is a hard failure, listed
  instance by instance and fatal to :attr:`ScoreReport.ok`; an imprecise
  (UNKNOWN) answer only costs recall.

Reports render without wall-clock columns so a seeded rerun of the same
corpus is byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import Verdict
from repro.corpus.benchmark import (
    CorpusInstance,
    Label,
    verdict_to_label,
)


@dataclass(frozen=True)
class Violation:
    """One unsound answer: a definite verdict contradicting a definite
    ground-truth label."""

    instance_id: str
    label: Label
    predicted: Label
    origin: str = ""

    def render(self) -> str:
        where = f"  ({self.origin})" if self.origin else ""
        return (
            f"SOUNDNESS VIOLATION: {self.instance_id}: tool says "
            f"{self.predicted} but ground truth is {self.label}{where}"
        )


@dataclass
class ClassScore:
    """Counts and derived metrics for one ground-truth class."""

    label: Label
    n: int = 0            # instances carrying this label
    predicted: int = 0    # definite-label instances predicted as this class
    tp: int = 0           # label == predicted == this class

    @property
    def precision(self) -> Optional[float]:
        return self.tp / self.predicted if self.predicted else None

    @property
    def recall(self) -> Optional[float]:
        return self.tp / self.n if self.n else None


def _metric(value: Optional[float]) -> str:
    return f"{value:5.2f}" if value is not None else "   --"


@dataclass
class ScoreReport:
    """Confusion matrix, per-class precision/recall and soundness audit
    for one benchmark sweep."""

    benchmark: str
    total: int
    confusion: Dict[Tuple[Label, Label], int]
    per_class: Dict[Label, ClassScore]
    violations: List[Violation]
    timeouts: int = 0
    rows: List[Tuple[CorpusInstance, Label]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [
            f"corpus {self.benchmark}: {self.total} instances",
            f"{'label':<9}{'n':>5}{'->TERM':>8}{'->NONTERM':>11}"
            f"{'->UNKNOWN':>11}{'prec':>7}{'rec':>6}",
        ]
        lines.append("-" * len(lines[-1]))
        for label in Label:
            cls = self.per_class.get(label)
            if cls is None or cls.n == 0:
                continue
            row = f"{label.value:<9}{cls.n:>5}"
            for predicted in Label:
                row += f"{self.confusion.get((label, predicted), 0):>{8 if predicted is Label.TERM else 11}}"
            if label is Label.UNKNOWN:
                row += f"{'--':>7}{'--':>6}"
            else:
                row += f"{_metric(cls.precision):>7}{_metric(cls.recall):>6}"
            lines.append(row)
        if self.timeouts:
            lines.append(f"timeouts: {self.timeouts} (scored as UNKNOWN)")
        for violation in self.violations:
            lines.append(violation.render())
        lines.append(f"soundness violations: {len(self.violations)}")
        return "\n".join(lines)


def score(
    benchmark: str,
    instances: Sequence[CorpusInstance],
    verdicts: Sequence[Optional[Verdict]],
) -> ScoreReport:
    """Score one verdict per instance (``None`` = timeout) against the
    instances' ground-truth labels."""
    if len(instances) != len(verdicts):
        raise ValueError(
            f"{len(instances)} instances but {len(verdicts)} verdicts"
        )
    confusion: Dict[Tuple[Label, Label], int] = {}
    per_class = {label: ClassScore(label) for label in Label}
    violations: List[Violation] = []
    rows: List[Tuple[CorpusInstance, Label]] = []
    timeouts = 0
    for inst, verdict in zip(instances, verdicts):
        predicted = verdict_to_label(verdict)
        timeouts += verdict is None
        rows.append((inst, predicted))
        confusion[(inst.label, predicted)] = (
            confusion.get((inst.label, predicted), 0) + 1
        )
        per_class[inst.label].n += 1
        if inst.label is not Label.UNKNOWN and predicted is not Label.UNKNOWN:
            per_class[predicted].predicted += 1
            if predicted is inst.label:
                per_class[predicted].tp += 1
            else:
                violations.append(
                    Violation(inst.id, inst.label, predicted, inst.origin)
                )
    return ScoreReport(
        benchmark=benchmark,
        total=len(rows),
        confusion=confusion,
        per_class=per_class,
        violations=violations,
        timeouts=timeouts,
        rows=rows,
    )
