"""Corpus execution: sweep, oracle cross-check, scoring, minimization.

:func:`run_corpus` is the harness behind ``python -m repro.bench corpus``:

1. every instance of a :class:`~repro.corpus.benchmark.Benchmark` runs
   through the full inference pipeline via the sharded bench runner
   (timeouts, cold-start protocol, ``--jobs`` fan-out all inherited);
2. generated (and witness-carrying) instances are first **cross-checked
   against the concrete interpreter**: a NONTERM instance's divergence
   witness must exhaust fuel, a TERM instance must halt on a deterministic
   input sample -- any disagreement means the *corpus construction* is
   wrong, independent of the analyzer;
3. verdicts are scored against labels (:mod:`repro.corpus.score`); every
   soundness violation and every oracle disagreement is shrunk
   (:mod:`repro.corpus.shrink`) to a minimized reproducer and reported.

Reports carry no wall-clock data, so a seeded rerun of a generated corpus
is byte-identical.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.bench.runner import BenchOutcome, HipTNTPlus, run_tools_sharded
from repro.corpus.benchmark import (
    Benchmark,
    CorpusInstance,
    Label,
    label_to_verdict,
)
from repro.corpus.score import ScoreReport, score
from repro.corpus.shrink import shrink_program
from repro.lang.interp import Outcome, observe
from repro.lang.pretty import pretty_program

#: Oracle budgets: generated TERM programs halt within a few thousand
#: steps by construction, so 60k steps of fuel (with a wall-clock belt)
#: separates "halts" from "still running" with a wide margin.
DEFAULT_FUEL = 60_000
_ORACLE_WALL_CLOCK = 5.0
#: Extra random input vectors sampled per TERM instance, beyond all-zeros
#: (and the recorded witness, when one exists).
_N_SAMPLES = 3
_SAMPLE_SPAN = 6
#: Shrink budgets: oracle predicates run the interpreter (cheap), verdict
#: predicates run the full analyzer (expensive).
_SHRINK_ORACLE_CALLS = 200
_SHRINK_VERDICT_CALLS = 48
_SHRINK_TIME_BUDGET = 3.0


@dataclass
class Disagreement:
    """A reproducer: the corpus and an oracle (or the tool) disagree.

    *kind* is ``"oracle"`` (the concrete interpreter contradicts the
    ground-truth label -- the corpus construction itself is wrong) or
    ``"verdict"`` (the tool gave an unsound definite answer).
    """

    instance_id: str
    kind: str
    detail: str
    origin: str = ""
    minimized: str = ""

    def render(self) -> str:
        lines = [
            f"DISAGREEMENT ({self.kind}): {self.instance_id}: {self.detail}"
        ]
        if self.origin:
            lines.append(f"  origin: {self.origin}")
        if self.minimized:
            lines.append("  minimized reproducer:")
            lines.extend(
                "    " + ln for ln in self.minimized.rstrip().splitlines()
            )
        return "\n".join(lines)


def inject_flip(
    instances: Sequence[CorpusInstance], instance_id: str
) -> List[CorpusInstance]:
    """*instances* with one ground-truth label deliberately flipped
    (TERM <-> NONTERM; UNKNOWN becomes TERM).

    A harness self-test, exposed as ``--inject-flip ID``: the flipped
    instance must come back as a caught, minimized soundness failure --
    if it doesn't, the harness could not have caught a real one either.
    """
    flipped = {
        Label.TERM: Label.NONTERM,
        Label.NONTERM: Label.TERM,
        Label.UNKNOWN: Label.TERM,
    }
    out, hit = [], False
    for inst in instances:
        if inst.id == instance_id:
            hit = True
            inst = dataclasses.replace(
                inst,
                label=flipped[inst.label],
                origin=(inst.origin + " [label flipped]").strip(),
            )
        out.append(inst)
    if not hit:
        raise KeyError(f"no instance with id {instance_id!r} to flip")
    return out


def _entry_arity(program, entry: str) -> int:
    return len(program.method(entry).params)


def _term_samples(inst: CorpusInstance, arity: int) -> List[Tuple[int, ...]]:
    """Deterministic input vectors a TERM-labeled instance must halt on."""
    rng = random.Random(f"repro-corpus-crosscheck:{inst.id}")
    vectors = [tuple([0] * arity)]
    if inst.witness is not None and len(inst.witness) == arity:
        vectors.append(tuple(inst.witness))
    for _ in range(_N_SAMPLES):
        vectors.append(
            tuple(
                rng.randint(-_SAMPLE_SPAN, _SAMPLE_SPAN) for _ in range(arity)
            )
        )
    seen, out = set(), []
    for vec in vectors:
        if vec not in seen:
            seen.add(vec)
            out.append(vec)
    return out


def wants_crosscheck(inst: CorpusInstance) -> bool:
    """Auto mode: cross-check generated instances (labels claimed by
    construction) and any instance shipping a divergence witness."""
    return inst.origin.startswith("generate(") or inst.witness is not None


def crosscheck_instance(
    inst: CorpusInstance,
    fuel: int = DEFAULT_FUEL,
    shrink: bool = True,
) -> Optional[Disagreement]:
    """Check *inst*'s label against the concrete interpreter.

    NONTERM: the recorded witness must still be running after *fuel*
    steps.  TERM: every sample vector must halt.  A disagreement is
    shrunk (preserving the contradicting observation) before reporting.
    """
    try:
        program = inst.program()
    except Exception as exc:
        return Disagreement(
            inst.id, "oracle", f"source does not parse: {exc}", inst.origin
        )
    arity = _entry_arity(program, inst.entry)

    def run(prog, vec) -> Outcome:
        return observe(
            prog, inst.entry, list(vec), fuel=fuel,
            wall_clock=_ORACLE_WALL_CLOCK,
        )

    if inst.label is Label.NONTERM:
        if inst.witness is None or len(inst.witness) != arity:
            return None  # nothing falsifiable to check
        witness = tuple(inst.witness)
        if run(program, witness) is not Outcome.HALTED:
            return None
        detail = (
            f"divergence witness {witness} HALTED under the oracle "
            f"(label NONTERM)"
        )
        predicate = lambda p: run(p, witness) is Outcome.HALTED  # noqa: E731
        sample: Tuple[int, ...] = witness
    elif inst.label is Label.TERM:
        bad = None
        for vec in _term_samples(inst, arity):
            if run(program, vec) is Outcome.FUEL_OUT:
                bad = vec
                break
        if bad is None:
            return None
        detail = (
            f"TERM-labeled but input {bad} still running after "
            f"{fuel} steps"
        )
        predicate = lambda p: run(p, bad) is Outcome.FUEL_OUT  # noqa: E731
        sample = bad
    else:
        return None

    minimized = ""
    if shrink:
        shrunk, _ = shrink_program(
            program, inst.entry, predicate, max_calls=_SHRINK_ORACLE_CALLS
        )
        minimized = (
            f"// {inst.id}: oracle disagreement on input {sample}\n"
            + pretty_program(shrunk)
        )
    return Disagreement(inst.id, "oracle", detail, inst.origin, minimized)


def minimize_violation(
    inst: CorpusInstance,
    predicted: Label,
    time_budget: float = _SHRINK_TIME_BUDGET,
    store: Optional[str] = None,
    backend: Optional[str] = None,
) -> str:
    """The smallest deletion-reachable program on which the tool still
    returns the unsound verdict *predicted* -- the reproducer attached to
    a soundness violation."""
    from repro.core.pipeline import infer_program

    program = inst.program()
    want = label_to_verdict(predicted)

    def predicate(candidate) -> bool:
        result = infer_program(
            candidate, time_budget=time_budget, store=store, backend=backend
        )
        return result.verdict(inst.entry) is want

    shrunk, _ = shrink_program(
        program, inst.entry, predicate, max_calls=_SHRINK_VERDICT_CALLS
    )
    return (
        f"// {inst.id}: tool says {want} against label {inst.label}\n"
        + pretty_program(shrunk)
    )


@dataclass
class CorpusResult:
    """Everything one corpus sweep produced."""

    benchmark: str
    instances: List[CorpusInstance]
    outcomes: List[BenchOutcome]
    report: ScoreReport
    disagreements: List[Disagreement]

    @property
    def ok(self) -> bool:
        return self.report.ok and not self.disagreements

    def render(self) -> str:
        parts = [self.report.render()]
        parts.extend(d.render() for d in self.disagreements)
        if self.ok:
            parts.append(f"result: OK ({len(self.instances)} instances)")
        else:
            oracle = sum(1 for d in self.disagreements if d.kind == "oracle")
            parts.append(
                f"result: FAILURES ({len(self.report.violations)} soundness "
                f"violations, {oracle} oracle disagreements)"
            )
        return "\n\n".join(parts)


def run_corpus(
    benchmark: Benchmark,
    timeout: float = 60.0,
    jobs: int = 1,
    store: Optional[str] = None,
    backend: Optional[str] = None,
    time_budget: float = 15.0,
    fuel: int = DEFAULT_FUEL,
    crosscheck: Optional[bool] = None,
    shrink: bool = True,
    flip: Optional[str] = None,
) -> CorpusResult:
    """Sweep *benchmark* and score it; see the module docstring.

    *crosscheck* -- ``True``: oracle-check every instance, ``False``:
    none, ``None`` (default): auto (:func:`wants_crosscheck`).  *flip*
    injects a deliberate label flip on the named instance (self-test).
    """
    instances = benchmark.instances()
    if flip is not None:
        instances = inject_flip(instances, flip)

    disagreements: List[Disagreement] = []
    if crosscheck is not False:
        for inst in instances:
            if crosscheck is None and not wants_crosscheck(inst):
                continue
            found = crosscheck_instance(inst, fuel=fuel, shrink=shrink)
            if found is not None:
                disagreements.append(found)

    pairs = [
        (
            HipTNTPlus(
                inst.entry, time_budget=time_budget,
                store=store, backend=backend,
            ),
            inst.to_bench(),
        )
        for inst in instances
    ]
    outcomes = run_tools_sharded(pairs, timeout=timeout, jobs=jobs)
    report = score(
        benchmark.name, instances, [o.verdict for o in outcomes]
    )
    if shrink:
        by_id = {inst.id: inst for inst in instances}
        for violation in report.violations:
            inst = by_id[violation.instance_id]
            try:
                minimized = minimize_violation(
                    inst, violation.predicted, store=store, backend=backend
                )
            except Exception as exc:  # reproducer is best-effort
                minimized = f"// minimization failed: {exc!r}"
            disagreements.append(
                Disagreement(
                    inst.id,
                    "verdict",
                    f"tool says {violation.predicted} but ground truth "
                    f"is {violation.label}",
                    inst.origin,
                    minimized,
                )
            )
    return CorpusResult(
        benchmark=benchmark.name,
        instances=instances,
        outcomes=outcomes,
        report=report,
        disagreements=disagreements,
    )
