"""Assumption specialisation against current definitions (paper Sec. 5.2).

``spec_relass`` substitutes the current (partial) definitions of the
unknown predicates into every relational assumption and splits the result
along the definitions' exclusive guards, producing assumptions that mention
only *leaf* unknowns.  Specialised assumptions that become trivial
(unsatisfiable context, resolved-``true`` right-hand side, known-``Term``
to known-``Term``...) are dropped, mirroring the paper's ``filter``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.arith.context import SolverContext, resolve
from repro.arith.formula import Formula, TRUE, conj
from repro.arith.terms import var
from repro.core.assumptions import PostAssume, PostEntry, PreAssume
from repro.core.predicates import (
    LOOP,
    Loop,
    MAYLOOP,
    MayLoop,
    POST_FALSE,
    PostRef,
    PostVal,
    PreRef,
    TERM,
    TempPred,
    Term,
)
from repro.core.specs import DefStore


def _instantiate_guard(guard: Formula, formals: Tuple[str, ...], actuals: Tuple[str, ...]) -> Formula:
    mapping = {f: var(a) for f, a in zip(formals, actuals) if f != a}
    return guard.substitute(mapping) if mapping else guard


def specialize_pre(
    assumptions: List[PreAssume],
    store: DefStore,
    ctx: Optional[SolverContext] = None,
) -> List[PreAssume]:
    """Specialise pre-assumptions; keep only informative ones."""
    ctx = resolve(ctx)
    out: List[PreAssume] = []
    for a in assumptions:
        lhs_cases: List[Tuple[Formula, Union[TempPred, str]]]
        if isinstance(a.lhs, PreRef):
            formals = store.pair_args[a.lhs.name]
            lhs_cases = [
                (_instantiate_guard(g, formals, a.lhs.args), pre)
                for g, pre, _post in store.leaf_cases(a.lhs.name)
            ]
        else:
            lhs_cases = [(TRUE, a.lhs)]
        if isinstance(a.rhs, PreRef):
            formals = store.pair_args[a.rhs.name]
            rhs_cases = [
                (_instantiate_guard(g, formals, a.rhs.args), pre)
                for g, pre, _post in store.leaf_cases(a.rhs.name)
            ]
        else:
            rhs_cases = [(TRUE, a.rhs)]
        for gl, pl in lhs_cases:
            # Resolved callers need no further assumptions; Loop/MayLoop
            # left sides accept anything (trivially valid).
            if not isinstance(pl, str) and not isinstance(pl, PreRef):
                continue
            lhs_pred: Union[TempPred, PreRef]
            if isinstance(pl, str):
                lhs_pred = PreRef(pl, a.lhs.args)  # type: ignore[union-attr]
            else:
                lhs_pred = pl
            for gr, pr in rhs_cases:
                spec_ctx = conj(a.ctx, gl, gr)
                if not ctx.is_sat(spec_ctx):
                    continue
                rhs_pred: Union[TempPred, PreRef]
                if isinstance(pr, str):
                    rhs_pred = PreRef(pr, a.rhs.args)  # type: ignore[union-attr]
                elif isinstance(pr, Term):
                    # Known-terminating callee case: a base-reachability
                    # edge (Term sink in the reachability graph).
                    rhs_pred = TERM
                elif isinstance(pr, Loop):
                    rhs_pred = LOOP
                elif isinstance(pr, MayLoop):
                    rhs_pred = MAYLOOP
                else:
                    rhs_pred = pr
                out.append(PreAssume(ctx=spec_ctx, lhs=lhs_pred, rhs=rhs_pred))
    return out


def specialize_post(
    assumptions: List[PostAssume],
    store: DefStore,
    ctx: Optional[SolverContext] = None,
) -> List[PostAssume]:
    """Specialise post-assumptions; keep only those with an unknown RHS."""
    ctx = resolve(ctx)
    out: List[PostAssume] = []
    for a in assumptions:
        new_entries: List[PostEntry] = []
        feasible = True
        for g, p in a.entries:
            if isinstance(p, PostVal):
                if not p.reachable:
                    new_entries.append((g, p))
                continue
            assert isinstance(p, PostRef)
            formals = store.pair_args[p.name]
            for cg, _pre, post in store.leaf_cases(p.name):
                guard = conj(g, _instantiate_guard(cg, formals, p.args))
                if not ctx.is_sat(conj(a.ctx, guard)):
                    continue
                if isinstance(post, str):
                    new_entries.append((guard, PostRef(post, p.args)))
                elif isinstance(post, PostVal):
                    if not post.reachable:
                        new_entries.append((guard, POST_FALSE))
                    # reachable-true entries are vacuous
                else:
                    raise TypeError(f"unexpected post status {post!r}")
        rhs_formals = store.pair_args[a.rhs.name]
        for cg, _pre, post in store.leaf_cases(a.rhs.name):
            guard = conj(a.guard, _instantiate_guard(cg, rhs_formals, a.rhs.args))
            if not ctx.is_sat(conj(a.ctx, guard)):
                continue
            if isinstance(post, str):
                out.append(
                    PostAssume(
                        ctx=a.ctx,
                        entries=tuple(new_entries),
                        guard=guard,
                        rhs=PostRef(post, a.rhs.args),
                    )
                )
            # resolved RHS (true or false) discharges the assumption
    return out
