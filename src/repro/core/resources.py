r"""Resource-capacity semantics of the temporal predicates (paper Sec. 3).

The temporal predicates are defined through execution-length capacities::

    Term [e]  =df  RC<0, f([e])>
    Loop      =df  RC<inf, inf>
    MayLoop   =df  RC<0, inf>

over the naturals extended with infinity.  The two subtraction operators

    L1 -L L2  =  min { r in N_inf | r + L2 >= L1 }
    U1 -U U2  =  max { r in N_inf | r + U2 <= U1 }   (requires U1 >= U2)

are "best residue" subtractions: never negative, with ``inf -L inf = 0``
and ``inf -U inf = inf``.  The consumption entailment

    rho /\ RC<La,Ua> |-t RC<Lc,Uc>  ~>  RC<Lr,Ur>

checks ``Uc <= Ua`` (enough upper capacity) and returns the residue
capacity; the subsumption relation ``=>r`` compares capacities by interval
containment.  These definitions are exercised directly by the property
tests and by :mod:`repro.core.reverify`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


class _Infinity:
    """The single infinite value of ``N_inf`` (comparable with ints)."""

    _instance: Optional["_Infinity"] = None

    def __new__(cls) -> "_Infinity":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "INF"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Infinity)

    def __hash__(self) -> int:
        return hash("N_inf.INF")

    def __lt__(self, other: "NatInf") -> bool:
        return False

    def __le__(self, other: "NatInf") -> bool:
        return isinstance(other, _Infinity)

    def __gt__(self, other: "NatInf") -> bool:
        return not isinstance(other, _Infinity)

    def __ge__(self, other: "NatInf") -> bool:
        return True


INF = _Infinity()
NatInf = Union[int, _Infinity]


def _check_nat(v: NatInf) -> NatInf:
    if isinstance(v, _Infinity):
        return v
    if isinstance(v, int) and not isinstance(v, bool) and v >= 0:
        return v
    raise ValueError(f"not a value of N_inf: {v!r}")


def nat_le(a: NatInf, b: NatInf) -> bool:
    """``a <= b`` in N_inf."""
    if isinstance(a, _Infinity):
        return isinstance(b, _Infinity)
    if isinstance(b, _Infinity):
        return True
    return a <= b


def nat_add(a: NatInf, b: NatInf) -> NatInf:
    if isinstance(a, _Infinity) or isinstance(b, _Infinity):
        return INF
    return a + b


def sub_lower(l1: NatInf, l2: NatInf) -> NatInf:
    """``L1 -L L2 = min { r | r + L2 >= L1 }`` (never negative;
    ``inf -L inf = 0``)."""
    _check_nat(l1)
    _check_nat(l2)
    if isinstance(l2, _Infinity):
        # r + inf >= anything for every r, so the minimum is 0
        return 0
    if isinstance(l1, _Infinity):
        # r + finite >= inf only for r = inf
        return INF
    return max(0, l1 - l2)


def sub_upper(u1: NatInf, u2: NatInf) -> NatInf:
    """``U1 -U U2 = max { r | r + U2 <= U1 }``, defined when ``U1 >= U2``
    (``inf -U inf = inf``)."""
    _check_nat(u1)
    _check_nat(u2)
    if not nat_le(u2, u1):
        raise ValueError(f"U1 -U U2 undefined for U1={u1!r} < U2={u2!r}")
    if isinstance(u1, _Infinity):
        # r + U2 <= inf for every r, so the maximum is inf
        return INF
    # here u2 is finite because u2 <= u1 < inf
    assert not isinstance(u2, _Infinity)
    return u1 - u2


@dataclass(frozen=True)
class RC:
    """A resource capacity ``RC<L, U>`` with ``L, U in N_inf``.

    A program state with actual capacity ``(l, u)`` satisfies ``RC<L, U>``
    when ``L <= l`` and ``u <= U``.
    """

    lower: NatInf
    upper: NatInf

    def __post_init__(self) -> None:
        _check_nat(self.lower)
        _check_nat(self.upper)

    def is_wellformed(self) -> bool:
        """Lower bound must not exceed upper bound."""
        return nat_le(self.lower, self.upper)

    def subsumes(self, other: "RC") -> bool:
        """``self =>r other`` (paper's resource implication): the interval
        of *self* contains the interval of *other*."""
        return nat_le(self.lower, other.lower) and nat_le(other.upper, self.upper)

    def __repr__(self) -> str:
        return f"RC<{self.lower!r}, {self.upper!r}>"


# Canonical capacities of the three known predicates.
TERM_CAPACITY = lambda bound: RC(0, bound)  # noqa: E731 - mirrors the paper
LOOP_CAPACITY = RC(INF, INF)
MAYLOOP_CAPACITY = RC(0, INF)


def consume(available: RC, required: RC) -> Optional[RC]:
    """The consumption entailment ``RC<La,Ua> |-t RC<Lc,Uc> ~> RC<Lr,Ur>``.

    Returns the residue capacity, or ``None`` when the side conditions
    (``Uc <= Ua`` and residue wellformedness ``Lr <= Ur``) fail.
    """
    if not nat_le(required.upper, available.upper):
        return None
    lr = sub_lower(available.lower, required.lower)
    try:
        ur = sub_upper(available.upper, required.upper)
    except ValueError:
        return None
    residue = RC(lr, ur)
    if not residue.is_wellformed():
        return None
    return residue
