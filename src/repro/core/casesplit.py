"""Case-splitting on abduced conditions (paper Sec. 5.6).

``split`` partitions a set of (possibly overlapping) conditions into
mutually exclusive, satisfiable regions covering their disjunction;
``subst_unk`` installs the refined definition: one fresh unknown pair per
region plus the complement region, so the resulting guard family is
feasible, exclusive and exhaustive (paper Definition 2).
"""

from __future__ import annotations

from typing import List

from repro.arith.formula import FALSE, Formula, TRUE, conj, disj, neg
from repro.arith.solver import is_sat, simplify
from repro.core.specs import Case, DefStore


def split(conditions: List[Formula]) -> List[Formula]:
    """Partition overlapping conditions into exclusive regions.

    The regions are the satisfiable cells of the boolean algebra generated
    by the conditions, restricted to the union of the conditions; their
    disjunction is equivalent to ``\\/ conditions``.
    """
    if not conditions:
        return []
    cells: List[Formula] = [TRUE]
    for c in conditions:
        new_cells: List[Formula] = []
        for cell in cells:
            inside = conj(cell, c)
            if is_sat(inside):
                new_cells.append(inside)
            outside = conj(cell, neg(c))
            if is_sat(outside):
                new_cells.append(outside)
        cells = new_cells
    union = disj(*conditions)
    out: List[Formula] = []
    for cell in cells:
        if is_sat(conj(cell, union)):
            inside = conj(cell, union)
            out.append(simplify(inside))
    # Dedup identical regions (simplify is canonical enough in practice;
    # structural equality is a safe approximation).
    seen = set()
    unique: List[Formula] = []
    for r in out:
        if r not in seen:
            seen.add(r)
            unique.append(r)
    return unique


def subst_unk(store: DefStore, pair: str, conditions: List[Formula]) -> bool:
    """Refine an unknown pair along *conditions* plus their complement.

    Returns ``False`` (no refinement possible) when the conditions are
    empty or the split would not change anything -- the caller then marks
    the pair ``MayLoop`` via ``finalize``.
    """
    regions = split(conditions)
    if not regions:
        return False
    complement = simplify(conj(*(neg(c) for c in conditions)))
    if is_sat(complement):
        regions = regions + [complement]
    if len(regions) <= 1:
        return False
    args = store.pair_args[pair]
    base = pair.split("@", 1)[-1]
    cases: List[Case] = []
    for region in regions:
        child = store.new_pair(base, args)
        cases.append(Case(region, child, child))
    store.define(pair, cases)
    return True
