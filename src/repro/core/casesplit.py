"""Case-splitting on abduced conditions (paper Sec. 5.6).

``split`` partitions a set of (possibly overlapping) conditions into
mutually exclusive, satisfiable regions covering their disjunction;
``subst_unk`` installs the refined definition: one fresh unknown pair per
region plus the complement region, so the resulting guard family is
feasible, exclusive and exhaustive (paper Definition 2).

Dead splits -- abduced conditions that are unsatisfiable, or valid (their
complement is empty, so splitting on them changes nothing) -- are filtered
out *before* any definition is installed: installing one would trigger a
restart of the core iteration that re-derives the exact same state,
silently burning a ``MAX_ITER`` budget slot (twice, counting the restart
sweep) without refining anything.  Dropped conditions are logged at debug
level.
"""

from __future__ import annotations

import logging
from typing import List, Optional

from repro.arith.context import SolverContext, resolve
from repro.arith.formula import FALSE, Formula, TRUE, conj, disj, neg
from repro.core.specs import Case, DefStore

logger = logging.getLogger(__name__)


def split(
    conditions: List[Formula], ctx: Optional[SolverContext] = None
) -> List[Formula]:
    """Partition overlapping conditions into exclusive regions.

    The regions are the satisfiable cells of the boolean algebra generated
    by the conditions, restricted to the union of the conditions; their
    disjunction is equivalent to ``\\/ conditions``.
    """
    if not conditions:
        return []
    ctx = resolve(ctx)
    cells: List[Formula] = [TRUE]
    for c in conditions:
        new_cells: List[Formula] = []
        for cell in cells:
            inside = conj(cell, c)
            if ctx.is_sat(inside):
                new_cells.append(inside)
            outside = conj(cell, neg(c))
            if ctx.is_sat(outside):
                new_cells.append(outside)
        cells = new_cells
    union = disj(*conditions)
    out: List[Formula] = []
    for cell in cells:
        if ctx.is_sat(conj(cell, union)):
            inside = conj(cell, union)
            out.append(ctx.simplify(inside))
    # Dedup identical regions (simplify is canonical enough in practice;
    # structural equality is a safe approximation).
    seen = set()
    unique: List[Formula] = []
    for r in out:
        if r not in seen:
            seen.add(r)
            unique.append(r)
    return unique


def _live_conditions(
    conditions: List[Formula], pair: str, ctx: SolverContext
) -> List[Formula]:
    """Filter out dead split conditions (unsat, or valid == empty
    complement): they cannot refine the pair, and installing them would
    waste a whole solve iteration on a no-op restart."""
    live: List[Formula] = []
    for c in conditions:
        if not ctx.is_sat(c):
            logger.debug(
                "dropping unsat case-split condition %r for %s", c, pair
            )
            continue
        if not ctx.is_sat(neg(c)):
            logger.debug(
                "dropping valid (complement-empty) case-split condition "
                "%r for %s", c, pair
            )
            continue
        live.append(c)
    return live


def subst_unk(
    store: DefStore,
    pair: str,
    conditions: List[Formula],
    ctx: Optional[SolverContext] = None,
) -> bool:
    """Refine an unknown pair along *conditions* plus their complement.

    Returns ``False`` (no refinement possible) when the conditions are
    empty, dead (unsatisfiable or valid), or the split would not change
    anything -- the caller then marks the pair ``MayLoop`` via
    ``finalize`` instead of burning an iteration on a no-op restart.
    """
    ctx = resolve(ctx)
    conditions = _live_conditions(conditions, pair, ctx)
    regions = split(conditions, ctx=ctx)
    if not regions:
        return False
    complement = ctx.simplify(conj(*(neg(c) for c in conditions)))
    if ctx.is_sat(complement):
        regions = regions + [complement]
    if len(regions) <= 1:
        return False
    args = store.pair_args[pair]
    base = pair.split("@", 1)[-1]
    cases: List[Case] = []
    for region in regions:
        child = store.new_pair(base, args)
        cases.append(Case(region, child, child))
    store.define(pair, cases)
    return True
