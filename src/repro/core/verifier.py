"""Hoare-style forward verification generating temporal assumptions.

This implements the assumption-collection side of paper Section 4: a
symbolic execution of each (desugared) method body over pure arithmetic
states.  At every call site the precondition entailment contributes a
pre-assumption to ``S`` ([TNT-CALL]); at every exit the postcondition
entailment contributes a post-assumption to ``T`` ([TNT-METH]).

Callee handling mirrors the paper's modularity story:

* a callee in the *same* SCC (still unknown) contributes
  ``rho /\\ Upr_caller => Upr_callee`` and accumulates its ``Upo`` into the
  state;
* a callee already *solved* contributes, per summary case: nothing for
  ``Term`` (the trivial-assumption filter), an ``eta => false`` entry for
  ``Loop`` cases (feeding the caller's non-termination proof), and a
  ``MayLoop`` demand for ``MayLoop`` cases (capping the caller at
  ``MayLoop`` via the resource hierarchy);
* primitives are ``Term`` with their declared ``ensures``.

Heap statements must have been abstracted away by :mod:`repro.seplog`
before verification; encountering one raises :class:`VerifierError`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arith.context import SolverContext, resolve
from repro.arith.formula import Formula, TRUE, atom_eq, conj, neg
from repro.arith.terms import LinExpr, var
from repro.core.assumptions import PostAssume, PostEntry, PreAssume
from repro.core.predicates import (
    MAYLOOP,
    POST_FALSE,
    Loop,
    MayLoop,
    PostRef,
    PostVal,
    PreRef,
    Term,
)
from repro.core.specs import CaseSpec
from repro.lang import ast
from repro.lang.ast import (
    Assign,
    Assume,
    CallExpr,
    CallStmt,
    Expr,
    Havoc,
    If,
    Method,
    Program,
    Return,
    Seq,
    Skip,
    Stmt,
    VarDecl,
)
from repro.lang.to_arith import PurityError, expr_to_formula, expr_to_linexpr


class VerifierError(Exception):
    """Raised on constructs the pure verifier cannot handle."""


@dataclass(frozen=True)
class SymState:
    """A path state: context formula, SSA environment, accumulated posts."""

    ctx: Formula
    env: Tuple[Tuple[str, str], ...]  # program var -> current SSA name
    posts: Tuple[PostEntry, ...]

    def lookup(self, name: str) -> str:
        for k, v in self.env:
            if k == name:
                return v
        raise VerifierError(f"unknown variable {name!r}")

    def bind(self, name: str, ssa: str) -> "SymState":
        env = tuple((k, v) for k, v in self.env if k != name) + ((name, ssa),)
        return replace(self, env=env)


@dataclass
class MethodAssumptions:
    """The (S, T) assumption sets of one method."""

    method: str
    pair: str
    params: Tuple[str, ...]
    pre_assumptions: List[PreAssume] = field(default_factory=list)
    post_assumptions: List[PostAssume] = field(default_factory=list)


class Verifier:
    """Forward symbolic executor for one method at a time."""

    def __init__(
        self,
        program: Program,
        pairs: Dict[str, str],
        solved: Dict[str, CaseSpec],
        ctx: Optional[SolverContext] = None,
    ):
        """*pairs* maps unresolved method names to their unknown pair names;
        *solved* maps resolved method names to their summaries; *ctx* is the
        solver context shared by the whole group analysis."""
        self.program = program
        self.pairs = pairs
        self.solved = solved
        self.ctx = resolve(ctx)
        self._fresh_counter = itertools.count()

    def fresh(self, base: str = "v") -> str:
        return f"{base}!{next(self._fresh_counter)}"

    # -- public API -------------------------------------------------------------

    def collect(self, method: Method) -> MethodAssumptions:
        """Run the body of *method* and collect its (S, T) sets."""
        if method.body is None:
            raise VerifierError(f"method {method.name!r} has no body")
        pair = self.pairs[method.name]
        params = tuple(method.param_names)
        out = MethodAssumptions(method=method.name, pair=pair, params=params)
        ctx: Formula = TRUE
        if method.requires is not None:
            ctx = conj(ctx, method.requires)
        state = SymState(ctx=ctx, env=tuple((p, p) for p in params), posts=())
        finals = self._exec(method.body, state, out, method)
        for final in finals:
            if final is None:
                continue
            self._emit_post(final, out)
        return out

    # -- statement execution ------------------------------------------------------

    def _exec(
        self,
        s: Stmt,
        state: Optional[SymState],
        out: MethodAssumptions,
        method: Method,
    ) -> List[Optional[SymState]]:
        """Execute *s*; returns the fall-through states (None marks a path
        that returned and was already finalised)."""
        if state is None:
            return [None]
        if isinstance(s, Skip):
            return [state]
        if isinstance(s, VarDecl):
            if s.init is None:
                ssa = self.fresh(s.name)
                return [state.bind(s.name, ssa)]
            return self._assign(s.name, s.init, state, out, method)
        if isinstance(s, Assign):
            return self._assign(s.name, s.value, state, out, method)
        if isinstance(s, CallStmt):
            return self._call(s.name, s.args, None, state, out, method)
        if isinstance(s, Seq):
            states: List[Optional[SymState]] = [state]
            for t in s.stmts:
                next_states: List[Optional[SymState]] = []
                for st in states:
                    if st is None:
                        next_states.append(None)
                    else:
                        next_states.extend(self._exec(t, st, out, method))
                states = next_states
            return states
        if isinstance(s, If):
            cond = self._formula(s.cond, state)
            out_states: List[Optional[SymState]] = []
            then_ctx = conj(state.ctx, cond)
            if self.ctx.is_sat(then_ctx):
                out_states.extend(
                    self._exec(s.then, replace(state, ctx=then_ctx), out, method)
                )
            else_ctx = conj(state.ctx, neg(cond))
            if self.ctx.is_sat(else_ctx):
                out_states.extend(
                    self._exec(s.els, replace(state, ctx=else_ctx), out, method)
                )
            return out_states
        if isinstance(s, Return):
            # Safety ensures are orthogonal (assumed verified elsewhere);
            # only the temporal postcondition entailment fires here.
            self._emit_post(state, out)
            return [None]
        if isinstance(s, Assume):
            cond = self._formula(s.cond, state)
            new_ctx = conj(state.ctx, cond)
            if not self.ctx.is_sat(new_ctx):
                return [None]
            return [replace(state, ctx=new_ctx)]
        if isinstance(s, Havoc):
            st = state
            for name in s.names:
                st = st.bind(name, self.fresh(name))
            return [st]
        raise VerifierError(
            f"statement {type(s).__name__} is outside the pure fragment "
            "(heap statements must be abstracted by repro.seplog first)"
        )

    # -- helpers --------------------------------------------------------------

    def _subst_map(self, state: SymState) -> Dict[str, LinExpr]:
        return {k: var(v) for k, v in state.env if k != v}

    def _linexpr(self, e: Expr, state: SymState) -> LinExpr:
        try:
            raw = expr_to_linexpr(e, fresh=lambda: self.fresh("nd"))
        except PurityError as exc:
            raise VerifierError(str(exc)) from exc
        return raw.substitute(self._subst_map(state))

    def _formula(self, e: Expr, state: SymState) -> Formula:
        try:
            raw = expr_to_formula(e, fresh=lambda: self.fresh("nd"))
        except PurityError as exc:
            raise VerifierError(str(exc)) from exc
        return raw.substitute(self._subst_map(state))

    def _assign(
        self,
        name: str,
        value: Expr,
        state: SymState,
        out: MethodAssumptions,
        method: Method,
    ) -> List[Optional[SymState]]:
        if isinstance(value, CallExpr):
            return self._call(value.name, value.args, name, state, out, method)
        expr = self._linexpr(value, state)
        ssa = self.fresh(name)
        new = state.bind(name, ssa)
        return [replace(new, ctx=conj(state.ctx, atom_eq(var(ssa), expr)))]

    def _call(
        self,
        callee_name: str,
        args: Sequence[Expr],
        result_var: Optional[str],
        state: SymState,
        out: MethodAssumptions,
        method: Method,
    ) -> List[Optional[SymState]]:
        callee = self.program.methods.get(callee_name)
        if callee is None:
            raise VerifierError(f"call to unknown method {callee_name!r}")
        arg_exprs = [self._linexpr(a, state) for a in args]
        # Bind fresh variables to the actual argument values so that the
        # assumptions relate caller parameters to callee arguments.
        formals = callee.param_names
        arg_vars: List[str] = []
        ctx = state.ctx
        for formal, expr in zip(formals, arg_exprs):
            av = self.fresh(f"{formal}'")
            arg_vars.append(av)
            ctx = conj(ctx, atom_eq(var(av), expr))
        state = replace(state, ctx=ctx)

        caller_ref = PreRef(self.pairs[method.name], out.params)

        if callee_name in self.pairs:
            # Unknown callee: same analysis group.
            callee_ref = PreRef(self.pairs[callee_name], tuple(arg_vars))
            keep = set(out.params) | set(arg_vars)
            out.pre_assumptions.append(
                PreAssume(
                    ctx=_safe_project(state.ctx, keep, self.ctx),
                    lhs=caller_ref,
                    rhs=callee_ref,
                )
            )
            post_ref = PostRef(self.pairs[callee_name], tuple(arg_vars))
            state = replace(state, posts=state.posts + ((TRUE, post_ref),))
        elif callee_name in self.solved:
            spec = self.solved[callee_name]
            inst = dict(zip(spec.params, [var(v) for v in arg_vars]))
            for case in spec.cases:
                guard = case.guard.substitute(inst)
                if not self.ctx.is_sat(conj(state.ctx, guard)):
                    continue
                if isinstance(case.pred, MayLoop):
                    keep = set(out.params) | set(arg_vars)
                    out.pre_assumptions.append(
                        PreAssume(
                            ctx=_safe_project(conj(state.ctx, guard), keep, self.ctx),
                            lhs=caller_ref,
                            rhs=MAYLOOP,
                        )
                    )
                if isinstance(case.pred, Loop) or not case.post.reachable:
                    state = replace(
                        state, posts=state.posts + ((guard, POST_FALSE),)
                    )
        elif not callee.is_primitive:
            raise VerifierError(
                f"callee {callee_name!r} is neither pending nor solved"
            )
        # Result binding and safety postcondition.
        res_ssa: Optional[str] = None
        if result_var is not None:
            res_ssa = self.fresh(result_var)
            state = state.bind(result_var, res_ssa)
        if callee.ensures is not None:
            mapping: Dict[str, LinExpr] = {
                f: var(av) for f, av in zip(formals, arg_vars)
            }
            if res_ssa is not None:
                mapping["res"] = var(res_ssa)
                post = callee.ensures.substitute(mapping)
                state = replace(state, ctx=conj(state.ctx, post))
            elif "res" not in callee.ensures.free_vars():
                post = callee.ensures.substitute(mapping)
                state = replace(state, ctx=conj(state.ctx, post))
        return [state]

    def _emit_post(self, state: SymState, out: MethodAssumptions) -> None:
        keep = set(out.params)
        for guard, entry in state.posts:
            keep |= guard.free_vars()
            if isinstance(entry, PostRef):
                keep |= set(entry.args)
        ctx = _safe_project(state.ctx, keep, self.ctx)
        if not self.ctx.is_sat(ctx):
            return
        out.post_assumptions.append(
            PostAssume(
                ctx=ctx,
                entries=state.posts,
                guard=TRUE,
                rhs=PostRef(out.pair, out.params),
            )
        )

def _safe_project(ctx, keep, solver_ctx=None):
    """Projection with a blow-up fallback: keep the unprojected context
    (it mentions more variables but is equivalent, hence still sound)."""
    try:
        return resolve(solver_ctx).project(ctx, keep=set(keep))
    except MemoryError:
        return ctx
