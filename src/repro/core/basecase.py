"""Base-case termination inference (paper Sec. 5.1).

``syn_base`` infers the base-case precondition of a method from its
assumption sets semantically::

    rho  = \\/ { proj(ctx_i)  | recursive-call pre-assumptions in S }
    %    = \\/ { proj(beta_j) | exit post-assumptions in T with no unknown
                               post-predicate on the left }
    syn_base(S, T) = % /\\ not rho

Exit post-assumptions whose left side carries resolved ``eta => false``
entries (calls to already-proven non-terminating callees) contribute only
the region where no such entry fires, and regions demanding ``MayLoop``
from a solved callee are excluded from the base case as well -- both are
required by Definition 3 (iii).

``refine_base`` then splits the unknown pair into the ``beta /\\ Term``
case and fresh unknown children for each disjunct of ``not beta``
(paper's ``refine_base`` with the ``Theta (+)`` update).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.arith.context import SolverContext, resolve
from repro.arith.formula import FALSE, Formula, TRUE, conj, disj, neg
from repro.arith.solver import dnf_disjuncts
from repro.core.assumptions import PostAssume, PreAssume
from repro.core.predicates import (
    MayLoop,
    POST_TRUE,
    PostRef,
    PostVal,
    PreRef,
    TERM,
)
from repro.core.specs import Case, DefStore
from repro.core.verifier import MethodAssumptions


def syn_base(
    ma: MethodAssumptions, ctx: Optional[SolverContext] = None
) -> Formula:
    """The base-case termination precondition over the method's params."""
    ctx = resolve(ctx)
    params = set(ma.params)
    recursive_regions: List[Formula] = []
    mayloop_regions: List[Formula] = []
    for a in ma.pre_assumptions:
        try:
            region = ctx.project(a.ctx, keep=params)
        except MemoryError:
            region = TRUE  # over-approximating rho only shrinks the base
        if isinstance(a.rhs, PreRef):
            recursive_regions.append(region)
        elif isinstance(a.rhs, MayLoop):
            mayloop_regions.append(region)
    base_regions: List[Formula] = []
    for t in ma.post_assumptions:
        if any(isinstance(p, PostRef) for _g, p in t.entries):
            continue
        beta = conj(t.ctx, t.guard)
        for g, p in t.entries:
            if isinstance(p, PostVal) and not p.reachable:
                beta = conj(beta, neg(g))
        try:
            base_regions.append(ctx.project(beta, keep=params))
        except MemoryError:
            continue  # dropping a base contribution is sound (under-approx)
    rho = disj(*recursive_regions, *mayloop_regions)
    percent = disj(*base_regions)
    return ctx.simplify(conj(percent, neg(rho)))


def exclusive_partition(
    p: Formula, ctx: Optional[SolverContext] = None
) -> List[Formula]:
    """Split *p* into satisfiable, mutually exclusive disjuncts covering it.

    DNF cubes can overlap; the k-th output disjunct is
    ``cube_k /\\ not cube_1 /\\ ... /\\ not cube_{k-1}``.
    """
    ctx = resolve(ctx)
    out: List[Formula] = []
    taken: Formula = FALSE
    for cube in dnf_disjuncts(p):
        region = conj(conj(*cube), neg(taken))
        if ctx.is_sat(region):
            out.append(ctx.simplify(region))
            taken = disj(taken, conj(*cube))
    return out


def refine_base(
    store: DefStore,
    pair: str,
    beta: Formula,
    ctx: Optional[SolverContext] = None,
) -> None:
    """Refine a pair with its base case; install the new definition.

    After the call::

        Upr(v) == beta /\\ Term  \\/  \\/_i (mu_i /\\ U^i_pr(v))
        Upo(v) == (beta => true) /\\ /\\_i (mu_i => U^i_po(v))

    where the ``mu_i`` partition ``not beta``.  When ``beta`` is
    unsatisfiable only the unknown children are produced; when ``beta`` is
    valid the pair resolves to ``Term``/``true`` outright.
    """
    ctx = resolve(ctx)
    args = store.pair_args[pair]
    cases: List[Case] = []
    if ctx.is_sat(beta):
        cases.append(Case(ctx.simplify(beta), TERM, POST_TRUE))
    try:
        regions = exclusive_partition(neg(beta), ctx=ctx)
    except MemoryError:
        remainder = neg(beta)
        regions = [remainder] if ctx.is_sat(remainder) else []
    for mu in regions:
        child = store.new_pair(pair.split("@", 1)[-1], args)
        cases.append(Case(mu, child, child))
    store.define(pair, cases)
