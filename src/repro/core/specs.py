"""Unknown-predicate definitions (the store Theta) and case-form summaries.

Paper Definition 2: during inference, the pair of unknown predicates of a
method has definitions of the form ::

    Upr(v)  ==  \\/ (pi_i /\\ theta_i_pr)
    Upo(v)  ==  /\\ (pi_i => theta_i_po)

with feasible, exclusive and exhaustive guards ``pi_i``.  Here the two
definitions share the guard list, so we store one :class:`PredDef` per
unknown *pair* whose cases carry both the pre and the post status.  A case
status is either resolved (a known :class:`TempPred` / :class:`PostVal`)
or a reference to a fresh child pair -- giving a refinement tree whose
flattening (:meth:`DefStore.flatten`) produces the final
:class:`CaseSpec`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.arith.formula import Formula, TRUE, conj
from repro.arith.context import SolverContext, resolve
from repro.core.predicates import (
    MAYLOOP,
    POST_TRUE,
    PostVal,
    TempPred,
    Term,
)

PreStatus = Union[TempPred, str]   # known predicate, or child pair name
PostStatus = Union[PostVal, str]   # resolved reachability, or child pair name


@dataclass
class Case:
    """One guarded scenario of an unknown pair's definition."""

    guard: Formula
    pre: PreStatus
    post: PostStatus

    def is_resolved(self) -> bool:
        return not isinstance(self.pre, str) and not isinstance(self.post, str)


@dataclass
class PredDef:
    """Definition of an unknown pair over formal argument variables."""

    name: str
    args: Tuple[str, ...]
    cases: List[Case] = field(default_factory=list)


@dataclass(frozen=True)
class SpecCase:
    """One row of a final summary: ``guard -> requires pred ensures post``."""

    guard: Formula
    pred: TempPred
    post: PostVal

    def __repr__(self) -> str:
        return f"{self.guard!r} -> requires {self.pred!r} ensures {self.post!r}"


@dataclass
class CaseSpec:
    """A method's inferred termination/non-termination summary."""

    method: str
    params: Tuple[str, ...]
    cases: List[SpecCase]

    def pretty(self) -> str:
        lines = [f"case spec for {self.method}({', '.join(self.params)}):"]
        for c in self.cases:
            lines.append(
                f"  {c.guard!r} -> requires {c.pred!r} ensures {c.post!r}"
            )
        return "\n".join(lines)

    def case_for(self, env: Dict[str, int]) -> Optional[SpecCase]:
        """The unique case whose guard holds for a concrete input."""
        for c in self.cases:
            try:
                if c.guard.evaluate(env):
                    return c
            except ValueError:
                return None
        return None


class DefStore:
    """The store Theta of unknown-pair definitions.

    A pair name not present in :attr:`defs` is *unresolved* (its definition
    is still "itself", the initial form of paper Definition 2).
    """

    def __init__(self) -> None:
        self.defs: Dict[str, PredDef] = {}
        self.pair_args: Dict[str, Tuple[str, ...]] = {}
        self._fresh = itertools.count(1)

    # -- pair management ------------------------------------------------------

    def new_pair(self, base: str, args: Tuple[str, ...]) -> str:
        """Register a fresh unknown pair (e.g. ``U1@foo``)."""
        name = f"U{next(self._fresh)}@{base}"
        self.pair_args[name] = args
        return name

    def register_root(self, name: str, args: Tuple[str, ...]) -> None:
        self.pair_args[name] = args

    def is_resolved(self, name: str) -> bool:
        """Whether every leaf under *name* is a known predicate."""
        d = self.defs.get(name)
        if d is None:
            return False
        return all(
            (not isinstance(c.pre, str) or self.is_resolved(c.pre))
            and (not isinstance(c.post, str) or self.is_resolved(c.post))
            for c in d.cases
        )

    def unresolved_leaves(self, name: str) -> List[str]:
        """Unresolved descendant pair names (including *name* itself when it
        has no definition yet)."""
        d = self.defs.get(name)
        if d is None:
            return [name]
        out: List[str] = []
        for c in d.cases:
            if isinstance(c.pre, str):
                out.extend(self.unresolved_leaves(c.pre))
        return out

    def define(self, name: str, cases: List[Case]) -> None:
        """Install (or overwrite -- the paper's ``Theta (+)`` update) a
        definition for *name*."""
        args = self.pair_args[name]
        self.defs[name] = PredDef(name=name, args=args, cases=cases)

    def resolve_leaf(self, name: str, pre: TempPred, post: PostVal) -> None:
        """Resolve an (unresolved) pair to a single known case."""
        self.define(name, [Case(TRUE, pre, post)])

    # -- flattening -----------------------------------------------------------

    def flatten(
        self,
        name: str,
        context: Formula = TRUE,
        ctx: Optional[SolverContext] = None,
    ) -> List[SpecCase]:
        """All resolved leaves under *name* with their accumulated guards.

        Unresolved leaves flatten to ``MayLoop`` / reachable -- matching the
        paper's ``finalize`` treatment.
        """
        ctx = resolve(ctx)
        d = self.defs.get(name)
        if d is None:
            return [SpecCase(ctx.simplify(context), MAYLOOP, POST_TRUE)]
        out: List[SpecCase] = []
        for c in d.cases:
            guard = conj(context, c.guard)
            if not ctx.is_sat(guard):
                continue
            if isinstance(c.pre, str):
                out.extend(self.flatten(c.pre, guard, ctx=ctx))
            else:
                post = c.post if isinstance(c.post, PostVal) else POST_TRUE
                out.append(SpecCase(ctx.simplify(guard), c.pre, post))
        return out

    def case_spec(
        self,
        name: str,
        method: str,
        params: Tuple[str, ...],
        context: Formula = TRUE,
        ctx: Optional[SolverContext] = None,
    ) -> CaseSpec:
        """Final summary; *context* (usually the method's ``requires``)
        restricts the reported cases to inputs the contract admits."""
        return CaseSpec(
            method=method, params=params,
            cases=self.flatten(name, context, ctx=ctx),
        )

    # -- lookups used by specialisation ---------------------------------------

    def leaf_cases(self, name: str, context: Formula = TRUE) -> List[Tuple[Formula, PreStatus, PostStatus]]:
        """The current *leaf* scenarios of a pair: guard (cumulative),
        pre-status, post-status; unresolved leaves appear as pair names."""
        d = self.defs.get(name)
        if d is None:
            return [(context, name, name)]
        out: List[Tuple[Formula, PreStatus, PostStatus]] = []
        for c in d.cases:
            guard = conj(context, c.guard)
            if isinstance(c.pre, str):
                out.extend(self.leaf_cases(c.pre, guard))
            else:
                out.append((guard, c.pre, c.post))
        return out
