"""The overall inference algorithm ``solve`` and ``TNT_analysis``
(paper Figures 6 and 7).

``solve`` receives the assumption sets of one group of mutually recursive
methods ([TNT-INF]) and resolves their unknown pairs:

1. infer and install base cases (``syn_base`` / ``refine_base``);
2. iterate: specialise the assumptions against the current store,
   build the temporal reachability graph, and run ``TNT_analysis`` on each
   SCC bottom-up;
3. ``TNT_analysis`` resolves an SCC by trivial termination, ranking
   synthesis (when all outside successors are ``Term``), or inductive
   unreachability; a failed non-termination proof abduces case-split
   conditions and restarts the iteration;
4. after ``MAX_ITER`` iterations (or when no split is possible),
   ``finalize`` marks the remaining unknowns ``MayLoop``.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arith.context import SolverContext, resolve
from repro.arith.formula import Formula
from repro.core.assumptions import PostAssume, PreAssume
from repro.core.basecase import refine_base, syn_base
from repro.core.casesplit import subst_unk
from repro.core.nonterm import prove_nonterm
from repro.core.predicates import (
    LOOP,
    MAYLOOP,
    POST_FALSE,
    POST_TRUE,
    TERM,
    Loop,
    MayLoop,
    TempPred,
    Term,
)
from repro.core.ranking import RankSynthesizer
from repro.core.reachgraph import (
    LOOP_NODE,
    MAYLOOP_NODE,
    ReachGraph,
    TERM_NODE,
)
from repro.core.specialize import specialize_post, specialize_pre
from repro.core.specs import DefStore
from repro.core.verifier import MethodAssumptions

MAX_ITER = 8

logger = logging.getLogger(__name__)


class TNTSolver:
    """Stateful driver of the paper's ``solve`` procedure.

    *time_budget* (seconds) bounds one group's resolution; on expiry the
    remaining unknowns finalize to ``MayLoop`` -- the same graceful
    degradation the paper obtains through ``MAX_ITER``.

    *ctx* is the :class:`~repro.arith.context.SolverContext` shared by the
    whole group resolution, so every iteration of the specialise /
    analyse / split loop reuses one incremental cache state.
    """

    def __init__(
        self,
        store: DefStore,
        max_iter: int = MAX_ITER,
        time_budget: Optional[float] = 60.0,
        ctx: Optional[SolverContext] = None,
        rank_focus: Optional[Dict[str, Tuple[str, ...]]] = None,
    ):
        self.store = store
        self.max_iter = max_iter
        self.time_budget = time_budget
        self.ctx = resolve(ctx)
        # Pre-analysis ranking hints, keyed by method name; forwarded to
        # every RankSynthesizer (focused template first, full fallback).
        self.rank_focus = rank_focus
        self._deadline: Optional[float] = None

    def _expired(self) -> bool:
        import time

        return self._deadline is not None and time.monotonic() > self._deadline

    # -- Fig. 6 -----------------------------------------------------------------

    def solve(self, group: Sequence[MethodAssumptions]) -> None:
        """Resolve the unknown pairs of one mutually recursive group."""
        import time

        if self.time_budget is not None:
            self._deadline = time.monotonic() + self.time_budget
        for ma in group:
            beta = syn_base(ma, ctx=self.ctx)
            refine_base(self.store, ma.pair, beta, ctx=self.ctx)
        all_pre = [a for ma in group for a in ma.pre_assumptions]
        all_post = [a for ma in group for a in ma.post_assumptions]
        roots = [ma.pair for ma in group]
        for _iteration in range(self.max_iter):
            if self._expired():
                break
            pre = specialize_pre(all_pre, self.store, ctx=self.ctx)
            post = specialize_post(all_post, self.store, ctx=self.ctx)
            graph = ReachGraph(pre)
            leaves: List[str] = []
            for root in roots:
                leaves.extend(self.store.unresolved_leaves(root))
            if not leaves:
                break
            graph.add_vertices(leaves)
            restart = False
            stale: set = set()
            import networkx as nx

            for scc in graph.sccs_bottom_up():
                scc = [u for u in scc if u in set(leaves)]
                if not scc:
                    continue
                if self._expired():
                    break
                # Skip SCCs that depend on a pair split earlier in this
                # sweep -- their specialised assumptions are stale.
                depends_on_stale = any(
                    nx.has_path(graph.graph, u, bad)
                    for u in scc
                    for bad in stale
                    if graph.graph.has_node(bad)
                )
                if depends_on_stale:
                    restart = True
                    continue
                ok = self._tnt_analysis(graph, scc, post, all_post)
                if ok:
                    # keep T in sync with the enriched store (Fig. 6 l.13)
                    post = specialize_post(all_post, self.store, ctx=self.ctx)
                else:
                    # a case split happened: resolve what else we can in
                    # this sweep, then restart with the refined store
                    # (Fig. 6 line 11)
                    restart = True
                    stale.update(scc)
            if not restart:
                break
        self.finalize(roots)

    # -- Fig. 7 -------------------------------------------------------------------

    def _tnt_analysis(
        self,
        graph: ReachGraph,
        scc: List[str],
        post: List[PostAssume],
        all_post: List[PostAssume],
    ) -> bool:
        successors = graph.scc_succ(scc)
        statuses = [self._succ_status(s) for s in successors]
        has_cycle = graph.has_cycle(scc)
        if not successors:
            if len(scc) == 1 and not has_cycle:
                # line 20-22: trivial termination -- but only when the
                # scenario's exits are actually reachable: a region whose
                # paths all run through a definitely-non-terminating callee
                # (eta => false entries) is Loop, not Term.
                return self._leaf_branch(scc, post)
            return self._nonterm_branch(scc, post)
        if all(isinstance(s, Term) for s in statuses):
            if not has_cycle:
                # non-recursive scenario whose callee edges all terminate;
                # still need the exit-reachability check as above
                return self._leaf_branch(scc, post)
            if self._prove_term(graph, scc):
                return True
            return self._nonterm_branch(scc, post)
        return self._nonterm_branch(scc, post)

    def _leaf_branch(self, scc: List[str], post: List[PostAssume]) -> bool:
        """Resolve a recursion-free scenario: Loop when every exit is
        covered by a non-terminating callee, Term when no such callee
        blocks any exit, and a case split / MayLoop otherwise."""
        from repro.core.nonterm import prove_nonterm

        ok, conditions = prove_nonterm(scc, post, self.store, ctx=self.ctx)
        if ok:
            for u in scc:
                self.store.resolve_leaf(u, LOOP, POST_FALSE)
            return True
        relevant = [
            t for t in post
            if t.rhs.name in set(scc) and t.entries
        ]
        if not relevant:
            # no blocking entries anywhere: plain base-case termination
            for u in scc:
                self.store.resolve_leaf(u, TERM, POST_TRUE)
            return True
        split_done = False
        for u in scc:
            conds = conditions.get(u, [])
            if conds and subst_unk(self.store, u, conds, ctx=self.ctx):
                split_done = True
        if split_done:
            return False
        # mixed region we cannot separate: reachable exits exist but some
        # path runs through a diverging callee -> MayLoop is the sound call
        for u in scc:
            self.store.resolve_leaf(u, MAYLOOP, POST_TRUE)
        return True

    def _succ_status(self, node: str) -> Optional[TempPred]:
        if node == TERM_NODE:
            return TERM
        if node == LOOP_NODE:
            return LOOP
        if node == MAYLOOP_NODE:
            return MAYLOOP
        # an unknown pair resolved earlier in this sweep
        if self.store.is_resolved(node):
            leaves = self.store.leaf_cases(node)
            preds = [pre for _g, pre, _p in leaves]
            if all(isinstance(p, Term) for p in preds):
                return TERM
            if all(isinstance(p, Loop) for p in preds):
                return LOOP
            return MAYLOOP
        return None

    # -- termination side ---------------------------------------------------------

    def _prove_term(self, graph: ReachGraph, scc: List[str]) -> bool:
        if self._expired():
            for u in scc:
                self.store.resolve_leaf(u, MAYLOOP, POST_TRUE)
            return True
        edges = graph.internal_edges(scc)
        synth = RankSynthesizer(
            self.store.pair_args, ctx=self.ctx, focus=self.rank_focus
        )
        linear = synth.synthesize_linear(scc, edges)
        if linear is not None:
            for u in scc:
                self.store.resolve_leaf(u, Term((linear[u],)), POST_TRUE)
            return True
        lex = synth.synthesize_lexicographic(scc, edges)
        if lex is not None:
            for u in scc:
                self.store.resolve_leaf(u, Term(tuple(lex[u])), POST_TRUE)
            return True
        return False

    # -- non-termination side --------------------------------------------------------

    def _nonterm_branch(
        self, scc: List[str], post: List[PostAssume]
    ) -> bool:
        if self._expired():
            for u in scc:
                self.store.resolve_leaf(u, MAYLOOP, POST_TRUE)
            return True
        ok, conditions = prove_nonterm(scc, post, self.store, ctx=self.ctx)
        if ok:
            for u in scc:
                self.store.resolve_leaf(u, LOOP, POST_FALSE)
            return True
        split_done = False
        for u in scc:
            conds = conditions.get(u, [])
            if conds and subst_unk(self.store, u, conds, ctx=self.ctx):
                split_done = True
        if split_done:
            return False  # restart the core loop with the refined store
        # No usable split: settle for MayLoop now (finalize would anyway).
        for u in scc:
            self.store.resolve_leaf(u, MAYLOOP, POST_TRUE)
        return True

    # -- finalisation -------------------------------------------------------------

    def finalize(self, roots: List[str]) -> None:
        """Mark every remaining unknown as ``MayLoop`` (paper's
        ``finalize``)."""
        for root in roots:
            for leaf in self.store.unresolved_leaves(root):
                self.store.resolve_leaf(leaf, MAYLOOP, POST_TRUE)
