"""Parallel analysis engine: topological waves over the SCC condensation.

Rule [TNT-INF] analyzes one call-graph SCC at a time, callees before
callers.  SCCs with no dependency between them are independent, so the
condensation's antichains ("waves") are embarrassingly parallel.  This
module dispatches *ready* SCCs -- those whose callee groups have all been
resolved -- to a pool of worker processes, feeds completed
:class:`~repro.core.specs.CaseSpec` summaries back to unblock dependent
SCCs, and merges each worker's solver-statistics snapshot into the
program-wide tallies.

Process model
-------------

* The parent desugars and heap-abstracts the program (cheap, sequential),
  computes the condensation via
  :func:`repro.lang.callgraph.scc_dependencies`, and owns the dependency
  bookkeeping.
* Each worker receives the abstracted program once (pool initializer) and
  then, per task, an SCC plus the summaries of its direct callee groups
  (the only summaries the group's verifier can look up).
  Everything crossing the process boundary is pickled, which the
  hash-consed formula layer supports by re-interning on unpickle (see
  ``LinExpr.__reduce__`` and friends); a worker therefore rebuilds exactly
  the formula graph the parent would have built.
* A worker analyzes its SCC with a **fresh**
  :class:`~repro.arith.context.SolverContext` and a fresh
  :class:`~repro.core.specs.DefStore` -- the same scoping the sequential
  driver uses per group -- and ships back ``(specs, stats snapshot)``.
  The parent merges snapshots with
  :meth:`~repro.arith.context.SolverStats.merge_dict`; merging is
  commutative addition, so the aggregate is independent of completion
  order.

The final :class:`~repro.core.pipeline.InferenceResult` lists specs in
the sequential (callee-first) order, not completion order, so reports are
deterministic regardless of scheduling.

With a persistent spec store (:mod:`repro.store`) the parent additionally
fingerprints every SCC up front and resolves cached groups inline at
submission time, dispatching only misses; workers write computed
summaries back through the store's atomic-rename protocol.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from typing import Dict, List, Optional, Set, TYPE_CHECKING

from repro.arith.context import SolverContext, SolverStats
from repro.core.specs import CaseSpec, DefStore
from repro.lang import desugar_program
from repro.lang.callgraph import scc_dependencies
from repro.lang.ast import Program

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pipeline imports us)
    from repro.core.pipeline import InferenceResult


# Per-worker-process state installed by the pool initializer: the
# abstracted program, the analysis knobs and (optionally) the persistent
# spec store's root, shipped once per worker instead of once per task.
_WORKER_STATE: Dict[str, object] = {}


def _init_worker(
    program: Program,
    max_iter: int,
    time_budget: float,
    store_root: Optional[str] = None,
    backend: Optional[str] = None,
) -> None:
    _WORKER_STATE["program"] = program
    _WORKER_STATE["max_iter"] = max_iter
    _WORKER_STATE["time_budget"] = time_budget
    _WORKER_STATE["store_root"] = store_root
    # The backend travels as its registry *name* (plain string, always
    # picklable); each worker resolves it to its own singleton instance.
    _WORKER_STATE["backend"] = backend


def _analyze_scc_task(
    index: int,
    scc: List[str],
    callee_specs: Dict[str, CaseSpec],
    store_key: Optional[str] = None,
):
    """Worker body: resolve one SCC against its callee summaries.

    Runs in a pool process.  Returns ``(index, specs, stats_snapshot)``
    where *specs* maps method name to its summary and *stats_snapshot* is
    the fresh per-SCC context's counters as a plain dict (picklable, and
    mergeable in any order on the parent).

    When a persistent spec store is active the parent already performed
    the lookup (this task only runs on a miss) and passes the SCC's
    *store_key*; the worker writes its freshly computed summaries back
    through the store's append-then-atomic-rename protocol, which is
    safe with any number of workers (and parents) sharing the directory.
    """
    from repro.core.pipeline import analyze_scc_group

    program = _WORKER_STATE["program"]
    max_iter = _WORKER_STATE["max_iter"]
    time_budget = _WORKER_STATE["time_budget"]
    stats = SolverStats()
    ctx = SolverContext(stats=stats, backend=_WORKER_STATE.get("backend"))
    store = DefStore()
    specs = analyze_scc_group(
        program, scc, callee_specs, store, max_iter, time_budget, ctx
    )
    store_root = _WORKER_STATE.get("store_root")
    if store_root is not None and store_key is not None and specs:
        from repro.store.specstore import SpecStore

        SpecStore(store_root).save(store_key, specs)
    return index, specs, stats.as_dict()


def resolve_jobs(jobs: int) -> int:
    """The shared ``jobs`` policy: ``0`` means one worker per CPU;
    negative values are rejected loudly rather than silently degrading
    to the sequential path."""
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        import os

        return os.cpu_count() or 1
    return jobs


def worker_mp_context():
    """The multiprocessing start method for analysis/shard workers.

    ``fork`` is preferred: workers inherit the parent's interned-formula
    tables, module caches and benchmark registry for free.  Where
    ``fork`` is missing (non-POSIX), the default method still works --
    everything a worker needs is shipped through initializer/task
    arguments (the sharded bench runner also uses this helper).
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


def infer_program_parallel(
    program: Program,
    jobs: int,
    max_iter: int = 8,
    desugared: bool = False,
    time_budget: float = 30.0,
    store=None,
    backend: Optional[str] = None,
    preanalysis: bool = False,
    validate: bool = True,
    language: str = "native",
) -> "InferenceResult":
    """Parallel counterpart of :func:`repro.core.pipeline.infer_program`.

    Dispatches ready SCCs to *jobs* worker processes as their dependencies
    resolve.  Each SCC is resolved by the identical group analysis against
    identical callee summaries; spec order and merged statistics are
    deterministic (independent of completion order).  One caveat keeps the
    jobs=1 equivalence empirical rather than structural: fresh-variable
    numbering advances per process, so heuristic tie-breaking that feeds
    on generated names can in principle steer a group's search differently
    than the sequential sweep would (see docs/parallel.md) -- every tested
    program produces identical verdicts.

    With a persistent spec *store* (path or
    :class:`repro.store.specstore.SpecStore`), the parent looks each SCC
    up by structural fingerprint at submission time: a hit resolves the
    group instantly -- no worker round-trip -- and immediately unblocks
    its dependents in the wave structure, so a fully warm store collapses
    the whole run to a sequence of cache loads.  Misses are dispatched
    normally and the *worker* writes the computed summaries back
    (atomic-rename protocol, safe under ``jobs=N``).  Hits/misses/
    invalidations are counted in the returned ``solver_stats``.

    The returned result carries ``contexts=None`` and an **empty**
    ``store``: per-SCC contexts and definition stores live and die in the
    workers, and summaries are flattened to case form before they travel.
    Callers that walk ``result.store`` must use the sequential path.

    *backend* is a decision-procedure backend **name** (see
    :mod:`repro.arith.backends`); it crosses the process boundary as a
    plain string in the pool initializer (like the store root) and every
    worker resolves it to its own instance -- backend objects themselves
    never travel.

    *preanalysis* / *validate* mirror the sequential driver: the parent
    runs the dataflow pre-analysis (or just the lint layer) on the
    source program before desugaring.  Quick-certified SCCs resolve
    inline at submission time -- exactly like store hits, no worker
    round-trip -- and seeded contracts plus ranking hints travel to the
    workers on the program itself.
    """
    from repro.core.pipeline import (
        InferenceResult,
        lookup_cached_specs,
        quick_scc_specs,
        _validate_or_raise,
    )
    from repro.seplog.abstraction import abstract_program
    from repro.store.specstore import as_store

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")

    stats = SolverStats()
    prefacts = None
    if not desugared:
        if preanalysis:
            from repro.analysis.prefacts import pre_analyze

            prefacts = pre_analyze(program, strict=validate)
            program = prefacts.desugared
            stats.pre_seeded += len(prefacts.seeded)
        else:
            if validate:
                _validate_or_raise(program)
            program = desugar_program(program)
    program = abstract_program(
        program, ctx=SolverContext(stats=stats, backend=backend)
    )

    spec_store = as_store(store)
    # Parent-side context for materialising quick-verdict specs (cheap
    # is_sat/simplify calls); feeds the program-wide stats like any
    # other context.
    quick_ctx = SolverContext(stats=stats, backend=backend)
    sccs, deps = scc_dependencies(program)
    if spec_store is not None:
        from repro.store.fingerprint import scc_store_keys

        keys: List[Optional[str]] = scc_store_keys(
            program, sccs, deps, max_iter, time_budget, language
        )
    else:
        keys = [None] * len(sccs)
    dependents: List[Set[int]] = [set() for _ in sccs]
    for i, dep in enumerate(deps):
        for j in dep:
            dependents[j].add(i)

    solved: Dict[str, CaseSpec] = {}
    pool_ctx = worker_mp_context()
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=pool_ctx,
        initializer=_init_worker,
        initargs=(
            program, max_iter, time_budget,
            str(spec_store.root) if spec_store is not None else None,
            backend,
        ),
    ) as pool:
        remaining: List[Set[int]] = [set(d) for d in deps]
        submitted = [False] * len(sccs)
        pending: Dict[concurrent.futures.Future, int] = {}
        # SCCs whose dependencies have all resolved, awaiting dispatch.
        # A worklist (drained iteratively below) rather than recursive
        # submission: groups resolved inline -- bodyless ones, and store
        # hits on a warm run -- would otherwise nest submit()->finish()
        # one stack frame per SCC, overflowing on long call chains.
        ready: List[int] = []

        def finish(i: int, specs: Dict[str, CaseSpec]) -> None:
            solved.update(specs)
            for k in sorted(dependents[i]):
                remaining[k].discard(i)
                if not remaining[k] and not submitted[k]:
                    ready.append(k)

        def submit(i: int) -> None:
            submitted[i] = True
            body_methods = [
                name for name in sccs[i]
                if program.methods[name].body is not None
            ]
            if not body_methods:
                # Bodyless (extern-only) groups have nothing to analyze;
                # completing them inline spares a worker round-trip and
                # lets their dependents dispatch immediately.
                finish(i, {})
                return
            if prefacts is not None and len(body_methods) == 1:
                # Quick-certified loops resolve in the parent, like
                # store hits: no worker round-trip, dependents unblock
                # immediately.
                quick = quick_scc_specs(
                    program, body_methods[0], prefacts, quick_ctx, stats
                )
                if quick is not None:
                    finish(i, quick)
                    return
            if spec_store is not None:
                # Store lookups happen in the parent so a cached SCC
                # resolves instantly -- its dependents dispatch from
                # right here instead of waiting on a worker round-trip.
                cached = lookup_cached_specs(
                    spec_store, keys[i], body_methods, stats
                )
                if cached is not None:
                    finish(i, cached)
                    return
            # The verifier only ever looks up summaries of *direct* call
            # sites, so shipping the direct callee groups' specs is both
            # sufficient and keeps per-task payloads linear in the
            # condensation's edge count.
            callee_specs = {
                name: solved[name]
                for j in sorted(deps[i])
                for name in sccs[j]
                if name in solved
            }
            fut = pool.submit(
                _analyze_scc_task, i, sccs[i], callee_specs, keys[i]
            )
            pending[fut] = i

        def drain_ready() -> None:
            while ready:
                i = ready.pop()
                if not submitted[i]:
                    submit(i)

        for i, dep in enumerate(remaining):
            if not dep:
                ready.append(i)
        drain_ready()
        while pending:
            done, _ = concurrent.futures.wait(
                pending, return_when=concurrent.futures.FIRST_COMPLETED
            )
            for fut in done:
                i = pending.pop(fut)
                _idx, specs, snapshot = fut.result()  # worker errors re-raise
                stats.merge_dict(snapshot)
                finish(i, specs)
            drain_ready()

    # Re-list the summaries in the sequential callee-first order so the
    # result is byte-identical no matter which worker finished first.
    ordered: Dict[str, CaseSpec] = {}
    for scc in sccs:
        for name in scc:
            if name in solved:
                ordered[name] = solved[name]
    # Per-SCC contexts live and die in the workers; post-hoc queries
    # (e.g. verdict classification) run against the default context.
    return InferenceResult(
        program=program, specs=ordered, store=DefStore(), solver_stats=stats,
        contexts=None,
    )
