"""Ranking-function synthesis over an SCC (paper Sec. 5.4, ``prove_Term``).

For every unknown pre-predicate ``U_pr(v1..vn)`` in the SCC, a template
``gen_rank(U) = c0 + c1 v1 + ... + cn vn`` is created; every internal edge
``(U_i, rho, U_j)`` of the reachability graph contributes the Farkas
constraint (paper's ``gen``)::

    forall vars .  rho  =>  r_i(args_i) > r_j(args_j)  /\\  r_i(args_i) >= 0

The resulting system is *linear* in the multipliers and the template
coefficients jointly (Podelski-Rybalchenko style), so ``syn_rank`` is an LP
(:mod:`repro.arith.farkas`).  Solutions are rationalised and then
**re-verified exactly** through the entailment solver before being
accepted -- floats never reach the trusted path.

Lexicographic measures are synthesised iteratively: find a component that
is non-increasing and bounded on every remaining edge and strictly
decreasing on at least one; drop the strictly-decreased edges; repeat.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arith.context import SolverContext, resolve
from repro.arith.farkas import LPProblem, add_implication, instantiate, template
from repro.arith.formula import Atom, Formula, atom_ge, atom_le, conj
from repro.arith.solver import dnf_disjuncts
from repro.arith.terms import LinExpr, var
from repro.core.reachgraph import Edge

MAX_LEX_DEPTH = 4


def _edge_cubes(edge: Edge, ctx: Optional[SolverContext] = None) -> List[List[Atom]]:
    """Satisfiable DNF cubes of an edge context."""
    ctx = resolve(ctx)
    return [c for c in dnf_disjuncts(edge.ctx) if ctx.is_sat(conj(*c))]


def _rank_at(template_coeffs: Dict[str, LinExpr], args: Sequence[str],
             formals: Sequence[str]) -> Dict[str, LinExpr]:
    """Template coefficient map re-indexed from formals to actual vars."""
    return {a: template_coeffs[f] for f, a in zip(formals, args)}


def _instantiated(rank: LinExpr, formals: Sequence[str], args: Sequence[str]) -> LinExpr:
    return rank.substitute({f: var(a) for f, a in zip(formals, args)})


def _normalise(rank: LinExpr) -> LinExpr:
    """Scale a ranking function to small coprime integer coefficients
    (purely cosmetic -- any positive scaling of a valid ranking function,
    with the decrease re-verified, remains valid)."""
    coeffs = list(rank.coeffs.values()) + [rank.constant]
    nonzero = [c for c in coeffs if c != 0]
    if not nonzero:
        return rank
    denom_lcm = 1
    for c in nonzero:
        d = c.denominator
        g = _gcd(denom_lcm, d)
        denom_lcm = denom_lcm * d // g
    scaled = rank.scale(denom_lcm)
    nums = [abs(int(c)) for c in scaled.coeffs.values() if c != 0]
    if abs(int(scaled.constant)) > 0:
        nums.append(abs(int(scaled.constant)))
    g = 0
    for n_ in nums:
        g = _gcd(g, n_)
    if g > 1:
        scaled = scaled.scale(Fraction(1, g))
    return scaled


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return abs(a)


class RankSynthesizer:
    """Synthesis of (lexicographic) linear ranking functions per SCC.

    *focus* (optional) maps **method names** to pre-analysis ranking
    hints -- parameter subsets likely to carry the measure (the loop's
    modified + condition variables, see :mod:`repro.analysis`).  When a
    pair has a usable hint, synthesis first solves a *focused* LP whose
    templates range over the hinted parameters only (fewer unknowns,
    fewer Farkas multipliers); on failure it falls back to the full
    template, so a wrong hint costs one extra LP, never an answer.
    """

    def __init__(
        self,
        pair_args: Dict[str, Tuple[str, ...]],
        ctx: Optional[SolverContext] = None,
        focus: Optional[Dict[str, Tuple[str, ...]]] = None,
    ):
        self.pair_args = pair_args
        self.ctx = resolve(ctx)
        self.focus = focus or {}

    def _focused_indices(self, pair: str) -> Optional[List[int]]:
        """Parameter positions the focused template keeps for *pair*, or
        ``None`` when the hint is absent, empty or not a proper subset.
        Pair names are ``U<n>@<method>`` (case-split children inherit the
        method base), so the method key is everything after the ``@``."""
        hints = self.focus.get(pair.split("@", 1)[-1])
        if not hints:
            return None
        full = self.pair_args[pair]
        hint_set = set(hints)
        idx = [i for i, f in enumerate(full) if f in hint_set]
        if not idx or len(idx) == len(full):
            return None
        return idx

    # -- single linear component ------------------------------------------------

    def _synthesize(
        self,
        scc: List[str],
        edges: List[Edge],
        strict_edges: Set[int],
    ) -> Optional[Dict[str, LinExpr]]:
        """Focused-template attempt first (when hints apply), then the
        complete template -- the fallback keeps completeness."""
        if any(self._focused_indices(u) is not None for u in scc):
            ranks = self._synthesize_component(
                scc, edges, strict_edges, focused=True
            )
            if ranks is not None:
                return ranks
        return self._synthesize_component(scc, edges, strict_edges)

    def _synthesize_component(
        self,
        scc: List[str],
        edges: List[Edge],
        strict_edges: Set[int],
        focused: bool = False,
    ) -> Optional[Dict[str, LinExpr]]:
        """Find templates such that every edge is non-increasing & bounded
        and the edges in *strict_edges* decrease by >= 1; returns the
        (exactly verified) ranking functions per pair, or ``None``."""
        lp = LPProblem()
        coeff_names: Dict[str, Tuple[Dict[str, str], str]] = {}
        keep_idx: Dict[str, List[int]] = {}
        for u in scc:
            formals = list(self.pair_args[u])
            keep_idx[u] = list(range(len(formals)))
            if focused:
                idx = self._focused_indices(u)
                if idx is not None:
                    keep_idx[u] = idx
                    formals = [formals[i] for i in idx]
            coeff_names[u] = template(f"rk.{u}", formals)
        impl_id = 0
        for idx, edge in enumerate(edges):
            src_names, src_c0 = coeff_names[edge.src]
            dst_names, dst_c0 = coeff_names[edge.dst]
            src_full = self.pair_args[edge.src]
            dst_full = self.pair_args[edge.dst]
            src_formals = [src_full[i] for i in keep_idx[edge.src]]
            dst_formals = [dst_full[i] for i in keep_idx[edge.dst]]
            src_args = [edge.src_args[i] for i in keep_idx[edge.src]]
            dst_args = [edge.dst_args[i] for i in keep_idx[edge.dst]]
            for cube in _edge_cubes(edge, self.ctx):
                xs = sorted(
                    set(edge.src_args)
                    | set(edge.dst_args)
                    | set().union(*(a.expr.variables() for a in cube))
                    if cube
                    else set(edge.src_args) | set(edge.dst_args)
                )
                # bounded: rho => r_src(src_args) >= 0, required on the
                # edges where this component is the deciding (strictly
                # decreasing) one -- the standard lexicographic condition
                if idx in strict_edges:
                    g_bound: Dict[str, LinExpr] = {}
                    for f, a in zip(src_formals, src_args):
                        g_bound[a] = g_bound.get(a, LinExpr()) + LinExpr(
                            {src_names[f]: -1}
                        )
                    add_implication(
                        lp, cube, xs, g_bound, LinExpr({src_c0: 1}),
                        prefix=f"b{impl_id}",
                    )
                impl_id += 1
                # decrease: rho => r_src - r_dst >= delta
                #   i.e.  sum c_dst_j*arg'_j - sum c_src_i*arg_i
                #           <= -delta + c0_src - c0_dst
                delta = 1 if idx in strict_edges else 0
                g_dec: Dict[str, LinExpr] = {}
                for f, a in zip(src_formals, src_args):
                    g_dec[a] = g_dec.get(a, LinExpr()) + LinExpr({src_names[f]: -1})
                for f, a in zip(dst_formals, dst_args):
                    g_dec[a] = g_dec.get(a, LinExpr()) + LinExpr({dst_names[f]: 1})
                d_const = (
                    LinExpr({src_c0: 1}) - LinExpr({dst_c0: 1}) + LinExpr({}, -delta)
                )
                add_implication(lp, cube, xs, g_dec, d_const, prefix=f"d{impl_id}")
                impl_id += 1
        solution = lp.solve()
        if solution is None:
            return None
        ranks: Dict[str, LinExpr] = {}
        for u in scc:
            names, c0 = coeff_names[u]
            ranks[u] = _normalise(instantiate(names, c0, solution))
        if self._verify_component(ranks, edges, strict_edges):
            return ranks
        # Retry once without normalisation in case scaling broke the
        # >= 1 decrease (scaling down can shrink the gap below 1).
        ranks = {
            u: instantiate(coeff_names[u][0], coeff_names[u][1], solution)
            for u in scc
        }
        if self._verify_component(ranks, edges, strict_edges):
            return ranks
        return None

    def _verify_component(
        self,
        ranks: Dict[str, LinExpr],
        edges: List[Edge],
        strict_edges: Set[int],
    ) -> bool:
        """Exact check of boundedness / decrease for every edge."""
        for idx, edge in enumerate(edges):
            r_src = _instantiated(
                ranks[edge.src], self.pair_args[edge.src], edge.src_args
            )
            r_dst = _instantiated(
                ranks[edge.dst], self.pair_args[edge.dst], edge.dst_args
            )
            if idx in strict_edges:
                obligations = [atom_ge(r_src, 0), atom_ge(r_src - r_dst, 1)]
            else:
                obligations = [atom_ge(r_src - r_dst, 0)]
            if not self.ctx.entails(edge.ctx, conj(*obligations)):
                return False
        return True

    def strictly_decreasing_edges(
        self, ranks: Dict[str, LinExpr], edges: List[Edge]
    ) -> Set[int]:
        """Indices of edges on which the component provably decreases."""
        out: Set[int] = set()
        for idx, edge in enumerate(edges):
            r_src = _instantiated(
                ranks[edge.src], self.pair_args[edge.src], edge.src_args
            )
            r_dst = _instantiated(
                ranks[edge.dst], self.pair_args[edge.dst], edge.dst_args
            )
            if self.ctx.entails(
                edge.ctx, atom_ge(r_src - r_dst, 1)
            ) and self.ctx.entails(edge.ctx, atom_ge(r_src, 0)):
                out.add(idx)
        return out

    # -- public entry points ----------------------------------------------------

    def synthesize_linear(
        self, scc: List[str], edges: List[Edge]
    ) -> Optional[Dict[str, LinExpr]]:
        """A single linear ranking function decreasing on every edge."""
        if not edges:
            return None
        return self._synthesize(scc, edges, set(range(len(edges))))

    def synthesize_lexicographic(
        self, scc: List[str], edges: List[Edge]
    ) -> Optional[Dict[str, Tuple[LinExpr, ...]]]:
        """A lexicographic measure ``[r1, r2, ...]`` per unknown pair."""
        if not edges:
            return None
        remaining = list(range(len(edges)))
        components: List[Dict[str, LinExpr]] = []
        attempts = 0
        for _depth in range(MAX_LEX_DEPTH):
            if not remaining:
                measures = {
                    u: tuple(comp[u] for comp in components) for u in scc
                }
                return measures
            sub_edges = [edges[i] for i in remaining]
            # Fast path: all edges strictly decreasing at once.
            ranks = self._synthesize(
                scc, sub_edges, set(range(len(sub_edges)))
            )
            if ranks is not None:
                components.append(ranks)
                remaining = []
                continue
            # Greedy: force one edge strict, the rest non-increasing, then
            # retire every edge that happens to decrease strictly.
            progressed = False
            for pos in range(len(sub_edges)):
                attempts += 1
                if attempts > 12:  # bound the greedy LP search
                    return None
                ranks = self._synthesize(scc, sub_edges, {pos})
                if ranks is None:
                    continue
                dec = self.strictly_decreasing_edges(ranks, sub_edges)
                if not dec:
                    continue
                components.append(ranks)
                remaining = [
                    i for k, i in enumerate(remaining) if k not in dec
                ]
                progressed = True
                break
            if not progressed:
                return None
        return None
