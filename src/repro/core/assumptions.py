r"""Relational assumptions over unknown temporal predicates (paper Sec. 3-4).

Two families are collected by the Hoare-style verification:

* **Pre-assumptions** (set ``S``), from proving preconditions at call
  sites::

      rho /\ theta_a  =>  theta_c

  where ``theta_a`` is the caller's pre-predicate occurrence and
  ``theta_c`` the callee's (or a known predicate after specialisation).

* **Post-assumptions** (set ``T``), from proving postconditions at method
  exits::

      rho /\ /\(eta_i => false) /\ /\(mu_j => U^j_po(v_j))  =>  (mu => U_po(v))

  The left conjunct list records the post-predicates accumulated from the
  calls on the path (resolved ``false`` entries come from callees already
  proven non-terminating).

The ``filter`` function removes the trivial assumptions enumerated in the
paper's [TNT-CALL] discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple, Union

from repro.arith.formula import Formula, TRUE, conj
from repro.arith.context import SolverContext, resolve
from repro.core.predicates import (
    Loop,
    MayLoop,
    PostRef,
    PostVal,
    PreRef,
    TempPred,
    Term,
)

# A left-hand-side post entry: (guard, PostRef) for unknown callees or
# (guard, PostVal(false)) for callees already proven non-terminating.
PostEntry = Tuple[Formula, Union[PostRef, PostVal]]


@dataclass(frozen=True)
class PreAssume:
    """``ctx /\\ lhs => rhs`` over pre-predicates."""

    ctx: Formula
    lhs: Union[TempPred, PreRef]
    rhs: Union[TempPred, PreRef]

    def __repr__(self) -> str:
        return f"[{self.ctx!r} /\\ {self.lhs!r} => {self.rhs!r}]"


@dataclass(frozen=True)
class PostAssume:
    """``ctx /\\ /\\(entries) => (guard => rhs)`` over post-predicates."""

    ctx: Formula
    entries: Tuple[PostEntry, ...]
    guard: Formula
    rhs: PostRef

    def __repr__(self) -> str:
        es = " /\\ ".join(f"({g!r} => {p!r})" for g, p in self.entries)
        lhs = f"{self.ctx!r}" + (f" /\\ {es}" if es else "")
        return f"[{lhs} => ({self.guard!r} => {self.rhs!r})]"


Assumption = Union[PreAssume, PostAssume]


def filter_trivial(
    assumptions: Sequence[PreAssume],
    mutually_recursive: Optional[set] = None,
    ctx: Optional["SolverContext"] = None,
) -> List[PreAssume]:
    """Remove trivial pre-assumptions (paper's ``filter`` in [TNT-CALL]).

    1. unsatisfiable context;
    2. ``Loop`` or ``MayLoop`` on the left (they accept any constraint);
    3. ``... => Term M`` when caller and callee are not mutually recursive
       (*mutually_recursive*, when given, is the set of pair names in the
       caller's SCC: a Term-RHS assumption is kept only if its LHS pair
       belongs to it -- those are base-case-reachability edges).
    """
    ctx = resolve(ctx)
    out: List[PreAssume] = []
    for a in assumptions:
        if isinstance(a.lhs, (Loop, MayLoop)):
            continue
        if isinstance(a.rhs, Term) and isinstance(a.lhs, Term):
            continue
        if (
            isinstance(a.rhs, Term)
            and mutually_recursive is not None
            and (not isinstance(a.lhs, PreRef) or a.lhs.name not in mutually_recursive)
        ):
            continue
        if not ctx.is_sat(a.ctx):
            continue
        out.append(a)
    return out


def filter_post(
    assumptions: Sequence[PostAssume],
    ctx: Optional["SolverContext"] = None,
) -> List[PostAssume]:
    """Drop post-assumptions with unsatisfiable contexts."""
    ctx = resolve(ctx)
    return [a for a in assumptions if ctx.is_sat(conj(a.ctx, a.guard))]
