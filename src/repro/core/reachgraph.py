"""The temporal reachability graph (paper Definition 4 and Sec. 5.3).

Vertices are leaf unknown pre-predicates plus three sinks -- ``Term``,
``Loop`` and ``MayLoop``.  Every specialised pre-assumption
``rho /\\ theta_a => theta_c`` contributes an edge from ``theta_a`` to
``theta_c`` labelled with its context ``rho`` (and the argument tuples, so
that ranking synthesis can relate caller and callee parameters).

The solver walks the condensation of this graph bottom-up
(callee-SCCs first), mirroring the paper's support for phase-change
programs and mutual recursion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.arith.formula import Formula
from repro.core.assumptions import PreAssume
from repro.core.predicates import Loop, MayLoop, PreRef, Term

TERM_NODE = "<Term>"
LOOP_NODE = "<Loop>"
MAYLOOP_NODE = "<MayLoop>"
_SINKS = (TERM_NODE, LOOP_NODE, MAYLOOP_NODE)


@dataclass(frozen=True)
class Edge:
    """A labelled reachability edge between unknown pre-predicates."""

    src: str
    dst: str                  # pair name or one of the sink nodes
    ctx: Formula
    src_args: Tuple[str, ...]
    dst_args: Tuple[str, ...]  # empty for sink nodes

    def __repr__(self) -> str:
        return f"{self.src} --{self.ctx!r}--> {self.dst}"


class ReachGraph:
    """Temporal reachability graph over specialised pre-assumptions."""

    def __init__(self, assumptions: List[PreAssume]):
        self.edges: List[Edge] = []
        self.graph = nx.DiGraph()
        for a in assumptions:
            if not isinstance(a.lhs, PreRef):
                continue
            src = a.lhs.name
            src_args = a.lhs.args
            if isinstance(a.rhs, PreRef):
                dst, dst_args = a.rhs.name, a.rhs.args
            elif isinstance(a.rhs, Term):
                dst, dst_args = TERM_NODE, ()
            elif isinstance(a.rhs, Loop):
                dst, dst_args = LOOP_NODE, ()
            elif isinstance(a.rhs, MayLoop):
                dst, dst_args = MAYLOOP_NODE, ()
            else:
                raise TypeError(f"unexpected RHS {a.rhs!r}")
            edge = Edge(src, dst, a.ctx, src_args, dst_args)
            self.edges.append(edge)
            self.graph.add_node(src)
            self.graph.add_node(dst)
            self.graph.add_edge(src, dst)

    def add_vertices(self, names: List[str]) -> None:
        """Make sure isolated unknowns (no assumptions at all) appear."""
        for n in names:
            self.graph.add_node(n)

    def sccs_bottom_up(self) -> List[List[str]]:
        """Unknown-predicate SCCs, successors first; sinks excluded."""
        condensation = nx.condensation(self.graph)
        order = list(nx.topological_sort(condensation))
        out: List[List[str]] = []
        for node in reversed(order):
            members = sorted(
                m for m in condensation.nodes[node]["members"]
                if m not in _SINKS
            )
            if members:
                out.append(members)
        return out

    def scc_succ(self, scc: List[str]) -> Set[str]:
        """Outside successors of an SCC (paper Definition 5)."""
        members = set(scc)
        out: Set[str] = set()
        for v in scc:
            for succ in self.graph.successors(v):
                if succ not in members:
                    out.add(succ)
        return out

    def internal_edges(self, scc: List[str]) -> List[Edge]:
        members = set(scc)
        return [e for e in self.edges if e.src in members and e.dst in members]

    def has_cycle(self, scc: List[str]) -> bool:
        members = set(scc)
        if len(members) > 1:
            return True
        node = scc[0]
        return self.graph.has_edge(node, node)
