"""Non-termination proving by inductive unreachability (paper Sec. 5.5).

``prove_NonTerm`` attempts, for an SCC of unknown pre-predicates, to show
that every corresponding post-predicate is ``false`` (the method exit is
unreachable).  By induction (hypothesis: all post-predicates of the SCC are
``false``), a specialised post-assumption ::

    rho /\\ /\\(eta_i => false) /\\ /\\(mu_j => U^j_po) => (mu => U_po)

yields ``U_po == false`` exactly when ``rho /\\ mu => \\/ eta_i \\/ \\/ mu_j``
(restricting the ``mu_j`` to post-predicates whose pre-predicate belongs to
the analysed SCC).  ``abd_inf`` performs exactly this check; on failure it
abduces strengthening conditions over the method's parameters that would
make it pass, preferring conditions over few variables via a Farkas
template (paper Sec. 5.6's "optimal constraints") and falling back to the
weakest-precondition projection.

Nondeterminism note (paper Sec. 8): non-termination is an *existential*
property, so internal nondeterministic choices are resolved angelically --
the success check projects both sides onto the method parameters before
comparing, which is the formal counterpart of the paper's "a nondet
conditional is non-terminating if either branch is".
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arith.farkas import LPProblem, polyhedron_rows
from repro.arith.formula import (
    Atom,
    FALSE,
    Formula,
    Rel,
    TRUE,
    atom_ge,
    conj,
    disj,
    neg,
)
from repro.arith.context import SolverContext, resolve
from repro.arith.solver import dnf_disjuncts
from repro.arith.terms import LinExpr, var
from repro.core.assumptions import PostAssume
from repro.core.predicates import PostRef, PostVal
from repro.core.specs import DefStore

MAX_TEMPLATE_VARS = 2


def filter_rel(post_assumptions: Sequence[PostAssume], pair: str) -> List[PostAssume]:
    """Post-assumptions whose right-hand side is the pair's post-predicate."""
    return [t for t in post_assumptions if t.rhs.name == pair]


def _targets(t: PostAssume, scc: Set[str]) -> List[Formula]:
    """The disjunction candidates: etas from resolved-``false`` entries and
    guards of unknown entries whose pair is inside the SCC (the inductive
    hypothesis covers exactly those)."""
    out: List[Formula] = []
    for g, p in t.entries:
        if isinstance(p, PostVal):
            if not p.reachable:
                out.append(g)
        elif isinstance(p, PostRef) and p.name in scc:
            out.append(g)
    return out


def check_unreachable(
    t: PostAssume,
    scc: Set[str],
    params: Tuple[str, ...],
    ctx: Optional[SolverContext] = None,
) -> bool:
    """The ``abd_inf`` success check for one post-assumption.

    Non-termination is an existential property: internal choices (nondet
    draws, havoced loop results) may be resolved angelically, so the check
    compares the parameter-projections of both sides.
    """
    ctx = resolve(ctx)
    context = conj(t.ctx, t.guard)
    if not ctx.is_sat(context):
        return True
    targets = _targets(t, scc)
    if not targets:
        return False
    direct = ctx.entails(context, disj(*targets))
    if direct:
        return True
    # Angelic resolution applies ONLY to genuine nondeterministic draws
    # (``nd!`` variables introduced for nondet()): a diverging witness may
    # pick them.  Everything else -- call results, loop havocs, SSA
    # copies -- is determined by the program and stays universal.
    angelic = {
        v
        for v in (context.free_vars() | disj(*targets).free_vars())
        if v.startswith("nd!")
    }
    if not angelic:
        return False
    keep = (context.free_vars() | disj(*targets).free_vars()) - angelic
    try:
        lhs = ctx.project(context, keep=keep)
        rhs = ctx.project(conj(context, disj(*targets)), keep=keep)
    except MemoryError:
        return False
    return ctx.entails(lhs, rhs)


def abduce_conditions(
    t: PostAssume,
    scc: Set[str],
    params: Tuple[str, ...],
    ctx: Optional[SolverContext] = None,
) -> List[Formula]:
    """Abductive inference of case-split conditions (paper Sec. 5.6).

    For each satisfiable target ``beta_k``, find ``alpha_k`` over the
    method parameters with ``SAT(rho /\\ mu /\\ alpha_k)`` and
    ``rho /\\ mu /\\ alpha_k => beta_k``.  A Farkas-template search with few
    variables is tried first; the weakest precondition (universal
    projection) is the fallback.
    """
    ctx = resolve(ctx)
    context = conj(t.ctx, t.guard)
    if not ctx.is_sat(context):
        return []
    conditions: List[Formula] = []
    # All per-target queries share the assumption frame, so the context
    # formula's DNF cubes are converted once and reused incrementally.
    with ctx.assuming(context):
        for beta in _targets(t, scc):
            if not ctx.is_sat(beta):
                continue
            try:
                alpha = _abduce_one(context, beta, params, ctx)
            except MemoryError:
                alpha = None  # blow-up: skip this candidate
            if alpha is not None:
                conditions.append(alpha)
    return conditions


def _abduce_one(
    context: Formula,
    beta: Formula,
    params: Tuple[str, ...],
    ctx: Optional[SolverContext] = None,
) -> Optional[Formula]:
    """One abduction: alpha over *params* with context /\\ alpha => beta."""
    # Template search, fewest-variables first (the paper's "optimal
    # constraints ... minimum number of program variables").
    ctx = resolve(ctx)
    for size in range(1, min(MAX_TEMPLATE_VARS, len(params)) + 1):
        for subset in itertools.combinations(sorted(params), size):
            alpha = _template_abduction(context, beta, subset, ctx)
            if alpha is not None and _valid_abduction(context, beta, alpha, ctx):
                return alpha
    # Fallback: weakest precondition over the parameters,
    #   alpha = not exists(other vars) . context /\\ not beta
    others = (context.free_vars() | beta.free_vars()) - set(params)
    try:
        wp = neg(ctx.project(conj(context, neg(beta)), keep=set(params)))
    except MemoryError:
        return None
    wp = ctx.simplify(wp)
    if _valid_abduction(context, beta, wp, ctx):
        return wp
    return None


def _valid_abduction(
    context: Formula,
    beta: Formula,
    alpha: Formula,
    ctx: Optional[SolverContext] = None,
) -> bool:
    ctx = resolve(ctx)
    return (
        ctx.is_sat(conj(context, alpha))
        and ctx.entails(conj(context, alpha), beta)
    )


def _template_abduction(
    context: Formula,
    beta: Formula,
    subset: Tuple[str, ...],
    ctx: Optional[SolverContext] = None,
) -> Optional[Formula]:
    """Farkas abduction with template ``a0 + sum a_i v_i >= 0`` over
    *subset*, the template's own multiplier normalised to 1."""
    ctx = resolve(ctx)
    ctx_cubes = [c for c in dnf_disjuncts(context) if ctx.is_sat(conj(*c))]
    beta_cubes = dnf_disjuncts(beta)
    if not ctx_cubes or len(beta_cubes) != 1:
        return None
    beta_atoms = list(beta_cubes[0])
    lp = LPProblem()
    coeff = {v: f"abd.c.{v}" for v in subset}
    const = "abd.c0"
    impl = 0
    for cube in ctx_cubes:
        rows = polyhedron_rows(cube)
        for atom in beta_atoms:
            # atom: w.x + k <= 0  i.e.  w.x <= -k  ->  g = w, d = -k
            targets = [(atom.expr.coeffs, -atom.expr.constant)]
            if atom.rel is Rel.EQ:
                targets.append(
                    ({v: -c for v, c in atom.expr.coeffs.items()},
                     atom.expr.constant)
                )
            for g_coeffs, d_val in targets:
                lams = [f"l{impl}.{k}" for k in range(len(rows))]
                for name in lams:
                    lp.set_nonneg(name)
                dims: Set[str] = set(subset) | set(g_coeffs)
                for r_coeffs, _b in rows:
                    dims |= set(r_coeffs)
                for x in sorted(dims):
                    # sum_k lam_k A[k][x]  - a_x [x in subset]  - g[x] = 0
                    expr = LinExpr()
                    for (r_coeffs, _b), lam in zip(rows, lams):
                        c = r_coeffs.get(x, Fraction(0))
                        if c != 0:
                            expr = expr + LinExpr({lam: c})
                    if x in coeff:
                        # alpha row "-a.x <= a0" with multiplier fixed to 1
                        expr = expr + LinExpr({coeff[x]: -1})
                    gx = g_coeffs.get(x, Fraction(0))
                    if gx != 0:
                        expr = expr - LinExpr({}, gx)
                    lp.add_eq(expr)
                # constant side: lambda^T b + a0 <= d
                expr = LinExpr({const: 1})
                for (_r, b), lam in zip(rows, lams):
                    if b != 0:
                        expr = expr + LinExpr({lam: b})
                lp.add_le(expr - LinExpr({}, d_val))
                impl += 1
    objective = lp.abs_objective(list(coeff.values()) + [const])
    solution = lp.solve(objective=objective, bound=100)
    if solution is None:
        return None
    alpha_expr = LinExpr(
        {v: solution.get(coeff[v], Fraction(0)) for v in subset},
        solution.get(const, Fraction(0)),
    )
    if all(c == 0 for c in alpha_expr.coeffs.values()):
        return None
    if abs(alpha_expr.constant) > 50 or any(
        abs(c) > 50 for c in alpha_expr.coeffs.values()
    ):
        return None  # implausible magnitudes: an LP-bound artefact
    return atom_ge(alpha_expr, 0)


def prove_nonterm(
    scc: List[str],
    post_assumptions: Sequence[PostAssume],
    store: DefStore,
    ctx: Optional[SolverContext] = None,
) -> Tuple[bool, Dict[str, List[Formula]]]:
    """The paper's ``prove_NonTerm``: try to resolve the SCC as
    ``Loop``/``false``; on failure return abduced case-split conditions per
    pair (over the pair's formal parameters).
    """
    ctx = resolve(ctx)
    members = set(scc)
    all_ok = True
    split_conditions: Dict[str, List[Formula]] = {u: [] for u in scc}
    for u in scc:
        params = store.pair_args[u]
        ts = filter_rel(post_assumptions, u)
        for t in ts:
            if check_unreachable(t, members, t.rhs.args, ctx=ctx):
                continue
            all_ok = False
            # Abduce over the occurrence's argument variables, then rename
            # the result to the pair's formal parameters.
            raw = abduce_conditions(t, members, t.rhs.args, ctx=ctx)
            mapping = {a: f for a, f in zip(t.rhs.args, params)}
            for alpha in raw:
                renamed = alpha.rename(mapping)
                if renamed.free_vars() <= set(params):
                    split_conditions[u].append(renamed)
    return all_ok, split_conditions
