"""Temporal predicates: ``Term [e]``, ``Loop``, ``MayLoop`` and the unknown
pre/post predicates of the inference (paper Sections 2-3).

Known predicates map to resource capacities (:mod:`repro.core.resources`);
unknown predicates are references ``PreRef``/``PostRef`` to an *unknown
pair* identified by name, applied to a tuple of argument variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.arith.terms import LinExpr
from repro.core.resources import INF, LOOP_CAPACITY, MAYLOOP_CAPACITY, RC


class TempPred:
    """Base class of temporal pre-predicates."""

    __slots__ = ()

    def is_known(self) -> bool:
        return True


@dataclass(frozen=True)
class Term(TempPred):
    """Definite termination with lexicographic measure ``[e1, ..., ek]``.

    ``Term`` with an empty measure denotes base-case termination
    (written ``Term`` for ``Term []`` in the paper).
    """

    measure: Tuple[LinExpr, ...] = ()

    def capacity(self, bound: int = 0) -> RC:
        """``Term [e] = RC<0, f([e])>`` -- *bound* stands for the
        order-embedding ``f([e])`` at a given state."""
        return RC(0, bound)

    def rename(self, mapping: Mapping[str, str]) -> "Term":
        return Term(tuple(e.rename(mapping) for e in self.measure))

    def __repr__(self) -> str:
        if not self.measure:
            return "Term"
        return f"Term[{', '.join(str(e) for e in self.measure)}]"


@dataclass(frozen=True)
class Loop(TempPred):
    """Definite non-termination: capacity ``RC<inf, inf>``."""

    def capacity(self) -> RC:
        return LOOP_CAPACITY

    def rename(self, mapping: Mapping[str, str]) -> "Loop":
        return self

    def __repr__(self) -> str:
        return "Loop"


@dataclass(frozen=True)
class MayLoop(TempPred):
    """Possible non-termination: capacity ``RC<0, inf>`` -- the strongest
    pre-predicate in the ``=>r`` hierarchy (analogous to ``false``)."""

    def capacity(self) -> RC:
        return MAYLOOP_CAPACITY

    def rename(self, mapping: Mapping[str, str]) -> "MayLoop":
        return self

    def __repr__(self) -> str:
        return "MayLoop"


LOOP = Loop()
MAYLOOP = MayLoop()
TERM = Term(())


def implies_r(stronger: TempPred, weaker: TempPred) -> bool:
    """The resource implication ``=>r`` on known predicates.

    ``MayLoop =>r Loop`` and ``MayLoop =>r Term [e]``; ``Loop`` and
    ``Term`` are incomparable; every predicate implies itself.
    """
    if isinstance(stronger, MayLoop):
        return True
    if isinstance(stronger, Loop):
        return isinstance(weaker, Loop)
    if isinstance(stronger, Term):
        # Term[e1] =>r Term[e2] requires capacity containment; without state
        # information we only claim reflexivity on equal measures.
        return isinstance(weaker, Term) and stronger.measure == weaker.measure
    raise TypeError(f"unknown temporal predicate {stronger!r}")


@dataclass(frozen=True)
class PreRef(TempPred):
    """An occurrence ``Upr(v1, ..., vn)`` of an unknown pre-predicate."""

    name: str
    args: Tuple[str, ...]

    def is_known(self) -> bool:
        return False

    def rename(self, mapping: Mapping[str, str]) -> "PreRef":
        return PreRef(self.name, tuple(mapping.get(a, a) for a in self.args))

    def __repr__(self) -> str:
        return f"{self.name}_pr({', '.join(self.args)})"


@dataclass(frozen=True)
class PostRef:
    """An occurrence ``Upo(v1, ..., vn)`` of an unknown post-predicate."""

    name: str
    args: Tuple[str, ...]

    def rename(self, mapping: Mapping[str, str]) -> "PostRef":
        return PostRef(self.name, tuple(mapping.get(a, a) for a in self.args))

    def __repr__(self) -> str:
        return f"{self.name}_po({', '.join(self.args)})"


# Post-predicate *values* once resolved: reachable / unreachable.
@dataclass(frozen=True)
class PostVal:
    reachable: bool

    def __repr__(self) -> str:
        return "true" if self.reachable else "false"


POST_TRUE = PostVal(True)
POST_FALSE = PostVal(False)
