"""Re-verification of inferred summaries (the paper's optional recheck).

The paper reports that every specification inferred by HipTNT+ was
"successfully re-verified by an underlying automated verification system",
which is how the evaluation establishes zero false positives/negatives.
This module plays that role here:

* every ``Term [measure]`` case is checked to be **bounded and
  lexicographically decreasing** across each recursion edge restricted to
  the case's guard;
* every ``Loop`` case is checked for **inductive exit unreachability**
  (re-running the ``abd_inf`` success criterion on the final store);
* guard families are checked feasible / exclusive / exhaustive
  (paper Definition 2);
* the resource side is sanity-checked through the ``RC<L,U>`` consumption
  entailment: a ``Term`` caller must never be able to pay for a ``Loop``
  callee on a feasible path.

``reverify`` returns a list of human-readable failure strings; the test
suite asserts it is empty for every program it infers.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.arith.context import SolverContext, resolve
from repro.arith.formula import FALSE, Formula, atom_ge, conj, disj, neg
from repro.arith.terms import var
from repro.core.pipeline import InferenceResult
from repro.core.predicates import Loop, MayLoop, Term
from repro.core.resources import LOOP_CAPACITY, RC, consume
from repro.core.specs import CaseSpec


def _check_definition2(
    spec: CaseSpec, failures: List[str], ctx: Optional[SolverContext] = None
) -> None:
    ctx = resolve(ctx)
    guards = [c.guard for c in spec.cases]
    for g in guards:
        if not ctx.is_sat(g):
            failures.append(f"{spec.method}: infeasible guard {g!r}")
    for g1, g2 in itertools.combinations(guards, 2):
        if ctx.is_sat(conj(g1, g2)):
            failures.append(
                f"{spec.method}: overlapping guards {g1!r} and {g2!r}"
            )


def _term_edges(
    result: InferenceResult,
    method: str,
    ctx: Optional[SolverContext] = None,
):
    """Recursion edges of *method* by re-running the assumption
    generator against the final summaries."""
    from repro.core.predicates import PreRef
    from repro.core.verifier import Verifier, VerifierError

    program = result.program
    m = program.methods[method]
    if m.body is None:
        return []
    pair = f"RV@{method}"
    solved = {k: v for k, v in result.specs.items() if k != method}
    verifier = Verifier(program, pairs={method: pair}, solved=solved, ctx=ctx)
    try:
        ma = verifier.collect(m)
    except VerifierError:
        return None
    return [
        (a.ctx, a.lhs.args, a.rhs.args)
        for a in ma.pre_assumptions
        if isinstance(a.rhs, PreRef) and a.rhs.name == pair
    ]


def _check_term_case(
    result: InferenceResult,
    spec: CaseSpec,
    case,
    edges,
    failures: List[str],
    ctx: Optional[SolverContext] = None,
) -> None:
    ctx = resolve(ctx)
    measure = case.pred.measure
    if not measure:
        return  # base-case Term: no decrease obligation
    for edge_ctx, src_args, dst_args in edges:
        src_map = dict(zip(spec.params, src_args))
        dst_map = dict(zip(spec.params, dst_args))
        guard_src = case.guard.rename(src_map)
        # the edge is relevant only if it can start inside this case AND
        # stay inside it (cross-case edges are justified by the callee
        # case's own predicate)
        for other in spec.cases:
            guard_dst = other.guard.rename(dst_map)
            step = conj(edge_ctx, guard_src, guard_dst)
            if not ctx.is_sat(step):
                continue
            if isinstance(other.pred, Loop) or not other.post.reachable:
                continue  # lands in a Loop region: exit unreachable there
            if isinstance(other.pred, MayLoop):
                failures.append(
                    f"{spec.method}: Term case {case.guard!r} can step "
                    f"into MayLoop region {other.guard!r}"
                )
                continue
            om = other.pred.measure
            if not om:
                continue  # lands in a base case: terminates immediately
            # lexicographic decrease of `measure` vs the target's measure
            if not _lex_decreases(step, measure, om, src_map, dst_map, ctx):
                failures.append(
                    f"{spec.method}: measure {list(map(str, measure))} not "
                    f"lex-decreasing on an edge under {case.guard!r}"
                )


def _lex_decreases(
    step: Formula, m_src, m_dst, src_map, dst_map,
    ctx: Optional[SolverContext] = None,
) -> bool:
    from repro.arith.formula import atom_eq

    ctx = resolve(ctx)
    prefix: List[Formula] = []
    for i in range(min(len(m_src), len(m_dst))):
        r_src = m_src[i].rename(src_map)
        r_dst = m_dst[i].rename(dst_map)
        strict = conj(
            *prefix, atom_ge(r_src, 0), atom_ge(r_src - r_dst, 1)
        )
        if ctx.entails(step, strict):
            return True
        if not ctx.entails(step, atom_ge(r_src - r_dst, 0)):
            return False
        prefix.append(atom_eq(r_src - r_dst, 0))
    return False


def _check_loop_case(
    result: InferenceResult,
    spec: CaseSpec,
    case,
    edges,
    failures: List[str],
    ctx: Optional[SolverContext] = None,
) -> None:
    """A Loop case must be closed: every feasible step from inside it must
    land in a region with unreachable exit (Loop/false), and no exit path
    may start inside it."""
    from repro.core.predicates import PostRef
    from repro.core.verifier import Verifier, VerifierError

    ctx = resolve(ctx)
    program = result.program
    m = program.methods[spec.method]
    pair = f"RV@{spec.method}"
    solved = {k: v for k, v in result.specs.items() if k != spec.method}
    verifier = Verifier(
        program, pairs={spec.method: pair}, solved=solved, ctx=ctx
    )
    try:
        ma = verifier.collect(m)
    except VerifierError:
        return
    for t in ma.post_assumptions:
        exit_ctx = conj(t.ctx, case.guard)
        if not ctx.is_sat(exit_ctx):
            continue
        # this exit path starts inside the Loop region: some left entry
        # must be definitely false on it
        covers: Formula = FALSE
        for g, p in t.entries:
            if isinstance(p, PostRef):
                # the callee is this very method: its false region is the
                # union of the unreachable cases
                for other in spec.cases:
                    if not other.post.reachable:
                        inst = other.guard.rename(
                            dict(zip(spec.params, p.args))
                        )
                        covers = disj(covers, conj(g, inst))
            elif not p.reachable:
                covers = disj(covers, g)
        if not ctx.entails(exit_ctx, covers):
            failures.append(
                f"{spec.method}: Loop case {case.guard!r} has a feasible "
                "exit path not covered by a diverging callee"
            )


def check_resource_side(spec: CaseSpec, failures: List[str]) -> None:
    """Capacity sanity: Term cases have finite upper capacity and hence
    cannot consume a Loop callee's RC<inf, inf>."""
    for case in spec.cases:
        if isinstance(case.pred, Term):
            cap = RC(0, 1_000_000)  # any finite stand-in for f([e])
            if consume(cap, LOOP_CAPACITY) is not None:
                failures.append("finite capacity paid for Loop (impossible)")


def reverify(
    result: InferenceResult, ctx: Optional[SolverContext] = None
) -> List[str]:
    """Re-check every method summary; returns failure descriptions.

    One solver context is shared across every per-method check (callers
    may pass the context used for inference to reuse its caches)."""
    ctx = resolve(ctx)
    failures: List[str] = []
    for method, spec in result.specs.items():
        _check_definition2(spec, failures, ctx=ctx)
        check_resource_side(spec, failures)
        edges = _term_edges(result, method, ctx=ctx)
        if edges is None:
            continue
        for case in spec.cases:
            if isinstance(case.pred, Term):
                _check_term_case(result, spec, case, edges, failures, ctx=ctx)
            elif isinstance(case.pred, Loop):
                _check_loop_case(result, spec, case, edges, failures, ctx=ctx)
    return failures
