"""Whole-program driver: bottom-up modular inference over the call graph.

For each call-graph SCC (callees first -- rule [TNT-INF]):

1. attach a fresh unknown pair to every method of the group;
2. run the assumption-generating verifier over each body;
3. filter trivial assumptions ([TNT-CALL]);
4. run :class:`repro.core.solver.TNTSolver` on the group;
5. flatten the resolved definitions into per-method :class:`CaseSpec`
   summaries, which subsequent (caller) groups consume -- this is the
   modularity/reuse claim of the paper.

Programs containing heap statements are numerically abstracted by
:mod:`repro.seplog` before the pure pipeline runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arith.context import SolverContext, SolverStats
from repro.arith.solver import is_sat
from repro.core.assumptions import filter_post, filter_trivial
from repro.core.predicates import Loop, MayLoop, Term
from repro.core.solver import TNTSolver
from repro.core.specs import CaseSpec, DefStore
from repro.core.verifier import MethodAssumptions, Verifier, VerifierError
from repro.lang import desugar_program, method_sccs, parse_program
from repro.lang.ast import Program


class Verdict(enum.Enum):
    """Whole-method classification in SV-COMP style."""

    TERMINATING = "Y"       # proven terminating for all inputs
    NONTERMINATING = "N"    # some input provably diverges
    UNKNOWN = "U"

    def __str__(self) -> str:
        return self.value


@dataclass
class InferenceResult:
    """Summaries and per-method verdicts for a whole program."""

    program: Program
    specs: Dict[str, CaseSpec]
    store: DefStore
    solver_stats: Optional[SolverStats] = None
    # per-method solver context (the SCC context the method was resolved
    # with), so post-hoc queries such as classification reuse warm caches
    # and are counted in solver_stats
    contexts: Optional[Dict[str, SolverContext]] = None

    def verdict(self, method: str) -> Verdict:
        ctx = self.contexts.get(method) if self.contexts else None
        return classify(self.specs[method], ctx=ctx)

    def pretty(self) -> str:
        return "\n\n".join(spec.pretty() for spec in self.specs.values())


def classify(spec: CaseSpec, ctx: Optional[SolverContext] = None) -> Verdict:
    """Collapse a case summary to a Y/N/U verdict.

    ``Y`` -- every feasible case is ``Term`` (termination for all inputs);
    ``N`` -- some feasible case is ``Loop`` (a diverging input exists);
    ``U`` -- otherwise (some ``MayLoop`` case and no definite ``Loop``).
    """
    has_loop = False
    has_mayloop = False
    for case in spec.cases:
        if not is_sat(case.guard, ctx):
            continue
        if isinstance(case.pred, Loop):
            has_loop = True
        elif isinstance(case.pred, MayLoop):
            has_mayloop = True
        elif not isinstance(case.pred, Term):
            raise TypeError(f"unexpected predicate {case.pred!r}")
    if has_loop:
        return Verdict.NONTERMINATING
    if has_mayloop:
        return Verdict.UNKNOWN
    return Verdict.TERMINATING


def analyze_scc_group(
    program: Program,
    scc: List[str],
    solved: Dict[str, CaseSpec],
    store: DefStore,
    max_iter: int,
    time_budget: float,
    ctx: SolverContext,
) -> Dict[str, CaseSpec]:
    """Resolve one call-graph SCC into per-method case summaries.

    This is the [TNT-INF] body shared by the sequential driver below and
    the parallel wave scheduler (:mod:`repro.core.scheduler`): it reads
    the callee summaries it needs from *solved*, works inside *store* and
    *ctx*, and returns the group's summaries in group-method order without
    mutating *solved* -- the caller decides how results flow back (direct
    dict update here; a pipe from a worker process in the scheduler).
    """
    group_methods = [
        program.methods[name]
        for name in scc
        if program.methods[name].body is not None
    ]
    if not group_methods:
        return {}
    pairs = {
        m.name: f"U0@{m.name}" for m in group_methods
    }
    for m in group_methods:
        store.register_root(pairs[m.name], tuple(m.param_names))
    verifier = Verifier(program, pairs=pairs, solved=solved, ctx=ctx)
    group: List[MethodAssumptions] = []
    mutual = set(pairs.values())
    for m in group_methods:
        ma = verifier.collect(m)
        ma.pre_assumptions = filter_trivial(
            ma.pre_assumptions, mutually_recursive=mutual, ctx=ctx
        )
        ma.post_assumptions = filter_post(ma.post_assumptions, ctx=ctx)
        group.append(ma)
    TNTSolver(
        store, max_iter=max_iter, time_budget=time_budget, ctx=ctx
    ).solve(group)
    from repro.arith.formula import TRUE as _TRUE

    specs: Dict[str, CaseSpec] = {}
    for m in group_methods:
        requires = m.requires if m.requires is not None else _TRUE
        specs[m.name] = store.case_spec(
            pairs[m.name], m.name, tuple(m.param_names),
            context=requires, ctx=ctx,
        )
    return specs


def infer_program(
    program: Program,
    max_iter: int = 8,
    desugared: bool = False,
    time_budget: float = 30.0,
    solver_ctx: Optional[SolverContext] = None,
    jobs: int = 1,
) -> InferenceResult:
    """Infer termination/non-termination summaries for every method.

    Solver state is scoped per call-graph SCC: each group gets its own
    :class:`~repro.arith.context.SolverContext`, so the whole
    specialise/analyse/split iteration of that group shares one
    incremental cache, while the statistics aggregate program-wide.
    Passing *solver_ctx* instead shares a single caller-owned context
    across every group (and the heap abstraction).

    With ``jobs > 1`` (and no caller-owned *solver_ctx*, which cannot be
    shared across worker processes) independent SCCs are analyzed
    concurrently by the wave scheduler in :mod:`repro.core.scheduler`;
    ``jobs=0`` means one worker per CPU.  ``jobs=1`` is the exact
    sequential path below.
    """
    from repro.core.scheduler import resolve_jobs

    jobs = resolve_jobs(jobs)
    if jobs > 1 and solver_ctx is None:
        from repro.core.scheduler import infer_program_parallel

        return infer_program_parallel(
            program, jobs=jobs, max_iter=max_iter, desugared=desugared,
            time_budget=time_budget,
        )

    from repro.seplog.abstraction import abstract_program  # local: optional dep

    stats = solver_ctx.stats if solver_ctx is not None else SolverStats()

    def group_ctx() -> SolverContext:
        if solver_ctx is not None:
            return solver_ctx
        return SolverContext(stats=stats)

    if not desugared:
        program = desugar_program(program)
    program = abstract_program(program, ctx=group_ctx())
    store = DefStore()
    solved: Dict[str, CaseSpec] = {}
    contexts: Dict[str, SolverContext] = {}
    for scc in method_sccs(program):
        ctx = group_ctx()
        specs = analyze_scc_group(
            program, scc, solved, store, max_iter, time_budget, ctx
        )
        for name, spec in specs.items():
            solved[name] = spec
            contexts[name] = ctx
    return InferenceResult(
        program=program, specs=solved, store=store, solver_stats=stats,
        contexts=contexts,
    )


def infer_source(
    source: str, max_iter: int = 8, time_budget: float = 30.0,
    jobs: int = 1,
) -> InferenceResult:
    """Parse, desugar and infer a program given as concrete syntax."""
    return infer_program(
        parse_program(source), max_iter=max_iter, time_budget=time_budget,
        jobs=jobs,
    )
