"""Whole-program driver: bottom-up modular inference over the call graph.

For each call-graph SCC (callees first -- rule [TNT-INF]):

1. attach a fresh unknown pair to every method of the group;
2. run the assumption-generating verifier over each body;
3. filter trivial assumptions ([TNT-CALL]);
4. run :class:`repro.core.solver.TNTSolver` on the group;
5. flatten the resolved definitions into per-method :class:`CaseSpec`
   summaries, which subsequent (caller) groups consume -- this is the
   modularity/reuse claim of the paper.

Programs containing heap statements are numerically abstracted by
:mod:`repro.seplog` before the pure pipeline runs.

Summaries are pure functions of (procedure body, callee summaries), so
step 1-5 can be skipped entirely for an SCC whose structural fingerprint
is already in a persistent spec store (``store=`` on
:func:`infer_program`; :mod:`repro.store`, ``docs/store.md``) -- the
cached :class:`CaseSpec` summaries feed callers exactly as freshly
computed ones would.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, TYPE_CHECKING, Tuple, Union

from repro.arith.context import SolverContext, SolverStats
from repro.arith.solver import is_sat
from repro.core.assumptions import filter_post, filter_trivial
from repro.core.predicates import Loop, MayLoop, Term
from repro.core.solver import TNTSolver
from repro.core.specs import CaseSpec, DefStore
from repro.core.verifier import MethodAssumptions, Verifier, VerifierError
from repro.lang import desugar_program, method_sccs, parse_program
from repro.lang.ast import Program

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.specstore import SpecStore

#: What callers may pass as ``store=``: a directory path or an open
#: :class:`repro.store.specstore.SpecStore` (``None`` disables caching).
StoreArg = Union[None, str, "SpecStore"]


@contextmanager
def fresh_name_scope() -> Iterator[None]:
    """Run the enclosed analysis with private, zero-based fresh-name
    counters (formula fresh variables, nondet names, fresh pointers).

    This is what makes :func:`infer_program` *reentrant and
    thread-dispatchable* in a long-lived process: the counters are
    :class:`contextvars.ContextVar`-backed, so the scope is local to the
    current thread/task -- concurrent analyses neither perturb each
    other's generated names nor inherit the process's history, and the
    same source therefore desugars/abstracts to byte-identical structures
    (hence identical store fingerprints, :mod:`repro.store.fingerprint`)
    on every call.  Name reuse *across* scopes is sound: a formula's
    meaning is a pure function of its structure, and formulas from
    different analyses never mix free variables inside one query --
    structurally identical ones interning to the same node is exactly
    what makes resident caches warm across requests (``docs/serve.md``).
    """
    from repro.arith import formula as _formula
    from repro.lang import to_arith as _to_arith
    from repro.seplog import heap as _heap

    f_tok = _formula.fresh_scope()
    a_tok = _to_arith.fresh_scope()
    h_tok = _heap.fresh_ptr_scope()
    try:
        yield
    finally:
        _heap.exit_fresh_ptr_scope(h_tok)
        _to_arith.exit_fresh_scope(a_tok)
        _formula.exit_fresh_scope(f_tok)


class Verdict(enum.Enum):
    """Whole-method classification in SV-COMP style."""

    TERMINATING = "Y"       # proven terminating for all inputs
    NONTERMINATING = "N"    # some input provably diverges
    UNKNOWN = "U"

    def __str__(self) -> str:
        return self.value


@dataclass
class InferenceResult:
    """Summaries and per-method verdicts for a whole program."""

    program: Program
    specs: Dict[str, CaseSpec]
    store: DefStore
    solver_stats: Optional[SolverStats] = None
    # per-method solver context (the SCC context the method was resolved
    # with), so post-hoc queries such as classification reuse warm caches
    # and are counted in solver_stats
    contexts: Optional[Dict[str, SolverContext]] = None

    def verdict(self, method: str) -> Verdict:
        ctx = self.contexts.get(method) if self.contexts else None
        return classify(self.specs[method], ctx=ctx)

    def pretty(self) -> str:
        return "\n\n".join(spec.pretty() for spec in self.specs.values())


def classify(spec: CaseSpec, ctx: Optional[SolverContext] = None) -> Verdict:
    """Collapse a case summary to a Y/N/U verdict.

    ``Y`` -- every feasible case is ``Term`` (termination for all inputs);
    ``N`` -- some feasible case is ``Loop`` (a diverging input exists);
    ``U`` -- otherwise (some ``MayLoop`` case and no definite ``Loop``).
    """
    has_loop = False
    has_mayloop = False
    for case in spec.cases:
        if not is_sat(case.guard, ctx):
            continue
        if isinstance(case.pred, Loop):
            has_loop = True
        elif isinstance(case.pred, MayLoop):
            has_mayloop = True
        elif not isinstance(case.pred, Term):
            raise TypeError(f"unexpected predicate {case.pred!r}")
    if has_loop:
        return Verdict.NONTERMINATING
    if has_mayloop:
        return Verdict.UNKNOWN
    return Verdict.TERMINATING


def analyze_scc_group(
    program: Program,
    scc: List[str],
    solved: Dict[str, CaseSpec],
    store: DefStore,
    max_iter: int,
    time_budget: float,
    ctx: SolverContext,
) -> Dict[str, CaseSpec]:
    """Resolve one call-graph SCC into per-method case summaries.

    This is the [TNT-INF] body shared by the sequential driver below and
    the parallel wave scheduler (:mod:`repro.core.scheduler`): it reads
    the callee summaries it needs from *solved*, works inside *store* and
    *ctx*, and returns the group's summaries in group-method order without
    mutating *solved* -- the caller decides how results flow back (direct
    dict update here; a pipe from a worker process in the scheduler).
    """
    group_methods = [
        program.methods[name]
        for name in scc
        if program.methods[name].body is not None
    ]
    if not group_methods:
        return {}
    # Pre-analysis ranking hints ride on the Method nodes themselves, so
    # they survive pickling into scheduler workers with no extra plumbing.
    rank_focus = {
        m.name: m.rank_hints for m in group_methods if m.rank_hints
    }
    pairs = {
        m.name: f"U0@{m.name}" for m in group_methods
    }
    for m in group_methods:
        store.register_root(pairs[m.name], tuple(m.param_names))
    verifier = Verifier(program, pairs=pairs, solved=solved, ctx=ctx)
    group: List[MethodAssumptions] = []
    mutual = set(pairs.values())
    for m in group_methods:
        ma = verifier.collect(m)
        ma.pre_assumptions = filter_trivial(
            ma.pre_assumptions, mutually_recursive=mutual, ctx=ctx
        )
        ma.post_assumptions = filter_post(ma.post_assumptions, ctx=ctx)
        group.append(ma)
    TNTSolver(
        store, max_iter=max_iter, time_budget=time_budget, ctx=ctx,
        rank_focus=rank_focus or None,
    ).solve(group)
    from repro.arith.formula import TRUE as _TRUE

    specs: Dict[str, CaseSpec] = {}
    for m in group_methods:
        requires = m.requires if m.requires is not None else _TRUE
        specs[m.name] = store.case_spec(
            pairs[m.name], m.name, tuple(m.param_names),
            context=requires, ctx=ctx,
        )
    return specs


def lookup_cached_specs(
    spec_store: "SpecStore",
    key: str,
    body_methods: List[str],
    stats: SolverStats,
) -> Optional[Dict[str, CaseSpec]]:
    """Consult the persistent spec store for one SCC; account the outcome.

    Returns the cached group summaries on a hit (``stats.store_hits``),
    ``None`` on a miss (``stats.store_misses``).  Entries that existed but
    were rejected -- corrupt file, stale format version, or a method set
    that does not match the fingerprint's SCC -- additionally count as
    ``stats.store_invalidations`` and degrade to a miss, so a damaged
    store can slow an analysis down but never change its answer.
    Shared by the sequential driver below and the parallel scheduler.
    """
    cached, rejected = spec_store.load(key)
    if rejected:
        stats.store_invalidations += 1
    if cached is not None and set(cached) != set(body_methods):
        stats.store_invalidations += 1
        cached = None
    if cached is None:
        stats.store_misses += 1
        return None
    stats.store_hits += 1
    return cached


def _validate_or_raise(program: Program) -> None:
    """Lint a source program; raise ``ProgramInvalid`` on errors."""
    from repro.analysis.diagnostics import ProgramInvalid  # local: avoid cycle
    from repro.analysis.validate import validate_program

    diags = validate_program(program)
    if any(d.severity.value == "error" for d in diags):
        raise ProgramInvalid(diags)


def quick_scc_specs(
    program: Program,
    name: str,
    prefacts,
    ctx: SolverContext,
    stats: SolverStats,
) -> Optional[Dict[str, CaseSpec]]:
    """Resolve a singleton SCC from its pre-analysis quick verdict.

    Returns ``None`` when the method has no certificate (or its
    precondition voids it) -- the caller falls back to the store and the
    full analysis.  Accounted in ``stats.pre_quick``; shared by the
    sequential driver and the parallel scheduler.
    """
    verdict = prefacts.quick.get(name)
    if verdict is None:
        return None
    from repro.analysis.quick import build_quick_spec  # local: avoid cycle

    spec = build_quick_spec(program.methods[name], verdict, ctx)
    if spec is None:
        return None
    stats.pre_quick += 1
    return {name: spec}


def infer_program(
    program: Program,
    max_iter: int = 8,
    desugared: bool = False,
    time_budget: float = 30.0,
    solver_ctx: Optional[SolverContext] = None,
    jobs: int = 1,
    store: StoreArg = None,
    backend: Optional[str] = None,
    preanalysis: bool = False,
    check_preanalysis: bool = False,
    validate: bool = True,
    isolate_names: bool = False,
    language: str = "native",
) -> InferenceResult:
    """Infer termination/non-termination summaries for every method.

    Parameters
    ----------
    program:
        The (parsed) program to analyze.
    max_iter:
        Refinement-iteration bound per SCC for the TNT solver.
    desugared:
        Pass ``True`` when *program* already went through
        :func:`repro.lang.desugar_program` (loops lifted to tail
        recursion); otherwise it is desugared here.
    time_budget:
        Wall-clock budget (seconds) for each SCC's TNT solving loop; on
        expiry the group degrades to weaker (``MayLoop``) cases instead
        of raising.
    solver_ctx:
        Share one caller-owned :class:`~repro.arith.context.SolverContext`
        across every group (and the heap abstraction).  Default: each
        SCC gets its own fresh context, all feeding one program-wide
        :class:`~repro.arith.context.SolverStats`.
    jobs:
        ``1`` (default) analyzes SCCs sequentially, callees first.
        ``jobs > 1`` dispatches independent SCCs to that many worker
        processes via the wave scheduler
        (:func:`repro.core.scheduler.infer_program_parallel`);
        ``jobs=0`` means one worker per CPU.  Requires ``solver_ctx``
        to be ``None`` -- contexts cannot cross process boundaries.
    store:
        ``None`` (default) recomputes everything.  A directory path or
        :class:`repro.store.specstore.SpecStore` enables the persistent
        summary cache (see ``docs/store.md``): before an SCC is
        analyzed, its structural fingerprint -- body digests combined
        with transitively-reached callee digests and the ``max_iter`` /
        ``time_budget`` knobs -- is looked up, and a hit replays the
        stored :class:`~repro.core.specs.CaseSpec` summaries without
        re-analysis.  Misses are analyzed normally and written back
        (atomic rename, safe under ``jobs=N``).  Lookups are accounted
        in ``solver_stats`` (``store_hits`` / ``store_misses`` /
        ``store_invalidations``).
    backend:
        Decision-procedure backend name for every per-SCC solver context
        (``"reference"``, ``"matrix"``, ``"z3"``, ``"differential"``;
        see :mod:`repro.arith.backends`).  ``None`` keeps the default
        (``$REPRO_SOLVER_BACKEND`` or the reference engine).  Ignored
        when a caller-owned *solver_ctx* is supplied -- that context's
        backend wins.  Threads through worker processes under
        ``jobs > 1``, like *store*.
    preanalysis:
        Run the dataflow pre-analysis (:mod:`repro.analysis`) first:
        prune definitely-dead loops and branches, seed loop-method
        contracts with interval invariants, attach ranking hints, and
        short-circuit SCCs whose loops carry a quick termination /
        nontermination certificate (``solver_stats.pre_quick`` /
        ``pre_seeded`` account both).  Requires a *source* program
        (``desugared=False``); with ``desugared=True`` the flag is
        ignored.  See ``docs/analysis.md``.
    check_preanalysis:
        Differential self-check: run the inference twice -- with and
        without pre-analysis -- compare every source method's verdict,
        and raise :class:`repro.analysis.check.PreAnalysisDivergence`
        (with a minimized reproducer) on any difference.  Returns the
        pre-analysis result.  Implies ``preanalysis``.
    validate:
        Lint the source program first (default): validation *errors*
        (undefined variables, unknown callees, arity mismatches, ...)
        raise :class:`repro.analysis.diagnostics.ProgramInvalid` with
        position-carrying diagnostics instead of surfacing as internal
        errors mid-pipeline.  Skipped for ``desugared=True`` input.
    language:
        Name of the source frontend the program came from (see
        :mod:`repro.lang.frontends`).  Only store keys depend on it:
        non-native frontends are salted into the SCC fingerprints so
        summaries of lowered programs never alias native ones.  The
        default keeps native keys byte-identical to the pre-frontend
        scheme.
    isolate_names:
        Run the whole inference inside :func:`fresh_name_scope`: private
        zero-based fresh-name counters, local to the calling thread/task.
        This makes the call reentrant and safely dispatchable to worker
        threads (the analysis daemon, :mod:`repro.serve`, sets it): no
        process-global counter state is read or written, and the same
        source yields the same generated names -- hence the same store
        fingerprints -- on every call, with no cold-start reset.  The
        default (``False``) preserves the historical process-global
        numbering the bench cold-start protocol manages explicitly.

    Returns
    -------
    InferenceResult
        Summaries in callee-first order plus program-wide solver
        statistics.  Caveats: with ``jobs > 1`` the result carries
        ``contexts=None`` and an empty definition store; with a spec
        store, SCCs resolved from cache have no entries in
        ``result.store`` either (their definition trees were never
        rebuilt) -- callers that walk ``result.store`` must run cold
        and sequential.
    """
    from repro.core.scheduler import resolve_jobs

    if isolate_names:
        with fresh_name_scope():
            return infer_program(
                program, max_iter=max_iter, desugared=desugared,
                time_budget=time_budget, solver_ctx=solver_ctx, jobs=jobs,
                store=store, backend=backend, preanalysis=preanalysis,
                check_preanalysis=check_preanalysis, validate=validate,
                language=language,
            )

    if check_preanalysis:
        from repro.analysis.check import checked_infer  # local: avoid cycle

        return checked_infer(
            program, max_iter=max_iter, desugared=desugared,
            time_budget=time_budget, solver_ctx=solver_ctx, jobs=jobs,
            store=store, backend=backend, validate=validate,
            language=language,
        )

    jobs = resolve_jobs(jobs)
    if jobs > 1 and solver_ctx is None:
        from repro.core.scheduler import infer_program_parallel

        return infer_program_parallel(
            program, jobs=jobs, max_iter=max_iter, desugared=desugared,
            time_budget=time_budget, store=store, backend=backend,
            preanalysis=preanalysis, validate=validate, language=language,
        )

    from repro.seplog.abstraction import abstract_program  # local: optional dep
    from repro.store.specstore import as_store

    stats = solver_ctx.stats if solver_ctx is not None else SolverStats()

    def group_ctx() -> SolverContext:
        if solver_ctx is not None:
            return solver_ctx
        return SolverContext(stats=stats, backend=backend)

    prefacts = None
    if not desugared:
        if preanalysis:
            from repro.analysis.prefacts import pre_analyze  # local: avoid cycle

            prefacts = pre_analyze(program, strict=validate)
            program = prefacts.desugared
            stats.pre_seeded += len(prefacts.seeded)
        else:
            if validate:
                _validate_or_raise(program)
            program = desugar_program(program)
    program = abstract_program(program, ctx=group_ctx())
    spec_store = as_store(store)
    if spec_store is not None:
        from repro.store.fingerprint import program_store_keys

        sccs, _deps, keys = program_store_keys(
            program, max_iter, time_budget, language
        )
    else:
        sccs = method_sccs(program)
        keys = [None] * len(sccs)
    def_store = DefStore()
    solved: Dict[str, CaseSpec] = {}
    contexts: Dict[str, SolverContext] = {}
    for scc, key in zip(sccs, keys):
        ctx = group_ctx()
        body_methods = [
            n for n in scc if program.methods[n].body is not None
        ]
        specs = None
        if prefacts is not None and len(body_methods) == 1:
            specs = quick_scc_specs(program, body_methods[0], prefacts, ctx, stats)
        cacheable = spec_store is not None and bool(body_methods) and specs is None
        if cacheable:
            specs = lookup_cached_specs(spec_store, key, body_methods, stats)
        if specs is None:
            specs = analyze_scc_group(
                program, scc, solved, def_store, max_iter, time_budget, ctx
            )
            if cacheable and specs:
                spec_store.save(key, specs)
        for name, spec in specs.items():
            solved[name] = spec
            contexts[name] = ctx
    return InferenceResult(
        program=program, specs=solved, store=def_store, solver_stats=stats,
        contexts=contexts,
    )


def infer_source(
    source: str, max_iter: int = 8, time_budget: float = 30.0,
    jobs: int = 1, store: StoreArg = None, backend: Optional[str] = None,
    preanalysis: bool = False, check_preanalysis: bool = False,
    validate: bool = True, isolate_names: bool = False,
    language: Optional[str] = None, filename: Optional[str] = None,
) -> InferenceResult:
    """Parse, desugar and infer a program given as concrete syntax.

    ``language`` selects the source frontend by name (see
    :mod:`repro.lang.frontends`; ``None`` sniffs *filename*'s extension
    when given and otherwise means the ``native`` C-like syntax).
    ``jobs``, ``store``, ``backend``, ``preanalysis``,
    ``check_preanalysis``, ``validate`` and ``isolate_names`` are
    forwarded to :func:`infer_program` unchanged (parallel SCC analysis;
    persistent summary cache; decision-procedure backend; dataflow
    pre-analysis and its differential self-check; lint layer; reentrant
    thread-dispatchable name scoping)."""
    from repro.lang.frontends import (
        DEFAULT_LANGUAGE,
        get_frontend,
        language_for_path,
    )

    if language is None and filename is not None:
        language = language_for_path(filename, default=DEFAULT_LANGUAGE)
    frontend = get_frontend(language)
    return infer_program(
        frontend.parse(source, filename=filename),
        max_iter=max_iter, time_budget=time_budget,
        jobs=jobs, store=store, backend=backend, preanalysis=preanalysis,
        check_preanalysis=check_preanalysis, validate=validate,
        isolate_names=isolate_names, language=frontend.name,
    )
