"""The paper's primary contribution: TNT specification inference.

Pipeline (paper Sections 3-5):

1. :mod:`repro.core.verifier` runs Hoare-style forward symbolic execution
   over each method, generating relational assumptions over the unknown
   temporal predicates ``Upr``/``Upo`` (rules [TNT-CALL], [TNT-METH]).
2. :mod:`repro.core.solver` implements ``solve`` (paper Fig. 6) and
   ``TNT_analysis`` (Fig. 7): base-case inference, assumption
   specialisation, the temporal reachability graph, per-SCC termination
   (Farkas ranking synthesis) and non-termination (inductive
   unreachability) proofs, and abductive case-splitting.
3. :mod:`repro.core.pipeline` drives whole programs bottom-up over the call
   graph and produces a :class:`repro.core.specs.CaseSpec` summary per
   method.

:mod:`repro.core.resources` implements the resource-capacity semantics
(``RC<L,U>``, the ``-L``/``-U`` operators and the consumption entailment)
of paper Section 3, and :mod:`repro.core.reverify` re-checks every inferred
summary through it -- mirroring the paper's optional re-verification step.
"""

from repro.core.predicates import Term, Loop, MayLoop, TempPred
from repro.core.specs import CaseSpec, SpecCase
from repro.core.pipeline import infer_program, infer_source, Verdict, classify

__all__ = [
    "Term",
    "Loop",
    "MayLoop",
    "TempPred",
    "CaseSpec",
    "SpecCase",
    "infer_program",
    "infer_source",
    "Verdict",
    "classify",
]
