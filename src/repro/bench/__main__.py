"""Command-line harness: ``python -m repro.bench {fig10,fig11}``.

With ``--store DIR`` the HIPTNT+ runs read and populate a persistent
spec store (see ``docs/store.md``) and each table grows a ``HIPTNT+
(warm)`` row measuring re-analysis against the populated store --
cold-vs-warm in one table.  ``--cold`` wipes the store first, so the
first sweep is guaranteed cold even when DIR already holds entries from
an earlier invocation.

With ``--backend NAME`` (e.g. ``matrix``) each table grows a ``HIPTNT+
[NAME]`` row running the sweep with that decision-procedure backend
(see ``docs/solver.md``) and a footer line reporting verdict parity and
the measured wall-clock ratio against the reference row.
"""

from __future__ import annotations

import argparse

from repro.bench.reporting import fig10_table, fig11_table


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables.",
    )
    parser.add_argument("table", choices=["fig10", "fig11"])
    parser.add_argument(
        "--timeout", type=float, default=60.0,
        help="per-run wall-clock budget in seconds (paper used 300)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the benchmark sweep (0 = one per CPU; "
        "1 = sequential, in-process). Tables are deterministic and "
        "identical for any jobs value.",
    )
    parser.add_argument(
        "--store", metavar="DIR", default=None,
        help="persistent spec-store directory; adds a 'HIPTNT+ (warm)' "
        "row re-running HIPTNT+ against the store the first sweep "
        "populated (cold-vs-warm comparison)",
    )
    parser.add_argument(
        "--cold", action="store_true",
        help="wipe the --store directory before running, guaranteeing the "
        "first HIPTNT+ sweep is cold",
    )
    parser.add_argument(
        "--backend", metavar="NAME", default=None,
        help="decision-procedure backend (reference, matrix, z3, "
        "differential[:a,b]); adds a 'HIPTNT+ [NAME]' row running the "
        "sweep on that backend plus a parity/speedup footer against the "
        "reference row",
    )
    args = parser.parse_args()
    if args.cold and not args.store:
        parser.error("--cold requires --store DIR")
    if args.backend:
        from repro.arith.backends import get_backend

        try:
            get_backend(args.backend)
        except Exception as exc:
            parser.error(f"--backend {args.backend}: {exc}")
    if args.cold:
        from repro.store import SpecStore

        SpecStore(args.store).wipe()
    if args.table == "fig10":
        print(fig10_table(timeout=args.timeout, jobs=args.jobs,
                          store=args.store, backend=args.backend))
    else:
        print(fig11_table(timeout=args.timeout, jobs=args.jobs,
                          store=args.store, backend=args.backend))


if __name__ == "__main__":
    main()
