"""Command-line harness: ``python -m repro.bench {fig10,fig11}``."""

from __future__ import annotations

import argparse

from repro.bench.reporting import fig10_table, fig11_table


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables.",
    )
    parser.add_argument("table", choices=["fig10", "fig11"])
    parser.add_argument(
        "--timeout", type=float, default=60.0,
        help="per-run wall-clock budget in seconds (paper used 300)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the benchmark sweep (0 = one per CPU; "
        "1 = sequential, in-process). Tables are deterministic and "
        "identical for any jobs value.",
    )
    args = parser.parse_args()
    if args.table == "fig10":
        print(fig10_table(timeout=args.timeout, jobs=args.jobs))
    else:
        print(fig11_table(timeout=args.timeout, jobs=args.jobs))


if __name__ == "__main__":
    main()
