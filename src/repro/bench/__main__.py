"""Command-line harness:
``python -m repro.bench {fig10,fig11,st,analyze,corpus}``.

``corpus`` runs the ground-truth corpus harness (``docs/corpus.md``):
``--generate N --seed S`` sweeps N seeded known-verdict programs from
the property-based generator (cross-checked against the concrete
interpreter, disagreements shrunk to minimized reproducers), ``--dir
PATH`` scores a directory-of-files corpus with a ``labels.json``
manifest, and with neither flag the builtin corpora (the fig10/fig11
registry and the labeled ST controllers) are scored.  Prints a per-class
precision/recall/confusion table and exits nonzero on any soundness
violation or oracle disagreement.  ``--inject-flip ID`` deliberately
flips one ground-truth label as a harness self-test.

``st`` checks the labeled IEC 61131-3 Structured Text controller corpus
(``examples/st_controllers/``, parsed through the ``st`` frontend) one
row per program against ground truth, and exits nonzero on any verdict
mismatch -- the CLI half of the frontend smoke job.

``analyze FILE...`` runs the inference on arbitrary source files: the
frontend is sniffed from each file's extension (``.st``/``.iecst`` ->
``st``; ``.imp``/``.tnt``/``.c`` -> ``native``) or forced for all files
with ``--language``.  Parse and validation failures print structured
position-carrying diagnostics and exit 2.

With ``--store DIR`` the HIPTNT+ runs read and populate a persistent
spec store (see ``docs/store.md``) and each table grows a ``HIPTNT+
(warm)`` row measuring re-analysis against the populated store --
cold-vs-warm in one table.  ``--cold`` wipes the store first, so the
first sweep is guaranteed cold even when DIR already holds entries from
an earlier invocation.

With ``--backend NAME`` (e.g. ``matrix``) each table grows a ``HIPTNT+
[NAME]`` row running the sweep with that decision-procedure backend
(see ``docs/solver.md``) and a footer line reporting verdict parity and
the measured wall-clock ratio against the reference row.

By default each table also grows a ``HIPTNT+ (pre)`` row running the
sweep with the dataflow pre-analysis layer (see ``docs/analysis.md``)
plus a ``↳ preanalysis`` footer measuring its verdict refinements and
wall-clock win against the plain row; ``--no-preanalysis`` drops both.

``--check-preanalysis`` runs the differential self-check instead of the
table: every program of the selected corpus is analyzed twice (with and
without pre-analysis) and the verdicts are compared directly -- not via
the bench harness, whose error handling would fold a soundness crash
into an UNKNOWN row.  Exits nonzero on any divergence.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.reporting import fig10_table, fig11_table


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables.",
    )
    parser.add_argument(
        "table", choices=["fig10", "fig11", "st", "analyze", "corpus"]
    )
    parser.add_argument(
        "paths", nargs="*", metavar="FILE",
        help="source files for the 'analyze' command (frontend sniffed "
        "from the extension unless --language is given)",
    )
    parser.add_argument(
        "--language", metavar="NAME", default=None,
        help="source frontend for 'analyze' inputs (native, st); default "
        "sniffs each file's extension. For 'corpus --dir' it overrides "
        "the manifest's language.",
    )
    parser.add_argument(
        "--generate", type=int, metavar="N", default=None,
        help="'corpus': sweep N seeded known-verdict programs from the "
        "property-based generator instead of an on-disk corpus",
    )
    parser.add_argument(
        "--seed", metavar="S", default="demo",
        help="'corpus --generate': generator seed (default: demo); the "
        "same (N, S) reproduces the identical corpus and report",
    )
    parser.add_argument(
        "--dir", metavar="PATH", default=None,
        help="'corpus': score the labels.json-manifested corpus in PATH",
    )
    parser.add_argument(
        "--fuel", type=int, metavar="STEPS", default=None,
        help="'corpus': interpreter-oracle step budget for cross-checking "
        "generated/witnessed instances (default: 60000)",
    )
    parser.add_argument(
        "--inject-flip", metavar="ID", default=None,
        help="'corpus': deliberately flip the ground-truth label of "
        "instance ID (harness self-test; the run must fail)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0,
        help="per-run wall-clock budget in seconds (paper used 300)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the benchmark sweep (0 = one per CPU; "
        "1 = sequential, in-process). Tables are deterministic and "
        "identical for any jobs value.",
    )
    parser.add_argument(
        "--store", metavar="DIR", default=None,
        help="persistent spec-store directory; adds a 'HIPTNT+ (warm)' "
        "row re-running HIPTNT+ against the store the first sweep "
        "populated (cold-vs-warm comparison)",
    )
    parser.add_argument(
        "--cold", action="store_true",
        help="wipe the --store directory before running, guaranteeing the "
        "first HIPTNT+ sweep is cold",
    )
    parser.add_argument(
        "--backend", metavar="NAME", default=None,
        help="decision-procedure backend (reference, matrix, z3, "
        "differential[:a,b]); adds a 'HIPTNT+ [NAME]' row running the "
        "sweep on that backend plus a parity/speedup footer against the "
        "reference row",
    )
    parser.add_argument(
        "--no-preanalysis", dest="preanalysis", action="store_false",
        help="drop the 'HIPTNT+ (pre)' row and its refinement/speedup "
        "footer (the pre-analysis comparison runs by default)",
    )
    parser.add_argument(
        "--check-preanalysis", action="store_true",
        help="instead of the table, run the pre-analysis differential "
        "self-check over the selected corpus (exit 1 on any verdict "
        "divergence)",
    )
    # parse_intermixed_args lets options appear before the FILE
    # positionals ("analyze --language st prog"), which plain
    # parse_args mis-handles for nargs="*".
    args = parser.parse_intermixed_args()
    if args.table == "analyze":
        if not args.paths:
            parser.error("'analyze' needs at least one FILE")
        if args.store or args.backend or args.cold or args.check_preanalysis:
            parser.error(
                "'analyze' takes no --store/--cold/--backend/"
                "--check-preanalysis"
            )
        sys.exit(_analyze_files(args))
    if args.paths:
        parser.error(f"'{args.table}' takes no FILE arguments")
    if args.language is not None and args.table != "corpus":
        parser.error(
            "--language only applies to the 'analyze' and 'corpus' commands"
        )
    if args.table != "corpus" and (
        args.generate is not None or args.dir or args.fuel is not None
        or args.inject_flip
    ):
        parser.error(
            "--generate/--seed/--dir/--fuel/--inject-flip only apply to "
            "the 'corpus' command"
        )
    if args.table == "corpus" and args.check_preanalysis:
        parser.error("'corpus' takes no --check-preanalysis")
    if args.table == "st" and (
        args.backend or args.cold or args.check_preanalysis
    ):
        parser.error("'st' takes no --cold/--backend/--check-preanalysis")
    if args.cold and not args.store:
        parser.error("--cold requires --store DIR")
    if args.check_preanalysis and (args.store or args.backend or args.cold):
        parser.error("--check-preanalysis takes no --store/--cold/--backend")
    if args.backend:
        from repro.arith.backends import get_backend

        try:
            get_backend(args.backend)
        except Exception as exc:
            parser.error(f"--backend {args.backend}: {exc}")
    if args.cold:
        from repro.store import SpecStore

        SpecStore(args.store).wipe()
    if args.table == "corpus":
        sys.exit(_corpus(args, parser))
    if args.check_preanalysis:
        sys.exit(_check_preanalysis(args))
    if args.table == "st":
        from repro.bench.reporting import st_table

        table = st_table(timeout=args.timeout, jobs=args.jobs,
                         store=args.store)
        print(table)
        sys.exit(0 if "all verdicts match" in table else 1)
    if args.table == "fig10":
        print(fig10_table(timeout=args.timeout, jobs=args.jobs,
                          store=args.store, backend=args.backend,
                          preanalysis=args.preanalysis))
    else:
        print(fig11_table(timeout=args.timeout, jobs=args.jobs,
                          store=args.store, backend=args.backend,
                          preanalysis=args.preanalysis))


def _corpus(args, parser) -> int:
    """``corpus``: run the ground-truth harness and score it.

    Exit code 0 when every swept benchmark is clean, 1 on any soundness
    violation or oracle disagreement.  Output carries no wall-clock data,
    so a seeded ``--generate`` rerun is byte-identical.
    """
    from repro.corpus import (
        DirectoryBenchmark,
        GeneratedBenchmark,
        ManifestError,
        builtin_benchmarks,
        run_corpus,
    )
    from repro.corpus.run import DEFAULT_FUEL

    if args.generate is not None and args.dir:
        parser.error("--generate and --dir are mutually exclusive")
    if args.generate is not None and args.generate <= 0:
        parser.error("--generate needs a positive N")
    if args.generate is not None:
        benchmarks = [GeneratedBenchmark(args.generate, seed=args.seed)]
    elif args.dir:
        try:
            benchmarks = [
                DirectoryBenchmark(args.dir, language=args.language)
            ]
        except ManifestError as exc:
            print(f"corpus: {exc}", file=sys.stderr)
            return 2
    else:
        benchmarks = builtin_benchmarks()
    if args.inject_flip is not None and not any(
        any(inst.id == args.inject_flip for inst in bench)
        for bench in benchmarks
    ):
        print(
            f"corpus: no instance named {args.inject_flip!r} to flip",
            file=sys.stderr,
        )
        return 2

    status = 0
    for bench in benchmarks:
        flip = args.inject_flip
        if flip is not None and not any(i.id == flip for i in bench):
            flip = None  # the flipped instance lives in another benchmark
        result = run_corpus(
            bench,
            timeout=args.timeout,
            jobs=args.jobs,
            store=args.store,
            backend=args.backend,
            time_budget=min(args.timeout, 15.0),
            fuel=args.fuel if args.fuel is not None else DEFAULT_FUEL,
            flip=flip,
        )
        print(result.render())
        print()
        if not result.ok:
            status = 1
    return status


def _analyze_files(args) -> int:
    """``analyze FILE...``: infer each file through its frontend.

    Prints one block per file with the per-method verdicts (desugared
    loop methods are folded into their parents and skipped).  Exit code
    0 on success for every file, 2 when any file fails to read, parse
    or validate -- with rendered position-carrying diagnostics.
    """
    import pathlib

    from repro.analysis.diagnostics import ProgramInvalid
    from repro.core.pipeline import infer_source
    from repro.lang.errors import SourceError
    from repro.lang.frontends import UnknownLanguageError, language_for_path

    status = 0
    for path in args.paths:
        try:
            language = args.language or language_for_path(path)
            source = pathlib.Path(path).read_text()
        except (UnknownLanguageError, OSError) as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            status = 2
            continue
        try:
            result = infer_source(
                source, language=language, filename=path,
                time_budget=min(args.timeout, 15.0), jobs=args.jobs,
            )
        except (SourceError, ProgramInvalid) as exc:
            print(f"{path}: [{language}]", file=sys.stderr)
            for d in getattr(exc, "diagnostics", []):
                rendered = d.render() if hasattr(d, "render") else str(d)
                print(f"  {rendered}", file=sys.stderr)
            status = 2
            continue
        print(f"{path}: [{language}]")
        for name in result.specs:
            if result.program.methods[name].source_loop:
                continue
            print(f"  {name}: {result.verdict(name)}")
    return status


def _check_preanalysis(args) -> int:
    """Differential self-check over the corpus the selected table uses.

    Goes through :func:`repro.analysis.check.check_corpus` -- direct
    ``infer_program`` calls, no ``run_tool`` wrapper -- so an exception
    inside either configuration surfaces instead of becoming an UNKNOWN
    row.  The per-inference solver budget is capped by ``--timeout``.
    """
    from repro.analysis.check import check_corpus
    from repro.bench.programs import all_programs

    corpus = all_programs()
    if args.table == "fig11":
        corpus = [
            p for p in corpus
            if p.loop_based
            and p.category in ("crafted", "crafted-lit", "numeric")
        ]
    divergences = check_corpus(
        programs=corpus,
        time_budget=min(args.timeout, 15.0),
        jobs=args.jobs,
    )
    for d in divergences:
        print(d, file=sys.stderr)
    print(
        f"check-preanalysis [{args.table}]: {len(corpus)} programs, "
        f"{len(divergences)} divergences"
    )
    return 1 if divergences else 0


if __name__ == "__main__":
    main()
