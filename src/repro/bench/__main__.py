"""Command-line harness: ``python -m repro.bench {fig10,fig11}``."""

from __future__ import annotations

import argparse

from repro.bench.reporting import fig10_table, fig11_table


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables.",
    )
    parser.add_argument("table", choices=["fig10", "fig11"])
    parser.add_argument(
        "--timeout", type=float, default=60.0,
        help="per-run wall-clock budget in seconds (paper used 300)",
    )
    args = parser.parse_args()
    if args.table == "fig10":
        print(fig10_table(timeout=args.timeout))
    else:
        print(fig11_table(timeout=args.timeout))


if __name__ == "__main__":
    main()
