"""Fig. 10- and Fig. 11-shaped result tables, plus solver statistics.

``fig10_table`` runs {AProVE-like, ULTIMATE-like, HIPTNT+} over the four
benchmark categories and prints Y/N/U/T-O/time per (tool, category) --
the exact row/column structure of paper Fig. 10.  ``fig11_table`` compares
HIPTNT+ against the T2-like baseline on the loop-based integer programs of
the first three categories, mirroring paper Fig. 11 (the paper restricted
the T2 comparison to 221 loop-based programs because its C frontend could
not handle recursion or pointers).

Both tables accept ``store=`` (a persistent spec-store directory, see
``docs/store.md``): the HIPTNT+ runs then read/populate the store and an
extra ``HIPTNT+ (warm)`` row re-runs the same programs against the
now-populated store -- the cold-vs-warm comparison, with store
hit/miss/invalidation counters on the ``↳ solver`` summary lines.

They also accept ``backend=`` (a decision-procedure backend name, see
:mod:`repro.arith.backends` and ``docs/solver.md``): an extra ``HIPTNT+
[<backend>]`` row runs the full sweep with that cube engine, and a
``↳ backend`` footer line checks the row program-by-program against the
reference row -- verdict parity plus the measured wall-clock ratio.

With ``preanalysis=True`` (the CLI default; ``--no-preanalysis``
disables it) an extra ``HIPTNT+ (pre)`` row runs the sweep with the
dataflow pre-analysis layer (:mod:`repro.analysis`) enabled, and a
``↳ preanalysis`` footer checks it program-by-program against the plain
row: conflicts (definite-vs-definite disagreements) are flagged,
refinements (U resolved to a definite answer by quick verdicts or
seeded contracts) are counted, and the wall-clock ratio lands as the
measured speedup (or parity).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines import (
    AProVELikeAnalyzer,
    T2LikeAnalyzer,
    UltimateLikeAnalyzer,
)
from repro.bench.programs import (
    BenchProgram,
    CATEGORIES,
    all_programs,
    st_programs,
)
from repro.bench.runner import (
    BenchOutcome,
    HipTNTPlus,
    run_tools_sharded,
    tally,
    tally_solver_stats,
)


class _HipWrapper:
    """Adapter giving HipTNT+ the same analyze(program) interface.

    *name* distinguishes the cold and warm sweeps in store-enabled
    tables; *store* (a directory path, picklable) is forwarded to the
    wrapped :class:`~repro.bench.runner.HipTNTPlus`.
    """

    def __init__(self, name: str = "HIPTNT+",
                 store: Optional[str] = None,
                 backend: Optional[str] = None,
                 preanalysis: bool = False) -> None:
        self.name = name
        self._main: Optional[str] = None
        self._store = store
        self._backend = backend
        self._preanalysis = preanalysis
        self.last_stats = None  # forwarded from the wrapped tool

    def bind(self, main: str) -> "_HipWrapper":
        self._main = main
        return self

    def analyze(self, program):
        assert self._main is not None
        tool = HipTNTPlus(self._main, store=self._store,
                          backend=self._backend,
                          preanalysis=self._preanalysis)
        try:
            return tool.analyze(program)
        finally:
            self.last_stats = tool.last_stats


_FIG10_TOOLS = ("AProVE-like", "ULTIMATE-like", "HIPTNT+")

#: Row label of the repeat HIPTNT+ sweep in store-enabled tables.
HIP_WARM = "HIPTNT+ (warm)"

#: Row label of the extra HIPTNT+ sweep with the pre-analysis layer on.
HIP_PRE = "HIPTNT+ (pre)"


def hip_backend_label(backend: str) -> str:
    """Row label of the extra HIPTNT+ sweep run with *backend*."""
    return f"HIPTNT+ [{backend}]"


def _make_tool(name: str, main: str, store: Optional[str] = None,
               backend: Optional[str] = None):
    """A fresh analyzer instance for one (tool, program) task.

    Fresh per task (rather than shared across the sweep) so a task is
    self-contained and picklable for sharded execution; the analyzers are
    stateless per run, so sequential results are unchanged.  *store* and
    *backend* only affect the HIPTNT+ rows -- the baselines have no
    summary reuse to cache and no pluggable cube engine; the plain
    ``HIPTNT+`` and warm rows always run the reference backend, so a
    ``HIPTNT+ [<backend>]`` row has a same-table baseline to be compared
    against.
    """
    if name == "AProVE-like":
        return AProVELikeAnalyzer()
    if name == "ULTIMATE-like":
        return UltimateLikeAnalyzer()
    if name == "T2-like":
        return T2LikeAnalyzer()
    if name in ("HIPTNT+", HIP_WARM):
        return _HipWrapper(name, store=store).bind(main)
    if name == HIP_PRE:
        # Never store-cached: the row must measure live pre-analysis
        # pruning, not store replay of the cold sweep's results.
        return _HipWrapper(name, store=None, preanalysis=True).bind(main)
    if backend is not None and name == hip_backend_label(backend):
        return _HipWrapper(name, store=None, backend=backend).bind(main)
    raise KeyError(name)


def run_fig10(
    timeout: float = 60.0,
    categories: Sequence[str] = CATEGORIES,
    programs: Optional[List[BenchProgram]] = None,
    jobs: int = 1,
    store: Optional[str] = None,
    backend: Optional[str] = None,
    preanalysis: bool = False,
) -> Dict[str, Dict[str, List[BenchOutcome]]]:
    """All Fig. 10 outcomes: tool -> category -> outcome list.

    With ``jobs > 1`` the (tool, program) runs are farmed to worker
    processes (:func:`repro.bench.runner.run_tools_sharded`); outcomes are
    slotted back by task index, so the table is deterministic and
    identical to a sequential run regardless of completion order.

    With a *store* directory, the HIPTNT+ runs read and populate the
    persistent spec store, and a second HIPTNT+ sweep (row ``HIPTNT+
    (warm)``) runs *after* the first completes -- its rows measure warm
    re-analysis against whatever the first sweep cached, the
    cold-vs-warm comparison of ``docs/store.md``.

    With a *backend* name, an extra ``HIPTNT+ [<backend>]`` sweep runs
    the same programs with that cube engine (never store-cached, so the
    comparison is always against live solving).

    With ``preanalysis=True``, an extra ``HIPTNT+ (pre)`` sweep runs the
    same programs with the dataflow pre-analysis layer enabled (also
    never store-cached, for the same reason).
    """
    corpus = programs if programs is not None else all_programs()
    in_scope = [b for b in corpus if b.category in categories]
    backend_row = [hip_backend_label(backend)] if backend else []
    pre_row = [HIP_PRE] if preanalysis else []
    tool_names = (
        list(_FIG10_TOOLS) + pre_row + backend_row
        + ([HIP_WARM] if store else [])
    )
    results: Dict[str, Dict[str, List[BenchOutcome]]] = {
        name: {c: [] for c in categories} for name in tool_names
    }

    def sweep(names: Sequence[str]) -> None:
        pairs = []
        keys: List[tuple] = []
        for bench in in_scope:
            for name in names:
                pairs.append(
                    (_make_tool(name, bench.main, store, backend), bench)
                )
                keys.append((name, bench.category))
        outcomes = run_tools_sharded(pairs, timeout=timeout, jobs=jobs)
        for (name, category), outcome in zip(keys, outcomes):
            results[name][category].append(outcome)

    sweep(list(_FIG10_TOOLS) + pre_row + backend_row)
    if store:
        # The warm sweep must start only after every cold HIPTNT+ run has
        # written back, so it is a separate sharded batch.
        sweep([HIP_WARM])
    return results


def fig10_table(
    timeout: float = 60.0,
    categories: Sequence[str] = CATEGORIES,
    programs: Optional[List[BenchProgram]] = None,
    jobs: int = 1,
    store: Optional[str] = None,
    backend: Optional[str] = None,
    preanalysis: bool = False,
) -> str:
    """The Fig. 10 table as formatted text (plus, with *store*, a
    ``HIPTNT+ (warm)`` row re-running against the populated store, with
    *backend*, a ``HIPTNT+ [<backend>]`` row followed by a verdict
    parity / wall-clock comparison footer, and with *preanalysis*, a
    ``HIPTNT+ (pre)`` row followed by a refinement/speedup footer)."""
    results = run_fig10(timeout=timeout, categories=categories,
                        programs=programs, jobs=jobs, store=store,
                        backend=backend, preanalysis=preanalysis)
    header = f"{'Tool':<16}"
    for c in categories:
        header += f"| {c:^26} "
    header += f"| {'Total':^26}"
    sub = f"{'':<16}"
    for _ in (*categories, "total"):
        sub += f"| {'Y':>4} {'N':>4} {'U':>4} {'T/O':>4} {'Time':>6} "
    lines = [header, sub, "-" * len(sub)]
    for tool, per_cat in results.items():
        row = f"{tool:<16}"
        total: List[BenchOutcome] = []
        for c in categories:
            outcomes = per_cat[c]
            total.extend(outcomes)
            t = tally(outcomes)
            row += (
                f"| {t['Y']:>4} {t['N']:>4} {t['U']:>4} {t['T/O']:>4} "
                f"{t['time']:>6.1f} "
            )
        t = tally(total)
        row += (
            f"| {t['Y']:>4} {t['N']:>4} {t['U']:>4} {t['T/O']:>4} "
            f"{t['time']:>6.1f}"
        )
        lines.append(row)
        solver_line = _solver_summary(total)
        if solver_line:
            lines.append(solver_line)
    if preanalysis:
        ref = [o for c in categories for o in results["HIPTNT+"][c]]
        pre = [o for c in categories for o in results[HIP_PRE][c]]
        lines.append(_preanalysis_comparison(ref, pre))
    if backend:
        ref = [o for c in categories for o in results["HIPTNT+"][c]]
        alt = [
            o
            for c in categories
            for o in results[hip_backend_label(backend)][c]
        ]
        lines.append(_backend_comparison(ref, alt, backend))
    return "\n".join(lines)


def _backend_comparison(
    ref: List[BenchOutcome], alt: List[BenchOutcome], backend: str
) -> str:
    """Footer comparing a backend sweep against the reference sweep.

    Verdicts are checked **program by program** (both sweeps run the
    corpus in the same order), and the wall-clock ratio is reported as
    the measured speedup -- or parity, when the corpus is too small for
    the difference to mean anything.
    """
    diffs = [
        r.program
        for r, a in zip(ref, alt)
        if r.program == a.program and r.verdict is not a.verdict
    ]
    rt = sum(o.seconds for o in ref if not o.timed_out)
    at = sum(o.seconds for o in alt if not o.timed_out)
    if diffs:
        shown = ", ".join(diffs[:5]) + (", ..." if len(diffs) > 5 else "")
        parity = f"verdicts DIFFER from reference on {len(diffs)}: {shown}"
    else:
        parity = f"verdicts identical to reference on all {len(alt)} programs"
    ratio = rt / at if at > 0 else float("inf")
    return (
        f"  ↳ backend {backend}: {parity}; "
        f"time {at:.1f}s vs reference {rt:.1f}s ({ratio:.2f}x)"
    )


def _preanalysis_comparison(
    ref: List[BenchOutcome], pre: List[BenchOutcome]
) -> str:
    """Footer comparing the pre-analysis sweep against the plain sweep.

    Program-by-program (both sweeps run the corpus in the same order):
    a *conflict* -- both rows definite, different answers -- means a
    soundness bug and is shouted; a *refinement* -- the plain row said
    U (or timed out) and the pre-analysis row commits to a definite
    answer -- is the designed effect of quick verdicts and seeded
    contracts; the reverse (a definite answer weakened to U) is a
    precision loss worth seeing.  The wall-clock ratio is the measured
    cost/win of running the extra layer.
    """
    def definite(o: BenchOutcome) -> bool:
        return o.verdict is not None and str(o.verdict) in ("Y", "N")

    conflicts, refined, weakened, agree = [], 0, 0, 0
    for r, p in zip(ref, pre):
        if r.program != p.program:
            continue
        if r.verdict is p.verdict:
            agree += 1
        elif definite(r) and definite(p):
            conflicts.append(r.program)
        elif definite(p):
            refined += 1
        elif definite(r):
            weakened += 1
        else:
            agree += 1  # U vs timeout: indefinite either way
    rt = sum(o.seconds for o in ref if not o.timed_out)
    pt = sum(o.seconds for o in pre if not o.timed_out)
    stats = tally_solver_stats(pre)
    if conflicts:
        shown = ", ".join(conflicts[:5]) + (
            ", ..." if len(conflicts) > 5 else ""
        )
        parity = f"{len(conflicts)} verdict CONFLICTS: {shown}"
    else:
        parity = f"no conflicts on {len(pre)} programs"
        extras = []
        if refined:
            extras.append(f"{refined} refined to definite")
        if weakened:
            extras.append(f"{weakened} weakened to U")
        if extras:
            parity += f" ({', '.join(extras)})"
    ratio = rt / pt if pt > 0 else float("inf")
    return (
        f"  ↳ preanalysis: {stats['pre_quick']} quick verdicts, "
        f"{stats['pre_seeded']} seeded contracts; {parity}; "
        f"time {pt:.1f}s vs plain {rt:.1f}s ({ratio:.2f}x)"
    )


def _solver_summary(outcomes: List[BenchOutcome]) -> str:
    """One line of aggregated solver-cache statistics, or '' when no run
    reported any (only HipTNT+ sets ``last_stats``; the baselines also do
    arithmetic, but through the default context, and report nothing)."""
    s = tally_solver_stats(outcomes)
    if not s["runs_reporting"]:
        return ""
    line = (
        f"  \u21b3 solver: {s['queries']} queries, "
        f"{100.0 * s['hit_rate']:.1f}% cache hits, "
        f"{s['evictions']} evictions, "
        f"{s['fm_eliminations']} FM eliminations"
    )
    if s["store_hits"] or s["store_misses"] or s["store_invalidations"]:
        line += (
            f"; store: {s['store_hits']} hits / {s['store_misses']} misses"
            f" / {s['store_invalidations']} invalidations"
        )
    if s["pre_quick"] or s["pre_seeded"]:
        line += (
            f"; pre: {s['pre_quick']} quick / {s['pre_seeded']} seeded"
        )
    return line


def run_st(
    timeout: float = 60.0,
    jobs: int = 1,
    store: Optional[str] = None,
) -> List[BenchOutcome]:
    """HIPTNT+ outcomes over the ST controller corpus, in corpus order.

    The programs come from ``examples/st_controllers/`` and are parsed
    through the ``st`` frontend (``BenchProgram.language``); the sweep
    itself is the plain HIPTNT+ configuration of the fig tables.
    """
    pairs = [
        (_HipWrapper("HIPTNT+", store=store).bind(bench.main), bench)
        for bench in st_programs()
    ]
    return run_tools_sharded(pairs, timeout=timeout, jobs=jobs)


def st_table(
    timeout: float = 60.0,
    jobs: int = 1,
    store: Optional[str] = None,
) -> str:
    """The labeled ST controller corpus as a per-program table.

    Unlike the aggregated fig tables this is a ground-truth check, one
    row per controller: expected vs inferred verdict and an ``ok``
    column, with a match-count footer (``matched k/n``).  Used by the
    frontend smoke CI job; callers can grep the footer for
    ``all verdicts match``.
    """
    corpus = st_programs()
    outcomes = run_st(timeout=timeout, jobs=jobs, store=store)
    lines = [
        f"{'Program':<16}{'Entry':<12}{'Expected':>9}{'Got':>5}{'Time':>8}  ok",
        "-" * 56,
    ]
    matched = 0
    for bench, outcome in zip(corpus, outcomes):
        got = "T/O" if outcome.timed_out else str(outcome.verdict)
        ok = got == str(bench.expected)
        matched += ok
        lines.append(
            f"{bench.name:<16}{bench.main:<12}{str(bench.expected):>9}"
            f"{got:>5}{outcome.seconds:>8.2f}  {'yes' if ok else 'NO'}"
        )
    verdict = (
        "all verdicts match ground truth"
        if matched == len(corpus)
        else "VERDICT MISMATCH against ground truth"
    )
    lines.append(
        f"  ↳ st-controllers: matched {matched}/{len(corpus)}; {verdict}"
    )
    return "\n".join(lines)


def run_fig11(
    timeout: float = 60.0,
    programs: Optional[List[BenchProgram]] = None,
    jobs: int = 1,
    store: Optional[str] = None,
    backend: Optional[str] = None,
    preanalysis: bool = False,
) -> Dict[str, List[BenchOutcome]]:
    """Fig. 11 outcomes: loop-based integer programs, T2-like vs HIPTNT+.

    With a *store* directory a ``HIPTNT+ (warm)`` sweep is appended after
    the cold one; with a *backend* name a ``HIPTNT+ [<backend>]`` sweep
    and with ``preanalysis=True`` a ``HIPTNT+ (pre)`` sweep run
    alongside the cold one, exactly as in :func:`run_fig10`.
    """
    corpus = programs if programs is not None else all_programs()
    loop_programs = [
        p
        for p in corpus
        if p.loop_based and p.category in ("crafted", "crafted-lit", "numeric")
    ]
    backend_row = [hip_backend_label(backend)] if backend else []
    pre_row = [HIP_PRE] if preanalysis else []
    tool_names = (
        ["T2-like", "HIPTNT+"] + pre_row + backend_row
        + ([HIP_WARM] if store else [])
    )
    results: Dict[str, List[BenchOutcome]] = {n: [] for n in tool_names}

    def sweep(names: Sequence[str]) -> None:
        pairs = []
        keys: List[str] = []
        for bench in loop_programs:
            for name in names:
                pairs.append(
                    (_make_tool(name, bench.main, store, backend), bench)
                )
                keys.append(name)
        outcomes = run_tools_sharded(pairs, timeout=timeout, jobs=jobs)
        for name, outcome in zip(keys, outcomes):
            results[name].append(outcome)

    sweep(["T2-like", "HIPTNT+"] + pre_row + backend_row)
    if store:
        sweep([HIP_WARM])
    return results


def fig11_table(
    timeout: float = 60.0,
    programs: Optional[List[BenchProgram]] = None,
    jobs: int = 1,
    store: Optional[str] = None,
    backend: Optional[str] = None,
    preanalysis: bool = False,
) -> str:
    """The Fig. 11 table as formatted text (plus, with *store*, a
    ``HIPTNT+ (warm)`` row, with *backend*, a ``HIPTNT+ [<backend>]``
    row followed by a verdict parity / wall-clock comparison footer,
    and with *preanalysis*, a ``HIPTNT+ (pre)`` row followed by a
    refinement/speedup footer)."""
    results = run_fig11(timeout=timeout, programs=programs, jobs=jobs,
                        store=store, backend=backend,
                        preanalysis=preanalysis)
    lines = [
        f"{'Tool':<16}{'Total':>6}{'Y':>5}{'N':>5}{'U':>5}{'T/O':>5}{'Time':>8}"
    ]
    for tool, outcomes in results.items():
        t = tally(outcomes)
        lines.append(
            f"{tool:<16}{len(outcomes):>6}{t['Y']:>5}{t['N']:>5}"
            f"{t['U']:>5}{t['T/O']:>5}{t['time']:>8.1f}"
        )
        solver_line = _solver_summary(outcomes)
        if solver_line:
            lines.append(solver_line)
    if preanalysis:
        lines.append(
            _preanalysis_comparison(results["HIPTNT+"], results[HIP_PRE])
        )
    if backend:
        lines.append(
            _backend_comparison(
                results["HIPTNT+"],
                results[hip_backend_label(backend)],
                backend,
            )
        )
    return "\n".join(lines)
