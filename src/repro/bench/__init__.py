"""Benchmark infrastructure reproducing the paper's evaluation.

* :mod:`repro.bench.programs` -- the benchmark corpus: four categories
  mirroring the SV-COMP'15 termination suites used in paper Fig. 10
  (``crafted``, ``crafted-lit``, ``numeric``, ``memory-alloca``), each
  program with its ground-truth verdict;
* :mod:`repro.bench.runner` -- timeout-bounded execution of an analyzer on
  a program, outcome classification (Y/N/U/T-O) and soundness accounting
  against the ground truth;
* :mod:`repro.bench.reporting` -- Fig. 10- and Fig. 11-shaped tables.

Run ``python -m repro.bench fig10`` / ``fig11`` for the standalone
harness; the ``benchmarks/`` pytest suite wraps the same entry points.
"""

from repro.bench.programs import BenchProgram, CATEGORIES, all_programs
from repro.bench.runner import run_tool, BenchOutcome
from repro.bench.reporting import fig10_table, fig11_table

__all__ = [
    "BenchProgram",
    "CATEGORIES",
    "all_programs",
    "run_tool",
    "BenchOutcome",
    "fig10_table",
    "fig11_table",
]
