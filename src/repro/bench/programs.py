"""The benchmark corpus: four categories mirroring SV-COMP'15 termination.

Each :class:`BenchProgram` carries its ground-truth verdict (``Y`` -- the
entry method terminates for all inputs; ``N`` -- some input diverges),
used by the harness to account soundness exactly as the paper did when it
re-verified every returned specification.

The corpus is a scaled-down analogue of the paper's 338 programs (see
DESIGN.md's substitution table): the ``crafted`` category stresses
conditional termination, ``crafted-lit`` collects classic literature
examples (Ackermann, McCarthy 91, gcd, 3x+1-style phase programs, mutual
recursion), ``numeric`` holds arithmetic loop programs and
``memory-alloca`` holds heap/list programs abstracted via
:mod:`repro.seplog`.
"""

from __future__ import annotations

import pathlib as _pathlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.arith.formula import TRUE, atom_ge, atom_ne
from repro.arith.terms import var
from repro.core.pipeline import Verdict
from repro.lang import parse_program
from repro.lang.ast import Program
from repro.seplog.heap import HeapSpec, PredInst, SymHeap

#: Categories of the paper's fig10/fig11 tables.  The ST controller
#: corpus lives in :data:`ST_CATEGORY`, deliberately outside this tuple
#: so the fig tables reproduce the paper unchanged.
CATEGORIES = ("crafted", "crafted-lit", "numeric", "memory-alloca")

#: Category of the IEC 61131-3 Structured Text example controllers
#: (``examples/st_controllers/``), surfaced via ``python -m repro.bench st``.
ST_CATEGORY = "st-controllers"


@dataclass
class BenchProgram:
    """One benchmark: source text, entry method and ground truth."""

    name: str
    category: str
    source: str
    main: str
    expected: Verdict
    loop_based: bool = False
    builder: Optional[Callable[[], Program]] = None
    language: str = "native"

    def program(self) -> Program:
        if self.builder is not None:
            return self.builder()
        if self.language != "native":
            from repro.lang.frontends import get_frontend

            return get_frontend(self.language).parse(self.source)
        return parse_program(self.source)


_REGISTRY: List[BenchProgram] = []


def _add(name: str, category: str, source: str, main: str, expected: str,
         loop_based: bool = False,
         builder: Optional[Callable[[], Program]] = None,
         language: str = "native") -> None:
    _REGISTRY.append(
        BenchProgram(
            name=name,
            category=category,
            source=source,
            main=main,
            expected=Verdict(expected),
            loop_based=loop_based,
            builder=builder,
            language=language,
        )
    )


def all_programs(category: Optional[str] = None) -> List[BenchProgram]:
    if category is None:
        return list(_REGISTRY)
    return [p for p in _REGISTRY if p.category == category]


def by_name(name: str) -> BenchProgram:
    for p in _REGISTRY:
        if p.name == name:
            return p
    raise KeyError(name)


def st_programs() -> List[BenchProgram]:
    """The labeled IEC 61131-3 Structured Text controller corpus."""
    return all_programs(ST_CATEGORY)


# ---------------------------------------------------------------------------
# crafted -- conditional termination / non-termination
# ---------------------------------------------------------------------------

_add("foo-paper", "crafted", """
void foo(int x, int y)
{ if (x < 0) { return; } else { foo(x + y, y); return; } }
""", "foo", "N")

_add("up-drift", "crafted", """
void main(int x, int y) {
  while (x > 0) { x = x + y; }
}
""", "main", "N", loop_based=True)

_add("down-step", "crafted", """
void main(int x, int y) {
  while (x > 0) { x = x - y; }
}
""", "main", "N", loop_based=True)

_add("even-gap", "crafted", """
void main(int x) {
  while (x != 0) { x = x - 2; }
}
""", "main", "N", loop_based=True)

_add("plain-countdown", "crafted", """
void main(int x) {
  while (x > 0) { x = x - 1; }
}
""", "main", "Y", loop_based=True)

_add("skip-forever", "crafted", """
void main(int x) {
  while (x > 0) { x = x; }
}
""", "main", "N", loop_based=True)

_add("while-true", "crafted", """
void main(int x) {
  while (x >= x) { x = x + 1; }
}
""", "main", "N", loop_based=True)

_add("two-phase", "crafted", """
void main(int x, int y) {
  while (x >= 0) {
    if (y > 0) { x = x + 1; y = y - 1; }
    else { x = x - 1; }
  }
}
""", "main", "Y", loop_based=True)

_add("guarded-growth", "crafted", """
void main(int x, int n) {
  while (x < n) { x = x + 1; }
}
""", "main", "Y", loop_based=True)

_add("cond-rec-sum", "crafted", """
void f(int x, int d)
{ if (x <= 0) { return; } else { f(x + d, d); return; } }
""", "f", "N")

_add("widening-gap", "crafted", """
void main(int i, int j) {
  while (i < j) { i = i + 1; j = j - 1; }
}
""", "main", "Y", loop_based=True)

_add("stuck-parity", "crafted", """
void main(int x, int y) {
  while (x != y) { x = x + 2; y = y + 1; }
}
""", "main", "N", loop_based=True)

_add("nested-dep", "crafted", """
void main(int n, int m) {
  int i = 0;
  while (i < n) {
    int j = 0;
    while (j < m) { j = j + 1; }
    i = i + 1;
  }
}
""", "main", "Y", loop_based=True)

_add("neg-guard-drift", "crafted", """
void main(int x) {
  while (x < 0) { x = x - 1; }
}
""", "main", "N", loop_based=True)

# ---------------------------------------------------------------------------
# crafted-lit -- classic literature examples
# ---------------------------------------------------------------------------

_add("ackermann-spec", "crafted-lit", """
int Ack(int m, int n)
  requires true ensures res >= n + 1;
{
  if (m == 0) { return n + 1; }
  else { if (n == 0) { return Ack(m - 1, 1); }
         else { return Ack(m - 1, Ack(m, n - 1)); } }
}
""", "Ack", "N")  # diverges for m<0 or n<0 (paper Fig. 3 discussion)

_add("mccarthy91-spec", "crafted-lit", """
int Mc91(int n)
  requires true
  ensures n <= 100 && res == 91 || n > 100 && res == n - 10;
{
  if (n > 100) { return n - 10; }
  else { return Mc91(Mc91(n + 11)); }
}
""", "Mc91", "Y")

_add("gcd-sub", "crafted-lit", """
int gcd(int a, int b)
  requires a > 0 && b > 0 ensures res > 0;
{
  if (a == b) { return a; }
  else { if (a > b) { return gcd(a - b, b); }
         else { return gcd(a, b - a); } }
}
""", "gcd", "Y")  # the requires-clause restricts verdicts to a,b > 0

_add("fib-rec", "crafted-lit", """
int fib(int n)
{
  if (n <= 1) { return n; }
  else { return fib(n - 1) + fib(n - 2); }
}
""", "fib", "Y")

_add("sum-rec", "crafted-lit", """
int sum(int n)
{ if (n <= 0) { return 0; } else { return sum(n - 1) + n; } }
""", "sum", "Y")

_add("mult-loop", "crafted-lit", """
int mult(int a, int b) {
  int r = 0;
  int i = 0;
  if (b < 0) { b = 0 - b; }
  while (i < b) { r = r + a; i = i + 1; }
  return r;
}
""", "mult", "Y", loop_based=True)

_add("even-odd-mutual", "crafted-lit", """
int even(int n)
{ if (n == 0) { return 1; } else { return odd(n - 1); } }
int odd(int n)
{ if (n == 0) { return 0; } else { return even(n - 1); } }
""", "even", "N")  # diverges for n < 0

_add("even-odd-guarded", "crafted-lit", """
int even(int n)
  requires n >= 0 ensures true;
{ if (n == 0) { return 1; } else { return odd(n - 1); } }
int odd(int n)
  requires n >= 0 ensures true;
{ if (n == 0) { return 0; } else { return even(n - 1); } }
""", "even", "Y")

_add("loop-lit-terminator1", "crafted-lit", """
void main(int x, int y) {
  while (x > 0 && y > 0) {
    if (nondet() > 0) { x = x - 1; }
    else { y = y - 1; }
  }
}
""", "main", "Y", loop_based=True)

_add("loop-lit-cook", "crafted-lit", """
void main(int x, int y, int n) {
  while (x < n) { x = x + y; }
}
""", "main", "N", loop_based=True)

_add("countup-bounded", "crafted-lit", """
void main(int i, int n) {
  while (i < n) { i = i + 2; }
}
""", "main", "Y", loop_based=True)

_add("trex-ex1", "crafted-lit", """
void main(int x) {
  while (x > 0) {
    if (nondet() > 0) { x = x - 1; }
    else { x = x - 2; }
  }
}
""", "main", "Y", loop_based=True)

_add("nonterm-simple-lit", "crafted-lit", """
void main(int x) {
  while (x > 0) { x = x + 1; }
}
""", "main", "N", loop_based=True)

_add("alternating-drift", "crafted-lit", """
void f(int x)
{ if (x <= 0) { return; } else { f(x - 1); return; } }
void g(int x)
{ if (x <= 0) { return; } else { g(x + 1); return; } }
void main(int a) { f(a); g(a); }
""", "main", "N")

_add("three-way-phase", "crafted-lit", """
void main(int a, int b, int c) {
  while (a > 0 && b > 0 && c > 0) {
    if (nondet() > 0) { a = a - 1; }
    else { if (nondet() > 0) { b = b - 1; } else { c = c - 1; } }
  }
}
""", "main", "Y", loop_based=True)

_add("mc91-no-spec", "crafted-lit", """
int Mc91(int n)
{
  if (n > 100) { return n - 10; }
  else { return Mc91(Mc91(n + 11)); }
}
""", "Mc91", "Y")

_add("double-call-chain", "crafted-lit", """
void h(int n)
{ if (n <= 0) { return; } else { h(n - 1); h(n - 2); return; } }
""", "h", "Y")

_add("sum-down-up", "crafted-lit", """
int f(int n)
  requires true ensures res >= 0;
{ if (n <= 0) { return 0; } else { return f(n - 1) + 1; } }
""", "f", "Y")

_add("lcm-style", "crafted-lit", """
void main(int a, int b) {
  int x = a;
  int y = b;
  while (x != y && x > 0 && y > 0) {
    if (x < y) { x = x + a; } else { y = y + b; }
  }
}
""", "main", "N", loop_based=True)

_add("simple-phase-flag", "crafted-lit", """
void main(int x, int up) {
  while (x >= 0 && x <= 100) {
    if (up > 0) { x = x + 1; } else { x = x - 1; }
  }
}
""", "main", "Y", loop_based=True)

# ---------------------------------------------------------------------------
# numeric -- arithmetic loop programs
# ---------------------------------------------------------------------------

_add("div-by-sub", "numeric", """
int div(int a, int b)
  requires a >= 0 && b > 0 ensures res >= 0;
{
  int q = 0;
  int r = a;
  while (r >= b) { r = r - b; q = q + 1; }
  return q;
}
""", "div", "Y", loop_based=True)

_add("mod-by-sub", "numeric", """
int mod(int a, int b)
  requires a >= 0 && b > 0 ensures res >= 0;
{
  int r = a;
  while (r >= b) { r = r - b; }
  return r;
}
""", "mod", "Y", loop_based=True)

_add("sqrt-count", "numeric", """
int isqrt(int n)
  requires n >= 0 ensures res >= 0;
{
  int r = 0;
  int sq = 1;
  while (sq <= n) { r = r + 1; sq = sq + 2 * r + 1; }
  return r;
}
""", "isqrt", "Y", loop_based=True)

_add("lex-two-counters", "numeric", """
void main(int x, int y) {
  while (x > 0) {
    if (y > 0) { y = y - 1; }
    else { x = x - 1; y = x; }
  }
}
""", "main", "Y", loop_based=True)

_add("triple-nest", "numeric", """
void main(int n) {
  int i = 0;
  while (i < n) {
    int j = i;
    while (j < n) {
      int k = j;
      while (k < n) { k = k + 1; }
      j = j + 1;
    }
    i = i + 1;
  }
}
""", "main", "Y", loop_based=True)

_add("sum-to-zero", "numeric", """
void main(int x, int y) {
  while (x + y > 0) {
    if (x > y) { x = x - 1; } else { y = y - 1; }
  }
}
""", "main", "Y", loop_based=True)

_add("diff-chase", "numeric", """
void main(int x, int y) {
  while (x > y) { x = x - 1; y = y + 1; }
}
""", "main", "Y", loop_based=True)

_add("race-counters", "numeric", """
void main(int x, int y) {
  while (x > y) { x = x + 1; y = y + 2; }
}
""", "main", "Y", loop_based=True)

_add("reverse-race", "numeric", """
void main(int x, int y) {
  while (x > y) { x = x + 2; y = y + 1; }
}
""", "main", "N", loop_based=True)

_add("bounded-wander", "numeric", """
void main(int x, int step) {
  while (x > 0 && x < 1000) { x = x + step; }
}
""", "main", "N", loop_based=True)

_add("collatz-ish-down", "numeric", """
void main(int n) {
  while (n > 1) {
    if (nondet() > 0) { n = n - 1; } else { n = n - 2; }
  }
}
""", "main", "Y", loop_based=True)

_add("zeno-gap", "numeric", """
void main(int a, int b) {
  while (a < b) { a = a + 1; b = b - 1; }
}
""", "main", "Y", loop_based=True)

_add("pulse", "numeric", """
void main(int x, int n) {
  while (0 < x && x < n) {
    x = x + x;
  }
}
""", "main", "Y", loop_based=True)

_add("negative-drain", "numeric", """
void main(int x) {
  while (x != 0) {
    if (x > 0) { x = x - 1; } else { x = x + 1; }
  }
}
""", "main", "Y", loop_based=True)

_add("offset-trap", "numeric", """
void main(int x) {
  while (x != 0) {
    if (x > 0) { x = x - 2; } else { x = x + 2; }
  }
}
""", "main", "N", loop_based=True)

# ---------------------------------------------------------------------------
# memory-alloca -- heap / list programs (built with attached heap specs)
# ---------------------------------------------------------------------------

_HEAP_PRELUDE = "data node { node next; }\n"


def _heap_builder(source: str, specs: Dict[str, List[HeapSpec]]) -> Callable[[], Program]:
    def build() -> Program:
        program = parse_program(source)
        for name, spec_list in specs.items():
            program.methods[name].heap_specs = list(spec_list)
        return program

    return build


def _lseg_null_spec(root: str = "x", size: str = "n",
                    nonempty: bool = False,
                    post: Optional[SymHeap] = None) -> HeapSpec:
    pure = atom_ge(var(size), 1 if nonempty else 0)
    pre = SymHeap(
        chunks=(PredInst("lseg", (root, "null"), var(size)),), pure=pure
    )
    return HeapSpec(pre=pre, post=post or SymHeap(), size_params=(size,))


def _ll_spec(root: str = "x", size: str = "n") -> HeapSpec:
    pre = SymHeap(
        chunks=(PredInst("ll", (root,), var(size)),),
        pure=atom_ge(var(size), 0),
    )
    return HeapSpec(pre=pre, post=SymHeap(), size_params=(size,))


def _cll_spec(root: str = "x", size: str = "n") -> HeapSpec:
    pre = SymHeap(
        chunks=(PredInst("cll", (root,), var(size)),),
        pure=atom_ge(var(size), 1),
    )
    return HeapSpec(pre=pre, post=SymHeap(), size_params=(size,))


_APPEND_SRC = _HEAP_PRELUDE + """
void append(node x, node y)
{
  if (x.next == null) { x.next = y; return; }
  else { append(x.next, y); return; }
}
"""

_add("append-lseg", "memory-alloca", _APPEND_SRC, "append__h0", "Y",
     builder=_heap_builder(
         _APPEND_SRC,
         {"append": [_lseg_null_spec(nonempty=True)]},
     ))

_add("append-cll", "memory-alloca", _APPEND_SRC, "append__h0", "N",
     builder=_heap_builder(
         _APPEND_SRC,
         {"append": [_cll_spec()]},
     ))

_TRAVERSE_SRC = _HEAP_PRELUDE + """
void traverse(node x)
{
  if (x == null) { return; }
  else { traverse(x.next); return; }
}
"""

_add("list-traverse", "memory-alloca", _TRAVERSE_SRC, "traverse__h0", "Y",
     builder=_heap_builder(_TRAVERSE_SRC, {"traverse": [_ll_spec()]}))

_CLL_CHASE_SRC = _HEAP_PRELUDE + """
void chase(node x)
{
  if (x == null) { return; }
  else { chase(x.next); return; }
}
"""


def _cll_chase_builder() -> Program:
    program = parse_program(_CLL_CHASE_SRC)
    pre = SymHeap(
        chunks=(PredInst("cll", ("x",), var("n")),),
        pure=atom_ge(var("n"), 1),
    )
    program.methods["chase"].heap_specs = [
        HeapSpec(pre=pre, post=SymHeap(), size_params=("n",))
    ]
    return program


_add("cll-chase", "memory-alloca", _CLL_CHASE_SRC, "chase__h0", "N",
     builder=_cll_chase_builder)

_LENGTH_SRC = _HEAP_PRELUDE + """
void length(node x, int acc)
{
  if (x == null) { return; }
  else { length(x.next, acc + 1); return; }
}
"""

_add("list-length", "memory-alloca", _LENGTH_SRC, "length__h0", "Y",
     builder=_heap_builder(_LENGTH_SRC, {"length": [_ll_spec()]}))

_DROP_SRC = _HEAP_PRELUDE + """
void drop(node x, int k)
{
  if (x == null) { return; }
  else {
    if (k <= 0) { return; }
    else { drop(x.next, k - 1); return; }
  }
}
"""

_add("list-drop", "memory-alloca", _DROP_SRC, "drop__h0", "Y",
     builder=_heap_builder(_DROP_SRC, {"drop": [_ll_spec()]}))

# Allocation-flavoured numeric programs (SV-COMP memory-alloca style:
# malloc a structure of size n, then iterate over it).  The allocation
# itself is modelled by its size, per the numeric abstraction.

_add("alloca-fill", "memory-alloca", """
void main(int n) {
  int i = 0;
  while (i < n) { i = i + 1; }
}
""", "main", "Y", loop_based=True)

_add("alloca-scan-back", "memory-alloca", """
void main(int n) {
  int i = n;
  while (i > 0) { i = i - 1; }
}
""", "main", "Y", loop_based=True)

_add("alloca-bad-bound", "memory-alloca", """
void main(int n) {
  int i = 0;
  while (i != n) { i = i + 1; }
}
""", "main", "N", loop_based=True)

_add("alloca-two-cursor", "memory-alloca", """
void main(int n) {
  int lo = 0;
  int hi = n;
  while (lo < hi) { lo = lo + 1; hi = hi - 1; }
}
""", "main", "Y", loop_based=True)

# ---------------------------------------------------------------------------
# st-controllers -- IEC 61131-3 Structured Text scan-cycle controllers
# (examples/st_controllers/*.st, analyzed through the 'st' frontend; see
# docs/frontends.md).  Deliberately NOT in CATEGORIES: the fig10/fig11
# paper tables stay exactly as published, and this corpus gets its own
# `python -m repro.bench st` table instead.
# ---------------------------------------------------------------------------

_ST_DIR = _pathlib.Path(__file__).resolve().parents[3] / "examples" / "st_controllers"

#: filename -> (entry method, expected verdict) ground truth.
ST_CONTROLLERS = (
    ("ramp_up.st", "RampUp", "Y"),
    ("bounded_retry.st", "Retry", "Y"),
    ("watchdog_stuck.st", "Watchdog", "N"),
    ("for_scan.st", "ScanMax", "Y"),
    ("settle_wait.st", "SettleWait", "N"),
)

for _fname, _main, _expected in ST_CONTROLLERS:
    _path = _ST_DIR / _fname
    if _path.exists():  # editable checkouts only; wheels may omit examples
        _add(_fname[: -len(".st")], ST_CATEGORY, _path.read_text(),
             _main, _expected, loop_based=True, language="st")
