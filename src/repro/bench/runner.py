"""Timeout-bounded analyzer execution and outcome accounting.

Mirrors the paper's experimental protocol: each (tool, program) run gets a
wall-clock budget (the paper used 300 s; the default here is smaller since
the corpus is smaller), outcomes are classified Y / N / U / T-O, and every
definite answer is checked against the program's ground truth -- the
analogue of the paper re-verifying all inferred specifications ("our tool
does not have any false positive nor negative").
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import signal
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from repro.arith.context import SolverStats
from repro.core.pipeline import Verdict, infer_program
from repro.bench.programs import BenchProgram


class AnalysisTimeout(Exception):
    """Raised inside a run when the wall-clock budget expires."""


@dataclass
class BenchOutcome:
    """One (tool, program) result."""

    program: str
    tool: str
    verdict: Optional[Verdict]  # None means timeout
    seconds: float
    sound: bool  # definite answers must match the ground truth
    solver_stats: Optional[Dict[str, int]] = None  # per-run solver counters

    @property
    def timed_out(self) -> bool:
        return self.verdict is None


class Analyzer(Protocol):
    name: str

    def analyze(self, program) -> Optional[Verdict]:  # pragma: no cover
        ...


class HipTNTPlus:
    """The paper's tool: the full inference pipeline of this package.

    The per-group solver budget is kept below the harness timeout so the
    tool degrades to conditional/U answers instead of timing out --
    matching the paper's zero-timeout column for HIPTNT+.

    After each ``analyze`` call, ``last_stats`` holds the run's aggregated
    :class:`~repro.arith.context.SolverStats`; ``run_tool`` copies it into
    the :class:`BenchOutcome` so tallies and tables can report solver
    cache behaviour alongside verdicts.

    *store* (a directory path; kept as a path so the analyzer stays
    picklable for sharded execution) enables the persistent spec store:
    warm runs replay cached SCC summaries and report ``store_hits`` in
    their stats instead of redoing inference -- see ``docs/store.md``.
    The store deliberately survives the per-run cold-start protocol:
    cold start erases *process* history (memo caches, fresh-name
    counters), while the store carries *cross-run* results keyed so they
    are independent of process history.

    *backend* (a decision-procedure backend name, see
    :mod:`repro.arith.backends`; also kept as a plain string for
    picklability) selects the cube engine under every solver context of
    the run; ``None`` is the reference engine.  When set, the tool's
    display name gains a ``[backend]`` suffix so per-backend table rows
    are distinguishable.

    *preanalysis* enables the dataflow pre-analysis layer
    (:mod:`repro.analysis`): quick verdicts skip easy SCCs, interval
    facts seed loop-method contracts, and ranking hints narrow the
    Farkas search.  The tool's display name gains a ``(pre)`` suffix and
    per-run stats report ``pre_quick`` / ``pre_seeded`` counters.
    """

    def __init__(
        self,
        main: str,
        time_budget: float = 15.0,
        store: Optional[str] = None,
        backend: Optional[str] = None,
        preanalysis: bool = False,
    ):
        self.main = main
        self.time_budget = time_budget
        self.store = store
        self.backend = backend
        self.preanalysis = preanalysis
        name = "HIPTNT+" if backend is None else f"HIPTNT+ [{backend}]"
        self.name = f"{name} (pre)" if preanalysis else name
        self.last_stats: Optional[SolverStats] = None

    def analyze(self, program) -> Verdict:
        self.last_stats = None  # a timed-out run must not inherit old stats
        result = infer_program(
            program, time_budget=self.time_budget, store=self.store,
            backend=self.backend, preanalysis=self.preanalysis,
        )
        self.last_stats = result.solver_stats
        return result.verdict(self.main)


def _cold_start() -> None:
    """Reset run-scoped process state so a run's behaviour and statistics
    depend only on the program analyzed, never on process history.

    Three pieces make a run history-dependent: the module-level memo
    caches (warm entries skip work), cyclic garbage keeping dead formulas
    in the weak intern tables (canonical conjunct order is interning
    order, so a stale survivor steers DNF cube enumeration differently),
    and the monotone fresh-name counters (variable names feed hash-ordered
    sets in the FM elimination-order heuristic).  Resetting all three
    makes a run inside a long-lived sequential sweep identical -- same
    verdict, same solver statistics -- to the same run in a freshly forked
    shard worker, which is what makes ``jobs=N`` tables reproducible.

    The persistent spec store (:mod:`repro.store`) is deliberately *not*
    touched here: it lives on disk, keyed by structural fingerprints that
    are independent of process history (the counter resets above are in
    fact what keeps fingerprints of generated names reproducible), so a
    warm run replays exactly what a cold run would have computed.
    """
    import gc

    from repro.arith.formula import reset_fresh_names
    from repro.arith.solver import clear_caches
    from repro.lang.to_arith import reset_fresh
    from repro.seplog.heap import reset_fresh_ptrs

    clear_caches()
    gc.collect()
    reset_fresh_names()
    reset_fresh()
    reset_fresh_ptrs()


#: Retry period for the interval timer: if an alarm lands while the
#: interpreter is inside a C-invoked callback (a GC callback, a weakref
#: finalizer), the raised exception is swallowed as "unraisable" -- the
#: repeating interval re-fires until a raise sticks in normal bytecode.
_REARM_INTERVAL = 0.05


def run_with_timeout(fn, seconds: float):
    """Run *fn* under a wall-clock budget; raises :class:`AnalysisTimeout`
    on expiry.

    On the main thread this uses a SIGALRM interval timer; nesting is
    supported (a previously armed ``ITIMER_REAL`` is saved and re-armed
    with its remaining budget afterwards), and the inner budget never
    outlives an enclosing one.  Off the main thread -- where Python
    forbids ``signal.signal`` with a ``ValueError``, and which is exactly
    where analysis-daemon worker threads run (:mod:`repro.serve`) -- the
    call routes to a daemon-thread watchdog instead: on expiry the worker
    is abandoned (best effort; it cannot be interrupted and may keep
    computing until the process exits).  The routing is belt-and-braces:
    besides the thread check, a ``ValueError`` out of the signal
    machinery itself (environments where the main-thread test is not the
    whole story, e.g. non-main interpreters) also falls back to the
    watchdog, so no caller ever sees the signal layer's refusal."""
    if threading.current_thread() is not threading.main_thread():
        return _with_timeout_watchdog(fn, seconds)
    # Capability probe: re-installing the current handler is a no-op but
    # raises the same ValueError signal.signal would raise inside the
    # SIGALRM path.  Probing first (instead of catching around the real
    # call) guarantees *fn* can never be started twice.  A None handler
    # (installed by non-Python code) cannot be re-installed; skip the
    # probe and trust the main-thread check above.
    probe = signal.getsignal(signal.SIGALRM)
    if probe is not None:
        try:
            signal.signal(signal.SIGALRM, probe)
        except ValueError:
            return _with_timeout_watchdog(fn, seconds)
    return _with_timeout_sigalrm(fn, seconds)


#: Historical private alias (the public name is :func:`run_with_timeout`).
_with_timeout = run_with_timeout


def _with_timeout_sigalrm(fn, seconds: float):
    # ``fired`` records that the budget expired even when the raised
    # AnalysisTimeout gets swallowed inside *fn* (e.g. by a ``finally`` /
    # broad ``except`` during solver cleanup): the flag is re-checked after
    # fn returns, so a truncated run can never be reported as successful.
    # ``armed`` gates the raise so that a late re-armed alarm landing in
    # the teardown below cannot skip restoring the previous handler/timer.
    state = {"armed": True, "fired": False}

    def handler(signum, frame):
        state["fired"] = True
        if state["armed"]:
            raise AnalysisTimeout()

    old_handler = signal.signal(signal.SIGALRM, handler)
    prev_delay, prev_interval = signal.getitimer(signal.ITIMER_REAL)
    start = time.monotonic()
    # Never outlive an enclosing budget that expires sooner than ours.
    budget = seconds if prev_delay == 0 else min(seconds, prev_delay)
    signal.setitimer(signal.ITIMER_REAL, budget, _REARM_INTERVAL)
    try:
        result = fn()
    except AnalysisTimeout:
        raise
    except BaseException:
        if state["fired"]:
            # The budget expired, the injected raise was swallowed, and a
            # secondary error escaped from the half-torn-down state: the
            # run is a timeout, not an analyzer failure.
            raise AnalysisTimeout() from None
        raise
    finally:
        state["armed"] = False
        # Teardown runs whether fn returned or raised; the nested finally
        # guarantees the handler is restored even if disarming the timer
        # itself fails.
        try:
            signal.setitimer(signal.ITIMER_REAL, 0)
        finally:
            signal.signal(signal.SIGALRM, old_handler)
            if prev_delay > 0:
                # Restore the outer timer with whatever budget it has
                # left; if it expired while we ran, let it fire (almost)
                # immediately.
                remaining = prev_delay - (time.monotonic() - start)
                signal.setitimer(
                    signal.ITIMER_REAL, max(remaining, 1e-6), prev_interval
                )
    if state["fired"]:
        # The budget expired while fn ran but the in-flight raise was
        # swallowed before reaching us: the outcome is a timeout, not a
        # success built from a half-finished analysis.
        raise AnalysisTimeout()
    return result


def _with_timeout_watchdog(fn, seconds: float):
    """Thread-based fallback: run *fn* in a daemon worker, abandon it on
    expiry.  The worker's answer (or exception) is relayed when it beats
    the deadline.

    Caveat: an abandoned worker keeps computing until the process exits,
    so it can keep touching the process-global solver caches and FM
    counters; solver statistics of runs executed concurrently with an
    abandoned worker are best-effort."""
    outcome: List[object] = []
    failure: List[BaseException] = []

    def target() -> None:
        try:
            outcome.append(fn())
        except BaseException as exc:  # relayed to the caller below
            failure.append(exc)

    worker = threading.Thread(
        target=target, daemon=True, name="bench-watchdog-worker"
    )
    worker.start()
    worker.join(seconds)
    if worker.is_alive():
        raise AnalysisTimeout()
    if failure:
        raise failure[0]
    return outcome[0]


def run_tool(
    tool: Analyzer,
    bench: BenchProgram,
    timeout: float = 60.0,
    enforce_timeout: bool = True,
    on_start=None,
) -> BenchOutcome:
    """Run one analyzer on one benchmark program.

    Every run starts from the cold-start protocol (:func:`_cold_start`:
    module caches cleared, cyclic garbage collected, fresh-name counters
    reset, automatic gc held for the run): per-run solver statistics then
    depend only on the program analyzed, never on which runs happened
    earlier in the same process -- which is what makes sharded
    (``jobs > 1``) tables identical to sequential ones.  An analyzer
    configured with a persistent spec store is the one sanctioned
    exception: its on-disk entries survive cold start by design, so a
    repeat run reports ``store_hits`` instead of redoing inference.

    With ``enforce_timeout=False`` the analyzer runs without the in-process
    signal/watchdog machinery; the sharded runner uses this in worker
    processes, where the *parent* enforces the wall clock by
    ``join(timeout)`` + kill.
    """
    import gc

    program = bench.program()
    _cold_start()
    if on_start is not None:
        # The sharded runner's worker signals the parent here -- after
        # program build and cold start -- so the parent-enforced budget
        # clock starts exactly where the sequential clock below does.
        on_start()
    start = time.monotonic()
    verdict: Optional[Verdict]
    # Automatic (allocation-triggered) gc passes would purge dead-but-
    # still-interned formulas at process-history-dependent moments,
    # perturbing interning-order-based conjunct ordering mid-run; holding
    # collection for the run's duration keeps the analysis deterministic.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        if enforce_timeout:
            verdict = _with_timeout(lambda: tool.analyze(program), timeout)
        else:
            verdict = tool.analyze(program)
    except AnalysisTimeout:
        verdict = None
    except Exception:
        # analyzer bailed out (unsupported fragment, ...): unknown
        verdict = Verdict.UNKNOWN
    finally:
        if gc_was_enabled:
            gc.enable()
    elapsed = time.monotonic() - start
    sound = True
    if verdict is Verdict.TERMINATING:
        sound = bench.expected is Verdict.TERMINATING
    elif verdict is Verdict.NONTERMINATING:
        sound = bench.expected is Verdict.NONTERMINATING
    stats = getattr(tool, "last_stats", None)
    return BenchOutcome(
        program=bench.name,
        tool=tool.name,
        verdict=verdict,
        seconds=elapsed,
        sound=sound,
        solver_stats=stats.as_dict() if isinstance(stats, SolverStats) else None,
    )


# ---------------------------------------------------------------------------
# Sharded execution: whole benchmark programs farmed to worker processes
# ---------------------------------------------------------------------------


def _mp_context():
    """Start method for shard workers (shared with the SCC scheduler)."""
    from repro.core.scheduler import worker_mp_context

    return worker_mp_context()


def _bench_spec(bench: BenchProgram):
    """What the parent ships to a worker for *bench*.

    A plain program pickles as-is; heap programs carry builder closures,
    which do not pickle, so they travel as registry names and the worker
    rebuilds them from :func:`repro.bench.programs.by_name`."""
    if bench.builder is None:
        return bench
    from repro.bench.programs import by_name

    try:
        registered = by_name(bench.name)
    except KeyError:
        registered = None
    if registered is not bench:
        raise ValueError(
            f"benchmark {bench.name!r} has a builder but is not in the "
            "registry; sharded execution cannot ship it to a worker"
        )
    return bench.name


#: First message a shard worker sends, right before analysis begins: the
#: parent starts the wall-clock budget from its arrival, so process spawn
#: and import overhead do not eat into the run's budget (keeping
#: borderline runs on the same side of the deadline as a sequential run).
_SHARD_STARTED = "__shard_started__"

#: Extra wall-clock (seconds, on top of the budget, measured from spawn)
#: granted to a worker that never even reported _SHARD_STARTED before the
#: parent declares it wedged and kills it.
_SPAWN_GRACE = 60.0


def _shard_worker(tool: Analyzer, bench_spec, conn) -> None:
    """Worker body: run one (tool, program) pair and pipe the outcome back.

    No in-child timeout machinery: the parent enforces the wall clock by
    ``join(timeout)`` + kill, so a worker stuck inside solver cleanup is
    simply terminated instead of juggling signals."""
    try:
        if isinstance(bench_spec, BenchProgram):
            bench = bench_spec
        else:
            from repro.bench.programs import by_name

            bench = by_name(bench_spec)
        conn.send(
            run_tool(
                tool, bench, enforce_timeout=False,
                on_start=lambda: conn.send(_SHARD_STARTED),
            )
        )
    except BaseException as exc:  # relayed to and re-raised by the parent
        try:
            conn.send(exc)
        except Exception:
            pass
    finally:
        conn.close()


def run_tools_sharded(
    pairs: Sequence[Tuple[Analyzer, BenchProgram]],
    timeout: float = 60.0,
    jobs: int = 1,
) -> List[BenchOutcome]:
    """Run (tool, program) pairs, farming them to *jobs* worker processes.

    Results come back in **task order** regardless of completion order, so
    tables built on top are deterministic.  ``jobs=1`` is the exact
    sequential path (in-process, signal-based timeouts); with ``jobs > 1``
    each pair runs in its own forked worker and the parent enforces the
    wall-clock budget: a worker still alive past its deadline is
    terminated (then killed) and recorded as a timeout, without disturbing
    the other shards.
    """
    from repro.core.scheduler import resolve_jobs

    pairs = list(pairs)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(pairs) <= 1:
        return [
            run_tool(tool, bench, timeout=timeout) for tool, bench in pairs
        ]
    ctx = _mp_context()
    results: List[Optional[BenchOutcome]] = [None] * len(pairs)
    next_task = 0
    running: Dict[object, _Shard] = {}  # keyed by process sentinel
    try:
        while next_task < len(pairs) or running:
            while next_task < len(pairs) and len(running) < jobs:
                tool, bench = pairs[next_task]
                recv, send = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_shard_worker,
                    args=(tool, _bench_spec(bench), send),
                    daemon=True,
                )
                proc.start()
                send.close()  # the worker owns the sending end now
                running[proc.sentinel] = _Shard(
                    proc, next_task, recv, time.monotonic()
                )
                next_task += 1
            now = time.monotonic()
            soonest = min(s.deadline(timeout) for s in running.values())
            # Wake on worker exit (sentinel) or any pipe message (the
            # started signal that starts a shard's budget clock).  A recv
            # whose payload already arrived is excluded: its pending EOF
            # would make wait() return immediately forever, busy-spinning
            # until the worker exits.
            waitables = list(running) + [
                s.recv for s in running.values()
                if s.payload is None and not s.dead and not s.recv.closed
            ]
            multiprocessing.connection.wait(
                waitables, timeout=max(0.0, soonest - now)
            )
            now = time.monotonic()
            for sentinel in list(running):
                shard = running[sentinel]
                shard.drain(now)
                tool, bench = pairs[shard.index]
                if not shard.proc.is_alive():
                    shard.drain(now)  # result sent between drain and exit
                    shard.proc.join()
                    shard.close()
                    del running[sentinel]
                    payload = shard.payload
                    if isinstance(payload, BaseException):
                        raise payload
                    if payload is None:
                        # the worker died without reporting (hard crash):
                        # account it like an in-process analyzer bail-out
                        payload = BenchOutcome(
                            program=bench.name, tool=tool.name,
                            verdict=Verdict.UNKNOWN,
                            seconds=shard.elapsed(now), sound=True,
                        )
                    results[shard.index] = payload
                elif now >= shard.deadline(timeout):
                    shard.proc.terminate()
                    shard.proc.join(5.0)
                    if shard.proc.is_alive():  # pragma: no cover - stubborn
                        shard.proc.kill()
                        shard.proc.join()
                    shard.close()
                    del running[sentinel]
                    if isinstance(shard.payload, BaseException):
                        # a real worker error that arrived right at the
                        # deadline is still an error, not a timeout
                        raise shard.payload
                    if isinstance(shard.payload, BenchOutcome):
                        # the outcome arrived but the worker hung on exit:
                        # keep the real result, only the process was culled
                        results[shard.index] = shard.payload
                    else:
                        results[shard.index] = BenchOutcome(
                            program=bench.name, tool=tool.name, verdict=None,
                            seconds=shard.elapsed(now), sound=True,
                        )
    finally:
        for shard in running.values():
            shard.proc.kill()
            shard.proc.join()
            shard.close()
    return results


class _Shard:
    """Parent-side bookkeeping for one in-flight shard worker."""

    __slots__ = (
        "proc", "index", "recv", "spawned", "started", "payload", "dead",
    )

    def __init__(self, proc, index: int, recv, spawned: float):
        self.proc = proc
        self.index = index
        self.recv = recv
        self.spawned = spawned
        self.started: Optional[float] = None  # _SHARD_STARTED arrival
        self.payload = None  # BenchOutcome or relayed exception
        self.dead = False  # pipe hit EOF without a payload

    def drain(self, now: float) -> None:
        """Consume whatever the worker has piped so far."""
        try:
            while self.payload is None and not self.dead \
                    and not self.recv.closed and self.recv.poll(0):
                msg = self.recv.recv()
                if msg == _SHARD_STARTED:
                    self.started = now
                else:
                    self.payload = msg
        except (EOFError, OSError):
            # The sender closed without delivering a payload (crash, or
            # its exception failed to pickle).  Mark the pipe dead so the
            # wait loop stops selecting on its permanently-ready EOF.
            self.dead = True

    def deadline(self, timeout: float) -> float:
        """Kill-after time: budget runs from the started signal; a worker
        that never signalled gets spawn + budget + grace before it is
        declared wedged."""
        if self.started is not None:
            return self.started + timeout
        return self.spawned + timeout + _SPAWN_GRACE

    def elapsed(self, now: float) -> float:
        return now - (self.started if self.started is not None else self.spawned)

    def close(self) -> None:
        try:
            self.recv.close()
        except OSError:  # pragma: no cover
            pass


def tally(outcomes: List[BenchOutcome]) -> Dict[str, object]:
    """Aggregate Y/N/U/T-O counts and total time (excluding timeouts),
    exactly the columns of paper Fig. 10, plus aggregated solver-cache
    statistics under ``"solver"`` for the runs that report them."""
    y = sum(1 for o in outcomes if o.verdict is Verdict.TERMINATING)
    n = sum(1 for o in outcomes if o.verdict is Verdict.NONTERMINATING)
    u = sum(1 for o in outcomes if o.verdict is Verdict.UNKNOWN)
    to = sum(1 for o in outcomes if o.timed_out)
    t = sum(o.seconds for o in outcomes if not o.timed_out)
    unsound = sum(1 for o in outcomes if not o.sound)
    return {
        "Y": y, "N": n, "U": u, "T/O": to, "time": t, "unsound": unsound,
        "solver": tally_solver_stats(outcomes),
    }


def tally_solver_stats(outcomes: List[BenchOutcome]) -> Dict[str, object]:
    """Sum the per-run solver counters of *outcomes* (queries, cache hits,
    evictions, raw FM eliminations, spec-store hits/misses/invalidations,
    pre-analysis quick verdicts and seeded contracts) and derive the
    overall hit rate."""
    agg = {
        "queries": 0, "hits": 0, "evictions": 0, "fm_eliminations": 0,
        "store_hits": 0, "store_misses": 0, "store_invalidations": 0,
        "pre_quick": 0, "pre_seeded": 0,
    }
    reported = 0
    for o in outcomes:
        if not o.solver_stats:
            continue
        reported += 1
        for key in agg:
            agg[key] += o.solver_stats.get(key, 0)
    agg["runs_reporting"] = reported
    agg["hit_rate"] = agg["hits"] / agg["queries"] if agg["queries"] else 0.0
    return agg
