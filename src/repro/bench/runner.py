"""Timeout-bounded analyzer execution and outcome accounting.

Mirrors the paper's experimental protocol: each (tool, program) run gets a
wall-clock budget (the paper used 300 s; the default here is smaller since
the corpus is smaller), outcomes are classified Y / N / U / T-O, and every
definite answer is checked against the program's ground truth -- the
analogue of the paper re-verifying all inferred specifications ("our tool
does not have any false positive nor negative").
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol

from repro.arith.context import SolverStats
from repro.core.pipeline import Verdict, infer_program
from repro.bench.programs import BenchProgram


class AnalysisTimeout(Exception):
    """Raised inside a run when the wall-clock budget expires."""


@dataclass
class BenchOutcome:
    """One (tool, program) result."""

    program: str
    tool: str
    verdict: Optional[Verdict]  # None means timeout
    seconds: float
    sound: bool  # definite answers must match the ground truth
    solver_stats: Optional[Dict[str, int]] = None  # per-run solver counters

    @property
    def timed_out(self) -> bool:
        return self.verdict is None


class Analyzer(Protocol):
    name: str

    def analyze(self, program) -> Optional[Verdict]:  # pragma: no cover
        ...


class HipTNTPlus:
    """The paper's tool: the full inference pipeline of this package.

    The per-group solver budget is kept below the harness timeout so the
    tool degrades to conditional/U answers instead of timing out --
    matching the paper's zero-timeout column for HIPTNT+.

    After each ``analyze`` call, ``last_stats`` holds the run's aggregated
    :class:`~repro.arith.context.SolverStats`; ``run_tool`` copies it into
    the :class:`BenchOutcome` so tallies and tables can report solver
    cache behaviour alongside verdicts.
    """

    name = "HIPTNT+"

    def __init__(self, main: str, time_budget: float = 15.0):
        self.main = main
        self.time_budget = time_budget
        self.last_stats: Optional[SolverStats] = None

    def analyze(self, program) -> Verdict:
        self.last_stats = None  # a timed-out run must not inherit old stats
        result = infer_program(program, time_budget=self.time_budget)
        self.last_stats = result.solver_stats
        return result.verdict(self.main)


#: Retry period for the interval timer: if an alarm lands while the
#: interpreter is inside a C-invoked callback (a GC callback, a weakref
#: finalizer), the raised exception is swallowed as "unraisable" -- the
#: repeating interval re-fires until a raise sticks in normal bytecode.
_REARM_INTERVAL = 0.05


def _with_timeout(fn, seconds: float):
    """Run *fn* under a wall-clock budget.

    On the main thread this uses a SIGALRM interval timer; nesting is
    supported (a previously armed ``ITIMER_REAL`` is saved and re-armed
    with its remaining budget afterwards), and the inner budget never
    outlives an enclosing one.  Off the main thread -- where Python
    forbids ``signal.signal`` -- a daemon-thread watchdog is used instead:
    on expiry the worker is abandoned (best effort; it cannot be
    interrupted and may keep computing until the process exits).
    """
    if threading.current_thread() is not threading.main_thread():
        return _with_timeout_watchdog(fn, seconds)
    return _with_timeout_sigalrm(fn, seconds)


def _with_timeout_sigalrm(fn, seconds: float):
    def handler(signum, frame):
        raise AnalysisTimeout()

    old_handler = signal.signal(signal.SIGALRM, handler)
    prev_delay, prev_interval = signal.getitimer(signal.ITIMER_REAL)
    start = time.monotonic()
    # Never outlive an enclosing budget that expires sooner than ours.
    budget = seconds if prev_delay == 0 else min(seconds, prev_delay)
    signal.setitimer(signal.ITIMER_REAL, budget, _REARM_INTERVAL)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old_handler)
        if prev_delay > 0:
            # Restore the outer timer with whatever budget it has left; if
            # it expired while we ran, let it fire (almost) immediately.
            remaining = prev_delay - (time.monotonic() - start)
            signal.setitimer(
                signal.ITIMER_REAL, max(remaining, 1e-6), prev_interval
            )


def _with_timeout_watchdog(fn, seconds: float):
    """Thread-based fallback: run *fn* in a daemon worker, abandon it on
    expiry.  The worker's answer (or exception) is relayed when it beats
    the deadline.

    Caveat: an abandoned worker keeps computing until the process exits,
    so it can keep touching the process-global solver caches and FM
    counters; solver statistics of runs executed concurrently with an
    abandoned worker are best-effort."""
    outcome: List[object] = []
    failure: List[BaseException] = []

    def target() -> None:
        try:
            outcome.append(fn())
        except BaseException as exc:  # relayed to the caller below
            failure.append(exc)

    worker = threading.Thread(
        target=target, daemon=True, name="bench-watchdog-worker"
    )
    worker.start()
    worker.join(seconds)
    if worker.is_alive():
        raise AnalysisTimeout()
    if failure:
        raise failure[0]
    return outcome[0]


def run_tool(
    tool: Analyzer,
    bench: BenchProgram,
    timeout: float = 60.0,
) -> BenchOutcome:
    """Run one analyzer on one benchmark program."""
    program = bench.program()
    start = time.monotonic()
    verdict: Optional[Verdict]
    try:
        verdict = _with_timeout(lambda: tool.analyze(program), timeout)
    except AnalysisTimeout:
        verdict = None
    except Exception:
        # analyzer bailed out (unsupported fragment, ...): unknown
        verdict = Verdict.UNKNOWN
    elapsed = time.monotonic() - start
    sound = True
    if verdict is Verdict.TERMINATING:
        sound = bench.expected is Verdict.TERMINATING
    elif verdict is Verdict.NONTERMINATING:
        sound = bench.expected is Verdict.NONTERMINATING
    stats = getattr(tool, "last_stats", None)
    return BenchOutcome(
        program=bench.name,
        tool=tool.name,
        verdict=verdict,
        seconds=elapsed,
        sound=sound,
        solver_stats=stats.as_dict() if isinstance(stats, SolverStats) else None,
    )


def tally(outcomes: List[BenchOutcome]) -> Dict[str, object]:
    """Aggregate Y/N/U/T-O counts and total time (excluding timeouts),
    exactly the columns of paper Fig. 10, plus aggregated solver-cache
    statistics under ``"solver"`` for the runs that report them."""
    y = sum(1 for o in outcomes if o.verdict is Verdict.TERMINATING)
    n = sum(1 for o in outcomes if o.verdict is Verdict.NONTERMINATING)
    u = sum(1 for o in outcomes if o.verdict is Verdict.UNKNOWN)
    to = sum(1 for o in outcomes if o.timed_out)
    t = sum(o.seconds for o in outcomes if not o.timed_out)
    unsound = sum(1 for o in outcomes if not o.sound)
    return {
        "Y": y, "N": n, "U": u, "T/O": to, "time": t, "unsound": unsound,
        "solver": tally_solver_stats(outcomes),
    }


def tally_solver_stats(outcomes: List[BenchOutcome]) -> Dict[str, object]:
    """Sum the per-run solver counters of *outcomes* (queries, cache hits,
    evictions, raw FM eliminations) and derive the overall hit rate."""
    agg = {"queries": 0, "hits": 0, "evictions": 0, "fm_eliminations": 0}
    reported = 0
    for o in outcomes:
        if not o.solver_stats:
            continue
        reported += 1
        for key in agg:
            agg[key] += o.solver_stats.get(key, 0)
    agg["runs_reporting"] = reported
    agg["hit_rate"] = agg["hits"] / agg["queries"] if agg["queries"] else 0.0
    return agg
