"""Timeout-bounded analyzer execution and outcome accounting.

Mirrors the paper's experimental protocol: each (tool, program) run gets a
wall-clock budget (the paper used 300 s; the default here is smaller since
the corpus is smaller), outcomes are classified Y / N / U / T-O, and every
definite answer is checked against the program's ground truth -- the
analogue of the paper re-verifying all inferred specifications ("our tool
does not have any false positive nor negative").
"""

from __future__ import annotations

import signal
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol

from repro.core.pipeline import Verdict, classify, infer_program
from repro.bench.programs import BenchProgram


class AnalysisTimeout(Exception):
    """Raised inside a run when the wall-clock budget expires."""


@dataclass
class BenchOutcome:
    """One (tool, program) result."""

    program: str
    tool: str
    verdict: Optional[Verdict]  # None means timeout
    seconds: float
    sound: bool  # definite answers must match the ground truth

    @property
    def timed_out(self) -> bool:
        return self.verdict is None


class Analyzer(Protocol):
    name: str

    def analyze(self, program) -> Optional[Verdict]:  # pragma: no cover
        ...


class HipTNTPlus:
    """The paper's tool: the full inference pipeline of this package.

    The per-group solver budget is kept below the harness timeout so the
    tool degrades to conditional/U answers instead of timing out --
    matching the paper's zero-timeout column for HIPTNT+.
    """

    name = "HIPTNT+"

    def __init__(self, main: str, time_budget: float = 15.0):
        self.main = main
        self.time_budget = time_budget

    def analyze(self, program) -> Verdict:
        result = infer_program(program, time_budget=self.time_budget)
        return classify(result.specs[self.main])


def _with_timeout(fn, seconds: float):
    """Run *fn* under a SIGALRM-based wall-clock budget (POSIX only)."""

    def handler(signum, frame):
        raise AnalysisTimeout()

    old = signal.signal(signal.SIGALRM, handler)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old)


def run_tool(
    tool: Analyzer,
    bench: BenchProgram,
    timeout: float = 60.0,
) -> BenchOutcome:
    """Run one analyzer on one benchmark program."""
    program = bench.program()
    start = time.monotonic()
    verdict: Optional[Verdict]
    try:
        verdict = _with_timeout(lambda: tool.analyze(program), timeout)
    except AnalysisTimeout:
        verdict = None
    except Exception:
        # analyzer bailed out (unsupported fragment, ...): unknown
        verdict = Verdict.UNKNOWN
    elapsed = time.monotonic() - start
    sound = True
    if verdict is Verdict.TERMINATING:
        sound = bench.expected is Verdict.TERMINATING
    elif verdict is Verdict.NONTERMINATING:
        sound = bench.expected is Verdict.NONTERMINATING
    return BenchOutcome(
        program=bench.name,
        tool=tool.name,
        verdict=verdict,
        seconds=elapsed,
        sound=sound,
    )


def tally(outcomes: List[BenchOutcome]) -> Dict[str, object]:
    """Aggregate Y/N/U/T-O counts and total time (excluding timeouts),
    exactly the columns of paper Fig. 10."""
    y = sum(1 for o in outcomes if o.verdict is Verdict.TERMINATING)
    n = sum(1 for o in outcomes if o.verdict is Verdict.NONTERMINATING)
    u = sum(1 for o in outcomes if o.verdict is Verdict.UNKNOWN)
    to = sum(1 for o in outcomes if o.timed_out)
    t = sum(o.seconds for o in outcomes if not o.timed_out)
    unsound = sum(1 for o in outcomes if not o.sound)
    return {"Y": y, "N": n, "U": u, "T/O": to, "time": t, "unsound": unsound}
