"""Differential self-check for the pre-analysis (``--check-preanalysis``).

The quick verdicts, contract seeding and pruning of
:mod:`repro.analysis.prefacts` are *claimed* sound; this module makes
the claim empirically checkable, following the repo's differential
pattern for solver backends (``backend="differential"``): run the full
inference twice -- with and without pre-analysis -- and compare every
source method's Y/N/U verdict.  Any difference raises
:class:`PreAnalysisDivergence` carrying both verdicts and a greedily
minimized program reproducer, so a soundness bug becomes a small failing
test case instead of a silently wrong benchmark row.

Deliberately *not* routed through the bench harness's ``run_tool`` --
that wrapper converts exceptions into UNKNOWN rows, which would swallow
exactly the signal this check exists to surface.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lang.ast import Program
from repro.lang.pretty import pretty_program


class PreAnalysisDivergence(Exception):
    """Pre-analysis and full pipeline disagree on a method's verdict."""

    def __init__(
        self,
        method: str,
        with_pre: str,
        without_pre: str,
        reproducer: str,
        program_name: Optional[str] = None,
    ):
        self.method = method
        self.with_pre = with_pre
        self.without_pre = without_pre
        self.reproducer = reproducer
        self.program_name = program_name
        where = f" in benchmark {program_name!r}" if program_name else ""
        super().__init__(
            f"pre-analysis verdict divergence{where}: method {method!r} "
            f"is {with_pre} with pre-analysis but {without_pre} without.\n"
            f"Minimized reproducer:\n{reproducer}"
        )


def _source_method_names(program: Program) -> List[str]:
    return [
        name
        for name, m in program.methods.items()
        if m.body is not None and not m.source_loop
    ]


def _verdicts(
    program: Program, preanalysis: bool, kwargs: dict
) -> Optional[Dict[str, str]]:
    """Per-source-method verdict strings for one pipeline configuration.

    ``None`` signals resource exhaustion (a DNF explosion inside the
    solver): the configuration produced no verdicts at all.  Such runs
    are *incomparable*, not divergent -- the same pre-existing blowup
    fires with or without pre-analysis on the affected programs, and a
    run that happens to dodge it (e.g. a quick verdict skipping the
    exploding SCC) has nothing on the other side to compare against.
    """
    from repro.core.pipeline import infer_program  # local: avoid cycle

    try:
        result = infer_program(program, preanalysis=preanalysis, **kwargs)
    except MemoryError:
        return None
    names = set(_source_method_names(program))
    return {
        name: str(result.verdict(name))
        for name in result.specs
        if name in names
    }


def _compare(program: Program, kwargs: dict):
    """Differential comparison of one program under both configurations.

    Returns ``(conflicts, refinements)`` -- or ``None`` when at least one
    side exhausted resources (incomparable).  A *conflict* is a method
    where both configurations commit to a definite verdict and they
    disagree (``Y`` vs ``N``): one of them is wrong, always a bug.  A
    *refinement* is a method where exactly one side answers ``U``:
    expected by design (seeded invariants and quick certificates prove
    loops the linear-template search cannot), so it is not a divergence
    per se -- but :func:`check_corpus` still validates definite
    pre-analysis refinements against benchmark ground truth.
    """
    with_pre = _verdicts(program, True, kwargs)
    without = _verdicts(program, False, kwargs)
    if with_pre is None or without is None:
        return None
    conflicts = []
    refinements = []
    for name in sorted(set(with_pre) & set(without)):
        a, b = with_pre[name], without[name]
        if a == b:
            continue
        if "U" in (a, b):
            refinements.append((name, a, b))
        else:
            conflicts.append((name, a, b))
    return conflicts, refinements


def _still_diverges(program: Program, method: str, kwargs: dict) -> bool:
    try:
        found = _compare(program, kwargs)
    except Exception:
        # Dropping a method can make the candidate invalid (unknown
        # callee) -- that candidate does not reproduce the divergence.
        return False
    if found is None:
        return False
    conflicts, _refinements = found
    return any(name == method for name, _, _ in conflicts)


def _minimize(program: Program, method: str, kwargs: dict) -> Program:
    """Greedily drop methods while the divergence on *method* persists."""
    current = program
    changed = True
    while changed:
        changed = False
        for name in list(current.methods):
            if name == method or len(current.methods) == 1:
                continue
            candidate = Program(
                data_decls=dict(current.data_decls),
                methods={
                    n: m for n, m in current.methods.items() if n != name
                },
            )
            if _still_diverges(candidate, method, kwargs):
                current = candidate
                changed = True
    return current


def checked_infer(
    program: Program,
    max_iter: int = 8,
    desugared: bool = False,
    time_budget: float = 30.0,
    solver_ctx=None,
    jobs: int = 1,
    store=None,
    backend: Optional[str] = None,
    validate: bool = True,
    program_name: Optional[str] = None,
    language: str = "native",
):
    """Infer with pre-analysis, cross-checked against the plain pipeline.

    Raises :class:`PreAnalysisDivergence` (with a minimized reproducer)
    when the two configurations commit to *conflicting definite*
    verdicts (``Y`` vs ``N``) for any source method; otherwise returns
    the pre-analysis :class:`~repro.core.pipeline.InferenceResult`.
    ``U``-vs-definite refinements are by design (see :func:`_compare`)
    and pass here; :func:`check_corpus` additionally holds them against
    benchmark ground truth.  Parameters mirror
    :func:`repro.core.pipeline.infer_program`.
    """
    from repro.core.pipeline import infer_program  # local: avoid cycle

    kwargs = dict(
        max_iter=max_iter, desugared=desugared, time_budget=time_budget,
        solver_ctx=solver_ctx, jobs=jobs, store=store, backend=backend,
        validate=validate, language=language,
    )
    found = _compare(program, kwargs)
    if found is not None and found[0]:
        method, with_pre, without = found[0][0]
        minimized = _minimize(program, method, kwargs)
        raise PreAnalysisDivergence(
            method, with_pre, without, pretty_program(minimized),
            program_name=program_name,
        )
    return infer_program(program, preanalysis=True, **kwargs)


def check_corpus(
    programs=None,
    category: Optional[str] = None,
    max_iter: int = 8,
    time_budget: float = 10.0,
    jobs: int = 1,
    raise_on_divergence: bool = False,
) -> List[PreAnalysisDivergence]:
    """Run the differential check over the benchmark corpus.

    *programs* defaults to every registered
    :class:`repro.bench.programs.BenchProgram` (optionally filtered by
    *category*).  Two kinds of finding count as a divergence:

    * a *conflict* -- both configurations definite, different answers;
    * a definite pre-analysis verdict on the benchmark's entry method
      where the plain pipeline said ``U`` and the definite answer
      contradicts the benchmark's recorded ground truth (a refinement
      is only acceptable when it refines towards the *right* answer).

    Returns the list of divergences found -- empty means the
    pre-analysis agreed with (or soundly refined) the full pipeline
    everywhere.  With ``raise_on_divergence`` the first divergence
    propagates instead.  Programs on which either configuration
    exhausts solver resources (a pre-existing DNF blowup the bench
    harness reports as UNKNOWN) are incomparable and skipped.
    """
    if programs is None:
        from repro.bench.programs import all_programs  # local: avoid cycle

        programs = all_programs(category)
    divergences: List[PreAnalysisDivergence] = []

    def report(exc: PreAnalysisDivergence) -> None:
        if raise_on_divergence:
            raise exc
        divergences.append(exc)

    for bench in programs:
        program = bench.program()
        kwargs = dict(
            max_iter=max_iter, desugared=False, time_budget=time_budget,
            solver_ctx=None, jobs=jobs, store=None, backend=None,
            validate=True,
        )
        found = _compare(program, kwargs)
        if found is None:
            continue
        conflicts, refinements = found
        if conflicts:
            method, with_pre, without = conflicts[0]
            minimized = _minimize(program, method, kwargs)
            report(PreAnalysisDivergence(
                method, with_pre, without, pretty_program(minimized),
                program_name=bench.name,
            ))
            continue
        for method, with_pre, without in refinements:
            if method != bench.main or with_pre == "U":
                continue
            if with_pre != str(bench.expected):
                report(PreAnalysisDivergence(
                    method, with_pre,
                    f"{without} (ground truth {bench.expected})",
                    pretty_program(program),
                    program_name=bench.name,
                ))
    return divergences
