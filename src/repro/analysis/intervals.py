"""The integer interval domain ``[lo, hi]`` with ``None`` as infinity.

The classic lattice for constant/range reasoning: join is hull, meet is
intersection (possibly empty -- represented as ``None`` at the *state*
level, this module's :func:`meet` returns ``None`` for the empty
interval), and :func:`widen` jumps unstable bounds to infinity so loop
fixpoints converge in finitely many steps.  All arithmetic is exact
``int`` -- no floats, no overflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

Bound = Optional[int]  # None encodes the missing (infinite) bound


@dataclass(frozen=True)
class Interval:
    """``lo <= v <= hi`` with ``None`` for an absent bound.

    Invariant: when both bounds are present, ``lo <= hi`` (the empty
    interval is never constructed; operations that could produce it
    return ``None`` instead).
    """

    lo: Bound = None
    hi: Bound = None

    def __post_init__(self) -> None:
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    def is_const(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def contains(self, k: int) -> bool:
        if self.lo is not None and k < self.lo:
            return False
        if self.hi is not None and k > self.hi:
            return False
        return True

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


TOP = Interval(None, None)


def const(k: int) -> Interval:
    return Interval(k, k)


def at_least(k: int) -> Interval:
    return Interval(k, None)


def at_most(k: int) -> Interval:
    return Interval(None, k)


# -- lattice ----------------------------------------------------------------


def join(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.lo is None else min(a.lo, b.lo)
    hi = None if a.hi is None or b.hi is None else max(a.hi, b.hi)
    return Interval(lo, hi)


def meet(a: Interval, b: Interval) -> Optional[Interval]:
    """Intersection; ``None`` when empty (caller marks the state bottom)."""
    lo = a.lo if b.lo is None else (b.lo if a.lo is None else max(a.lo, b.lo))
    hi = a.hi if b.hi is None else (b.hi if a.hi is None else min(a.hi, b.hi))
    if lo is not None and hi is not None and lo > hi:
        return None
    return Interval(lo, hi)


def widen(old: Interval, new: Interval) -> Interval:
    """Standard interval widening: any bound *new* moved past *old* jumps
    to infinity.  Guarantees loop-head fixpoints stabilise (each variable
    can only widen twice)."""
    lo = old.lo
    if old.lo is not None and (new.lo is None or new.lo < old.lo):
        lo = None
    hi = old.hi
    if old.hi is not None and (new.hi is None or new.hi > old.hi):
        hi = None
    return Interval(lo, hi)


def leq(a: Interval, b: Interval) -> bool:
    """``a`` included in ``b`` (the lattice order)."""
    if b.lo is not None and (a.lo is None or a.lo < b.lo):
        return False
    if b.hi is not None and (a.hi is None or a.hi > b.hi):
        return False
    return True


# -- arithmetic -------------------------------------------------------------


def _add_bound(a: Bound, b: Bound) -> Bound:
    return None if a is None or b is None else a + b


def add(a: Interval, b: Interval) -> Interval:
    return Interval(_add_bound(a.lo, b.lo), _add_bound(a.hi, b.hi))


def negate(a: Interval) -> Interval:
    lo = None if a.hi is None else -a.hi
    hi = None if a.lo is None else -a.lo
    return Interval(lo, hi)


def sub(a: Interval, b: Interval) -> Interval:
    return add(a, negate(b))


def scale(a: Interval, k: int) -> Interval:
    if k == 0:
        return const(0)
    if k < 0:
        return scale(negate(a), -k)
    lo = None if a.lo is None else a.lo * k
    hi = None if a.hi is None else a.hi * k
    return Interval(lo, hi)


def mul(a: Interval, b: Interval) -> Interval:
    """Product; exact when either side is a constant, conservative hull
    of the corner products otherwise (infinite corners give TOP unless
    the other side is exactly zero)."""
    if a.is_const():
        return scale(b, a.lo)  # type: ignore[arg-type]
    if b.is_const():
        return scale(a, b.lo)  # type: ignore[arg-type]
    if a.lo is None or a.hi is None or b.lo is None or b.hi is None:
        return TOP
    corners = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
    return Interval(min(corners), max(corners))


def split_lt(a: Interval, k: int) -> Optional[Interval]:
    """``a`` restricted to ``v <= k - 1`` (i.e. ``v < k``)."""
    return meet(a, at_most(k - 1))


def split_ge(a: Interval, k: int) -> Optional[Interval]:
    """``a`` restricted to ``v >= k``."""
    return meet(a, at_least(k))


def hull(*items: Interval) -> Interval:
    out = items[0]
    for it in items[1:]:
        out = join(out, it)
    return out


def as_tuple(a: Interval) -> Tuple[Bound, Bound]:
    return (a.lo, a.hi)
