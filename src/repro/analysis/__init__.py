"""Dataflow pre-analysis and program lint layer.

Everything here runs *before* the TNT pipeline proper and serves three
purposes (see ``docs/analysis.md``):

* :mod:`~repro.analysis.validate` -- an AST well-formedness validator
  producing structured, position-carrying :class:`Diagnostic` records
  (undefined variables, unknown callees, arity mismatches, duplicate
  declarations, unreachable statements) instead of internal errors deep
  in the core.
* :mod:`~repro.analysis.absint` /
  :mod:`~repro.analysis.intervals` /
  :mod:`~repro.analysis.loopinfo` -- an intraprocedural abstract
  interpreter over a constant/interval domain (widening at loop heads)
  plus per-loop modification and liveness facts.
* :mod:`~repro.analysis.prefacts` / :mod:`~repro.analysis.quick` --
  the :class:`PreFacts` object threaded through
  :func:`repro.core.pipeline.infer_program` (``preanalysis=True``):
  interval facts seed loop-method contracts, modification sets narrow
  the Farkas ranking search, and quick verdicts short-circuit SCC
  analysis entirely.
* :mod:`~repro.analysis.check` -- the differential harness behind
  ``--check-preanalysis``: every pre-analysis answer is recomputed by
  the full pipeline and any verdict divergence raises with a minimized
  program reproducer.
"""

from repro.analysis.diagnostics import (  # noqa: F401
    Diagnostic,
    ProgramInvalid,
    Severity,
)
from repro.analysis.intervals import Interval, TOP  # noqa: F401
from repro.analysis.absint import MethodFacts, analyze_method  # noqa: F401
from repro.analysis.loopinfo import LoopFacts, loop_facts  # noqa: F401
from repro.analysis.validate import (  # noqa: F401
    validate_program,
    validate_source,
)
from repro.analysis.prefacts import PreFacts, pre_analyze  # noqa: F401
from repro.analysis.check import (  # noqa: F401
    PreAnalysisDivergence,
    check_corpus,
    checked_infer,
)
