"""Quick termination/nontermination verdicts for simple loops.

Two sound, syntactically-gated certificates let the pipeline skip the
full unknown-predicate / Farkas machinery for the easy loops that
dominate real corpora:

``term`` -- *terminating by constant bound*: some guard conjunct
``L < R`` (or ``<=``, or the flipped ``>`` forms) supplies the measure
``m = R - L``, which is bounded below while the loop runs (the conjunct
holds) and which a straight-line delta analysis proves decreases by at
least 1 per iteration.  ``assume`` statements are permitted in the body:
a violated assume halts execution -- termination -- and a passed one
changes nothing.  Calls, heap access, nested loops and ``return`` all
bail out.

``stuck`` -- *definitely nonterminating*: the guard is pure, the body
writes none of the guard's variables and contains no call, heap access,
``assume`` or ``return``.  Once the guard holds it holds forever, and
nothing inside can halt execution, so the loop diverges (a nested inner
loop either diverges itself or falls through -- nontermination either
way).

Soundness of the delta analysis leans on the loop-head interval
invariant for bounding occurrences of *old* variable values; those exact
interval facts are conjoined into the loop method's ``requires`` by
:mod:`repro.analysis.prefacts` (seeding), so the produced spec's
precondition really implies the bounds the certificate used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis import intervals as iv
from repro.analysis.intervals import Interval
from repro.arith.context import SolverContext
from repro.arith.formula import TRUE, Formula, conj, neg
from repro.arith.terms import LinExpr
from repro.core.predicates import LOOP, TERM, Term, POST_FALSE, POST_TRUE
from repro.core.specs import CaseSpec, SpecCase
from repro.lang.ast import (
    Assign,
    Assume,
    Binary,
    Expr,
    FieldRead,
    FieldWrite,
    Havoc,
    If,
    Method,
    NewExpr,
    Return,
    Seq,
    Skip,
    Stmt,
    VarDecl,
    While,
    expr_vars,
    stmt_assigned_vars,
    stmt_calls,
)
from repro.lang.to_arith import PurityError, expr_to_formula, expr_to_linexpr, is_pure_bool


@dataclass(frozen=True)
class QuickVerdict:
    """A certificate computed by pre-analysis for one loop method."""

    kind: str                          # "term" | "stuck"
    measure: Optional[LinExpr] = None  # term: the decreasing bound
    cond: Optional[Formula] = None     # stuck: the guard as a formula


# ---------------------------------------------------------------------------
# Shared structural gates
# ---------------------------------------------------------------------------


def _expr_has_heap(e: Expr) -> bool:
    if isinstance(e, (FieldRead, NewExpr)):
        return True
    for attr in ("arg", "left", "right"):
        sub = getattr(e, attr, None)
        if isinstance(sub, Expr) and _expr_has_heap(sub):
            return True
    for a in getattr(e, "args", ()) or ():
        if isinstance(a, Expr) and _expr_has_heap(a):
            return True
    return False


def _scan(s: Stmt, *, allow_assume: bool, allow_while: bool) -> bool:
    """True when *s* fits the certificate fragment (no calls, heap,
    return; assume/nested-while per flags)."""
    if isinstance(s, Skip):
        return True
    if isinstance(s, Seq):
        return all(_scan(t, allow_assume=allow_assume, allow_while=allow_while) for t in s.stmts)
    if isinstance(s, VarDecl):
        return s.init is None or not _expr_has_heap(s.init)
    if isinstance(s, Assign):
        return not _expr_has_heap(s.value)
    if isinstance(s, Havoc):
        return True
    if isinstance(s, Assume):
        return allow_assume and not _expr_has_heap(s.cond)
    if isinstance(s, If):
        return (
            not _expr_has_heap(s.cond)
            and _scan(s.then, allow_assume=allow_assume, allow_while=allow_while)
            and _scan(s.els, allow_assume=allow_assume, allow_while=allow_while)
        )
    if isinstance(s, While):
        return (
            allow_while
            and not _expr_has_heap(s.cond)
            and _scan(s.body, allow_assume=allow_assume, allow_while=allow_while)
        )
    # CallStmt, FieldWrite, Return -- and anything unforeseen -- bail.
    return False


# ---------------------------------------------------------------------------
# Delta analysis (term certificate)
# ---------------------------------------------------------------------------


def _join_deltas(a: Dict[str, Interval], b: Dict[str, Interval]) -> Dict[str, Interval]:
    return {v: iv.join(a[v], b[v]) for v in a}


def _body_deltas(
    s: Stmt,
    delta: Dict[str, Interval],
    head_inv: Dict[str, Interval],
) -> Optional[Dict[str, Interval]]:
    """Per-variable change bounds ``current - at-loop-head``.

    ``delta`` maps every tracked (carried) variable to an interval
    bounding its drift since the head; ``None`` means bail out.  Old
    (head) values appearing in right-hand sides are bounded with the
    loop-head invariant -- the same facts :mod:`prefacts` seeds into the
    loop method's ``requires``.
    """
    if isinstance(s, (Skip, Assume)):
        return delta  # a violated assume halts: termination, no drift
    if isinstance(s, Seq):
        for t in s.stmts:
            delta = _body_deltas(t, delta, head_inv)
            if delta is None:
                return None
        return delta
    if isinstance(s, Havoc):
        out = dict(delta)
        for name in s.names:
            if name in out:
                out[name] = iv.TOP
        return out
    if isinstance(s, (VarDecl, Assign)):
        name = s.name
        value = s.init if isinstance(s, VarDecl) else s.value
        if name not in delta:
            return delta  # body-local: its drift never feeds a measure
        out = dict(delta)
        if value is None:
            out[name] = iv.TOP
            return out
        try:
            lin = expr_to_linexpr(value)
        except PurityError:
            out[name] = iv.TOP  # nondet / non-linear: unknown new value
            return out
        if any(v not in delta for v in lin.variables()) or any(
            c.denominator != 1 for c in lin.coeffs.values()
        ) or lin.constant.denominator != 1:
            out[name] = iv.TOP
            return out
        # new - old  =  sum_w (c_w - [w==name]) * head_w
        #             + sum_w c_w * delta_w  +  k
        # The sum must range over the assigned variable even when it has
        # no coefficient in the RHS (``c = 3``, ``c = a``): its head
        # value still enters through the ``- old`` side.
        drift = iv.const(int(lin.constant))
        for w in set(lin.coeffs) | {name}:
            c_int = int(lin.coeffs.get(w, 0))
            head_coeff = c_int - (1 if w == name else 0)
            if head_coeff != 0:
                drift = iv.add(drift, iv.scale(head_inv.get(w, iv.TOP), head_coeff))
            if c_int != 0:
                drift = iv.add(drift, iv.scale(delta[w], c_int))
        out[name] = drift
        return out
    if isinstance(s, If):
        a = _body_deltas(s.then, dict(delta), head_inv)
        b = _body_deltas(s.els, dict(delta), head_inv)
        if a is None or b is None:
            return None
        return _join_deltas(a, b)
    return None  # While, Return, CallStmt, FieldWrite: outside the fragment


def _conjuncts(e: Expr) -> List[Expr]:
    if isinstance(e, Binary) and e.op == "&&":
        return _conjuncts(e.left) + _conjuncts(e.right)
    return [e]


def term_certificate(
    cond: Expr,
    body: Stmt,
    head_inv: Dict[str, Interval],
    carried: List[str],
) -> Optional[LinExpr]:
    """A linear measure proving the loop terminates, or ``None``.

    The measure comes from a guard conjunct ``L < R`` / ``L <= R`` (or
    the flipped ``>`` forms): ``m = R - L`` is nonnegative while the
    loop runs, and the delta analysis must show it drops by >= 1 every
    iteration.
    """
    if not _scan(body, allow_assume=True, allow_while=False):
        return None
    deltas = _body_deltas(
        body, {v: iv.const(0) for v in carried}, head_inv
    )
    if deltas is None:
        return None
    for conjunct in _conjuncts(cond):
        if not isinstance(conjunct, Binary) or conjunct.op not in ("<", "<=", ">", ">="):
            continue
        try:
            left = expr_to_linexpr(conjunct.left)
            right = expr_to_linexpr(conjunct.right)
        except PurityError:
            continue
        m = right - left if conjunct.op in ("<", "<=") else left - right
        support = m.variables()
        if not support or any(v not in deltas for v in support):
            continue
        if any(c.denominator != 1 for c in m.coeffs.values()):
            continue
        drop = iv.const(0)
        for v, c in m.coeffs.items():
            drop = iv.add(drop, iv.scale(deltas[v], int(c)))
        if drop.hi is not None and drop.hi <= -1:
            return m
    return None


# ---------------------------------------------------------------------------
# Stuck-loop certificate
# ---------------------------------------------------------------------------


def stuck_certificate(cond: Expr, body: Stmt) -> Optional[Formula]:
    """The guard as a formula when the loop is provably stuck.

    Requirements: pure guard, body never writes a guard variable, and
    nothing in the body can halt execution (no call, heap access,
    ``assume`` or ``return``).  Nested loops are fine -- they either
    diverge themselves or fall through; divergence either way.
    """
    if not is_pure_bool(cond):
        return None
    if not _scan(body, allow_assume=False, allow_while=True):
        return None
    if stmt_calls(body):
        return None
    if expr_vars(cond) & stmt_assigned_vars(body):
        return None
    return expr_to_formula(cond)


# ---------------------------------------------------------------------------
# Spec construction
# ---------------------------------------------------------------------------


def build_quick_spec(
    method: Method, verdict: QuickVerdict, ctx: SolverContext
) -> Optional[CaseSpec]:
    """Materialise a :class:`CaseSpec` for a loop method from its quick
    verdict, mirroring what ``DefStore.flatten`` would produce.

    Returns ``None`` when the precondition admits no state matching the
    certificate (the caller falls back to the full analysis).
    """
    req = method.requires if method.requires is not None else TRUE
    params = tuple(method.param_names)
    if verdict.kind == "term":
        if not ctx.is_sat(req):
            return None
        case = SpecCase(ctx.simplify(req), Term((verdict.measure,)), POST_TRUE)
        return CaseSpec(method.name, params, [case])
    if verdict.kind == "stuck":
        cases = []
        looping = conj(req, verdict.cond)
        if ctx.is_sat(looping):
            cases.append(SpecCase(ctx.simplify(looping), LOOP, POST_FALSE))
        exiting = conj(req, neg(verdict.cond))
        if ctx.is_sat(exiting):
            cases.append(SpecCase(ctx.simplify(exiting), TERM, POST_TRUE))
        if not cases:
            return None
        return CaseSpec(method.name, params, cases)
    raise ValueError(f"unknown quick verdict kind {verdict.kind!r}")
