"""AST well-formedness validator: structured diagnostics, not stack traces.

Runs at pipeline entry (``infer_program(validate=True)``, the default)
so malformed programs -- an undefined variable, a call to a method that
does not exist, an arity mismatch -- surface as position-carrying
:class:`~repro.analysis.diagnostics.Diagnostic` records instead of
``KeyError``/``VerifierError`` deep inside the core.

Severity policy
---------------
``ERROR`` means the pipeline (verifier, desugarer or interpreter) would
misbehave or crash on the construct; :func:`repro.core.pipeline` refuses
to analyze and raises :class:`ProgramInvalid`.  ``WARNING`` marks code
that is well-defined but almost certainly unintended (a variable that
may be read before assignment on *some* path, statements after an
unconditional ``return``); analysis proceeds.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.lang.ast import (
    Assign,
    Assume,
    CallExpr,
    CallStmt,
    Expr,
    FieldWrite,
    Havoc,
    If,
    Method,
    NamedType,
    NewExpr,
    Pos,
    Program,
    Return,
    Seq,
    Skip,
    Stmt,
    VOID,
    Var,
    VarDecl,
    While,
    expr_calls,
    expr_vars,
)
from repro.lang.callgraph import undefined_calls
from repro.lang.parser import parse_program


class _MethodChecker:
    """Forward must/may definite-assignment walk over one method body."""

    def __init__(self, program: Program, method: Method, out: List[Diagnostic]):
        self.program = program
        self.method = method
        self.out = out

    def _diag(self, severity: Severity, code: str, message: str, pos: Pos) -> None:
        self.out.append(
            Diagnostic(severity, code, message, method=self.method.name, pos=pos)
        )

    def _check_reads(self, e: Expr, pos: Pos, must: Set[str], may: Set[str]) -> None:
        for name in sorted(expr_vars(e)):
            if name not in may:
                self._diag(
                    Severity.ERROR,
                    "undefined-variable",
                    f"variable '{name}' is read but never defined",
                    pos,
                )
            elif name not in must:
                self._diag(
                    Severity.WARNING,
                    "maybe-undefined",
                    f"variable '{name}' may be read before assignment",
                    pos,
                )
        for call in expr_calls(e):
            self._check_call(call.name, call.args, call.pos, value_position=isinstance(call, CallExpr))

    def _check_call(self, name: str, args, pos: Pos, value_position: bool) -> None:
        callee = self.program.methods.get(name)
        if callee is None:
            return  # reported program-wide via undefined_calls
        if len(args) != len(callee.params):
            self._diag(
                Severity.ERROR,
                "call-arity",
                f"call to '{name}' passes {len(args)} argument(s), "
                f"declared with {len(callee.params)}",
                pos,
            )
        if value_position and callee.ret_type == VOID:
            self._diag(
                Severity.ERROR,
                "void-call-value",
                f"void method '{name}' used as a value",
                pos,
            )
        for p, a in zip(callee.params, args):
            if p.by_ref and not isinstance(a, Var):
                self._diag(
                    Severity.ERROR,
                    "ref-arg-not-var",
                    f"ref parameter '{p.name}' of '{name}' needs a plain "
                    "variable argument",
                    pos,
                )

    def walk(
        self, s: Stmt, must: Set[str], may: Set[str], live: bool
    ) -> Tuple[Set[str], Set[str], bool]:
        """Returns updated ``(must, may, falls_through)``."""
        if not live:
            # already warned at the first unreachable statement
            return must, may, live
        if isinstance(s, Skip):
            return must, may, True
        if isinstance(s, Seq):
            falls = True
            for t in s.stmts:
                if not falls:
                    self._warn_unreachable(t)
                    return must, may, False
                must, may, falls = self.walk(t, must, may, falls)
            return must, may, falls
        if isinstance(s, VarDecl):
            if s.init is not None:
                self._check_reads(s.init, s.pos, must, may)
            # uninitialised declarations still define the cell (the
            # interpreter zero-fills), so reads are defined -- but warn.
            if s.init is None:
                may.add(s.name)
            else:
                must.add(s.name)
                may.add(s.name)
            return must, may, True
        if isinstance(s, Assign):
            self._check_reads(s.value, s.pos, must, may)
            if s.name not in may and s.name not in self._declared:
                self._diag(
                    Severity.WARNING,
                    "assign-undeclared",
                    f"assignment to undeclared variable '{s.name}'",
                    s.pos,
                )
            must.add(s.name)
            may.add(s.name)
            return must, may, True
        if isinstance(s, Havoc):
            must.update(s.names)
            may.update(s.names)
            return must, may, True
        if isinstance(s, CallStmt):
            for a in s.args:
                self._check_reads(a, s.pos, must, may)
            self._check_call(s.name, s.args, s.pos, value_position=False)
            return must, may, True
        if isinstance(s, FieldWrite):
            if s.base not in may:
                self._diag(
                    Severity.ERROR,
                    "undefined-variable",
                    f"variable '{s.base}' is read but never defined",
                    s.pos,
                )
            self._check_reads(s.value, s.pos, must, may)
            return must, may, True
        if isinstance(s, Assume):
            self._check_reads(s.cond, s.pos, must, may)
            return must, may, True
        if isinstance(s, Return):
            if s.value is not None:
                self._check_reads(s.value, s.pos, must, may)
            return must, may, False
        if isinstance(s, If):
            self._check_reads(s.cond, s.pos, must, may)
            m1, y1, f1 = self.walk(s.then, set(must), set(may), True)
            m2, y2, f2 = self.walk(s.els, set(must), set(may), True)
            if f1 and f2:
                return m1 & m2, y1 | y2, True
            if f1:
                return m1, y1 | y2, True
            if f2:
                return m2, y1 | y2, True
            return must, y1 | y2, False
        if isinstance(s, While):
            # the body may run zero times: 'must' is unchanged by the
            # loop, 'may' absorbs body definitions.  Check the guard and
            # body with loop-carried 'may' definitions visible.
            _, may_body, _ = self.walk(s.body, set(must), set(may), True)
            may2 = may | may_body
            self._check_reads(s.cond, s.pos, must, may2)
            # re-walk for diagnostics with the enriched may-set?  One
            # pass suffices: the first walk already used entry-'may';
            # re-running would duplicate messages, so keep the single
            # (slightly stricter) pass.
            return must, may2, True
        raise TypeError(f"unknown statement {type(s).__name__}")

    def _warn_unreachable(self, s: Stmt) -> None:
        pos = getattr(s, "pos", None)
        self._diag(
            Severity.WARNING,
            "unreachable",
            "statement is unreachable (follows a return)",
            pos,
        )

    def run(self) -> None:
        m = self.method
        self._declared = set(m.param_names)
        seen: Set[str] = set()
        for p in m.params:
            if p.name in seen:
                self._diag(
                    Severity.ERROR,
                    "duplicate-param",
                    f"duplicate parameter '{p.name}'",
                    m.pos,
                )
            seen.add(p.name)
        if m.body is None:
            return
        self._declared |= _declared_names(m.body)
        self.walk(m.body, set(m.param_names), set(m.param_names), True)
        self._check_specs()

    def _check_specs(self) -> None:
        m = self.method
        params = set(m.param_names)
        for kw, f in (("requires", m.requires), ("ensures", m.ensures)):
            if f is None:
                continue
            allowed = params | ({"res"} if kw == "ensures" else set())
            free = getattr(f, "free_vars", lambda: frozenset())()
            extra = sorted(set(free) - allowed)
            if extra:
                self._diag(
                    Severity.WARNING,
                    "spec-free-var",
                    f"{kw} clause mentions non-parameter variable(s) "
                    + ", ".join(repr(v) for v in extra),
                    m.pos,
                )


def _declared_names(s: Stmt) -> Set[str]:
    out: Set[str] = set()

    def walk(x: Stmt) -> None:
        if isinstance(x, VarDecl):
            out.add(x.name)
        elif isinstance(x, Seq):
            for t in x.stmts:
                walk(t)
        elif isinstance(x, If):
            walk(x.then)
            walk(x.els)
        elif isinstance(x, While):
            walk(x.body)

    walk(s)
    return out


def _check_new_exprs(program: Program, method: Method, out: List[Diagnostic]) -> None:
    if method.body is None:
        return

    def exprs_of(s: Stmt):
        if isinstance(s, VarDecl) and s.init is not None:
            yield s.pos, s.init
        elif isinstance(s, Assign):
            yield s.pos, s.value
        elif isinstance(s, FieldWrite):
            yield s.pos, s.value
        elif isinstance(s, (Assume,)):
            yield s.pos, s.cond
        elif isinstance(s, CallStmt):
            for a in s.args:
                yield s.pos, a
        elif isinstance(s, Return) and s.value is not None:
            yield s.pos, s.value
        elif isinstance(s, Seq):
            for t in s.stmts:
                yield from exprs_of(t)
        elif isinstance(s, (If, While)):
            yield s.pos, s.cond
            for t in ([s.then, s.els] if isinstance(s, If) else [s.body]):
                yield from exprs_of(t)

    def walk_expr(pos: Pos, e: Expr) -> None:
        if isinstance(e, NewExpr):
            if e.type_name not in program.data_decls:
                out.append(
                    Diagnostic(
                        Severity.ERROR,
                        "unknown-type",
                        f"new of undeclared data type '{e.type_name}'",
                        method=method.name,
                        pos=e.pos if e.pos is not None else pos,
                    )
                )
            for a in e.args:
                walk_expr(pos, a)
        else:
            for attr in ("arg", "left", "right", "base"):
                sub = getattr(e, attr, None)
                if isinstance(sub, Expr):
                    walk_expr(pos, sub)
            for a in getattr(e, "args", ()) or ():
                if isinstance(a, Expr):
                    walk_expr(pos, a)

    for pos, e in exprs_of(method.body):
        walk_expr(pos, e)


def validate_program(program: Program) -> List[Diagnostic]:
    """Lint *program*; returns all findings (errors and warnings)."""
    out: List[Diagnostic] = []
    for caller, callee, pos in undefined_calls(program):
        out.append(
            Diagnostic(
                Severity.ERROR,
                "unknown-callee",
                f"call to undefined method '{callee}'",
                method=caller,
                pos=pos,
            )
        )
    for decl in program.data_decls.values():
        seen: Set[str] = set()
        for f in decl.fields:
            if f.name in seen:
                out.append(
                    Diagnostic(
                        Severity.ERROR,
                        "duplicate-field",
                        f"data type '{decl.name}' declares field "
                        f"'{f.name}' twice",
                        pos=decl.pos,
                    )
                )
            seen.add(f.name)
            if isinstance(f.type, NamedType) and f.type.name not in program.data_decls:
                out.append(
                    Diagnostic(
                        Severity.WARNING,
                        "unknown-field-type",
                        f"field '{decl.name}.{f.name}' has undeclared "
                        f"type '{f.type.name}'",
                        pos=decl.pos,
                    )
                )
    for method in program.methods.values():
        _MethodChecker(program, method, out).run()
        _check_new_exprs(program, method, out)
    return out


def validate_source(source: str) -> Tuple[Program, List[Diagnostic]]:
    """Parse and lint *source* (parse errors still raise ``ParseError``)."""
    program = parse_program(source)
    return program, validate_program(program)
