"""Intraprocedural abstract interpretation over the interval domain.

The engine walks a *source* (pre-desugar) method body, tracking one
:class:`~repro.analysis.intervals.Interval` per integer variable.  At
every ``While`` head it computes an inductive invariant by fixpoint
iteration with widening (:func:`~repro.analysis.intervals.widen` after
``WIDEN_AFTER`` precise joins), records it keyed by ``id(node)`` --
object identity survives desugaring, so
:class:`repro.lang.desugar.LoopOrigin` can map the invariant onto the
extracted loop method -- and flags loops/branches whose guard is
*definitely* false (dead code).

Soundness contract: the abstract state over-approximates every concrete
environment reachable under **both** runtime semantics in the repo --
the reference interpreter (:mod:`repro.lang.interp`) and the verifier's
relational semantics.  Anything either semantics leaves unconstrained
(``nondet()``, call results, heap reads, havoc, uninitialised
declarations, by-ref arguments after a call) evaluates to ``TOP``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import ceil, floor
from typing import Dict, List, Optional, Set

from repro.analysis import intervals as iv
from repro.analysis.intervals import Interval, TOP
from repro.arith.formula import And, Atom, BoolConst, Formula, Or
from repro.lang.ast import (
    Assign,
    Assume,
    Binary,
    BoolLit,
    CallExpr,
    CallStmt,
    Expr,
    FieldRead,
    FieldWrite,
    Havoc,
    If,
    IntLit,
    Method,
    NewExpr,
    Nondet,
    NullLit,
    Program,
    Return,
    Seq,
    Skip,
    Stmt,
    Unary,
    Var,
    VarDecl,
    While,
    expr_calls,
)
from repro.lang.to_arith import PurityError, expr_to_linexpr

#: Precise joins at a loop head before widening kicks in.
WIDEN_AFTER = 2

#: Fixpoint-iteration hard cap (defence in depth -- widening alone
#: guarantees termination, this bounds pathological states).
MAX_ITERATIONS = 64

# A state maps variable names to non-TOP intervals (TOP entries are
# dropped, missing = TOP); ``None`` is the bottom state (unreachable).
State = Optional[Dict[str, Interval]]


def state_join(a: State, b: State) -> State:
    if a is None:
        return None if b is None else dict(b)
    if b is None:
        return dict(a)
    out: Dict[str, Interval] = {}
    for name in a.keys() & b.keys():
        j = iv.join(a[name], b[name])
        if not j.is_top():
            out[name] = j
    return out

def state_widen(old: Dict[str, Interval], new: Dict[str, Interval]) -> Dict[str, Interval]:
    out: Dict[str, Interval] = {}
    for name in old.keys() & new.keys():
        w = iv.widen(old[name], new[name])
        if not w.is_top():
            out[name] = w
    return out


def state_leq(a: State, b: State) -> bool:
    """Whether *a* is at or below *b* in the pointwise order."""
    if a is None:
        return True
    if b is None:
        return False
    return all(name in a and iv.leq(a[name], bound) for name, bound in b.items())


@dataclass
class MethodFacts:
    """Everything the pre-analysis learned about one method."""

    method: str
    #: ``id(While node) -> head invariant`` (non-TOP entries only).  The
    #: invariant holds at *every* visit of the loop head -- entry and
    #: each re-entry after the body -- so it is a valid contract for the
    #: desugared loop method's initial and recursive calls alike.
    head_invariants: Dict[int, Dict[str, Interval]] = field(default_factory=dict)
    #: ``While`` nodes whose guard is definitely false on first reach
    #: (zero iterations) -- safe to prune pre-desugar.
    dead_whiles: Set[int] = field(default_factory=set)
    #: ``If`` nodes whose then / else branch can never run.
    dead_then: Set[int] = field(default_factory=set)
    dead_else: Set[int] = field(default_factory=set)
    #: Statements proven unreachable (for diagnostics; positions on the
    #: nodes themselves).
    dead_stmts: List[Stmt] = field(default_factory=list)
    #: Abstract state at the (joined) method exit, ``None`` when no exit
    #: is reachable.
    exit_state: State = None


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------


def eval_expr(e: Expr, st: Dict[str, Interval]) -> Interval:
    if isinstance(e, IntLit):
        return iv.const(e.value)
    if isinstance(e, BoolLit):
        return iv.const(1 if e.value else 0)
    if isinstance(e, Var):
        return st.get(e.name, TOP)
    if isinstance(e, Unary):
        if e.op == "-":
            return iv.negate(eval_expr(e.arg, st))
        if e.op == "!":
            t = eval_cond(e.arg, st)
            return iv.const(0 if t else 1) if t is not None else Interval(0, 1)
        return TOP
    if isinstance(e, Binary):
        if e.op == "+":
            return iv.add(eval_expr(e.left, st), eval_expr(e.right, st))
        if e.op == "-":
            return iv.sub(eval_expr(e.left, st), eval_expr(e.right, st))
        if e.op == "*":
            return iv.mul(eval_expr(e.left, st), eval_expr(e.right, st))
        # comparisons / boolean connectives: 0-or-1 valued
        t = eval_cond(e, st)
        return iv.const(1 if t else 0) if t is not None else Interval(0, 1)
    # Nondet, CallExpr, FieldRead, NewExpr, NullLit: unconstrained
    return TOP


_CMP_SWAP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


def eval_cond(e: Expr, st: Dict[str, Interval]) -> Optional[bool]:
    """Three-valued truth of a condition: True / False / None (unknown).

    Only claims definiteness when every relevant sub-expression is free
    of unknown effects; anything involving calls, heap or ``nondet()``
    evaluates to TOP intervals and therefore stays unknown.
    """
    if isinstance(e, BoolLit):
        return e.value
    if isinstance(e, Unary) and e.op == "!":
        t = eval_cond(e.arg, st)
        return None if t is None else (not t)
    if isinstance(e, Binary):
        if e.op == "&&":
            l, r = eval_cond(e.left, st), eval_cond(e.right, st)
            if l is False or r is False:
                return False
            if l is True and r is True:
                return True
            return None
        if e.op == "||":
            l, r = eval_cond(e.left, st), eval_cond(e.right, st)
            if l is True or r is True:
                return True
            if l is False and r is False:
                return False
            return None
        if e.op in ("<", "<=", ">", ">=", "==", "!="):
            a = eval_expr(e.left, st)
            b = eval_expr(e.right, st)
            if e.op in (">", ">="):
                a, b = b, a
                op = _CMP_SWAP[e.op]
            else:
                op = e.op
            if op == "<":
                if a.hi is not None and b.lo is not None and a.hi < b.lo:
                    return True
                if a.lo is not None and b.hi is not None and a.lo >= b.hi:
                    return False
                return None
            if op == "<=":
                if a.hi is not None and b.lo is not None and a.hi <= b.lo:
                    return True
                if a.lo is not None and b.hi is not None and a.lo > b.hi:
                    return False
                return None
            if op == "==":
                if a.is_const() and b.is_const():
                    return a.lo == b.lo
                if iv.meet(a, b) is None:
                    return False
                return None
            if op == "!=":
                if a.is_const() and b.is_const():
                    return a.lo != b.lo
                if iv.meet(a, b) is None:
                    return True
                return None
    if isinstance(e, Var):
        bound = st.get(e.name, TOP)
        if bound.is_const():
            return bound.lo != 0
        if not bound.contains(0):
            return True
        return None
    return None


# ---------------------------------------------------------------------------
# Refinement by conditions / formulas
# ---------------------------------------------------------------------------


def _refine_le(st: Dict[str, Interval], expr, strict_margin: int = 0) -> State:
    """Meet *st* with the constraint ``expr <= -strict_margin`` for a
    linear *expr* with integer coefficients (Fractions bail out)."""
    coeffs = expr.coeffs
    if any(c.denominator != 1 for c in coeffs.values()):
        return st
    if expr.constant.denominator != 1:
        return st
    out = dict(st)
    for name, c in coeffs.items():
        c = int(c)
        if c == 0:
            continue
        # c*v <= -margin - (rest), rest = expr - c*v - const over the others
        rest_lo: Optional[int] = int(expr.constant)
        for other, oc in coeffs.items():
            if other == name:
                continue
            contrib = iv.scale(out.get(other, TOP), int(oc))
            rest_lo = None if rest_lo is None or contrib.lo is None else rest_lo + contrib.lo
        if rest_lo is None:
            continue  # no usable bound from the other terms
        bound = Fraction(-strict_margin - rest_lo, c)
        if c > 0:
            narrowed = iv.meet(out.get(name, TOP), iv.at_most(floor(bound)))
        else:
            narrowed = iv.meet(out.get(name, TOP), iv.at_least(ceil(bound)))
        if narrowed is None:
            return None
        if narrowed.is_top():
            out.pop(name, None)
        else:
            out[name] = narrowed
    return out


def _refine_linear(st: Dict[str, Interval], expr, rel: str) -> State:
    """Meet *st* with ``expr rel 0`` (``rel`` one of ``<= < == >= >``)."""
    if rel == "<=":
        return _refine_le(st, expr)
    if rel == "<":
        return _refine_le(st, expr, strict_margin=1)
    if rel == ">=":
        return _refine_le(st, -expr)
    if rel == ">":
        return _refine_le(st, -expr, strict_margin=1)
    if rel == "==":
        out = _refine_le(st, expr)
        if out is None:
            return None
        return _refine_le(out, -expr)
    return st


def refine(st: State, e: Expr, want: bool) -> State:
    """Refine *st* under the assumption that *e* evaluates to *want*."""
    if st is None:
        return None
    if isinstance(e, BoolLit):
        return st if e.value is want else None
    if isinstance(e, Unary) and e.op == "!":
        return refine(st, e.arg, not want)
    if isinstance(e, Binary):
        if (e.op == "&&" and want) or (e.op == "||" and not want):
            return refine(refine(st, e.left, want), e.right, want)
        if e.op in ("&&", "||"):
            # disjunctive split: join of both refined branches
            return state_join(refine(st, e.left, want), refine(st, e.right, want))
        if e.op in ("<", "<=", ">", ">=", "==", "!="):
            try:
                d = expr_to_linexpr(e.left) - expr_to_linexpr(e.right)
            except PurityError:
                return st
            op = e.op
            if not want:
                op = {"<": ">=", "<=": ">", ">": "<=", ">=": "<",
                      "==": "!=", "!=": "=="}[op]
            if op == "!=":
                return st  # disjunction of strict sides: no single meet
            return _refine_linear(st, d, op)
    if isinstance(e, Var):
        bound = st.get(e.name, TOP)
        if not want:
            narrowed = iv.meet(bound, iv.const(0))
            if narrowed is None:
                return None
            return {**st, e.name: narrowed}
        if bound.is_const() and bound.lo == 0:
            return None
        return st
    return st


def refine_formula(st: State, f: Formula) -> State:
    """Refine *st* by an arithmetic formula (``requires`` contracts).

    Handles the conjunctive ``Atom``/``And`` fragment plus ``Or`` by
    join; everything else (``Not``, ``Exists``) is skipped -- refinement
    may only *shrink* states, so skipping is always sound.
    """
    if st is None or f is None:
        return st
    if isinstance(f, BoolConst):
        return st if f.value else None
    if isinstance(f, Atom):
        rel = {"<=": "<=", "==": "==", "<": "<"}[f.rel.value]
        return _refine_linear(st, f.expr, rel)
    if isinstance(f, And):
        for arg in f.args:
            st = refine_formula(st, arg)
            if st is None:
                return None
        return st
    if isinstance(f, Or):
        parts = [refine_formula(dict(st), arg) for arg in f.args]
        out: State = None
        for p in parts:
            out = state_join(out, p)
        return out
    return st


# ---------------------------------------------------------------------------
# Statement transfer + loop fixpoints
# ---------------------------------------------------------------------------


class _Analyzer:
    def __init__(self, program: Program, facts: MethodFacts):
        self.program = program
        self.facts = facts

    # Call effects: result values are TOP (handled in eval_expr); by-ref
    # arguments of known callees are clobbered, every Var argument of an
    # *unknown* callee conservatively so.
    def _havoc_call_effects(self, st: Dict[str, Interval], e: Expr) -> None:
        for call in expr_calls(e):
            self._havoc_one_call(st, call.name, call.args)

    def _havoc_one_call(self, st, name: str, args) -> None:
        callee = self.program.methods.get(name)
        if callee is None:
            for a in args:
                if isinstance(a, Var):
                    st.pop(a.name, None)
            return
        for p, a in zip(callee.params, args):
            if p.by_ref and isinstance(a, Var):
                st.pop(a.name, None)

    def transfer(self, s: Stmt, st: State, record: bool = True) -> State:
        if st is None:
            if record:
                self.facts.dead_stmts.append(s)
            return None
        if isinstance(s, Skip):
            return st
        if isinstance(s, Seq):
            for t in s.stmts:
                st = self.transfer(t, st, record)
            return st
        if isinstance(s, VarDecl):
            st = dict(st)
            if s.init is None:
                # The interpreter zero-initialises, the verifier leaves
                # the cell unconstrained: TOP covers both.
                st.pop(s.name, None)
            else:
                self._havoc_call_effects(st, s.init)
                value = eval_expr(s.init, st)
                if value.is_top():
                    st.pop(s.name, None)
                else:
                    st[s.name] = value
            return st
        if isinstance(s, Assign):
            st = dict(st)
            self._havoc_call_effects(st, s.value)
            value = eval_expr(s.value, st)
            if value.is_top():
                st.pop(s.name, None)
            else:
                st[s.name] = value
            return st
        if isinstance(s, Havoc):
            st = dict(st)
            for name in s.names:
                st.pop(name, None)
            return st
        if isinstance(s, CallStmt):
            st = dict(st)
            for a in s.args:
                self._havoc_call_effects(st, a)
            self._havoc_one_call(st, s.name, s.args)
            return st
        if isinstance(s, FieldWrite):
            st = dict(st)
            self._havoc_call_effects(st, s.value)
            return st  # heap cells are outside the domain
        if isinstance(s, Assume):
            return refine(st, s.cond, True)
        if isinstance(s, Return):
            if s.value is not None:
                st = dict(st)
                self._havoc_call_effects(st, s.value)
            self.facts.exit_state = state_join(self.facts.exit_state, st)
            return None
        if isinstance(s, If):
            st = dict(st)
            self._havoc_call_effects(st, s.cond)
            truth = eval_cond(s.cond, st)
            then_in = refine(st, s.cond, True) if truth is not False else None
            els_in = refine(st, s.cond, False) if truth is not True else None
            if record and truth is True:
                self.facts.dead_else.add(id(s))
            if record and truth is False:
                self.facts.dead_then.add(id(s))
            then_out = self.transfer(s.then, then_in, record)
            els_out = self.transfer(s.els, els_in, record)
            return state_join(then_out, els_out)
        if isinstance(s, While):
            return self._transfer_while(s, st, record)
        raise TypeError(f"unknown statement {type(s).__name__}")

    def _transfer_while(self, s: While, st: State, record: bool) -> State:
        entry = dict(st)
        self._havoc_call_effects(entry, s.cond)
        if record and eval_cond(s.cond, entry) is False:
            self.facts.dead_whiles.add(id(s))
        head: State = entry
        joins = 0
        for _ in range(MAX_ITERATIONS):
            body_in = refine(head, s.cond, True)
            body_out = self.transfer(s.body, body_in, record=False)
            if body_out is not None:
                # condition re-evaluation at the next head visit may
                # itself clobber by-ref vars
                body_out = dict(body_out)
                self._havoc_call_effects(body_out, s.cond)
            new_head = state_join(head, body_out)
            if state_leq(new_head, head):
                break
            if joins >= WIDEN_AFTER:
                head = state_widen(head, new_head)
            else:
                head = new_head
            joins += 1
        else:  # pragma: no cover - widening converges long before the cap
            head = {}
        assert head is not None
        if head:
            self.facts.head_invariants[id(s)] = dict(head)
        # One recorded pass over the body with the stabilised invariant:
        # dead-code verdicts from pre-fixpoint states would be unsound.
        if record:
            self.transfer(s.body, refine(head, s.cond, True), record=True)
        return refine(head, s.cond, False)


def initial_state(method: Method) -> Dict[str, Interval]:
    """Parameters are unconstrained, then refined by ``requires``."""
    st: State = {}
    if method.requires is not None:
        st = refine_formula(st, method.requires)
    if st is None:
        # Contradictory requires: no admissible input.  Keep analyzing
        # from TOP -- the pipeline will discover the vacuity itself.
        st = {}
    return st


def analyze_method(method: Method, program: Program) -> MethodFacts:
    """Run the interval analysis over one method body."""
    facts = MethodFacts(method=method.name)
    if method.body is None:
        return facts
    analyzer = _Analyzer(program, facts)
    out = analyzer.transfer(method.body, initial_state(method), record=True)
    facts.exit_state = state_join(facts.exit_state, out)
    return facts
