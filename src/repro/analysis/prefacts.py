"""Pre-analysis driver: validate, prune, desugar, seed, hint, certify.

:func:`pre_analyze` packages everything the pipeline consumes into one
:class:`PreFacts` value, threaded through
:func:`repro.core.pipeline.infer_program` via ``preanalysis=True`` the
same way ``jobs=`` / ``store=`` / ``backend=`` are:

1. **validate** -- run the lint layer; errors raise
   :class:`~repro.analysis.diagnostics.ProgramInvalid` (``strict``).
2. **analyze** -- interval abstract interpretation per heap-free method.
3. **prune** -- drop loops whose guard is definitely false and branches
   that can never run (guards are side-effect-free by construction:
   call-containing guards never evaluate definitely).  Pruned methods
   are re-analyzed so node-identity keys stay accurate.
4. **desugar** -- with :class:`~repro.lang.desugar.LoopOrigin` capture.
5. **seed** -- conjoin each loop method's ``requires`` with the finite
   interval bounds its head invariant established for carried
   variables.  The invariant holds at every head visit, and the loop
   method is only ever called from its extraction site and itself, so
   the strengthened contract is sound -- and it is exactly what the
   quick ``term`` certificates rely on.
6. **hint** -- ``rank_hints = carried & (modified | guard vars)``: the
   only variables a linear termination measure can involve.  Advisory;
   see :class:`repro.core.ranking.RankSynthesizer`.
7. **certify** -- attach quick verdicts (:mod:`repro.analysis.quick`)
   for loops the pipeline can skip outright.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from repro.analysis.absint import MethodFacts, analyze_method
from repro.analysis.diagnostics import Diagnostic, ProgramInvalid, Severity, errors
from repro.analysis.loopinfo import loop_facts
from repro.analysis.quick import QuickVerdict, stuck_certificate, term_certificate
from repro.analysis.validate import validate_program
from repro.arith.formula import Formula, atom_ge, atom_le, conj
from repro.arith.terms import var
from repro.lang.ast import (
    BOOL,
    Expr,
    FieldRead,
    FieldWrite,
    If,
    INT,
    Method,
    NewExpr,
    Program,
    Seq,
    Skip,
    Stmt,
    VOID,
    While,
    seq,
)
from repro.lang.desugar import LoopOrigin, desugar_program


@dataclass
class PreFacts:
    """Everything the pre-analysis hands to the pipeline."""

    #: Validated, dead-code-pruned source program.
    source: Program
    #: Desugared program with seeded contracts and ranking hints -- what
    #: the pipeline actually analyzes.
    desugared: Program
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Loop-method name -> extraction record.
    origins: Dict[str, LoopOrigin] = field(default_factory=dict)
    #: Loop-method name -> quick verdict (term / stuck certificate).
    quick: Dict[str, QuickVerdict] = field(default_factory=dict)
    #: Loop methods whose ``requires`` gained interval facts.
    seeded: List[str] = field(default_factory=list)
    #: Loop-method name -> ranking hint tuple (also set on the Method).
    hints: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Source methods where dead code was removed.
    pruned: List[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Eligibility + pruning
# ---------------------------------------------------------------------------


def _expr_has_heap(e: Expr) -> bool:
    if isinstance(e, (FieldRead, NewExpr)):
        return True
    for attr in ("arg", "left", "right"):
        sub = getattr(e, attr, None)
        if isinstance(sub, Expr) and _expr_has_heap(sub):
            return True
    for a in getattr(e, "args", ()) or ():
        if isinstance(a, Expr) and _expr_has_heap(a):
            return True
    return False


def _stmt_has_heap(s: Stmt) -> bool:
    if isinstance(s, FieldWrite):
        return True
    if isinstance(s, Seq):
        return any(_stmt_has_heap(t) for t in s.stmts)
    if isinstance(s, If):
        return (
            _expr_has_heap(s.cond)
            or _stmt_has_heap(s.then)
            or _stmt_has_heap(s.els)
        )
    if isinstance(s, While):
        return _expr_has_heap(s.cond) or _stmt_has_heap(s.body)
    for attr in ("init", "value", "cond"):
        sub = getattr(s, attr, None)
        if sub is not None and isinstance(sub, Expr) and _expr_has_heap(sub):
            return True
    for a in getattr(s, "args", ()) or ():
        if isinstance(a, Expr) and _expr_has_heap(a):
            return True
    return False


def _eligible(m: Method) -> bool:
    """Whether interval facts apply: purely numeric, body present, not
    rewritten later by the heap abstraction."""
    if m.body is None or m.is_primitive or m.heap_specs:
        return False
    if m.ret_type not in (INT, BOOL, VOID):
        return False
    if any(p.type not in (INT, BOOL) for p in m.params):
        return False
    return not _stmt_has_heap(m.body)


class _Pruner:
    def __init__(self, facts: MethodFacts, method: str, diags: List[Diagnostic]):
        self.facts = facts
        self.method = method
        self.diags = diags

    def _warn(self, code: str, message: str, node) -> None:
        self.diags.append(
            Diagnostic(
                Severity.WARNING,
                code,
                message,
                method=self.method,
                pos=getattr(node, "pos", None),
            )
        )

    def prune(self, s: Stmt) -> Stmt:
        if isinstance(s, While):
            if id(s) in self.facts.dead_whiles:
                self._warn(
                    "dead-loop", "loop guard is always false here; loop removed", s
                )
                return Skip()
            body = self.prune(s.body)
            return s if body is s.body else While(s.cond, body, pos=s.pos)
        if isinstance(s, If):
            if id(s) in self.facts.dead_then:
                self._warn("dead-branch", "then-branch can never run; pruned", s)
                return self.prune(s.els)
            if id(s) in self.facts.dead_else:
                self._warn("dead-branch", "else-branch can never run; pruned", s)
                return self.prune(s.then)
            then, els = self.prune(s.then), self.prune(s.els)
            if then is s.then and els is s.els:
                return s
            return If(s.cond, then, els, pos=s.pos)
        if isinstance(s, Seq):
            parts = [self.prune(t) for t in s.stmts]
            if all(p is t for p, t in zip(parts, s.stmts)):
                return s
            return seq(*parts)
        return s


# ---------------------------------------------------------------------------
# Seeding
# ---------------------------------------------------------------------------


def _interval_facts(origin: LoopOrigin, facts: MethodFacts) -> Formula:
    """Finite head-invariant bounds over carried variables, as a formula
    (``None``-free: returns ``None`` when there is nothing to seed)."""
    inv = facts.head_invariants.get(id(origin.while_node), {})
    atoms = []
    for name in origin.carried:
        bound = inv.get(name)
        if bound is None:
            continue
        if bound.lo is not None:
            atoms.append(atom_ge(var(name), bound.lo))
        if bound.hi is not None:
            atoms.append(atom_le(var(name), bound.hi))
    if not atoms:
        return None
    out = atoms[0]
    for a in atoms[1:]:
        out = conj(out, a)
    return out


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def pre_analyze(program: Program, strict: bool = True) -> PreFacts:
    """Run the full pre-analysis over a *source* (non-desugared) program."""
    diags = validate_program(program)
    if strict and errors(diags):
        raise ProgramInvalid(diags)

    method_facts: Dict[str, MethodFacts] = {}
    methods2: Dict[str, Method] = {}
    pruned: List[str] = []
    for name, m in program.methods.items():
        if not _eligible(m):
            methods2[name] = m
            continue
        facts = analyze_method(m, program)
        for dead in facts.dead_stmts:
            diags.append(
                Diagnostic(
                    Severity.WARNING,
                    "dead-code",
                    "statement can never execute",
                    method=name,
                    pos=getattr(dead, "pos", None),
                )
            )
        body2 = _Pruner(facts, name, diags).prune(m.body)
        if body2 is not m.body:
            m = replace(m, body=body2)
            facts = analyze_method(m, program)  # re-key node identities
            pruned.append(name)
        methods2[name] = m
        method_facts[name] = facts
    program2 = Program(data_decls=program.data_decls, methods=methods2)

    origins: Dict[str, LoopOrigin] = {}
    desugared = desugar_program(program2, origin_out=origins)

    pre = PreFacts(
        source=program2,
        desugared=desugared,
        diagnostics=diags,
        origins=origins,
        pruned=pruned,
    )

    loop_info = {
        name: loop_facts(m, program2)
        for name, m in program2.methods.items()
        if name in method_facts
    }

    for loop_name, origin in origins.items():
        loop_method = desugared.methods[loop_name]
        facts = method_facts.get(origin.method_name)
        if facts is None:
            continue  # enclosing method was ineligible: no facts to use
        node = origin.while_node

        # 5. seed the contract with head-invariant interval bounds
        extra = _interval_facts(origin, facts)
        if extra is not None:
            loop_method.requires = (
                extra
                if loop_method.requires is None
                else conj(loop_method.requires, extra)
            )
            pre.seeded.append(loop_name)

        # 6. ranking hints: measure support is carried & (modified | guard)
        lf = loop_info.get(origin.method_name, {}).get(id(node))
        if lf is not None:
            hint = set(origin.carried) & (set(origin.modified) | lf.cond_vars)
            if hint and hint < set(origin.carried):
                loop_method.rank_hints = tuple(sorted(hint))
                pre.hints[loop_name] = loop_method.rank_hints

        # 7. quick verdicts
        inv = facts.head_invariants.get(id(node), {})
        measure = term_certificate(node.cond, node.body, inv, list(origin.carried))
        if measure is not None:
            pre.quick[loop_name] = QuickVerdict("term", measure=measure)
        else:
            cond = stuck_certificate(node.cond, node.body)
            if cond is not None:
                pre.quick[loop_name] = QuickVerdict("stuck", cond=cond)

    return pre
