"""Structured diagnostics for the validator and pre-analysis.

A :class:`Diagnostic` carries a stable machine-readable code, a severity,
the method it was found in and -- when the AST node came from the parser
-- a source position, so frontends (ROADMAP items 3-4) can map findings
back onto user source instead of receiving internal errors from the
verifier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.lang.ast import Pos


class Severity(enum.Enum):
    ERROR = "error"      # the pipeline would misbehave: refuse to analyze
    WARNING = "warning"  # suspicious but well-defined: analyze anyway

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One validator finding."""

    severity: Severity
    code: str                    # stable slug, e.g. "unknown-callee"
    message: str
    method: Optional[str] = None  # enclosing method, if any
    pos: Pos = None

    def render(self) -> str:
        where = ""
        if self.pos is not None:
            where = f"line {self.pos[0]}, col {self.pos[1]}: "
        scope = f" [in {self.method}]" if self.method else ""
        return f"{self.severity}: {where}{self.message}{scope} ({self.code})"

    def __str__(self) -> str:
        return self.render()


class ProgramInvalid(Exception):
    """Raised by pipeline entry points when validation finds errors.

    Carries the full diagnostic list; the message renders every error so
    a CLI user sees all findings at once.
    """

    def __init__(self, diagnostics: List[Diagnostic]):
        self.diagnostics = diagnostics
        errors = [d for d in diagnostics if d.severity is Severity.ERROR]
        lines = [f"program failed validation with {len(errors)} error(s):"]
        lines += [f"  {d.render()}" for d in diagnostics]
        super().__init__("\n".join(lines))


def errors(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    return [d for d in diagnostics if d.severity is Severity.ERROR]


def warnings(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    return [d for d in diagnostics if d.severity is Severity.WARNING]
