"""Per-loop variable facts: condition support, modification, liveness.

A single backward pass over a method body computes, for every ``While``
node (keyed by ``id(node)``, matching :class:`repro.lang.desugar.LoopOrigin`
and the invariants of :mod:`repro.analysis.absint`):

* ``cond_vars`` -- variables the guard reads,
* ``modified`` -- variables the body may write (assignment, declaration,
  havoc, by-ref call argument),
* ``used`` -- variables read anywhere in guard or body,
* ``live_out`` -- variables live *after* the loop (classic backward
  liveness, fixpoint over the loop itself).

``prefacts`` combines these into ranking hints: a variable can matter to
a termination measure only if the guard mentions it or the body changes
it, so ``carried & (modified | cond_vars)`` is where linear measures
live.  Liveness is exposed for diagnostics and future narrowing (a
carried variable that is dead after the loop and unread in the guard is
pure ballast).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet

from repro.lang.ast import (
    Assign,
    Assume,
    CallStmt,
    FieldWrite,
    Havoc,
    If,
    Method,
    Program,
    Return,
    Seq,
    Skip,
    Stmt,
    VarDecl,
    Var,
    While,
    expr_vars,
    stmt_assigned_vars,
    stmt_used_vars,
)


@dataclass(frozen=True)
class LoopFacts:
    """Variable-level facts about one source ``while`` loop."""

    cond_vars: FrozenSet[str]
    used: FrozenSet[str]
    modified: FrozenSet[str]
    live_out: FrozenSet[str]


def _by_ref_targets(program: Program, s: Stmt) -> FrozenSet[str]:
    """Variables a call statement may write through ``ref`` parameters."""
    out = set()
    if isinstance(s, CallStmt):
        callee = program.methods.get(s.name)
        if callee is None:
            out.update(a.name for a in s.args if isinstance(a, Var))
        else:
            for p, a in zip(callee.params, s.args):
                if p.by_ref and isinstance(a, Var):
                    out.add(a.name)
    return frozenset(out)


def _modified(program: Program, s: Stmt) -> FrozenSet[str]:
    """``stmt_assigned_vars`` plus by-ref call targets, transitively."""
    out = set(stmt_assigned_vars(s))

    def walk(x: Stmt) -> None:
        out.update(_by_ref_targets(program, x))
        if isinstance(x, Seq):
            for t in x.stmts:
                walk(t)
        elif isinstance(x, If):
            walk(x.then)
            walk(x.els)
        elif isinstance(x, While):
            walk(x.body)

    walk(s)
    return frozenset(out)


class _Liveness:
    def __init__(self, program: Program, out: Dict[int, LoopFacts]):
        self.program = program
        self.out = out

    def live(self, s: Stmt, after: FrozenSet[str]) -> FrozenSet[str]:
        """Live-before set given the live-after set, recording loops."""
        if isinstance(s, Skip):
            return after
        if isinstance(s, Seq):
            for t in reversed(s.stmts):
                after = self.live(t, after)
            return after
        if isinstance(s, VarDecl):
            before = after - {s.name}
            if s.init is not None:
                before |= expr_vars(s.init)
            return before
        if isinstance(s, Assign):
            return (after - {s.name}) | expr_vars(s.value)
        if isinstance(s, Havoc):
            return after - frozenset(s.names)
        if isinstance(s, CallStmt):
            # by-ref targets are written, but the callee also reads them
            # (call-by-value-result), so no kill.
            used = frozenset().union(*map(expr_vars, s.args)) if s.args else frozenset()
            return after | used
        if isinstance(s, FieldWrite):
            return after | {s.base} | expr_vars(s.value)
        if isinstance(s, Assume):
            return after | expr_vars(s.cond)
        if isinstance(s, Return):
            return expr_vars(s.value) if s.value is not None else frozenset()
        if isinstance(s, If):
            return (
                self.live(s.then, after)
                | self.live(s.els, after)
                | expr_vars(s.cond)
            )
        if isinstance(s, While):
            cond_vars = expr_vars(s.cond)
            inside = after | cond_vars
            while True:
                nxt = after | cond_vars | self.live(s.body, inside)
                if nxt == inside:
                    break
                inside = nxt
            self.out[id(s)] = LoopFacts(
                cond_vars=cond_vars,
                used=cond_vars | stmt_used_vars(s.body),
                modified=_modified(self.program, s.body),
                live_out=after,
            )
            return inside
        raise TypeError(f"unknown statement {type(s).__name__}")


def loop_facts(method: Method, program: Program) -> Dict[int, LoopFacts]:
    """Facts for every ``While`` in *method*, keyed by ``id(node)``.

    Nested loops are recorded too (the inner loop's entry is visited
    while processing the outer body).
    """
    out: Dict[int, LoopFacts] = {}
    if method.body is not None:
        _Liveness(program, out).live(method.body, frozenset())
    return out
