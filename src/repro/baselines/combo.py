"""Tool-shaped baseline analyzers combining the two provers.

Each analyzer consumes a program and returns an SV-COMP-style verdict
(:class:`repro.core.pipeline.Verdict`), mirroring the *capability profile*
of the tool it stands in for (see DESIGN.md's substitution table):

* :class:`AProVELikeAnalyzer` -- termination proofs only, never answers N
  (AProVE's column in paper Fig. 10 has N = 0 across all benchmarks);
* :class:`UltimateLikeAnalyzer` -- termination proofs plus recurrent-set
  non-termination, recursion supported;
* :class:`T2LikeAnalyzer` -- like ULTIMATE but *refusing genuinely
  recursive programs* (the paper could only run T2 on 221 loop-based
  integer programs because llvm2KITTeL "cannot properly handle pointers
  and recursive methods").
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.monolithic import MonolithicTerminationProver
from repro.baselines.recurrent import RecurrentSetProver
from repro.core.pipeline import Verdict
from repro.lang import desugar_program, method_sccs
from repro.lang.ast import Program
from repro.lang.callgraph import is_recursive_scc


class AProVELikeAnalyzer:
    """Termination-only whole-program prover."""

    name = "AProVE-like"

    def analyze(self, program: Program) -> Verdict:
        desugared = desugar_program(program)
        result = MonolithicTerminationProver(desugared, desugared=True).prove()
        if result:
            return Verdict.TERMINATING
        return Verdict.UNKNOWN


class UltimateLikeAnalyzer:
    """Termination prover with a recurrent-set fallback."""

    name = "ULTIMATE-like"

    def analyze(self, program: Program) -> Verdict:
        desugared = desugar_program(program)
        term = MonolithicTerminationProver(desugared, desugared=True).prove()
        if term:
            return Verdict.TERMINATING
        nt = RecurrentSetProver(desugared, desugared=True).prove()
        if nt:
            return Verdict.NONTERMINATING
        return Verdict.UNKNOWN


class T2LikeAnalyzer:
    """ULTIMATE-style combination restricted to loop-based programs."""

    name = "T2-like"

    def supports(self, program: Program) -> bool:
        """True when the program is loop-based: no user-written recursion
        (desugared loop methods are fine)."""
        desugared = desugar_program(program)
        for scc in method_sccs(desugared):
            if not is_recursive_scc(desugared, scc):
                continue
            for name in scc:
                if not desugared.methods[name].source_loop:
                    return False
        return True

    def analyze(self, program: Program) -> Optional[Verdict]:
        if not self.supports(program):
            return None
        return UltimateLikeAnalyzer().analyze(program)
