"""Recurrent-set non-termination prover (TNT / Gupta et al. style).

A *recurrent set* ``R`` over a recursive method's parameters witnesses
divergence when

1. every state in ``R`` steps back into ``R`` along each feasible
   recursion edge, and
2. no state in ``R`` can take an exit path.

The prover enumerates candidate sets (edge guards, simple sign conditions
over parameters and their conjunctions) and also runs a bounded greatest-
fixpoint iteration of the universal predecessor.  Mutual recursion is not
supported (answers "unknown"), matching the restrictions of the original
loop-level tools.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arith.formula import (
    Formula,
    TRUE,
    atom_ge,
    atom_le,
    conj,
    disj,
    neg,
)
from repro.arith.solver import entails, is_sat, project, simplify
from repro.arith.terms import var
from repro.core.predicates import PostRef, PreRef
from repro.core.reachgraph import Edge
from repro.core.verifier import MethodAssumptions, Verifier, VerifierError
from repro.lang import desugar_program, method_sccs
from repro.lang.ast import Program
from repro.lang.callgraph import is_recursive_scc

MAX_GFP_ITER = 4
MAX_CANDIDATE_CONJ = 2


class RecurrentSetProver:
    """Search for a recurrent set in some recursive method of the program."""

    def __init__(self, program: Program, desugared: bool = False):
        self.program = program if desugared else desugar_program(program)

    # -- data collection ------------------------------------------------------

    def _method_data(self) -> Optional[List[Tuple[Tuple[str, ...], List[Edge], Formula]]]:
        """Per self-recursive method: (params, self edges, exit region)."""
        out = []
        for scc in method_sccs(self.program):
            if not is_recursive_scc(self.program, scc):
                continue
            if len(scc) > 1:
                continue  # mutual recursion unsupported by this baseline
            name = scc[0]
            method = self.program.methods[name]
            if method.body is None:
                continue
            pair = f"R0@{name}"
            verifier = Verifier(self.program, pairs={name: pair}, solved={})
            try:
                ma = verifier.collect(method)
            except VerifierError:
                return None
            params = tuple(method.param_names)
            edges: List[Edge] = []
            for a in ma.pre_assumptions:
                if isinstance(a.rhs, PreRef) and a.rhs.name == pair:
                    edges.append(
                        Edge(pair, pair, a.ctx, a.lhs.args, a.rhs.args)
                    )
            exit_regions: List[Formula] = []
            for t in ma.post_assumptions:
                if any(isinstance(p, PostRef) for _g, p in t.entries):
                    continue
                try:
                    exit_regions.append(project(t.ctx, keep=set(params)))
                except MemoryError:
                    exit_regions.append(TRUE)
            out.append((params, edges, disj(*exit_regions)))
        return out

    # -- candidate checking ---------------------------------------------------

    @staticmethod
    def _closed(region: Formula, edges: Sequence[Edge], params: Tuple[str, ...]) -> bool:
        """Every feasible edge from *region* lands back in *region*."""
        any_feasible = False
        for e in edges:
            src_inst = region.substitute(
                {p: var(a) for p, a in zip(params, e.src_args)}
            )
            dst_inst = region.substitute(
                {p: var(a) for p, a in zip(params, e.dst_args)}
            )
            if not is_sat(conj(e.ctx, src_inst)):
                continue
            any_feasible = True
            if not entails(conj(e.ctx, src_inst), dst_inst):
                return False
        return any_feasible

    def _witnesses(self, region: Formula, edges: Sequence[Edge],
                   exits: Formula, params: Tuple[str, ...]) -> bool:
        if not is_sat(region):
            return False
        if is_sat(conj(region, exits)):
            return False
        return self._closed(region, edges, params)

    def _candidates(self, edges: Sequence[Edge], exits: Formula,
                    params: Tuple[str, ...]) -> List[Formula]:
        cands: List[Formula] = [neg(exits)]
        for e in edges:
            try:
                guard = project(e.ctx, keep=set(e.src_args))
            except MemoryError:
                continue
            renamed = guard.rename(dict(zip(e.src_args, params)))
            cands.append(renamed)
        signs: List[Formula] = []
        for p in params:
            signs.append(atom_ge(var(p), 0))
            signs.append(atom_le(var(p), 0))
            signs.append(atom_ge(var(p), 1))
            signs.append(atom_le(var(p), -1))
        base = list(cands)
        for c, s in itertools.product(base, signs):
            cands.append(conj(c, s))
        for s1, s2 in itertools.combinations(signs, 2):
            cands.append(conj(s1, s2))
        return cands

    def _gfp(self, edges: Sequence[Edge], exits: Formula,
             params: Tuple[str, ...]) -> Optional[Formula]:
        """Bounded greatest-fixpoint of the universal predecessor."""
        region = neg(exits)
        for _ in range(MAX_GFP_ITER):
            if not is_sat(region):
                return None
            if self._witnesses(region, edges, exits, params):
                return region
            refined = region
            for e in edges:
                src_inst = region.substitute(
                    {p: var(a) for p, a in zip(params, e.src_args)}
                )
                dst_inst = region.substitute(
                    {p: var(a) for p, a in zip(params, e.dst_args)}
                )
                try:
                    bad = project(
                        conj(e.ctx, src_inst, neg(dst_inst)),
                        keep=set(e.src_args),
                    )
                except MemoryError:
                    return None
                refined = conj(
                    refined, neg(bad.rename(dict(zip(e.src_args, params))))
                )
            refined = simplify(refined)
            if refined == region:
                return None
            region = refined
        return region if self._witnesses(region, edges, exits, params) else None

    # -- public API ----------------------------------------------------------------

    def prove(self) -> Optional[bool]:
        """True when some recursive method has a recurrent set reachable
        for some input; None when unsupported; False when no witness was
        found (NOT a termination proof)."""
        data = self._method_data()
        if data is None:
            return None
        for params, edges, exits in data:
            if not edges:
                continue
            for cand in self._candidates(edges, exits, params):
                if self._witnesses(simplify(cand), edges, exits, params):
                    return True
            if self._gfp(edges, exits, params) is not None:
                return True
        return False
