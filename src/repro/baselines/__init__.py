"""Baseline termination/non-termination analyzers.

The paper compares HipTNT+ against AProVE, ULTIMATE and T2 -- closed or
unavailable systems.  Per the reproduction's substitution policy
(DESIGN.md), this package implements simplified analyzers exhibiting the
architectural traits the paper attributes to those tools:

* :mod:`repro.baselines.monolithic` -- a whole-program termination prover
  in the TERMINATOR/T2 tradition: one global (lexicographic) ranking
  argument over the program's recursion/loop transitions, no per-input
  case analysis.  In AProVE mode it answers only Y/U (no
  non-termination proofs), matching AProVE's all-zero ``N`` column in
  paper Fig. 10.
* :mod:`repro.baselines.recurrent` -- a recurrent-set non-termination
  prover (TNT-style): search for a guard-closed region witnessing
  divergence.
* :mod:`repro.baselines.combo` -- an ULTIMATE-style combination running
  the termination prover and the non-termination prover in sequence.
"""

from repro.baselines.monolithic import MonolithicTerminationProver
from repro.baselines.recurrent import RecurrentSetProver
from repro.baselines.combo import (
    AProVELikeAnalyzer,
    T2LikeAnalyzer,
    UltimateLikeAnalyzer,
)

__all__ = [
    "MonolithicTerminationProver",
    "RecurrentSetProver",
    "AProVELikeAnalyzer",
    "T2LikeAnalyzer",
    "UltimateLikeAnalyzer",
]
