"""A whole-program monolithic termination prover (TERMINATOR/T2 style).

The defining architectural difference from HipTNT+ (and the point of the
paper's comparison): this prover attempts one global (lexicographic)
ranking argument per recursive group over *all* inputs.  It performs no
precondition case analysis, so a program that terminates only under a
derivable input condition (e.g. ``foo`` of paper Fig. 1, terminating
exactly when ``x < 0 \\/ y < 0``) is out of its reach -- it answers U
where HipTNT+ answers with a conditional summary.

The machinery is shared with the main pipeline: the same assumption
generator produces the recursion edges and the same Farkas synthesiser
searches for ranking functions, so the comparison isolates the
*methodology* (global proof vs. case-split inference), not engineering
differences.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.ranking import RankSynthesizer
from repro.core.reachgraph import Edge, ReachGraph
from repro.core.specs import DefStore
from repro.core.verifier import MethodAssumptions, Verifier, VerifierError
from repro.lang import desugar_program, method_sccs
from repro.lang.ast import Program
from repro.lang.callgraph import is_recursive_scc


class MonolithicTerminationProver:
    """Prove whole-program termination with one ranking argument per SCC."""

    def __init__(self, program: Program, desugared: bool = False):
        self.program = program if desugared else desugar_program(program)

    def collect_edges(self) -> Optional[Dict[str, List[Edge]]]:
        """Recursion edges per call-graph SCC key; None when the program
        falls outside the supported (pure) fragment."""
        out: Dict[str, List[Edge]] = {}
        for scc in method_sccs(self.program):
            methods = [
                self.program.methods[n]
                for n in scc
                if self.program.methods[n].body is not None
            ]
            if not methods or not is_recursive_scc(self.program, scc):
                continue
            pairs = {m.name: f"B0@{m.name}" for m in methods}
            verifier = Verifier(self.program, pairs=pairs, solved={})
            store_args = {
                pairs[m.name]: tuple(m.param_names) for m in methods
            }
            edges: List[Edge] = []
            try:
                for m in methods:
                    ma = verifier.collect(m)
                    graph = ReachGraph(
                        [
                            a
                            for a in ma.pre_assumptions
                            if not isinstance(a.rhs, str)
                        ]
                    )
                    edges.extend(
                        e
                        for e in graph.edges
                        if e.dst in store_args  # recursion edges only
                    )
            except VerifierError:
                return None
            out["+".join(scc)] = edges
        self._pair_args = {}
        for scc in method_sccs(self.program):
            for n in scc:
                m = self.program.methods[n]
                if m.body is not None:
                    self._pair_args[f"B0@{n}"] = tuple(m.param_names)
        return out

    def prove(self) -> Optional[bool]:
        """True when every recursive group admits a global ranking
        argument; False when some group does not; None when the program is
        unsupported."""
        groups = self.collect_edges()
        if groups is None:
            return None
        synth = RankSynthesizer(self._pair_args)
        for _key, edges in groups.items():
            if not edges:
                continue
            members = sorted({e.src for e in edges} | {
                e.dst for e in edges if e.dst in self._pair_args
            })
            internal = [e for e in edges if e.dst in set(members)]
            if not internal:
                continue
            if synth.synthesize_linear(members, internal) is not None:
                continue
            if synth.synthesize_lexicographic(members, internal) is not None:
                continue
            return False
        return True
