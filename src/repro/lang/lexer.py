"""Tokenizer for the C-like concrete syntax of the core language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.lang.errors import SourceError

KEYWORDS = {
    "data",
    "int",
    "bool",
    "void",
    "if",
    "else",
    "while",
    "return",
    "requires",
    "ensures",
    "assume",
    "havoc",
    "null",
    "true",
    "false",
    "nondet",
    "new",
    "ref",
}

SYMBOLS = [
    "&&",
    "||",
    "==",
    "!=",
    "<=",
    ">=",
    "<",
    ">",
    "=",
    "+",
    "-",
    "*",
    "!",
    "(",
    ")",
    "{",
    "}",
    ";",
    ",",
    ".",
]


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'int' | 'kw' | 'sym' | 'eof'
    text: str
    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.text!r}@{self.line}:{self.col}"


class LexError(SourceError):
    """Raised on unexpected input characters.

    Carries a machine-readable position and a ``Diagnostic`` bridge via
    the :class:`~repro.lang.errors.SourceError` base.
    """

    code = "lex-error"


def tokenize(source: str) -> List[Token]:
    """Tokenize *source*, skipping whitespace and ``//`` / ``/* */``
    comments.  Raises :class:`LexError` on unknown characters."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated comment", pos=(line, col))
            for c in source[i:end + 2]:
                if c == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = end + 2
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            text = source[start:i]
            tokens.append(Token("int", text, line, col))
            col += len(text)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += len(text)
            continue
        for sym in SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(Token("sym", sym, line, col))
                i += len(sym)
                col += len(sym)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", pos=(line, col))
    tokens.append(Token("eof", "", line, col))
    return tokens
