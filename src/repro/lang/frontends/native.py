"""The repo's original C-like concrete syntax as a registry frontend.

This is a thin adapter over :func:`repro.lang.parser.parse_program`; the
grammar, tokens, and AST shapes are unchanged, so programs parsed through
this frontend are bit-for-bit identical (verdicts *and* store
fingerprints) to programs parsed before the registry existed.
"""

from __future__ import annotations

from typing import Optional

from repro.lang.ast import Program
from repro.lang.parser import parse_program


class NativeFrontend:
    name = "native"
    extensions = (".imp", ".tnt", ".c")
    description = "the repo's C-like core-language syntax (lang/parser.py)"

    def parse(self, source: str, *, filename: Optional[str] = None) -> Program:
        return parse_program(source)
