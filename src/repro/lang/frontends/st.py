"""IEC 61131-3 Structured Text frontend (subset).

Parses a pragmatic subset of Structured Text -- the loop-heavy
scan-cycle shape PLC verification cares about -- and lowers it to the
core imperative AST so desugar/validate/preanalysis/inference run
unchanged:

* ``FUNCTION name : TYPE ... END_FUNCTION`` -> a value-returning method.
  The function name doubles as the return variable (declared and
  zero-initialised at entry, returned at exit), exactly the IEC
  convention: ``name := expr;`` sets the result, ``RETURN;`` exits.
* ``FUNCTION_BLOCK name ... END_FUNCTION_BLOCK`` -> a ``void`` method
  modelling ONE scan cycle.  ``VAR_INPUT`` become by-value parameters,
  ``VAR_IN_OUT`` become ``ref`` parameters, and ``VAR``/``VAR_OUTPUT``
  state is declared then *havoc'd*: persistent state is arbitrary at
  cycle entry, so a termination verdict covers every reachable cycle.
* ``IF/ELSIF/ELSE`` -> nested ``If``; ``WHILE .. DO`` -> ``While``;
  ``REPEAT body UNTIL c END_REPEAT`` -> ``body; while (!c) body``;
  ``FOR i := a TO b BY s DO`` -> bound materialised into a fresh
  ``__st_forN`` local, then a ``While`` counting toward it (``BY`` must
  be a non-zero integer constant; its sign picks ``<=`` vs ``>=``).
* Integer types (``INT``/``DINT``/``SINT``/``LINT`` and the unsigned
  variants) map to the core unbounded ``int`` -- no wrap-around is
  modelled -- and ``BOOL`` maps to ``bool``.
* ``=``/``<>`` -> ``==``/``!=``; ``AND``/``OR``/``NOT`` -> ``&&``/
  ``||``/``!``.  Calls take positional or named (``f(x := 1)``)
  arguments; named calls are resolved against the callee's declared
  input order, which a signature pre-pass collects so definition order
  in the file does not matter.

Keywords are case-insensitive (``while`` == ``WHILE``); identifiers are
case-sensitive (a deliberate deviation, documented in
``docs/frontends.md``).  Comments are ``(* ... *)`` and ``//``.
All errors raise :class:`LexError`/:class:`ParseError` with ST source
positions, and lowered AST nodes keep those positions so downstream
diagnostics point back into the ST text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lang import ast
from repro.lang.ast import (
    Assign,
    Binary,
    BoolLit,
    CallExpr,
    CallStmt,
    Expr,
    Havoc,
    If,
    IntLit,
    Method,
    Param,
    Program,
    Return,
    Skip,
    Stmt,
    Type,
    Unary,
    Var,
    VarDecl,
    While,
    seq,
)
from repro.lang.errors import SourceError
from repro.lang.lexer import LexError, Token
from repro.lang.parser import ParseError

ST_KEYWORDS = frozenset({
    "FUNCTION", "END_FUNCTION",
    "FUNCTION_BLOCK", "END_FUNCTION_BLOCK",
    "VAR", "VAR_INPUT", "VAR_OUTPUT", "VAR_IN_OUT", "END_VAR",
    "IF", "THEN", "ELSIF", "ELSE", "END_IF",
    "WHILE", "DO", "END_WHILE",
    "FOR", "TO", "BY", "END_FOR",
    "REPEAT", "UNTIL", "END_REPEAT",
    "RETURN", "AND", "OR", "NOT", "TRUE", "FALSE",
    # reserved so their use yields a targeted "not in this subset" error
    # instead of a confusing identifier-level one
    "CASE", "OF", "END_CASE", "EXIT", "CONTINUE", "MOD", "XOR",
})

_UNSUPPORTED_STMT = {
    "CASE": "CASE .. OF is not in the ST subset (rewrite as IF/ELSIF)",
    "EXIT": "EXIT is not in the ST subset (loops must run to their guard)",
    "CONTINUE": "CONTINUE is not in the ST subset",
}

ST_SYMBOLS = [
    ":=", "<=", ">=", "<>",
    "<", ">", "=", "+", "-", "*",
    "(", ")", ";", ":", ",",
]

_TYPE_MAP: Dict[str, Type] = {
    "INT": ast.INT, "DINT": ast.INT, "SINT": ast.INT, "LINT": ast.INT,
    "UINT": ast.INT, "UDINT": ast.INT, "USINT": ast.INT, "ULINT": ast.INT,
    "BOOL": ast.BOOL,
}


def tokenize_st(source: str) -> List[Token]:
    """Tokenize ST source: ``(* *)`` / ``//`` comments, case-insensitive
    keywords (normalised to upper case), underscore-grouped integers."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("(*", i):
            end = source.find("*)", i + 2)
            if end < 0:
                raise LexError("unterminated comment", pos=(line, col))
            for c in source[i:end + 2]:
                if c == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
            i = end + 2
            continue
        if ch.isdigit():
            start = i
            while i < n and (source[i].isdigit() or source[i] == "_"):
                i += 1
            text = source[start:i]
            tokens.append(Token("int", text.replace("_", ""), line, col))
            col += len(text)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            upper = text.upper()
            if upper in ST_KEYWORDS:
                tokens.append(Token("kw", upper, line, col))
            else:
                tokens.append(Token("ident", text, line, col))
            col += len(text)
            continue
        for sym in ST_SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(Token("sym", sym, line, col))
                i += len(sym)
                col += len(sym)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", pos=(line, col))
    tokens.append(Token("eof", "", line, col))
    return tokens


@dataclass(frozen=True)
class _Signature:
    """What a call site needs to know about a POU, collected in a
    pre-pass so named arguments resolve regardless of definition order."""

    name: str
    kind: str                    # 'function' | 'function_block'
    inputs: Tuple[str, ...]      # VAR_INPUT + VAR_IN_OUT names, declared order


@dataclass(frozen=True)
class _VarSection:
    kind: str                                     # VAR | VAR_INPUT | ...
    decls: Tuple[Tuple[str, Type, Optional[Expr], Tuple[int, int]], ...]


class _STParser:
    def __init__(self, tokens: List[Token], sigs: Dict[str, _Signature]):
        self.tokens = tokens
        self.pos = 0
        self.sigs = sigs
        self._fresh = 0          # per-POU counter for FOR bound locals
        self._return_var: Optional[str] = None   # set per FUNCTION

    # -- token helpers ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check_kw(self, text: str) -> bool:
        tok = self.peek()
        return tok.kind == "kw" and tok.text == text

    def accept_kw(self, text: str) -> bool:
        if self.check_kw(text):
            self.advance()
            return True
        return False

    def expect_kw(self, text: str) -> Token:
        tok = self.peek()
        if not self.check_kw(text):
            found = tok.text if tok.kind != "eof" else "end of input"
            raise ParseError(
                f"expected {text!r} but found {found!r}",
                pos=(tok.line, tok.col),
            )
        return self.advance()

    def check_sym(self, text: str) -> bool:
        tok = self.peek()
        return tok.kind == "sym" and tok.text == text

    def accept_sym(self, text: str) -> bool:
        if self.check_sym(text):
            self.advance()
            return True
        return False

    def expect_sym(self, text: str) -> Token:
        tok = self.peek()
        if not self.check_sym(text):
            found = tok.text if tok.kind != "eof" else "end of input"
            raise ParseError(
                f"expected {text!r} but found {found!r}",
                pos=(tok.line, tok.col),
            )
        return self.advance()

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind != "ident":
            found = tok.text if tok.kind != "eof" else "end of input"
            raise ParseError(
                f"expected identifier but found {found!r}",
                pos=(tok.line, tok.col),
            )
        return self.advance()

    # -- types and VAR sections --------------------------------------------

    def parse_type(self) -> Type:
        tok = self.expect_ident()
        mapped = _TYPE_MAP.get(tok.text.upper())
        if mapped is None:
            raise ParseError(
                f"unknown type {tok.text!r} (supported: "
                f"{', '.join(sorted(_TYPE_MAP))})",
                pos=(tok.line, tok.col),
            )
        return mapped

    def parse_var_sections(self) -> List[_VarSection]:
        sections: List[_VarSection] = []
        while True:
            tok = self.peek()
            if tok.kind != "kw" or tok.text not in (
                "VAR", "VAR_INPUT", "VAR_OUTPUT", "VAR_IN_OUT"
            ):
                return sections
            kind = self.advance().text
            decls: List[Tuple[str, Type, Optional[Expr], Tuple[int, int]]] = []
            while not self.check_kw("END_VAR"):
                names = [self.expect_ident()]
                while self.accept_sym(","):
                    names.append(self.expect_ident())
                self.expect_sym(":")
                vtype = self.parse_type()
                init: Optional[Expr] = None
                if self.accept_sym(":="):
                    init = self.parse_expr()
                self.expect_sym(";")
                for name_tok in names:
                    decls.append(
                        (name_tok.text, vtype, init,
                         (name_tok.line, name_tok.col))
                    )
            self.expect_kw("END_VAR")
            sections.append(_VarSection(kind, tuple(decls)))

    # -- program-object-units ----------------------------------------------

    def parse_module(self) -> Program:
        methods: Dict[str, Method] = {}
        while self.peek().kind != "eof":
            tok = self.peek()
            if self.check_kw("FUNCTION"):
                m = self.parse_function()
            elif self.check_kw("FUNCTION_BLOCK"):
                m = self.parse_function_block()
            else:
                found = tok.text if tok.kind != "eof" else "end of input"
                raise ParseError(
                    f"expected FUNCTION or FUNCTION_BLOCK but found {found!r}",
                    pos=(tok.line, tok.col),
                )
            methods[m.name] = m
        return Program(data_decls={}, methods=methods)

    def _split_sections(
        self, sections: List[_VarSection], name_tok: Token
    ) -> Tuple[List[Param], List[Tuple[str, Type, Optional[Expr], Tuple[int, int]]]]:
        """Split VAR sections into (params, locals), preserving declared
        order inside each group and rejecting duplicate names."""
        params: List[Param] = []
        local_decls: List[Tuple[str, Type, Optional[Expr], Tuple[int, int]]] = []
        seen: Dict[str, Tuple[int, int]] = {name_tok.text: (name_tok.line, name_tok.col)}
        for section in sections:
            for name, vtype, init, pos in section.decls:
                if name in seen:
                    raise ParseError(
                        f"duplicate variable {name!r}", pos=pos
                    )
                seen[name] = pos
                if section.kind in ("VAR_INPUT", "VAR_IN_OUT"):
                    if init is not None:
                        raise ParseError(
                            f"{section.kind} variable {name!r} cannot "
                            "have an initialiser",
                            pos=pos,
                        )
                    params.append(
                        Param(vtype, name, by_ref=section.kind == "VAR_IN_OUT")
                    )
                else:
                    local_decls.append((name, vtype, init, pos))
        return params, local_decls

    @staticmethod
    def _default_init(vtype: Type) -> Expr:
        return BoolLit(False) if vtype == ast.BOOL else IntLit(0)

    def parse_function(self) -> Method:
        start = self.expect_kw("FUNCTION")
        name_tok = self.expect_ident()
        self.expect_sym(":")
        ret_type = self.parse_type()
        sections = self.parse_var_sections()
        params, local_decls = self._split_sections(sections, name_tok)

        self._fresh = 0
        self._return_var = name_tok.text
        stmts: List[Stmt] = [
            VarDecl(ret_type, name_tok.text, self._default_init(ret_type),
                    pos=(name_tok.line, name_tok.col))
        ]
        for name, vtype, init, pos in local_decls:
            stmts.append(
                VarDecl(vtype, name,
                        init if init is not None else self._default_init(vtype),
                        pos=pos)
            )
        body = self.parse_stmts(frozenset({"END_FUNCTION"}))
        end = self.expect_kw("END_FUNCTION")
        stmts.extend(body)
        # implicit "return the result variable" unless the source already
        # ends on a RETURN (appending one there would be flagged as
        # unreachable by the validator)
        if not body or not isinstance(body[-1], Return):
            stmts.append(Return(Var(name_tok.text), pos=(end.line, end.col)))
        return Method(
            ret_type=ret_type,
            name=name_tok.text,
            params=params,
            body=seq(*stmts),
            pos=(start.line, start.col),
        )

    def parse_function_block(self) -> Method:
        start = self.expect_kw("FUNCTION_BLOCK")
        name_tok = self.expect_ident()
        sections = self.parse_var_sections()
        params, local_decls = self._split_sections(sections, name_tok)

        self._fresh = 0
        self._return_var = None
        stmts: List[Stmt] = []
        for name, vtype, init, pos in local_decls:
            stmts.append(VarDecl(vtype, name, init, pos=pos))
        if local_decls:
            # persistent state is arbitrary at scan-cycle entry: a verdict
            # on this method covers every reachable cycle, not just the
            # first one after power-up
            stmts.append(
                Havoc(tuple(name for name, _, _, _ in local_decls),
                      pos=(start.line, start.col))
            )
        stmts.extend(self.parse_stmts(frozenset({"END_FUNCTION_BLOCK"})))
        self.expect_kw("END_FUNCTION_BLOCK")
        return Method(
            ret_type=ast.VOID,
            name=name_tok.text,
            params=params,
            body=seq(*stmts),
            pos=(start.line, start.col),
        )

    # -- statements ---------------------------------------------------------

    def parse_stmts(self, stop: frozenset) -> List[Stmt]:
        out: List[Stmt] = []
        while True:
            tok = self.peek()
            if tok.kind == "eof" or (tok.kind == "kw" and tok.text in stop):
                return out
            s = self.parse_stmt()
            if s is not None:
                out.append(s)

    def parse_stmt(self) -> Optional[Stmt]:
        tok = self.peek()
        pos = (tok.line, tok.col)
        if self.accept_sym(";"):          # stray empty statement
            return None
        if tok.kind == "kw" and tok.text in _UNSUPPORTED_STMT:
            raise ParseError(_UNSUPPORTED_STMT[tok.text], pos=pos)
        if self.accept_kw("IF"):
            return self.parse_if(pos)
        if self.accept_kw("WHILE"):
            cond = self.parse_expr()
            self.expect_kw("DO")
            body = self.parse_stmts(frozenset({"END_WHILE"}))
            self.expect_kw("END_WHILE")
            self.accept_sym(";")
            return While(cond, seq(*body), pos=pos)
        if self.accept_kw("FOR"):
            return self.parse_for(pos)
        if self.accept_kw("REPEAT"):
            body = self.parse_stmts(frozenset({"UNTIL"}))
            self.expect_kw("UNTIL")
            until = self.parse_expr()
            self.expect_kw("END_REPEAT")
            self.accept_sym(";")
            # do-while: run once, then keep running while the exit
            # condition is still false
            loop = While(Unary("!", until), seq(*body), pos=pos)
            return seq(seq(*body), loop)
        if self.accept_kw("RETURN"):
            self.expect_sym(";")
            if self._return_var is not None:
                return Return(Var(self._return_var), pos=pos)
            return Return(None, pos=pos)
        name_tok = self.expect_ident()
        if self.accept_sym(":="):
            value = self.parse_expr()
            self.expect_sym(";")
            return Assign(name_tok.text, value, pos=pos)
        if self.check_sym("("):
            args = self.parse_call_args(name_tok)
            self.expect_sym(";")
            return CallStmt(name_tok.text, tuple(args), pos=pos)
        after = self.peek()
        found = after.text if after.kind != "eof" else "end of input"
        raise ParseError(
            f"expected ':=' or '(' after {name_tok.text!r} "
            f"but found {found!r}",
            pos=(after.line, after.col),
        )

    def parse_if(self, pos: Tuple[int, int]) -> Stmt:
        branch_stops = frozenset({"ELSIF", "ELSE", "END_IF"})
        branches: List[Tuple[Expr, Stmt, Tuple[int, int]]] = []
        cond = self.parse_expr()
        self.expect_kw("THEN")
        branches.append((cond, seq(*self.parse_stmts(branch_stops)), pos))
        while self.check_kw("ELSIF"):
            tok = self.advance()
            cond = self.parse_expr()
            self.expect_kw("THEN")
            branches.append(
                (cond, seq(*self.parse_stmts(branch_stops)),
                 (tok.line, tok.col))
            )
        els: Stmt = Skip()
        if self.accept_kw("ELSE"):
            els = seq(*self.parse_stmts(frozenset({"END_IF"})))
        self.expect_kw("END_IF")
        self.accept_sym(";")
        node = els
        for c, body, p in reversed(branches):
            node = If(c, body, node, pos=p)
        return node

    def parse_for(self, pos: Tuple[int, int]) -> Stmt:
        var_tok = self.expect_ident()
        self.expect_sym(":=")
        start = self.parse_expr()
        self.expect_kw("TO")
        bound = self.parse_expr()
        step = 1
        if self.accept_kw("BY"):
            step_tok = self.peek()
            step_expr = self.parse_expr()
            step = self._constant_int(step_expr)
            if step is None or step == 0:
                raise ParseError(
                    "FOR step (BY ...) must be a non-zero integer constant",
                    pos=(step_tok.line, step_tok.col),
                )
        self.expect_kw("DO")
        body = self.parse_stmts(frozenset({"END_FOR"}))
        self.expect_kw("END_FOR")
        self.accept_sym(";")

        # IEC evaluates the TO bound once, before the first iteration:
        # materialise it so a bound that mentions body-mutated variables
        # keeps that semantics
        bound_name = f"__st_for{self._fresh}"
        self._fresh += 1
        i = var_tok.text
        if step > 0:
            guard: Expr = Binary("<=", Var(i), Var(bound_name))
            incr: Stmt = Assign(i, Binary("+", Var(i), IntLit(step)), pos=pos)
        else:
            guard = Binary(">=", Var(i), Var(bound_name))
            incr = Assign(i, Binary("-", Var(i), IntLit(-step)), pos=pos)
        return seq(
            Assign(i, start, pos=pos),
            VarDecl(ast.INT, bound_name, bound, pos=pos),
            While(guard, seq(*body, incr), pos=pos),
        )

    @staticmethod
    def _constant_int(e: Expr) -> Optional[int]:
        if isinstance(e, IntLit):
            return e.value
        if isinstance(e, Unary) and e.op == "-" and isinstance(e.arg, IntLit):
            return -e.arg.value
        return None

    # -- calls ----------------------------------------------------------------

    def parse_call_args(self, name_tok: Token) -> List[Expr]:
        open_tok = self.expect_sym("(")
        if self.accept_sym(")"):
            return []
        named = (
            self.peek().kind == "ident" and self.peek(1).text == ":="
        )
        if not named:
            args = [self.parse_expr()]
            while self.accept_sym(","):
                args.append(self.parse_expr())
            self.expect_sym(")")
            return args
        pairs: List[Tuple[Token, Expr]] = []
        while True:
            pname = self.expect_ident()
            self.expect_sym(":=")
            pairs.append((pname, self.parse_expr()))
            if not self.accept_sym(","):
                break
        self.expect_sym(")")
        sig = self.sigs.get(name_tok.text)
        if sig is None:
            raise ParseError(
                f"named arguments need a callee defined in this file, "
                f"but {name_tok.text!r} is not",
                pos=(name_tok.line, name_tok.col),
            )
        by_name: Dict[str, Expr] = {}
        for pname, expr in pairs:
            if pname.text not in sig.inputs:
                raise ParseError(
                    f"unknown parameter {pname.text!r} in call to "
                    f"{name_tok.text!r}",
                    pos=(pname.line, pname.col),
                )
            if pname.text in by_name:
                raise ParseError(
                    f"duplicate argument for parameter {pname.text!r}",
                    pos=(pname.line, pname.col),
                )
            by_name[pname.text] = expr
        missing = [p for p in sig.inputs if p not in by_name]
        if missing:
            raise ParseError(
                f"call to {name_tok.text!r} is missing argument(s): "
                + ", ".join(missing),
                pos=(open_tok.line, open_tok.col),
            )
        return [by_name[p] for p in sig.inputs]

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.accept_kw("OR"):
            left = Binary("||", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_cmp()
        while self.accept_kw("AND"):
            left = Binary("&&", left, self.parse_cmp())
        return left

    _CMP = {"<=": "<=", ">=": ">=", "<": "<", ">": ">", "=": "==", "<>": "!="}

    def parse_cmp(self) -> Expr:
        left = self.parse_add()
        tok = self.peek()
        if tok.kind == "sym" and tok.text in self._CMP:
            self.advance()
            return Binary(self._CMP[tok.text], left, self.parse_add())
        return left

    def parse_add(self) -> Expr:
        left = self.parse_mul()
        while self.check_sym("+") or self.check_sym("-"):
            op = self.advance().text
            left = Binary(op, left, self.parse_mul())
        return left

    def parse_mul(self) -> Expr:
        left = self.parse_unary()
        while self.check_sym("*"):
            self.advance()
            left = Binary("*", left, self.parse_unary())
        return left

    def parse_unary(self) -> Expr:
        if self.accept_sym("-"):
            return Unary("-", self.parse_unary())
        if self.accept_kw("NOT"):
            return Unary("!", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        tok = self.peek()
        if tok.kind == "int":
            self.advance()
            return IntLit(int(tok.text))
        if self.accept_kw("TRUE"):
            return BoolLit(True)
        if self.accept_kw("FALSE"):
            return BoolLit(False)
        if self.accept_sym("("):
            inner = self.parse_expr()
            self.expect_sym(")")
            return inner
        if tok.kind == "ident":
            self.advance()
            if self.check_sym("("):
                args = self.parse_call_args(tok)
                return CallExpr(tok.text, tuple(args), pos=(tok.line, tok.col))
            return Var(tok.text, pos=(tok.line, tok.col))
        found = tok.text if tok.kind != "eof" else "end of input"
        raise ParseError(
            f"unexpected token {found!r}", pos=(tok.line, tok.col)
        )


def _collect_signatures(tokens: List[Token]) -> Dict[str, _Signature]:
    """First pass: POU names and declared input order, statements skipped.

    Runs before the real parse so named-argument calls resolve against
    callees defined later in the file.
    """
    sigs: Dict[str, _Signature] = {}
    skimmer = _STParser(tokens, sigs)
    while skimmer.peek().kind != "eof":
        tok = skimmer.peek()
        if tok.kind == "kw" and tok.text in ("FUNCTION", "FUNCTION_BLOCK"):
            kind = "function" if tok.text == "FUNCTION" else "function_block"
            end_kw = "END_" + tok.text
            skimmer.advance()
            name_tok = skimmer.expect_ident()
            if name_tok.text in sigs:
                raise ParseError(
                    f"duplicate definition of {name_tok.text!r}",
                    pos=(name_tok.line, name_tok.col),
                )
            if kind == "function":
                skimmer.expect_sym(":")
                skimmer.parse_type()
            sections = skimmer.parse_var_sections()
            inputs = tuple(
                name
                for section in sections
                if section.kind in ("VAR_INPUT", "VAR_IN_OUT")
                for name, _, _, _ in section.decls
            )
            sigs[name_tok.text] = _Signature(name_tok.text, kind, inputs)
            # statements are re-parsed for real in the second pass
            while not skimmer.check_kw(end_kw):
                if skimmer.peek().kind == "eof":
                    raise ParseError(
                        f"expected {end_kw!r} but found 'end of input'",
                        pos=(skimmer.peek().line, skimmer.peek().col),
                    )
                skimmer.advance()
            skimmer.expect_kw(end_kw)
        else:
            found = tok.text if tok.kind != "eof" else "end of input"
            raise ParseError(
                f"expected FUNCTION or FUNCTION_BLOCK but found {found!r}",
                pos=(tok.line, tok.col),
            )
    return sigs


def parse_st_program(source: str) -> Program:
    """Parse ST *source* into a core-language :class:`Program`."""
    tokens = tokenize_st(source)
    sigs = _collect_signatures(tokens)
    return _STParser(tokens, sigs).parse_module()


class STFrontend:
    name = "st"
    extensions = (".st", ".iecst")
    description = (
        "IEC 61131-3 Structured Text subset "
        "(FUNCTION / FUNCTION_BLOCK scan-cycle programs)"
    )

    def parse(self, source: str, *, filename: Optional[str] = None) -> Program:
        try:
            return parse_st_program(source)
        except SourceError as exc:
            if filename is not None and exc.filename is None:
                exc.filename = filename
            raise
