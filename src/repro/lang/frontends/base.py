"""The ``Frontend`` protocol every source-language frontend implements.

A frontend turns concrete syntax in some language into the core
imperative AST (:class:`repro.lang.ast.Program`); everything downstream
-- desugar, validate, pre-analysis, inference, the spec store -- is
language-agnostic and runs unchanged.  Frontends report failures by
raising :class:`repro.lang.errors.SourceError` subclasses, which carry a
source position and render as :class:`repro.analysis.diagnostics.Diagnostic`.
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple, runtime_checkable

from repro.lang.ast import Program


@runtime_checkable
class Frontend(Protocol):
    """One source language.

    ``name`` is the registry key (and the language tag salted into store
    fingerprints for non-native frontends); ``extensions`` drive
    extension sniffing for file inputs (lowercase, with the leading
    dot); ``description`` is a one-line summary for ``/schema`` and CLI
    help.
    """

    name: str
    extensions: Tuple[str, ...]
    description: str

    def parse(self, source: str, *, filename: Optional[str] = None) -> Program:
        """Parse *source* into a core AST.

        Raises a :class:`~repro.lang.errors.SourceError` (``LexError`` /
        ``ParseError``) with a line/col position on malformed input.
        """
        ...
