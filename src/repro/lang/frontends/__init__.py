"""Pluggable source-language frontends.

The inference engine is language-agnostic once a program is in the core
AST; this package is the seam where concrete syntaxes plug in.  Two
frontends ship today: ``native`` (the repo's original C-like syntax,
bit-for-bit compatible -- same verdicts, same store fingerprints) and
``st`` (an IEC 61131-3 Structured Text subset).  See
``docs/frontends.md`` for the protocol contract and how to add one.

Entry points resolve a language with :func:`get_frontend` (``None``
means :data:`DEFAULT_LANGUAGE`), sniff file extensions with
:func:`language_for_path`, and parse with :func:`parse_source`.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.lang.ast import Program
from repro.lang.errors import SourceError  # noqa: F401  (re-export)
from repro.lang.frontends.base import Frontend
from repro.lang.frontends.native import NativeFrontend
from repro.lang.frontends.st import STFrontend

DEFAULT_LANGUAGE = "native"

_REGISTRY: Dict[str, Frontend] = {}
_BY_EXTENSION: Dict[str, str] = {}


class UnknownLanguageError(ValueError):
    """An unregistered language name or unsniffable file extension."""


def register_frontend(frontend: Frontend, *, replace: bool = False) -> None:
    """Add *frontend* to the registry (used by the two built-ins and by
    tests/extensions registering their own languages)."""
    name = frontend.name
    if not replace and name in _REGISTRY:
        raise ValueError(f"frontend {name!r} is already registered")
    _REGISTRY[name] = frontend
    for ext in frontend.extensions:
        _BY_EXTENSION[ext.lower()] = name


def available_languages() -> Tuple[str, ...]:
    """Registered language names, default first, rest sorted."""
    rest = sorted(n for n in _REGISTRY if n != DEFAULT_LANGUAGE)
    return (DEFAULT_LANGUAGE, *rest)


def get_frontend(language: Optional[str] = None) -> Frontend:
    """Resolve *language* (``None`` -> the native default)."""
    name = DEFAULT_LANGUAGE if language is None else language
    frontend = _REGISTRY.get(name)
    if frontend is None:
        known = ", ".join(available_languages())
        raise UnknownLanguageError(
            f"unknown language {name!r} (known: {known})"
        )
    return frontend


def language_for_path(path: str, default: Optional[str] = None) -> str:
    """Sniff the frontend for *path* from its extension."""
    ext = os.path.splitext(path)[1].lower()
    name = _BY_EXTENSION.get(ext)
    if name is None:
        if default is not None:
            return default
        known = ", ".join(sorted(_BY_EXTENSION))
        raise UnknownLanguageError(
            f"cannot infer a language from {path!r} "
            f"(known extensions: {known}); pass an explicit language"
        )
    return name


def parse_source(
    source: str,
    language: Optional[str] = None,
    *,
    filename: Optional[str] = None,
) -> Program:
    """Parse *source*; with no explicit *language*, sniff *filename*'s
    extension when given (falling back to the native default)."""
    if language is None and filename is not None:
        language = language_for_path(filename, default=DEFAULT_LANGUAGE)
    return get_frontend(language).parse(source, filename=filename)


register_frontend(NativeFrontend())
register_frontend(STFrontend())

__all__ = [
    "DEFAULT_LANGUAGE",
    "Frontend",
    "NativeFrontend",
    "STFrontend",
    "SourceError",
    "UnknownLanguageError",
    "available_languages",
    "get_frontend",
    "language_for_path",
    "parse_source",
    "register_frontend",
]
