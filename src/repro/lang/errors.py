"""Structured source-level errors shared by every frontend.

Historically the lexer and parser raised bare ``Exception`` subclasses
whose positions (when present at all) lived only in the message text.
:class:`SourceError` gives every frontend failure a machine-readable
``pos`` and a bridge into :mod:`repro.analysis.diagnostics`, while the
rendered message keeps the familiar ``... at line L, col C`` suffix so
existing callers and tests see the same strings.

The import of :mod:`repro.analysis.diagnostics` is deferred to the
``diagnostic`` property: ``repro.analysis`` imports the core pipeline,
which imports ``repro.lang``, so a module-level import here would cycle.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

Pos = Optional[Tuple[int, int]]


class SourceError(Exception):
    """A lexing or parsing failure with an optional source position.

    ``bare_message`` is the description without the location suffix;
    ``str(exc)`` appends `` at line L, col C`` when a position is known.
    ``diagnostic`` / ``diagnostics`` expose the failure in the shape the
    analysis and service layers expect.
    """

    code = "parse-error"

    def __init__(
        self,
        message: str,
        pos: Pos = None,
        *,
        filename: Optional[str] = None,
    ) -> None:
        self.bare_message = message
        self.pos = pos
        self.filename = filename
        rendered = message
        if pos is not None:
            rendered = f"{message} at line {pos[0]}, col {pos[1]}"
        super().__init__(rendered)

    @property
    def diagnostic(self):
        from repro.analysis.diagnostics import Diagnostic, Severity

        return Diagnostic(
            severity=Severity.ERROR,
            code=self.code,
            message=self.bare_message,
            method=None,
            pos=self.pos,
        )

    @property
    def diagnostics(self) -> List:
        return [self.diagnostic]
