"""Call graph construction and SCC condensation over program methods.

The inference processes mutually recursive groups bottom-up
(rule [TNT-INF] of the paper); :func:`method_sccs` returns the strongly
connected components of the call graph in reverse-topological (callee-first)
order.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.lang.ast import Pos, Program, stmt_call_sites, stmt_calls


def call_graph(program: Program) -> "nx.DiGraph":
    """Directed graph: edge ``m -> n`` when method *m* calls *n*."""
    g = nx.DiGraph()
    for name in program.methods:
        g.add_node(name)
    for name, method in program.methods.items():
        if method.body is None:
            continue
        for callee in stmt_calls(method.body):
            if callee in program.methods:
                g.add_edge(name, callee)
    return g


def undefined_calls(program: Program) -> List[Tuple[str, str, Pos]]:
    """All call sites whose callee is not declared, as
    ``(caller, callee, pos)`` triples in deterministic (method, pre-order)
    order.

    :func:`call_graph` silently skips such edges, so without a validation
    pass an undefined callee only surfaces as an internal verifier error
    deep in the core; the well-formedness validator
    (:func:`repro.analysis.validate_program`) turns these triples into
    structured diagnostics with source positions instead.
    """
    out: List[Tuple[str, str, Pos]] = []
    for name, method in program.methods.items():
        if method.body is None:
            continue
        for site in stmt_call_sites(method.body):
            if site.name not in program.methods:
                out.append((name, site.name, site.pos))
    return out


def method_sccs(program: Program) -> List[List[str]]:
    """SCCs of the call graph, callees before callers.

    Each SCC is sorted by name for determinism.  The callee-first ordering
    is a *load-bearing invariant*: the sequential pipeline consumes groups
    in list order, and the parallel wave scheduler
    (:mod:`repro.core.scheduler`) derives its dependency waves from the
    same condensation via :func:`scc_dependencies`.
    """
    sccs, _deps = scc_dependencies(program)
    return sccs


def scc_dependencies(
    program: Program,
) -> Tuple[List[List[str]], List[Set[int]]]:
    """The call-graph condensation as ``(sccs, deps)``.

    ``sccs`` lists the strongly connected components callees-first (the
    exact :func:`method_sccs` order, each SCC sorted by name);
    ``deps[i]`` holds the indices of the SCCs that ``sccs[i]`` calls into
    (its callee groups, excluding itself).  An SCC is ready to analyze
    once every index in ``deps[i]`` has completed -- the wave structure of
    the parallel scheduler.
    """
    g = call_graph(program)
    condensation = nx.condensation(g)
    # Reverse topological over the condensation gives callees first.
    # nx.topological_sort visits nodes in insertion order among ready
    # nodes, and both the call graph and its condensation are built in
    # deterministic order, so the result is stable across runs.
    order = list(nx.topological_sort(condensation))
    sccs: List[List[str]] = []
    index_of: Dict[int, int] = {}
    for node in reversed(order):
        index_of[node] = len(sccs)
        sccs.append(sorted(condensation.nodes[node]["members"]))
    deps: List[Set[int]] = [set() for _ in sccs]
    for node in condensation.nodes:
        for callee in condensation.successors(node):  # edges caller -> callee
            deps[index_of[node]].add(index_of[callee])
    return sccs, deps


def is_recursive_scc(program: Program, scc: List[str]) -> bool:
    """Whether the SCC contains a (mutual) recursion."""
    if len(scc) > 1:
        return True
    name = scc[0]
    method = program.methods[name]
    if method.body is None:
        return False
    return name in stmt_calls(method.body)


def reachable_methods(program: Program, roots: List[str]) -> Set[str]:
    """All methods transitively callable from *roots*."""
    g = call_graph(program)
    seen: Set[str] = set()
    stack = [r for r in roots if r in program.methods]
    while stack:
        m = stack.pop()
        if m in seen:
            continue
        seen.add(m)
        stack.extend(g.successors(m))
    return seen
