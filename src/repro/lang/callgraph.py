"""Call graph construction and SCC condensation over program methods.

The inference processes mutually recursive groups bottom-up
(rule [TNT-INF] of the paper); :func:`method_sccs` returns the strongly
connected components of the call graph in reverse-topological (callee-first)
order.
"""

from __future__ import annotations

from typing import Dict, List, Set

import networkx as nx

from repro.lang.ast import Program, stmt_calls


def call_graph(program: Program) -> "nx.DiGraph":
    """Directed graph: edge ``m -> n`` when method *m* calls *n*."""
    g = nx.DiGraph()
    for name in program.methods:
        g.add_node(name)
    for name, method in program.methods.items():
        if method.body is None:
            continue
        for callee in stmt_calls(method.body):
            if callee in program.methods:
                g.add_edge(name, callee)
    return g


def method_sccs(program: Program) -> List[List[str]]:
    """SCCs of the call graph, callees before callers.

    Each SCC is sorted by name for determinism.
    """
    g = call_graph(program)
    condensation = nx.condensation(g)
    order = list(nx.topological_sort(condensation))
    sccs: List[List[str]] = []
    for node in reversed(order):
        members = sorted(condensation.nodes[node]["members"])
        sccs.append(members)
    return sccs


def is_recursive_scc(program: Program, scc: List[str]) -> bool:
    """Whether the SCC contains a (mutual) recursion."""
    if len(scc) > 1:
        return True
    name = scc[0]
    method = program.methods[name]
    if method.body is None:
        return False
    return name in stmt_calls(method.body)


def reachable_methods(program: Program, roots: List[str]) -> Set[str]:
    """All methods transitively callable from *roots*."""
    g = call_graph(program)
    seen: Set[str] = set()
    stack = [r for r in roots if r in program.methods]
    while stack:
        m = stack.pop()
        if m in seen:
            continue
        seen.add(m)
        stack.extend(g.successors(m))
    return seen
