"""Desugaring passes: while->tail-recursion and call flattening.

After :func:`desugar_program`:

* no ``While`` statements remain -- each loop becomes a fresh tail-recursive
  method (named ``<method>_loop<k>``, flagged ``source_loop=True``) exactly
  as the paper assumes;
* method calls appear only in two normalised positions --
  ``x = mn(pure-args);`` or ``mn(pure-args);`` -- so the verifier never
  meets a nested call expression;
* ``VarDecl`` initialisers are pure (call initialisers are split into a
  declaration followed by an assignment).

A loop call site is summarised at the caller as::

    <method>_loopK(vs);  havoc <modified vs>;  assume(!cond);

which is the standard sound over-approximation: if the loop terminates the
modified variables hold *some* values falsifying the guard; if it does not
terminate, the code after the call is unreachable and the inference will
discover that from the loop method's own summary.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lang import ast
from repro.lang.ast import (
    Assign,
    Assume,
    Binary,
    CallExpr,
    CallStmt,
    Expr,
    FieldRead,
    FieldWrite,
    Havoc,
    If,
    Method,
    NewExpr,
    Nondet,
    Param,
    Program,
    Return,
    Seq,
    Skip,
    Stmt,
    Type,
    Unary,
    Var,
    VarDecl,
    While,
    expr_vars,
    seq,
    stmt_assigned_vars,
    stmt_used_vars,
)
from repro.lang.to_arith import is_pure_bool


class DesugarError(Exception):
    """Raised on constructs outside the supported fragment."""


@dataclass(frozen=True)
class LoopOrigin:
    """Where a desugared ``<method>_loopK`` method came from.

    Recorded (into the ``origin_out`` mapping of :func:`desugar_program`)
    at extraction time, keyed by loop-method name.  ``while_node`` is the
    *original* :class:`While` object from the caller's AST -- object
    identity is preserved through desugaring, so pre-analysis facts
    computed on the source AST (keyed by ``id(while_node)``) can be
    re-attached to the loop method regardless of how nested loops were
    numbered.
    """

    while_node: While
    method_name: str               # the enclosing source method
    carried: Tuple[str, ...]       # loop-method parameters, sorted
    modified: Tuple[str, ...]      # variables the body may write, sorted


class _Desugarer:
    def __init__(
        self,
        program: Program,
        origin_out: Optional[Dict[str, LoopOrigin]] = None,
    ):
        self.program = program
        self.new_methods: Dict[str, Method] = {}
        self.origin_out = origin_out
        self._temp_counter = itertools.count()
        self._loop_counter: Dict[str, itertools.count] = {}

    def fresh_temp(self) -> str:
        return f"_t{next(self._temp_counter)}"

    def fresh_loop_name(self, method: str) -> str:
        counter = self._loop_counter.setdefault(method, itertools.count())
        return f"{method}_loop{next(counter)}"

    # -- expressions ----------------------------------------------------------

    def flatten_expr(
        self,
        e: Expr,
        pre: List[Stmt],
        scope: Dict[str, Type],
        method: Method,
    ) -> Expr:
        """Rewrite *e* so that it contains no calls or allocations; emit
        the extracted statements into *pre*."""
        if isinstance(e, CallExpr):
            args = tuple(
                self.flatten_expr(a, pre, scope, method) for a in e.args
            )
            callee = self.program.methods.get(e.name)
            rtype: Type = callee.ret_type if callee is not None else ast.INT
            temp = self.fresh_temp()
            scope[temp] = rtype
            pre.append(VarDecl(rtype, temp, None))
            pre.append(Assign(temp, CallExpr(e.name, args)))
            return Var(temp)
        if isinstance(e, NewExpr):
            args = tuple(
                self.flatten_expr(a, pre, scope, method) for a in e.args
            )
            temp = self.fresh_temp()
            rtype = ast.NamedType(e.type_name)
            scope[temp] = rtype
            pre.append(VarDecl(rtype, temp, None))
            pre.append(Assign(temp, NewExpr(e.type_name, args)))
            return Var(temp)
        if isinstance(e, Unary):
            return Unary(e.op, self.flatten_expr(e.arg, pre, scope, method))
        if isinstance(e, Binary):
            left = self.flatten_expr(e.left, pre, scope, method)
            right = self.flatten_expr(e.right, pre, scope, method)
            return Binary(e.op, left, right)
        if isinstance(e, FieldRead):
            return FieldRead(
                self.flatten_expr(e.base, pre, scope, method), e.fieldname
            )
        return e

    # -- statements -------------------------------------------------------------

    def desugar_stmt(
        self, s: Stmt, scope: Dict[str, Type], method: Method
    ) -> Stmt:
        if isinstance(s, (Skip, Havoc)):
            return s
        if isinstance(s, VarDecl):
            scope[s.name] = s.type
            if s.init is None:
                return s
            pre: List[Stmt] = []
            init = self.flatten_expr(s.init, pre, scope, method)
            if pre:
                return seq(VarDecl(s.type, s.name, None), *pre, Assign(s.name, init))
            return VarDecl(s.type, s.name, init)
        if isinstance(s, Assign):
            pre = []
            if isinstance(s.value, (CallExpr, NewExpr)):
                # keep a top-level call assignment, but flatten its args
                args = tuple(
                    self.flatten_expr(a, pre, scope, method)
                    for a in s.value.args
                )
                if isinstance(s.value, CallExpr):
                    value: Expr = CallExpr(s.value.name, args)
                else:
                    value = NewExpr(s.value.type_name, args)
            else:
                value = self.flatten_expr(s.value, pre, scope, method)
            return seq(*pre, Assign(s.name, value)) if pre else Assign(s.name, value)
        if isinstance(s, FieldWrite):
            pre = []
            value = self.flatten_expr(s.value, pre, scope, method)
            out = FieldWrite(s.base, s.fieldname, value)
            return seq(*pre, out) if pre else out
        if isinstance(s, CallStmt):
            pre = []
            args = tuple(self.flatten_expr(a, pre, scope, method) for a in s.args)
            out = CallStmt(s.name, args)
            return seq(*pre, out) if pre else out
        if isinstance(s, Seq):
            return seq(*(self.desugar_stmt(t, scope, method) for t in s.stmts))
        if isinstance(s, If):
            pre = []
            cond = self.flatten_expr(s.cond, pre, scope, method)
            then = self.desugar_stmt(s.then, dict(scope), method)
            els = self.desugar_stmt(s.els, dict(scope), method)
            out: Stmt = If(cond, then, els)
            return seq(*pre, out) if pre else out
        if isinstance(s, Return):
            if s.value is None:
                return s
            pre = []
            value = self.flatten_expr(s.value, pre, scope, method)
            return seq(*pre, Return(value)) if pre else Return(value)
        if isinstance(s, Assume):
            return s
        if isinstance(s, While):
            return self.desugar_while(s, scope, method)
        raise TypeError(f"unknown statement {type(s).__name__}")

    def desugar_while(
        self, s: While, scope: Dict[str, Type], method: Method
    ) -> Stmt:
        if _contains_return(s.body):
            raise DesugarError(
                f"return inside a while body of {method.name!r} is not "
                "supported; restructure the loop (the paper's core language "
                "has no while at all)"
            )
        body = self.desugar_stmt(s.body, dict(scope), method)
        pre: List[Stmt] = []
        cond_scope = dict(scope)
        cond = self.flatten_expr(s.cond, pre, cond_scope, method)
        if pre:
            raise DesugarError(
                f"calls inside a loop condition of {method.name!r} are not "
                "supported; hoist the call manually"
            )
        used = (stmt_used_vars(s.body) | expr_vars(s.cond)) & set(scope)
        modified = stmt_assigned_vars(s.body) & set(scope)
        carried = sorted(used | modified)
        loop_name = self.fresh_loop_name(method.name)
        params = [Param(scope[v], v) for v in carried]
        loop_body = If(
            cond,
            seq(body, CallStmt(loop_name, tuple(Var(v) for v in carried))),
            Skip(),
        )
        # Propagate the enclosing contract over variables that are never
        # assigned anywhere in the method: those are invariant, so the
        # entry `requires` still holds at every loop iteration.  (This is
        # what makes contracts like `requires b > 0` visible to analyses
        # of the extracted loop method.)
        loop_requires = None
        if method.requires is not None and method.body is not None:
            immutable = (
                set(carried)
                - stmt_assigned_vars(method.body)
                - {p.name for p in method.params if p.by_ref}
            )
            if immutable:
                from repro.arith.solver import project

                try:
                    projected = project(method.requires, keep=immutable)
                    from repro.arith.formula import BoolConst

                    if not isinstance(projected, BoolConst):
                        loop_requires = projected
                except MemoryError:
                    loop_requires = None
        loop_method = Method(
            ret_type=ast.VOID,
            name=loop_name,
            params=params,
            body=loop_body,
            requires=loop_requires,
            source_loop=True,
        )
        self.new_methods[loop_name] = loop_method
        if self.origin_out is not None:
            self.origin_out[loop_name] = LoopOrigin(
                while_node=s,
                method_name=method.name,
                carried=tuple(carried),
                modified=tuple(sorted(modified)),
            )
        # Desugar the freshly built loop body too (it may contain nested
        # loops that were already handled recursively via desugar_stmt, but
        # the If wrapper itself needs no further treatment).
        call_site: List[Stmt] = [
            CallStmt(loop_name, tuple(Var(v) for v in carried))
        ]
        if modified:
            call_site.append(Havoc(tuple(sorted(modified))))
        if is_pure_bool(s.cond):
            call_site.append(Assume(Unary("!", s.cond)))
        return seq(*call_site)


def _contains_return(s: Stmt) -> bool:
    if isinstance(s, Return):
        return True
    if isinstance(s, Seq):
        return any(_contains_return(t) for t in s.stmts)
    if isinstance(s, If):
        return _contains_return(s.then) or _contains_return(s.els)
    if isinstance(s, While):
        return _contains_return(s.body)
    return False


def desugar_program(
    program: Program,
    origin_out: Optional[Dict[str, "LoopOrigin"]] = None,
) -> Program:
    """Return a new program with loops and nested calls desugared away.

    When *origin_out* is supplied, every extracted loop method's
    :class:`LoopOrigin` is recorded into it (keyed by loop-method name),
    letting the pre-analysis map facts about source ``While`` nodes onto
    the tail-recursive methods they became.
    """
    d = _Desugarer(program, origin_out=origin_out)
    methods: Dict[str, Method] = {}
    for name, m in program.methods.items():
        if m.body is None:
            methods[name] = m
            continue
        scope: Dict[str, Type] = {p.name: p.type for p in m.params}
        body = d.desugar_stmt(m.body, scope, m)
        methods[name] = Method(
            ret_type=m.ret_type,
            name=m.name,
            params=m.params,
            body=body,
            requires=m.requires,
            ensures=m.ensures,
            heap_specs=m.heap_specs,
            is_primitive=m.is_primitive,
            source_loop=m.source_loop,
            pos=m.pos,
            rank_hints=m.rank_hints,
        )
    methods.update(d.new_methods)
    return Program(data_decls=dict(program.data_decls), methods=methods)
