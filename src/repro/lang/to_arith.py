"""Translation from pure language expressions to arithmetic formulas/terms.

Only *pure* expressions translate: no calls, no heap reads, no allocation.
``nondet()`` translates to a fresh variable when a generator is supplied
(the verifier threads one through); in specification position it is
rejected.  ``null`` is translated as the integer constant 0, matching the
numeric abstraction used by :mod:`repro.seplog`.
"""

from __future__ import annotations

import contextvars
from typing import Callable, Optional

from repro.arith.formula import (
    FALSE,
    Formula,
    TRUE,
    atom_eq,
    atom_ge,
    atom_gt,
    atom_le,
    atom_lt,
    atom_ne,
    conj,
    disj,
    neg,
)
from repro.arith.terms import LinExpr, const, var
from repro.lang.ast import (
    Binary,
    BoolLit,
    Expr,
    IntLit,
    Nondet,
    NullLit,
    Unary,
    Var,
)

_COMPARISONS = {"<", "<=", ">", ">=", "==", "!="}


class PurityError(Exception):
    """Raised when a non-pure expression is translated."""


# Context-local like the formula fresh-name counter (see
# repro.arith.formula._FRESH_COUNTER for the concurrency rationale).
_FRESH: contextvars.ContextVar[int] = contextvars.ContextVar(
    "repro-nondet-counter", default=0
)


def default_fresh(prefix: str = "nd") -> str:
    n = _FRESH.get()
    _FRESH.set(n + 1)
    return f"{prefix}_{n}"


def reset_fresh() -> None:
    """Restart the nondet-name counter in the current context (bench
    cold-start protocol; see
    :func:`repro.arith.formula.reset_fresh_names`)."""
    _FRESH.set(0)


def fresh_scope() -> contextvars.Token:
    """Enter a zero-based nondet-name scope; see
    :func:`repro.arith.formula.fresh_scope`."""
    return _FRESH.set(0)


def exit_fresh_scope(token: contextvars.Token) -> None:
    _FRESH.reset(token)


def expr_to_linexpr(
    e: Expr, fresh: Optional[Callable[[], str]] = None
) -> LinExpr:
    """Translate an arithmetic expression to a :class:`LinExpr`."""
    if isinstance(e, IntLit):
        return const(e.value)
    if isinstance(e, NullLit):
        return const(0)
    if isinstance(e, Var):
        return var(e.name)
    if isinstance(e, Nondet):
        if fresh is None:
            raise PurityError("nondet() is not allowed here")
        return var(fresh())
    if isinstance(e, Unary) and e.op == "-":
        return -expr_to_linexpr(e.arg, fresh)
    if isinstance(e, Binary):
        if e.op == "+":
            return expr_to_linexpr(e.left, fresh) + expr_to_linexpr(e.right, fresh)
        if e.op == "-":
            return expr_to_linexpr(e.left, fresh) - expr_to_linexpr(e.right, fresh)
        if e.op == "*":
            left = expr_to_linexpr(e.left, fresh)
            right = expr_to_linexpr(e.right, fresh)
            if left.is_constant():
                return right.scale(left.constant)
            if right.is_constant():
                return left.scale(right.constant)
            raise PurityError(
                f"non-linear multiplication {e} is outside the core language"
            )
    raise PurityError(f"expression {e} is not a pure linear expression")


def expr_to_formula(
    e: Expr, fresh: Optional[Callable[[], str]] = None
) -> Formula:
    """Translate a boolean expression to an arithmetic :class:`Formula`."""
    if isinstance(e, BoolLit):
        return TRUE if e.value else FALSE
    if isinstance(e, Unary) and e.op == "!":
        return neg(expr_to_formula(e.arg, fresh))
    if isinstance(e, Binary):
        if e.op == "&&":
            return conj(
                expr_to_formula(e.left, fresh), expr_to_formula(e.right, fresh)
            )
        if e.op == "||":
            return disj(
                expr_to_formula(e.left, fresh), expr_to_formula(e.right, fresh)
            )
        if e.op in _COMPARISONS:
            left = expr_to_linexpr(e.left, fresh)
            right = expr_to_linexpr(e.right, fresh)
            builder = {
                "<": atom_lt,
                "<=": atom_le,
                ">": atom_gt,
                ">=": atom_ge,
                "==": atom_eq,
                "!=": atom_ne,
            }[e.op]
            return builder(left, right)
    if isinstance(e, Nondet):
        # A nondeterministic boolean: unconstrained fresh variable == 0.
        if fresh is None:
            raise PurityError("nondet() is not allowed here")
        return atom_eq(var(fresh()), 0)
    raise PurityError(f"expression {e} is not a pure boolean expression")


def is_pure_bool(e: Expr) -> bool:
    """Whether *e* translates as a boolean formula without fresh inputs."""
    try:
        expr_to_formula(e)
        return True
    except PurityError:
        return False
