"""Recursive-descent parser for the core language's concrete syntax.

Grammar sketch (see tests for worked examples)::

    program  := (datadecl | method)*
    datadecl := 'data' IDENT '{' (type IDENT ';')* '}'
    method   := type IDENT '(' params ')' spec? block
    spec     := ('requires' expr)? ('ensures' expr)? ';'
    params   := (('ref'? type IDENT) (',' 'ref'? type IDENT)*)?
    block    := '{' stmt* '}'
    stmt     := block | 'if' '(' expr ')' stmt ('else' stmt)?
              | 'while' '(' expr ')' stmt
              | 'return' expr? ';' | 'assume' '(' expr ')' ';'
              | 'havoc' IDENT (',' IDENT)* ';'
              | type IDENT ('=' expr)? ';'
              | IDENT '=' expr ';' | IDENT '.' IDENT '=' expr ';'
              | IDENT '(' args ')' ';'
    expr     := disjunction with usual C precedence
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang import ast
from repro.lang.ast import (
    Assign,
    Assume,
    Binary,
    BoolLit,
    CallExpr,
    CallStmt,
    DataDecl,
    Expr,
    FieldRead,
    FieldWrite,
    Havoc,
    If,
    IntLit,
    Method,
    NewExpr,
    Nondet,
    NullLit,
    Param,
    Program,
    Return,
    Skip,
    Stmt,
    Type,
    Unary,
    Var,
    VarDecl,
    While,
    seq,
)
from repro.lang.errors import SourceError
from repro.lang.lexer import Token, tokenize


class ParseError(SourceError):
    """Raised when the token stream does not match the grammar.

    Carries a machine-readable position and a ``Diagnostic`` bridge via
    the :class:`~repro.lang.errors.SourceError` base.  The EOF token
    keeps the last line/col, so even unexpected-end-of-input failures
    report a real position.
    """


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, text: str) -> bool:
        return self.peek().text == text and self.peek().kind in ("sym", "kw")

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        tok = self.peek()
        if not self.check(text):
            found = tok.text if tok.kind != "eof" else "end of input"
            raise ParseError(
                f"expected {text!r} but found {found!r}",
                pos=(tok.line, tok.col),
            )
        return self.advance()

    def expect_ident(self) -> str:
        tok = self.peek()
        if tok.kind != "ident":
            found = tok.text if tok.kind != "eof" else "end of input"
            raise ParseError(
                f"expected identifier but found {found!r}",
                pos=(tok.line, tok.col),
            )
        self.advance()
        return tok.text

    # -- types ---------------------------------------------------------------

    def at_type(self) -> bool:
        tok = self.peek()
        if tok.kind == "kw" and tok.text in ("int", "bool", "void"):
            return True
        # a named type is IDENT followed by IDENT (declaration position)
        return tok.kind == "ident" and self.peek(1).kind == "ident"

    def parse_type(self) -> Type:
        tok = self.advance()
        if tok.text == "int":
            return ast.INT
        if tok.text == "bool":
            return ast.BOOL
        if tok.text == "void":
            return ast.VOID
        if tok.kind == "ident":
            return ast.NamedType(tok.text)
        raise ParseError(
            f"expected a type, found {tok.text!r}", pos=(tok.line, tok.col)
        )

    # -- program ---------------------------------------------------------------

    def parse_program(self) -> Program:
        data_decls = {}
        methods = {}
        while self.peek().kind != "eof":
            start = self.peek()
            if self.check("data"):
                d = self.parse_data_decl()
                if d.name in data_decls:
                    raise ParseError(
                        f"duplicate data declaration {d.name!r}",
                        pos=(start.line, start.col),
                    )
                data_decls[d.name] = d
            else:
                m = self.parse_method()
                if m.name in methods:
                    raise ParseError(
                        f"duplicate method {m.name!r}",
                        pos=(start.line, start.col),
                    )
                methods[m.name] = m
        return Program(data_decls=data_decls, methods=methods)

    def parse_data_decl(self) -> DataDecl:
        start = self.expect("data")
        name = self.expect_ident()
        self.expect("{")
        fields: List[Param] = []
        while not self.check("}"):
            ftype = self.parse_type()
            fname = self.expect_ident()
            self.expect(";")
            fields.append(Param(ftype, fname))
        self.expect("}")
        return DataDecl(name=name, fields=tuple(fields), pos=(start.line, start.col))

    def parse_method(self) -> Method:
        start = self.peek()
        ret_type = self.parse_type()
        name = self.expect_ident()
        self.expect("(")
        params: List[Param] = []
        if not self.check(")"):
            while True:
                by_ref = self.accept("ref")
                ptype = self.parse_type()
                pname = self.expect_ident()
                params.append(Param(ptype, pname, by_ref=by_ref))
                if not self.accept(","):
                    break
        self.expect(")")
        requires_expr: Optional[Expr] = None
        ensures_expr: Optional[Expr] = None
        has_spec = False
        if self.check("requires"):
            self.advance()
            requires_expr = self.parse_expr()
            has_spec = True
        if self.check("ensures"):
            self.advance()
            ensures_expr = self.parse_expr()
            has_spec = True
        consumed_semi = False
        if has_spec:
            consumed_semi = self.accept(";")
        if not self.check("{") and (consumed_semi or self.accept(";")):
            body: Optional[Stmt] = None  # primitive / declared-only method
        else:
            body = self.parse_block()
        from repro.lang.to_arith import expr_to_formula

        return Method(
            ret_type=ret_type,
            name=name,
            params=params,
            body=body,
            requires=(
                expr_to_formula(requires_expr) if requires_expr is not None else None
            ),
            ensures=(
                expr_to_formula(ensures_expr) if ensures_expr is not None else None
            ),
            is_primitive=body is None,
            pos=(start.line, start.col),
        )

    # -- statements ---------------------------------------------------------

    def parse_block(self) -> Stmt:
        self.expect("{")
        stmts: List[Stmt] = []
        while not self.check("}"):
            stmts.append(self.parse_stmt())
        self.expect("}")
        return seq(*stmts)

    def parse_stmt(self) -> Stmt:
        start = self.peek()
        pos = (start.line, start.col)
        if self.check("{"):
            return self.parse_block()
        if self.accept("if"):
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            then = self.parse_stmt()
            els: Stmt = Skip()
            if self.accept("else"):
                els = self.parse_stmt()
            return If(cond, then, els, pos=pos)
        if self.accept("while"):
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            body = self.parse_stmt()
            return While(cond, body, pos=pos)
        if self.accept("return"):
            if self.accept(";"):
                return Return(None, pos=pos)
            value = self.parse_expr()
            self.expect(";")
            return Return(value, pos=pos)
        if self.accept("assume"):
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            self.expect(";")
            return Assume(cond, pos=pos)
        if self.accept("havoc"):
            names = [self.expect_ident()]
            while self.accept(","):
                names.append(self.expect_ident())
            self.expect(";")
            return Havoc(tuple(names), pos=pos)
        if self.at_type():
            vtype = self.parse_type()
            name = self.expect_ident()
            init: Optional[Expr] = None
            if self.accept("="):
                init = self.parse_expr()
            self.expect(";")
            return VarDecl(vtype, name, init, pos=pos)
        # assignment / field write / call statement
        name = self.expect_ident()
        if self.accept("."):
            fieldname = self.expect_ident()
            self.expect("=")
            value = self.parse_expr()
            self.expect(";")
            return FieldWrite(name, fieldname, value, pos=pos)
        if self.accept("="):
            value = self.parse_expr()
            self.expect(";")
            return Assign(name, value, pos=pos)
        if self.check("("):
            self.advance()
            args = self.parse_args()
            self.expect(")")
            self.expect(";")
            return CallStmt(name, tuple(args), pos=pos)
        tok = self.peek()
        raise ParseError(
            f"unexpected token {tok.text!r} after {name!r}",
            pos=(tok.line, tok.col),
        )

    def parse_args(self) -> List[Expr]:
        args: List[Expr] = []
        if not self.check(")"):
            while True:
                args.append(self.parse_expr())
                if not self.accept(","):
                    break
        return args

    # -- expressions (precedence climbing) -----------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.check("||"):
            self.advance()
            right = self.parse_and()
            left = Binary("||", left, right)
        return left

    def parse_and(self) -> Expr:
        left = self.parse_cmp()
        while self.check("&&"):
            self.advance()
            right = self.parse_cmp()
            left = Binary("&&", left, right)
        return left

    def parse_cmp(self) -> Expr:
        left = self.parse_add()
        for op in ("<=", ">=", "==", "!=", "<", ">"):
            if self.check(op):
                self.advance()
                right = self.parse_add()
                return Binary(op, left, right)
        return left

    def parse_add(self) -> Expr:
        left = self.parse_mul()
        while self.check("+") or self.check("-"):
            op = self.advance().text
            right = self.parse_mul()
            left = Binary(op, left, right)
        return left

    def parse_mul(self) -> Expr:
        left = self.parse_unary()
        while self.check("*"):
            self.advance()
            right = self.parse_unary()
            left = Binary("*", left, right)
        return left

    def parse_unary(self) -> Expr:
        if self.accept("-"):
            return Unary("-", self.parse_unary())
        if self.accept("!"):
            return Unary("!", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        tok = self.peek()
        if tok.kind == "int":
            self.advance()
            return IntLit(int(tok.text))
        if self.accept("true"):
            return BoolLit(True)
        if self.accept("false"):
            return BoolLit(False)
        if self.accept("null"):
            return NullLit()
        if self.accept("nondet"):
            self.expect("(")
            self.expect(")")
            return Nondet()
        if self.accept("new"):
            type_name = self.expect_ident()
            self.expect("(")
            args = self.parse_args()
            self.expect(")")
            return NewExpr(type_name, tuple(args), pos=(tok.line, tok.col))
        if self.accept("("):
            inner = self.parse_expr()
            self.expect(")")
            return inner
        if tok.kind == "ident":
            name = self.expect_ident()
            if self.check("("):
                self.advance()
                args = self.parse_args()
                self.expect(")")
                return CallExpr(name, tuple(args), pos=(tok.line, tok.col))
            expr: Expr = Var(name, pos=(tok.line, tok.col))
            while self.accept("."):
                expr = FieldRead(expr, self.expect_ident(), pos=(tok.line, tok.col))
            return expr
        found = tok.text if tok.kind != "eof" else "end of input"
        raise ParseError(
            f"unexpected token {found!r}", pos=(tok.line, tok.col)
        )


def parse_program(source: str) -> Program:
    """Parse a whole program from concrete syntax."""
    return _Parser(tokenize(source)).parse_program()


def parse_expr(source: str) -> Expr:
    """Parse a single expression (used by tests and spec strings)."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expr()
    if parser.peek().kind != "eof":
        tok = parser.peek()
        raise ParseError(
            f"trailing input {tok.text!r}", pos=(tok.line, tok.col)
        )
    return expr
