"""Fuel-bounded concrete interpreter -- the ground-truth oracle.

The test suite uses this to cross-validate inferred summaries: running a
method on inputs satisfying an inferred ``Term`` precondition must halt
within generous fuel, and inputs satisfying a ``Loop`` precondition must
exhaust any fuel.  The interpreter runs the *original* (sugared) program,
so it also validates the desugarer indirectly.

Heap model: a dictionary from location ids to field records.  ``null`` is
location 0.  ``nondet()`` draws from a supplied iterator (deterministic in
tests) or a seeded RNG.
"""

from __future__ import annotations

import enum
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.lang.ast import (
    Assign,
    Assume,
    Binary,
    BoolLit,
    CallExpr,
    CallStmt,
    Expr,
    FieldRead,
    FieldWrite,
    Havoc,
    If,
    IntLit,
    Method,
    NewExpr,
    Nondet,
    NullLit,
    Program,
    Return,
    Seq,
    Skip,
    Stmt,
    Unary,
    Var,
    VarDecl,
    While,
)

Value = Union[int, bool]


class OutOfFuel(Exception):
    """The execution exceeded its step budget (possible non-termination)."""


class Outcome(enum.Enum):
    """Classification of one bounded concrete run (see :func:`observe`).

    ``HALTED`` is evidence of termination *for the given inputs*;
    ``FUEL_OUT`` is **not** evidence of divergence -- the budget (step
    fuel or wall clock) simply ran out, so the honest reading is
    "unknown"; ``PRUNED`` means an ``assume`` rejected the inputs (no
    evidence either way).  The corpus harness (:mod:`repro.corpus`)
    maps these onto its ground-truth labels accordingly.
    """

    HALTED = "halted"
    FUEL_OUT = "fuel-out"
    PRUNED = "pruned"


class AssumeViolated(Exception):
    """An ``assume`` pruned this execution (not an error)."""


class InterpError(Exception):
    """Genuine runtime error (unknown variable, null dereference, ...)."""


class _ReturnSignal(Exception):
    def __init__(self, value: Optional[Value]):
        self.value = value


@dataclass
class Heap:
    cells: Dict[int, Dict[str, Value]] = field(default_factory=dict)
    next_loc: int = 1

    def allocate(self, fields: Dict[str, Value]) -> int:
        loc = self.next_loc
        self.next_loc += 1
        self.cells[loc] = dict(fields)
        return loc

    def read(self, loc: Value, fieldname: str) -> Value:
        if not isinstance(loc, int) or loc == 0 or loc not in self.cells:
            raise InterpError(f"null/invalid dereference at .{fieldname}")
        record = self.cells[loc]
        if fieldname not in record:
            raise InterpError(f"no field {fieldname!r} at location {loc}")
        return record[fieldname]

    def write(self, loc: Value, fieldname: str, value: Value) -> None:
        if not isinstance(loc, int) or loc == 0 or loc not in self.cells:
            raise InterpError(f"null/invalid dereference at .{fieldname}")
        self.cells[loc][fieldname] = value


class Interpreter:
    """Interpret a program with a global step budget ("fuel")."""

    def __init__(
        self,
        program: Program,
        fuel: int = 100_000,
        nondet: Optional[Iterator[int]] = None,
        seed: int = 0,
        wall_clock: Optional[float] = None,
    ):
        self.program = program
        self.fuel = fuel
        self._rng = random.Random(seed)
        self._nondet = nondet
        # Belt to the fuel braces: fuel bounds the *number* of steps, but
        # a single step can be arbitrarily slow (integers grow without
        # bound, so one addition on million-digit values dwarfs the rest
        # of the run).  An optional wall-clock budget turns such runs
        # into OutOfFuel instead of stalling the caller -- the fuzz
        # harness relies on this to classify a stuck run as UNKNOWN
        # rather than hanging the suite.
        self._deadline = (
            None if wall_clock is None else time.monotonic() + wall_clock
        )

    def _draw(self) -> int:
        if self._nondet is not None:
            try:
                return next(self._nondet)
            except StopIteration:
                return 0
        return self._rng.randint(-8, 8)

    def _tick(self) -> None:
        self.fuel -= 1
        if self.fuel <= 0:
            raise OutOfFuel()
        # Checked on *every* tick: step cost can double per iteration
        # (squaring loops), so any fixed check stride would let the value
        # blow past memory between two checks.  The clock read only costs
        # anything when a deadline was requested, and overshoot is then
        # bounded by the single step in flight.
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise OutOfFuel()

    # -- public API ---------------------------------------------------------

    def run(self, name: str, args: List[Value]) -> Optional[Value]:
        """Run method *name* on *args*; returns its result (None for void).

        Raises :class:`OutOfFuel` when the budget is exhausted and
        :class:`AssumeViolated` when an assumption prunes the execution.
        Deep interpreted recursion that overflows the Python stack is
        reported as :class:`OutOfFuel` as well (it is the same "did not
        finish within budget" evidence).
        """
        import sys

        method = self.program.method(name)
        heap = Heap()
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 50_000))
        try:
            return self._call(method, list(args), heap)
        except RecursionError:
            raise OutOfFuel() from None
        finally:
            sys.setrecursionlimit(old_limit)

    # -- core -----------------------------------------------------------------

    def _call(self, method: Method, args: List[Value], heap: Heap) -> Optional[Value]:
        self._tick()
        if method.body is None:
            raise InterpError(f"cannot execute bodiless method {method.name!r}")
        if len(args) != len(method.params):
            raise InterpError(
                f"{method.name} expects {len(method.params)} args, got {len(args)}"
            )
        env: Dict[str, Value] = {
            p.name: v for p, v in zip(method.params, args)
        }
        try:
            self._exec(method.body, env, heap)
        except _ReturnSignal as sig:
            return sig.value
        return None

    def _exec(self, s: Stmt, env: Dict[str, Value], heap: Heap) -> None:
        self._tick()
        if isinstance(s, Skip):
            return
        if isinstance(s, VarDecl):
            env[s.name] = (
                self._eval(s.init, env, heap) if s.init is not None else 0
            )
            return
        if isinstance(s, Assign):
            env[s.name] = self._eval(s.value, env, heap)
            return
        if isinstance(s, FieldWrite):
            base = env.get(s.base)
            if base is None:
                raise InterpError(f"unknown variable {s.base!r}")
            heap.write(base, s.fieldname, self._eval(s.value, env, heap))
            return
        if isinstance(s, CallStmt):
            callee = self.program.method(s.name)
            values = [self._eval(a, env, heap) for a in s.args]
            self._call(callee, values, heap)
            # By-value semantics: no writeback.  (Loops are interpreted from
            # the sugared source, so this matters only for explicit calls.)
            return
        if isinstance(s, Seq):
            for t in s.stmts:
                self._exec(t, env, heap)
            return
        if isinstance(s, If):
            if self._truthy(self._eval(s.cond, env, heap)):
                self._exec(s.then, env, heap)
            else:
                self._exec(s.els, env, heap)
            return
        if isinstance(s, While):
            while True:
                self._tick()
                if not self._truthy(self._eval(s.cond, env, heap)):
                    return
                self._exec(s.body, env, heap)
        if isinstance(s, Return):
            raise _ReturnSignal(
                self._eval(s.value, env, heap) if s.value is not None else None
            )
        if isinstance(s, Assume):
            if not self._truthy(self._eval(s.cond, env, heap)):
                raise AssumeViolated()
            return
        if isinstance(s, Havoc):
            for name in s.names:
                env[name] = self._draw()
            return
        raise TypeError(f"unknown statement {type(s).__name__}")

    def _eval(self, e: Expr, env: Dict[str, Value], heap: Heap) -> Value:
        if isinstance(e, IntLit):
            return e.value
        if isinstance(e, BoolLit):
            return e.value
        if isinstance(e, NullLit):
            return 0
        if isinstance(e, Var):
            if e.name not in env:
                raise InterpError(f"unknown variable {e.name!r}")
            return env[e.name]
        if isinstance(e, Nondet):
            return self._draw()
        if isinstance(e, Unary):
            v = self._eval(e.arg, env, heap)
            if e.op == "-":
                return -self._as_int(v)
            if e.op == "!":
                return not self._truthy(v)
            raise InterpError(f"unknown unary operator {e.op!r}")
        if isinstance(e, Binary):
            if e.op == "&&":
                return self._truthy(self._eval(e.left, env, heap)) and self._truthy(
                    self._eval(e.right, env, heap)
                )
            if e.op == "||":
                return self._truthy(self._eval(e.left, env, heap)) or self._truthy(
                    self._eval(e.right, env, heap)
                )
            left = self._eval(e.left, env, heap)
            right = self._eval(e.right, env, heap)
            if e.op == "+":
                return self._as_int(left) + self._as_int(right)
            if e.op == "-":
                return self._as_int(left) - self._as_int(right)
            if e.op == "*":
                return self._as_int(left) * self._as_int(right)
            if e.op == "<":
                return self._as_int(left) < self._as_int(right)
            if e.op == "<=":
                return self._as_int(left) <= self._as_int(right)
            if e.op == ">":
                return self._as_int(left) > self._as_int(right)
            if e.op == ">=":
                return self._as_int(left) >= self._as_int(right)
            if e.op == "==":
                return left == right
            if e.op == "!=":
                return left != right
            raise InterpError(f"unknown binary operator {e.op!r}")
        if isinstance(e, FieldRead):
            base = self._eval(e.base, env, heap)
            return heap.read(base, e.fieldname)
        if isinstance(e, CallExpr):
            callee = self.program.method(e.name)
            values = [self._eval(a, env, heap) for a in e.args]
            result = self._call(callee, values, heap)
            if result is None:
                raise InterpError(f"void call {e.name} used as a value")
            return result
        if isinstance(e, NewExpr):
            decl = self.program.data_decls.get(e.type_name)
            if decl is None:
                raise InterpError(f"unknown data type {e.type_name!r}")
            values = [self._eval(a, env, heap) for a in e.args]
            fields: Dict[str, Value] = {}
            for f, v in zip(decl.fields, values):
                fields[f.name] = v
            for f in decl.fields[len(values):]:
                fields[f.name] = 0
            return heap.allocate(fields)
        raise TypeError(f"unknown expression {type(e).__name__}")

    @staticmethod
    def _truthy(v: Value) -> bool:
        if isinstance(v, bool):
            return v
        return v != 0

    @staticmethod
    def _as_int(v: Value) -> int:
        if isinstance(v, bool):
            return int(v)
        return v


def observe(
    program: Program,
    name: str,
    args: List[Value],
    fuel: int = 100_000,
    nondet: Optional[Iterator[int]] = None,
    seed: int = 0,
    wall_clock: Optional[float] = None,
) -> Outcome:
    """Run a method under an explicit budget and classify the outcome.

    The budget is two-sided: *fuel* bounds the step count and
    *wall_clock* (seconds, optional) bounds real time -- the latter
    matters when values grow so large that individual steps get slow.
    Exhausting either yields :attr:`Outcome.FUEL_OUT`, which callers
    must read as "unknown", never as proof of divergence; the fuzz
    harness maps it to its ``UNKNOWN`` label so a generated divergent
    program can burn at most one budget instead of stalling the suite.
    """
    interp = Interpreter(
        program, fuel=fuel, nondet=nondet, seed=seed, wall_clock=wall_clock
    )
    try:
        interp.run(name, args)
        return Outcome.HALTED
    except OutOfFuel:
        return Outcome.FUEL_OUT
    except AssumeViolated:
        return Outcome.PRUNED


def terminates(
    program: Program,
    name: str,
    args: List[Value],
    fuel: int = 100_000,
    nondet: Optional[Iterator[int]] = None,
) -> Optional[bool]:
    """Run a method and classify the outcome.

    Returns ``True`` when the run halts within fuel, ``False`` when fuel is
    exhausted (evidence of divergence for the given inputs), and ``None``
    when an ``assume`` pruned the run (no evidence either way).  This is
    the historical two-valued-plus-pruned face of :func:`observe`; new
    callers that need an explicit "budget ran out, no evidence" reading
    (or a wall-clock bound) should use :func:`observe` directly.
    """
    outcome = observe(program, name, args, fuel=fuel, nondet=nondet)
    if outcome is Outcome.PRUNED:
        return None
    return outcome is Outcome.HALTED
