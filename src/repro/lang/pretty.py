"""Pretty printer for programs; round-trips through the parser."""

from __future__ import annotations

from typing import List

from repro.lang.ast import (
    Assign,
    Assume,
    CallStmt,
    DataDecl,
    FieldWrite,
    Havoc,
    If,
    Method,
    Program,
    Return,
    Seq,
    Skip,
    Stmt,
    VarDecl,
    While,
)

_INDENT = "  "


def pretty_stmt(s: Stmt, depth: int = 0) -> str:
    pad = _INDENT * depth
    if isinstance(s, Seq):
        return "\n".join(pretty_stmt(t, depth) for t in s.stmts)
    if isinstance(s, If):
        out = [f"{pad}if ({s.cond}) {{"]
        out.append(pretty_stmt(s.then, depth + 1))
        if isinstance(s.els, Skip):
            out.append(f"{pad}}}")
        else:
            out.append(f"{pad}}} else {{")
            out.append(pretty_stmt(s.els, depth + 1))
            out.append(f"{pad}}}")
        return "\n".join(out)
    if isinstance(s, While):
        out = [f"{pad}while ({s.cond}) {{"]
        out.append(pretty_stmt(s.body, depth + 1))
        out.append(f"{pad}}}")
        return "\n".join(out)
    if isinstance(s, (Skip, VarDecl, Assign, FieldWrite, CallStmt, Return,
                      Assume, Havoc)):
        return f"{pad}{s}"
    raise TypeError(f"unknown statement {type(s).__name__}")


def pretty_method(m: Method) -> str:
    params = ", ".join(str(p) for p in m.params)
    head = f"{m.ret_type} {m.name}({params})"
    lines: List[str] = [head]
    if m.requires is not None:
        lines.append(f"{_INDENT}// requires {m.requires!r}")
    if m.ensures is not None:
        lines.append(f"{_INDENT}// ensures {m.ensures!r}")
    if m.body is None:
        lines[-1] += ";"
        return "\n".join(lines)
    lines.append("{")
    lines.append(pretty_stmt(m.body, 1))
    lines.append("}")
    return "\n".join(lines)


def pretty_program(p: Program) -> str:
    chunks: List[str] = []
    for d in p.data_decls.values():
        chunks.append(str(d))
    for m in p.methods.values():
        chunks.append(pretty_method(m))
    return "\n\n".join(chunks)
