"""Pretty printer for programs; round-trips through the parser.

Round-trip contract (property-tested in
``tests/lang/test_pretty_roundtrip.py``): for every *parser-shaped*
program ``p`` -- one the parser could have produced, i.e. ``seq()``-
normalised bodies, non-negative integer literals, no field reads hanging
off call expressions -- ``parse_program(pretty_program(p))`` is
structurally equal to ``p``.  ``requires``/``ensures`` formulas are
rendered back to source syntax; formulas with no source form
(existential quantifiers, fractional coefficients that do not scale to
integers exactly) degrade to a ``//`` comment, which the lexer skips.
"""

from __future__ import annotations

from math import lcm
from typing import List, Optional

from repro.arith.formula import (
    And,
    Atom,
    BoolConst,
    Formula,
    Not,
    Or,
)
from repro.arith.terms import LinExpr
from repro.lang.ast import (
    Assign,
    Assume,
    CallStmt,
    DataDecl,
    FieldWrite,
    Havoc,
    If,
    Method,
    Program,
    Return,
    Seq,
    Skip,
    Stmt,
    VarDecl,
    While,
)

_INDENT = "  "


# ---------------------------------------------------------------------------
# Formulas back to source syntax
# ---------------------------------------------------------------------------


def linexpr_source(e: LinExpr) -> Optional[str]:
    """*e* as concrete-syntax arithmetic, or ``None`` when a coefficient
    is not an integer (the parser only produces integer atoms)."""
    if any(c.denominator != 1 for c in e.coeffs.values()):
        return None
    if e.constant.denominator != 1:
        return None
    out = ""
    for name in sorted(e.coeffs):
        c = int(e.coeffs[name])
        if c == 0:
            continue
        term = name if abs(c) == 1 else f"{abs(c)}*{name}"
        if not out:
            out = ("-" if c < 0 else "") + term
        else:
            out += (" - " if c < 0 else " + ") + term
    k = int(e.constant)
    if not out:
        return str(k)
    if k != 0:
        out += f" - {abs(k)}" if k < 0 else f" + {k}"
    return out


def formula_source(f: Formula) -> Optional[str]:
    """*f* as a concrete-syntax boolean expression, or ``None`` when the
    formula has no source form (``Exists``, unscalable rationals).

    Re-parsing the result through ``expr_to_formula`` rebuilds the same
    interned formula for anything the language pipeline itself produces:
    atoms are already normalised to ``e rel 0`` and the smart
    constructors re-canonicalise conjunct/disjunct sets.
    """
    if isinstance(f, BoolConst):
        return "true" if f.value else "false"
    if isinstance(f, Atom):
        expr = f.expr
        src = linexpr_source(expr)
        if src is None:
            # Scale through by the denominators' lcm; positive scaling
            # preserves `rel 0`.  (Display-exact; such atoms never come
            # from parsed source.)
            denoms = [c.denominator for c in expr.coeffs.values()]
            denoms.append(expr.constant.denominator)
            src = linexpr_source(expr.scale(lcm(*denoms)))
            if src is None:
                return None
        return f"{src} {f.rel.value} 0"
    if isinstance(f, (And, Or)):
        parts = []
        for arg in f.args:
            sub = formula_source(arg)
            if sub is None:
                return None
            parts.append(sub if isinstance(arg, Atom) else f"({sub})")
        joiner = " && " if isinstance(f, And) else " || "
        return joiner.join(parts)
    if isinstance(f, Not):
        sub = formula_source(f.arg)
        return None if sub is None else f"!({sub})"
    return None  # Exists and anything else: no source form


# ---------------------------------------------------------------------------
# Statements / methods / programs
# ---------------------------------------------------------------------------


def pretty_stmt(s: Stmt, depth: int = 0) -> str:
    pad = _INDENT * depth
    if isinstance(s, Seq):
        return "\n".join(pretty_stmt(t, depth) for t in s.stmts)
    if isinstance(s, If):
        out = [f"{pad}if ({s.cond}) {{"]
        out.append(pretty_stmt(s.then, depth + 1))
        if isinstance(s.els, Skip):
            out.append(f"{pad}}}")
        else:
            out.append(f"{pad}}} else {{")
            out.append(pretty_stmt(s.els, depth + 1))
            out.append(f"{pad}}}")
        return "\n".join(out)
    if isinstance(s, While):
        out = [f"{pad}while ({s.cond}) {{"]
        out.append(pretty_stmt(s.body, depth + 1))
        out.append(f"{pad}}}")
        return "\n".join(out)
    if isinstance(s, Skip):
        # There is no `skip;` keyword in the grammar: an empty block is
        # the concrete syntax that parses back to Skip.
        return f"{pad}{{ }}"
    if isinstance(s, (VarDecl, Assign, FieldWrite, CallStmt, Return,
                      Assume, Havoc)):
        return f"{pad}{s}"
    raise TypeError(f"unknown statement {type(s).__name__}")


def pretty_method(m: Method) -> str:
    params = ", ".join(str(p) for p in m.params)
    head = f"{m.ret_type} {m.name}({params})"
    lines: List[str] = [head]
    for kw, f in (("requires", m.requires), ("ensures", m.ensures)):
        if f is None:
            continue
        src = formula_source(f)
        if src is None:
            lines.append(f"{_INDENT}// {kw} {f!r}  (no source form)")
        else:
            lines.append(f"{_INDENT}{kw} {src}")
    if m.body is None:
        if lines[-1] is head:
            lines[-1] += ";"
        elif lines[-1].lstrip().startswith("//"):
            lines.append(f"{_INDENT};")
        else:
            lines[-1] += ";"
        return "\n".join(lines)
    lines.append("{")
    lines.append(pretty_stmt(m.body, 1))
    lines.append("}")
    return "\n".join(lines)


def pretty_data_decl(d: DataDecl) -> str:
    fields = "".join(f"\n{_INDENT}{p.type} {p.name};" for p in d.fields)
    return f"data {d.name} {{{fields}\n}}" if d.fields else f"data {d.name} {{ }}"


def pretty_program(p: Program) -> str:
    chunks: List[str] = []
    for d in p.data_decls.values():
        chunks.append(pretty_data_decl(d))
    for m in p.methods.values():
        chunks.append(pretty_method(m))
    return "\n\n".join(chunks)
