"""Core imperative language (paper Fig. 5) plus convenience sugar.

The language of the paper is a first-order imperative language with integer
and pointer data, method calls, and conditionals; ``while`` loops are sugar
that the desugarer rewrites into tail-recursive methods, exactly as the
paper assumes ("this core language does not include the while-loop
construct, as it assumes an automatic translation of loops into
tail-recursive methods").

Modules:

* :mod:`repro.lang.ast` -- abstract syntax (expressions, statements,
  methods, data declarations, programs).
* :mod:`repro.lang.lexer` / :mod:`repro.lang.parser` -- a hand-written
  recursive-descent frontend for a small C-like concrete syntax.
* :mod:`repro.lang.desugar` -- while->tail-recursion rewriting and
  expression-call flattening.
* :mod:`repro.lang.callgraph` -- call graph and SCC condensation.
* :mod:`repro.lang.interp` -- a fuel-bounded concrete interpreter used as a
  ground-truth oracle by the test suite.
* :mod:`repro.lang.pretty` -- pretty printer (round-trips with the parser).
"""

from repro.lang.ast import (
    Program,
    Method,
    Param,
    DataDecl,
    IntType,
    BoolType,
    VoidType,
    NamedType,
)
from repro.lang.parser import parse_program, ParseError
from repro.lang.desugar import desugar_program
from repro.lang.callgraph import call_graph, method_sccs

__all__ = [
    "Program",
    "Method",
    "Param",
    "DataDecl",
    "IntType",
    "BoolType",
    "VoidType",
    "NamedType",
    "parse_program",
    "ParseError",
    "desugar_program",
    "call_graph",
    "method_sccs",
]
