"""Core imperative language (paper Fig. 5) plus convenience sugar.

The language of the paper is a first-order imperative language with integer
and pointer data, method calls, and conditionals; ``while`` loops are sugar
that the desugarer rewrites into tail-recursive methods, exactly as the
paper assumes ("this core language does not include the while-loop
construct, as it assumes an automatic translation of loops into
tail-recursive methods").

Modules:

* :mod:`repro.lang.ast` -- abstract syntax (expressions, statements,
  methods, data declarations, programs).
* :mod:`repro.lang.frontends` -- pluggable source-language frontends
  lowering concrete syntaxes to the core AST: ``native`` (the C-like
  syntax below) and ``st`` (IEC 61131-3 Structured Text subset).
* :mod:`repro.lang.lexer` / :mod:`repro.lang.parser` -- the hand-written
  recursive-descent ``native`` frontend for a small C-like concrete
  syntax (kept importable from here for compatibility).
* :mod:`repro.lang.errors` -- ``SourceError`` base for ``LexError`` /
  ``ParseError``, carrying positions and ``Diagnostic`` bridges.
* :mod:`repro.lang.desugar` -- while->tail-recursion rewriting and
  expression-call flattening.
* :mod:`repro.lang.callgraph` -- call graph and SCC condensation.
* :mod:`repro.lang.interp` -- a fuel-bounded concrete interpreter used as a
  ground-truth oracle by the test suite.
* :mod:`repro.lang.pretty` -- pretty printer (round-trips with the parser).
"""

from repro.lang.ast import (
    Program,
    Method,
    Param,
    DataDecl,
    IntType,
    BoolType,
    VoidType,
    NamedType,
)
from repro.lang.errors import SourceError
from repro.lang.parser import parse_program, ParseError
from repro.lang.lexer import LexError
from repro.lang.desugar import desugar_program
from repro.lang.callgraph import call_graph, method_sccs
from repro.lang.frontends import (
    available_languages,
    get_frontend,
    language_for_path,
    parse_source,
)

__all__ = [
    "Program",
    "Method",
    "Param",
    "DataDecl",
    "IntType",
    "BoolType",
    "VoidType",
    "NamedType",
    "parse_program",
    "parse_source",
    "ParseError",
    "LexError",
    "SourceError",
    "available_languages",
    "get_frontend",
    "language_for_path",
    "desugar_program",
    "call_graph",
    "method_sccs",
]
