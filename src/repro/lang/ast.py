"""Abstract syntax for the core imperative language of the paper (Fig. 5).

Expressions
-----------
Arithmetic expressions are linear (``k``, ``v``, ``k*e``, ``e1+e2``, ``-e``)
per the paper's grammar; the parser additionally accepts ``e1-e2`` and
``e1*e2`` with one constant operand, both of which normalise into the
grammar.  ``Nondet`` models SV-COMP's ``__VERIFIER_nondet_int()``.

Statements
----------
``While`` is sugar (removed by :mod:`repro.lang.desugar`).  ``CallStmt`` and
``CallExpr`` cover calls in statement and expression position;
the desugarer flattens nested call expressions into temporaries so the
verifier only ever sees calls whose arguments are pure expressions.

Specifications
--------------
A method may carry a *safety* specification: ``requires`` (pure formula over
parameters) and ``ensures`` (pure formula over parameters and ``res``).
Heap specifications (separation-logic) are attached via ``heap_pre`` /
``heap_post`` and consumed by :mod:`repro.seplog`.  Temporal (termination)
specifications are never written by the user in this reproduction: the
inference attaches unknown pre/post predicates automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Source position ``(line, col)`` of a node, or ``None`` for nodes built
#: programmatically.  Positions are metadata: they are excluded from
#: equality, hashing, repr and structural fingerprints, so two programs
#: that differ only in layout are indistinguishable everywhere except in
#: diagnostics.
Pos = Optional[Tuple[int, int]]


def _pos_field() -> Pos:
    """The ``pos`` dataclass field shared by positioned AST nodes."""
    return field(default=None, compare=False, repr=False)


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntType:
    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class BoolType:
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class VoidType:
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class NamedType:
    """A user-declared data (record/pointer) type."""

    name: str

    def __str__(self) -> str:
        return self.name


Type = Union[IntType, BoolType, VoidType, NamedType]

INT = IntType()
BOOL = BoolType()
VOID = VoidType()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class of all expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class IntLit(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class NullLit(Expr):
    def __str__(self) -> str:
        return "null"


@dataclass(frozen=True)
class Var(Expr):
    name: str
    pos: Pos = _pos_field()

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Unary(Expr):
    """``-e`` or ``!e``."""

    op: str
    arg: Expr

    def __str__(self) -> str:
        return f"{self.op}({self.arg})"


@dataclass(frozen=True)
class Binary(Expr):
    """Arithmetic (+, -, *), comparison (<, <=, >, >=, ==, !=) or boolean
    (&&, ||) operator application."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class FieldRead(Expr):
    """``v.f``"""

    base: Expr
    fieldname: str
    pos: Pos = _pos_field()

    def __str__(self) -> str:
        return f"{self.base}.{self.fieldname}"


@dataclass(frozen=True)
class CallExpr(Expr):
    """``mn(args)`` in expression position."""

    name: str
    args: Tuple[Expr, ...]
    pos: Pos = _pos_field()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class Nondet(Expr):
    """``nondet()`` -- an unconstrained integer input."""

    def __str__(self) -> str:
        return "nondet()"


@dataclass(frozen=True)
class NewExpr(Expr):
    """``new c(args)`` heap allocation."""

    type_name: str
    args: Tuple[Expr, ...]
    pos: Pos = _pos_field()

    def __str__(self) -> str:
        return f"new {self.type_name}({', '.join(map(str, self.args))})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class of all statements."""

    __slots__ = ()


@dataclass(frozen=True)
class Skip(Stmt):
    def __str__(self) -> str:
        return "skip;"


@dataclass(frozen=True)
class VarDecl(Stmt):
    type: Type
    name: str
    init: Optional[Expr] = None
    pos: Pos = _pos_field()

    def __str__(self) -> str:
        if self.init is None:
            return f"{self.type} {self.name};"
        return f"{self.type} {self.name} = {self.init};"


@dataclass(frozen=True)
class Assign(Stmt):
    name: str
    value: Expr
    pos: Pos = _pos_field()

    def __str__(self) -> str:
        return f"{self.name} = {self.value};"


@dataclass(frozen=True)
class FieldWrite(Stmt):
    """``v.f = e;``"""

    base: str
    fieldname: str
    value: Expr
    pos: Pos = _pos_field()

    def __str__(self) -> str:
        return f"{self.base}.{self.fieldname} = {self.value};"


@dataclass(frozen=True)
class CallStmt(Stmt):
    name: str
    args: Tuple[Expr, ...]
    pos: Pos = _pos_field()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))});"


@dataclass(frozen=True)
class Seq(Stmt):
    stmts: Tuple[Stmt, ...]

    def __str__(self) -> str:
        return " ".join(map(str, self.stmts))


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: Stmt
    els: Stmt
    pos: Pos = _pos_field()

    def __str__(self) -> str:
        return f"if ({self.cond}) {{ {self.then} }} else {{ {self.els} }}"


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: Stmt
    pos: Pos = _pos_field()

    def __str__(self) -> str:
        return f"while ({self.cond}) {{ {self.body} }}"


@dataclass(frozen=True)
class Return(Stmt):
    value: Optional[Expr] = None
    pos: Pos = _pos_field()

    def __str__(self) -> str:
        return "return;" if self.value is None else f"return {self.value};"


@dataclass(frozen=True)
class Assume(Stmt):
    """``assume(b);`` -- prune executions violating *b* (used by the
    desugarer for loop-exit conditions and available in source)."""

    cond: Expr
    pos: Pos = _pos_field()

    def __str__(self) -> str:
        return f"assume({self.cond});"


@dataclass(frozen=True)
class Havoc(Stmt):
    """``havoc x, y;`` -- forget the values of the named variables."""

    names: Tuple[str, ...]
    pos: Pos = _pos_field()

    def __str__(self) -> str:
        return f"havoc {', '.join(self.names)};"


def seq(*stmts: Stmt) -> Stmt:
    """Flattening sequence constructor."""
    flat: List[Stmt] = []
    for s in stmts:
        if isinstance(s, Seq):
            flat.extend(s.stmts)
        elif isinstance(s, Skip):
            continue
        else:
            flat.append(s)
    if not flat:
        return Skip()
    if len(flat) == 1:
        return flat[0]
    return Seq(tuple(flat))


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Param:
    type: Type
    name: str
    by_ref: bool = False

    def __str__(self) -> str:
        prefix = "ref " if self.by_ref else ""
        return f"{prefix}{self.type} {self.name}"


@dataclass(frozen=True)
class DataDecl:
    """``data c { t1 f1; t2 f2; ... }``"""

    name: str
    fields: Tuple[Param, ...]
    pos: Pos = _pos_field()

    def field_names(self) -> List[str]:
        return [f.name for f in self.fields]

    def __str__(self) -> str:
        body = " ".join(f"{f.type} {f.name};" for f in self.fields)
        return f"data {self.name} {{ {body} }}"


@dataclass
class Method:
    """A method declaration with optional safety/heap specifications."""

    ret_type: Type
    name: str
    params: List[Param]
    body: Optional[Stmt]
    requires: Optional[object] = None   # arith.Formula (pure precondition)
    ensures: Optional[object] = None    # arith.Formula over params + 'res'
    heap_specs: List[object] = field(default_factory=list)  # seplog specs
    is_primitive: bool = False
    source_loop: bool = False           # True for desugared while-loops
    pos: Pos = _pos_field()
    # Pre-analysis hint: preferred template variables for ranking-function
    # synthesis over this method's unknown pairs (a subset of the params).
    # Advisory only -- synthesis falls back to the full template when a
    # focused search fails, so a wrong hint can cost time, never answers.
    rank_hints: Optional[Tuple[str, ...]] = None

    @property
    def param_names(self) -> List[str]:
        return [p.name for p in self.params]

    def __str__(self) -> str:
        ps = ", ".join(map(str, self.params))
        return f"{self.ret_type} {self.name}({ps})"


@dataclass
class Program:
    data_decls: Dict[str, DataDecl]
    methods: Dict[str, Method]

    def method(self, name: str) -> Method:
        try:
            return self.methods[name]
        except KeyError:
            raise KeyError(f"no method named {name!r}") from None


# ---------------------------------------------------------------------------
# Traversals
# ---------------------------------------------------------------------------


def expr_calls(e: Expr) -> List[CallExpr]:
    """All call expressions nested inside *e* (pre-order)."""
    out: List[CallExpr] = []

    def walk(x: Expr) -> None:
        if isinstance(x, CallExpr):
            out.append(x)
            for a in x.args:
                walk(a)
        elif isinstance(x, Unary):
            walk(x.arg)
        elif isinstance(x, Binary):
            walk(x.left)
            walk(x.right)
        elif isinstance(x, FieldRead):
            walk(x.base)
        elif isinstance(x, NewExpr):
            for a in x.args:
                walk(a)

    walk(e)
    return out


def stmt_calls(s: Stmt) -> List[str]:
    """Names of all methods called (directly or in expressions) in *s*."""
    out: List[str] = []

    def walk_expr(e: Expr) -> None:
        for c in expr_calls(e):
            out.append(c.name)

    def walk(x: Stmt) -> None:
        if isinstance(x, (Skip, Havoc)):
            return
        if isinstance(x, VarDecl):
            if x.init is not None:
                walk_expr(x.init)
        elif isinstance(x, Assign):
            walk_expr(x.value)
        elif isinstance(x, FieldWrite):
            walk_expr(x.value)
        elif isinstance(x, CallStmt):
            out.append(x.name)
            for a in x.args:
                walk_expr(a)
        elif isinstance(x, Seq):
            for t in x.stmts:
                walk(t)
        elif isinstance(x, If):
            walk_expr(x.cond)
            walk(x.then)
            walk(x.els)
        elif isinstance(x, While):
            walk_expr(x.cond)
            walk(x.body)
        elif isinstance(x, Return):
            if x.value is not None:
                walk_expr(x.value)
        elif isinstance(x, Assume):
            walk_expr(x.cond)
        else:
            raise TypeError(f"unknown statement {type(x).__name__}")

    walk(s)
    return out


def stmt_call_sites(s: Stmt) -> List[Union[CallStmt, CallExpr]]:
    """All call *sites* in *s* -- the ``CallStmt``/``CallExpr`` nodes
    themselves, in pre-order, so callers can reach names, argument counts
    and source positions (used by the well-formedness validator)."""
    out: List[Union[CallStmt, CallExpr]] = []

    def walk_expr(e: Expr) -> None:
        out.extend(expr_calls(e))

    def walk(x: Stmt) -> None:
        if isinstance(x, (Skip, Havoc)):
            return
        if isinstance(x, VarDecl):
            if x.init is not None:
                walk_expr(x.init)
        elif isinstance(x, Assign):
            walk_expr(x.value)
        elif isinstance(x, FieldWrite):
            walk_expr(x.value)
        elif isinstance(x, CallStmt):
            out.append(x)
            for a in x.args:
                walk_expr(a)
        elif isinstance(x, Seq):
            for t in x.stmts:
                walk(t)
        elif isinstance(x, If):
            walk_expr(x.cond)
            walk(x.then)
            walk(x.els)
        elif isinstance(x, While):
            walk_expr(x.cond)
            walk(x.body)
        elif isinstance(x, Return):
            if x.value is not None:
                walk_expr(x.value)
        elif isinstance(x, Assume):
            walk_expr(x.cond)
        else:
            raise TypeError(f"unknown statement {type(x).__name__}")

    walk(s)
    return out


def expr_vars(e: Expr) -> frozenset:
    """Free variables of an expression."""
    out = set()

    def walk(x: Expr) -> None:
        if isinstance(x, Var):
            out.add(x.name)
        elif isinstance(x, Unary):
            walk(x.arg)
        elif isinstance(x, Binary):
            walk(x.left)
            walk(x.right)
        elif isinstance(x, FieldRead):
            walk(x.base)
        elif isinstance(x, (CallExpr, NewExpr)):
            for a in x.args:
                walk(a)

    walk(e)
    return frozenset(out)


def stmt_assigned_vars(s: Stmt) -> frozenset:
    """Variables assigned (or havocked / declared) anywhere in *s*."""
    out = set()

    def walk(x: Stmt) -> None:
        if isinstance(x, VarDecl):
            out.add(x.name)
        elif isinstance(x, Assign):
            out.add(x.name)
        elif isinstance(x, Havoc):
            out.update(x.names)
        elif isinstance(x, Seq):
            for t in x.stmts:
                walk(t)
        elif isinstance(x, If):
            walk(x.then)
            walk(x.els)
        elif isinstance(x, While):
            walk(x.body)

    walk(s)
    return frozenset(out)


def stmt_used_vars(s: Stmt) -> frozenset:
    """Variables read anywhere in *s* (over-approximate)."""
    out = set()

    def walk(x: Stmt) -> None:
        if isinstance(x, VarDecl):
            if x.init is not None:
                out.update(expr_vars(x.init))
        elif isinstance(x, Assign):
            out.update(expr_vars(x.value))
        elif isinstance(x, FieldWrite):
            out.add(x.base)
            out.update(expr_vars(x.value))
        elif isinstance(x, CallStmt):
            for a in x.args:
                out.update(expr_vars(a))
        elif isinstance(x, Seq):
            for t in x.stmts:
                walk(t)
        elif isinstance(x, If):
            out.update(expr_vars(x.cond))
            walk(x.then)
            walk(x.els)
        elif isinstance(x, While):
            out.update(expr_vars(x.cond))
            walk(x.body)
        elif isinstance(x, Return):
            if x.value is not None:
                out.update(expr_vars(x.value))
        elif isinstance(x, Assume):
            out.update(expr_vars(x.cond))

    walk(s)
    return frozenset(out)
