"""Structural fingerprints for procedures and call-graph SCCs.

A summary produced by the inference is a pure function of

1. the procedure bodies of its SCC (after desugaring and heap
   abstraction),
2. the summaries of every transitively reached callee, and
3. the analysis knobs (``max_iter``, ``time_budget``).

Point 2 bottoms out in point 1: callee summaries are themselves pure
functions of callee bodies.  A *store key* for an SCC therefore digests
the SCC's own member bodies together with the store keys of its callee
groups, recursively -- two programs agree on an SCC's key exactly when
the whole sub-call-graph below it (bodies and signatures) agrees, which
is the soundness condition for replaying a cached summary.

Two stability requirements shape the dump format:

* **No interning-order dependence.**  Conjunct/disjunct order inside
  ``And``/``Or`` nodes is canonical *per process* (interning order, see
  ``docs/solver.md``), so a digest over the raw argument tuple would
  differ between processes that built the same formula along different
  paths.  :func:`formula_key` sorts child keys textually instead.
* **No id()/hash() dependence.**  Dumps are built purely from names,
  operator strings and exact rational coefficients (``LinExpr.__str__``
  orders coefficients by variable name).

A fingerprint that fails to reproduce (e.g. because generated names from
a non-reset fresh counter leak into an abstracted body) only causes
store *misses* -- the store is content-addressed, so it can never cause
a wrong *hit*.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import List, Optional, Sequence, Set, Tuple

from repro.arith.formula import (
    And,
    Atom,
    BoolConst,
    Exists,
    Formula,
    Not,
    Or,
)
from repro.arith.terms import LinExpr
from repro.lang.ast import Method, Program
from repro.lang.callgraph import scc_dependencies

#: Version of the fingerprint/dump scheme itself.  Bump whenever the dump
#: format below changes meaning, so old store entries (keyed under the old
#: scheme) can never alias new ones.
FINGERPRINT_VERSION = 1


# ---------------------------------------------------------------------------
# Canonical textual dumps
# ---------------------------------------------------------------------------


def formula_key(f: Optional[Formula]) -> str:
    """A canonical, process-independent textual key for a formula.

    ``And``/``Or`` children are keyed recursively and then *sorted*, so
    the key is invariant under the interning-order permutation of
    conjuncts; ``Exists`` binders are sorted likewise.
    """
    if f is None:
        return "~"
    if isinstance(f, BoolConst):
        return "T" if f.value else "F"
    if isinstance(f, Atom):
        # LinExpr.__str__ lists coefficients sorted by variable name and
        # prints exact rationals -- already canonical.
        return f"({f.expr} {f.rel.value} 0)"
    if isinstance(f, And):
        return "(and " + " ".join(sorted(formula_key(a) for a in f.args)) + ")"
    if isinstance(f, Or):
        return "(or " + " ".join(sorted(formula_key(a) for a in f.args)) + ")"
    if isinstance(f, Not):
        return "(not " + formula_key(f.arg) + ")"
    if isinstance(f, Exists):
        bound = " ".join(sorted(f.bound))
        return f"(ex [{bound}] " + formula_key(f.body) + ")"
    raise TypeError(f"unknown formula node {type(f).__name__}")


def _dump(x: object) -> str:
    """Generic canonical dump for AST nodes (frozen dataclasses over
    primitives, tuples, formulas and other AST nodes)."""
    if x is None:
        return "~"
    if isinstance(x, bool):
        return "#t" if x else "#f"
    if isinstance(x, (int, str)):
        return repr(x)
    if isinstance(x, Formula):
        return formula_key(x)
    if isinstance(x, LinExpr):
        return f"<{x}>"
    if isinstance(x, (tuple, list)):
        return "[" + " ".join(_dump(e) for e in x) + "]"
    if dataclasses.is_dataclass(x):
        parts = [type(x).__name__]
        for fld in dataclasses.fields(x):
            if fld.name == "pos":
                # Source positions are diagnostics metadata: two programs
                # differing only in layout must fingerprint identically.
                continue
            parts.append(_dump(getattr(x, fld.name)))
        return "(" + " ".join(parts) + ")"
    # Types (IntType, ...) and any other leaf with a canonical __str__.
    return str(x)


def method_digest(method: Method) -> str:
    """SHA-256 hex digest of one method's analysis-relevant structure.

    Covers the signature (name, return type, parameters), the pure
    contracts (``requires``/``ensures``) and the body.  Heap
    specifications are folded in by their dump as well; in the pipeline
    fingerprints are taken *after* heap abstraction, where methods are
    pure.
    """
    parts = [
        f"v{FINGERPRINT_VERSION}",
        str(method.ret_type),
        repr(method.name),
        _dump(tuple(method.params)),
        formula_key(method.requires),   # type: ignore[arg-type]
        formula_key(method.ensures),    # type: ignore[arg-type]
        "#t" if method.is_primitive else "#f",
        _dump(method.body),
        _dump(tuple(method.heap_specs)) if method.heap_specs else "~",
    ]
    if method.rank_hints:
        # Pre-analysis ranking hints can steer which ranking function the
        # synthesis finds first, so a summary computed with hints must not
        # be replayed for a hint-free analysis (or vice versa).  Appending
        # the part only when hints are present keeps every digest of a
        # hint-free method byte-identical to the pre-hint scheme, and the
        # differing part counts rule out aliasing.
        parts.append("rank_hints=" + _dump(tuple(method.rank_hints)))
    blob = "\n".join(parts).encode()
    return hashlib.sha256(blob).hexdigest()


# ---------------------------------------------------------------------------
# SCC store keys
# ---------------------------------------------------------------------------


def scc_store_keys(
    program: Program,
    sccs: Sequence[List[str]],
    deps: Sequence[Set[int]],
    max_iter: int,
    time_budget: float,
    language: str = "native",
) -> List[str]:
    """One store key per SCC of the condensation, aligned with *sccs*.

    ``sccs``/``deps`` must come from
    :func:`repro.lang.callgraph.scc_dependencies` (callee-first order, so
    ``deps[i]`` only references earlier indices).  Key *i* digests the
    member method digests of SCC *i*, the keys of its direct callee
    groups (which transitively cover everything reachable), and the
    analysis knobs -- changing ``max_iter`` or ``time_budget`` therefore
    changes every key, and editing a method changes exactly the keys of
    its own SCC and the SCCs that transitively call it.

    *language* is the frontend the program came from.  Non-native
    frontends are salted into the header so identical lowered ASTs
    arriving through different languages never share store entries (a
    frontend's lowering scheme can evolve independently); ``native``
    emits the exact historical header bytes, keeping every pre-frontend
    store entry and fingerprint regression intact.
    """
    lang_part = "" if language == "native" else f"lang={language}:"
    keys: List[str] = []
    for i, scc in enumerate(sccs):
        h = hashlib.sha256()
        h.update(
            f"tnt-scc:v{FINGERPRINT_VERSION}:{lang_part}"
            f"max_iter={max_iter}:time_budget={time_budget!r}\n".encode()
        )
        for name in scc:  # scc is sorted by name already
            h.update(name.encode())
            h.update(b"=")
            h.update(method_digest(program.methods[name]).encode())
            h.update(b"\n")
        for j in sorted(deps[i]):
            h.update(keys[j].encode())
            h.update(b"\n")
        keys.append(h.hexdigest())
    return keys


def program_store_keys(
    program: Program,
    max_iter: int,
    time_budget: float,
    language: str = "native",
) -> Tuple[List[List[str]], List[Set[int]], List[str]]:
    """``(sccs, deps, keys)`` for a desugared (and, if applicable,
    heap-abstracted) program -- the condensation in callee-first order
    plus one store key per SCC."""
    sccs, deps = scc_dependencies(program)
    keys = scc_store_keys(program, sccs, deps, max_iter, time_budget, language)
    return sccs, deps, keys
