"""Persistent, content-addressed storage for inferred case summaries.

One entry per call-graph SCC, keyed by the SCC's structural fingerprint
(:mod:`repro.store.fingerprint`): the value is the mapping ``method name
-> CaseSpec`` that :func:`repro.core.pipeline.analyze_scc_group` produced
for the group.  Because the key digests everything the summary depends on
(member bodies, transitive callee bodies, analysis knobs), a lookup can
only ever return what a from-scratch analysis would have computed -- the
store is a cache, never an oracle.

On-disk layout::

    <root>/
      objects/<key[:2]>/<key>.spec      one entry per SCC fingerprint

Entry format (see :data:`MAGIC` / :data:`STORE_VERSION`)::

    MAGIC(4) | version u16-be | sha256(payload)(32) | payload

where *payload* is the pickle of ``{"key": <fingerprint>, "specs":
{name: CaseSpec}}``.  Formula and term nodes inside a ``CaseSpec``
pickle via their ``__reduce__`` hooks and **re-intern on load** (the
exact machinery the parallel scheduler relies on, see
``docs/parallel.md``), so a loaded spec is indistinguishable from a
freshly computed one: pointer-equal subterms, canonical conjunct order,
O(1) cache probes.

Robustness: *any* defect in an entry -- wrong magic, unknown version,
checksum mismatch, unpicklable payload, key mismatch -- rejects the
entry, deletes it best-effort, and reports a miss.  A corrupt or stale
store therefore degrades to cold analysis, never to a wrong answer.

Trust boundary: entries are pickles, and the checksum is written by
whoever wrote the entry -- it guards against *accidental* corruption
(truncated writes, bit rot, version skew), not against a malicious
writer, who could store a crafted pickle that executes code on load.
Point the store only at directories exactly as trusted as the code
itself (a per-user cache dir, a CI workspace); never at a directory
writable by less-trusted parties.

Concurrency: writers serialize into a uniquely named temporary file in
the destination directory and publish it with :func:`os.replace` (atomic
on POSIX within one filesystem).  Concurrent writers under ``jobs=N``
race benignly: both write complete entries for the same key and the
last rename wins; readers see either a complete old entry or a complete
new one, never a torn write.  See ``docs/store.md``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import time
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.core.specs import CaseSpec

#: Entry file magic ("TNT Spec").
MAGIC = b"TNTS"

#: On-disk format version.  Bump on any incompatible change to the entry
#: layout or payload schema; old entries are then rejected as stale.
STORE_VERSION = 1

_HEADER = struct.Struct(">4sH")  # magic, version

#: Age (seconds) past which an orphaned write-temporary is reclaimed even
#: when its pid cannot be proven dead (pid reuse, writers on other hosts).
#: Far above any plausible in-flight write, far below "leaks forever".
_TMP_MAX_AGE = 3600.0


class SpecStore:
    """A content-addressed summary store rooted at a directory.

    Instances are cheap handles (no in-memory cache beyond the open
    directory) and pickle as their root path, so they can be shipped to
    worker processes which then read/write the same directory.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        (self.root / "objects").mkdir(parents=True, exist_ok=True)
        self._sweep_stale_tmp()

    def __reduce__(self):
        return (SpecStore, (str(self.root),))

    def __repr__(self) -> str:
        return f"SpecStore({str(self.root)!r})"

    # -- paths ---------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.spec"

    # -- read ----------------------------------------------------------------

    def load(self, key: str) -> Tuple[Optional[Dict[str, CaseSpec]], bool]:
        """Look up *key*; returns ``(specs, rejected)``.

        ``specs`` is ``None`` on a miss.  ``rejected`` is ``True`` when an
        entry existed on disk but failed validation (corrupt, stale
        version, key mismatch) -- it has been deleted (best effort) so the
        caller's fresh analysis can rewrite it.  Never raises for store
        defects; only programming errors (e.g. a non-hex key) propagate.
        """
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None, False
        except OSError:
            return None, True
        specs = self._decode(key, blob)
        if specs is None:
            try:
                path.unlink()
            except OSError:
                pass
            return None, True
        return specs, False

    def _decode(self, key: str, blob: bytes) -> Optional[Dict[str, CaseSpec]]:
        if len(blob) < _HEADER.size + 32:
            return None
        magic, version = _HEADER.unpack_from(blob)
        if magic != MAGIC or version != STORE_VERSION:
            return None
        digest = blob[_HEADER.size:_HEADER.size + 32]
        payload = blob[_HEADER.size + 32:]
        if hashlib.sha256(payload).digest() != digest:
            return None
        try:
            entry = pickle.loads(payload)
        except Exception:
            return None
        if not isinstance(entry, dict) or entry.get("key") != key:
            return None
        specs = entry.get("specs")
        if not isinstance(specs, dict) or not all(
            isinstance(s, CaseSpec) for s in specs.values()
        ):
            return None
        return specs

    # -- write ---------------------------------------------------------------

    def save(self, key: str, specs: Dict[str, CaseSpec]) -> None:
        """Publish *specs* under *key* (atomic rename; safe under
        concurrent writers and readers)."""
        payload = pickle.dumps(
            {"key": key, "specs": dict(specs)},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        blob = (
            _HEADER.pack(MAGIC, STORE_VERSION)
            + hashlib.sha256(payload).digest()
            + payload
        )
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.tmp"
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        finally:
            # Exception-safe cleanup: whether write_bytes failed half-way
            # (disk full) or os.replace failed (the publish succeeded case
            # leaves no tmp file, hence missing_ok), no partial tmp file
            # survives this call.  Only a hard crash can orphan one --
            # those are swept by _sweep_stale_tmp at the next store open.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    # -- maintenance ---------------------------------------------------------

    def _sweep_stale_tmp(self) -> None:
        """Delete orphaned ``.{key}.{pid}.tmp`` files at store open.

        The write path cleans its tmp file even on exceptions, so orphans
        only arise from hard crashes (SIGKILL, power loss) between
        ``write_bytes`` and ``os.replace``.  A tmp file is considered
        stale -- and removed -- when the pid embedded in its name is no
        longer alive on this host, or when it is older than
        :data:`_TMP_MAX_AGE` (covering pid reuse and writers on other
        hosts sharing the directory); a live writer's in-flight tmp file
        is left alone so its pending ``os.replace`` still succeeds.
        Purely best-effort: any OSError leaves the file for a later
        sweep."""
        now = time.time()
        for tmp in (self.root / "objects").glob("*/.*.tmp"):
            try:
                parts = tmp.name.split(".")
                pid = int(parts[-2]) if len(parts) >= 3 else None
            except ValueError:
                pid = None
            stale = False
            if pid is not None and pid != os.getpid():
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    stale = True
                except OSError:
                    pass  # e.g. EPERM: pid exists but is not ours
            if not stale:
                try:
                    stale = now - tmp.stat().st_mtime > _TMP_MAX_AGE
                except OSError:
                    continue  # raced with the writer's own cleanup
            if stale:
                try:
                    tmp.unlink(missing_ok=True)
                except OSError:
                    pass

    def __len__(self) -> int:
        return sum(1 for _ in (self.root / "objects").glob("*/*.spec"))

    def keys(self):
        """All entry fingerprints currently on disk."""
        for p in (self.root / "objects").glob("*/*.spec"):
            yield p.stem

    def wipe(self) -> None:
        """Delete every entry (used by ``python -m repro.bench --cold``)."""
        for p in (self.root / "objects").glob("*/*.spec"):
            try:
                p.unlink()
            except OSError:
                pass


def as_store(
    store: Union[None, str, Path, SpecStore]
) -> Optional[SpecStore]:
    """Coerce a user-supplied ``store=`` argument (path or instance)."""
    if store is None or isinstance(store, SpecStore):
        return store
    return SpecStore(store)
