"""Persistent spec store: content-addressed summaries + incremental re-analysis.

Summaries are pure functions of (procedure bodies, transitive callee
bodies, analysis knobs); :mod:`repro.store.fingerprint` digests exactly
that dependency cone into a stable key per call-graph SCC, and
:mod:`repro.store.specstore` persists the resulting ``CaseSpec`` maps in
a content-addressed on-disk store.  The inference pipeline (sequential
and parallel) consults the store before analyzing an SCC and writes
newly computed summaries back, turning every repeated or slightly-edited
workload into an incremental one -- see ``docs/store.md``.
"""

from repro.store.fingerprint import (
    FINGERPRINT_VERSION,
    formula_key,
    method_digest,
    program_store_keys,
    scc_store_keys,
)
from repro.store.specstore import STORE_VERSION, SpecStore, as_store

__all__ = [
    "FINGERPRINT_VERSION",
    "STORE_VERSION",
    "SpecStore",
    "as_store",
    "formula_key",
    "method_digest",
    "program_store_keys",
    "scc_store_keys",
]
