"""Separation-logic substrate: symbolic heaps and numeric abstraction.

The paper handles heap programs by reasoning about heap safety properties
*prior to* termination analysis ("Heap-based properties in our logic are
currently handled prior to termination analysis").  This package provides:

* :mod:`repro.seplog.heap` -- symbolic heap formulas (``emp``, points-to,
  inductive predicate instances, separating conjunction) and the standard
  list predicates ``ll``, ``lseg``, ``cll`` of paper Fig. 4;
* :mod:`repro.seplog.entail` -- a fold/unfold entailment checker for the
  list fragment, with lemma support (e.g. the rotation lemma used by the
  circular-list case of ``append``);
* :mod:`repro.seplog.abstraction` -- the numeric size abstraction that
  turns a heap-manipulating method (with its separation-logic spec) into
  an integer method the pure TNT pipeline can analyse.
"""

from repro.seplog.heap import (
    Emp,
    PointsTo,
    PredInst,
    SymHeap,
    HeapSpec,
    STANDARD_PREDS,
)
from repro.seplog.abstraction import abstract_program

__all__ = [
    "Emp",
    "PointsTo",
    "PredInst",
    "SymHeap",
    "HeapSpec",
    "STANDARD_PREDS",
    "abstract_program",
]
