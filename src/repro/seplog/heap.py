"""Symbolic heap formulas and the standard list predicates (paper Fig. 4).

A symbolic heap is a separating conjunction of *chunks* (points-to facts
and inductive predicate instances) together with a pure arithmetic part.
Pointer values are symbolic names; ``"null"`` is the distinguished null
name.  Sizes are arithmetic variables shared with the pure part, which is
what the numeric abstraction ultimately extracts.

The three predicates of the paper are built in::

    ll(root, n)      ==  root = null /\\ n = 0
                         \\/  root |-> node(p) * ll(p, n-1)
    lseg(root, q, n) ==  root = q /\\ n = 0
                         \\/  root |-> node(p) * lseg(p, q, n-1)
    cll(root, n)     ==  root |-> node(p) * lseg(p, root, n-1)
"""

from __future__ import annotations

import contextvars
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arith.formula import Formula, TRUE, atom_eq, atom_ge, conj
from repro.arith.context import SolverContext, resolve
from repro.arith.terms import LinExpr, var

NULL = "null"


@dataclass(frozen=True)
class Emp:
    """The empty heap."""

    def __repr__(self) -> str:
        return "emp"


@dataclass(frozen=True)
class PointsTo:
    """``loc |-> type(field_values...)`` -- field values are pointer names."""

    loc: str
    type_name: str
    fields: Tuple[Tuple[str, str], ...]

    def field(self, name: str) -> str:
        for k, v in self.fields:
            if k == name:
                return v
        raise KeyError(name)

    def with_field(self, name: str, value: str) -> "PointsTo":
        fields = tuple(
            (k, value if k == name else v) for k, v in self.fields
        )
        return PointsTo(self.loc, self.type_name, fields)

    def __repr__(self) -> str:
        fs = ", ".join(f"{k}={v}" for k, v in self.fields)
        return f"{self.loc}|->{self.type_name}({fs})"


@dataclass(frozen=True)
class PredInst:
    """``pred(ptr_args...; size)`` -- an inductive predicate instance.

    ``ptr_args`` are pointer names; ``size`` is an arithmetic expression
    (usually a variable) counting the cells the instance owns.
    """

    pred: str
    ptr_args: Tuple[str, ...]
    size: LinExpr

    def __repr__(self) -> str:
        return f"{self.pred}({', '.join(self.ptr_args)}; {self.size})"


Chunk = object  # PointsTo | PredInst


@dataclass(frozen=True)
class SymHeap:
    """A symbolic heap: chunks joined by ``*`` plus a pure formula."""

    chunks: Tuple[Chunk, ...] = ()
    pure: Formula = TRUE

    def star(self, chunk: Chunk) -> "SymHeap":
        return replace(self, chunks=self.chunks + (chunk,))

    def assume(self, p: Formula) -> "SymHeap":
        return replace(self, pure=conj(self.pure, p))

    def without(self, chunk: Chunk) -> "SymHeap":
        chunks = list(self.chunks)
        chunks.remove(chunk)
        return replace(self, chunks=tuple(chunks))

    def consistent(self, ctx: Optional[SolverContext] = None) -> bool:
        return resolve(ctx).is_sat(self.pure)

    def find_points_to(self, loc: str, aliases: Dict[str, str]) -> Optional[PointsTo]:
        canon = aliases.get(loc, loc)
        for c in self.chunks:
            if isinstance(c, PointsTo) and aliases.get(c.loc, c.loc) == canon:
                return c
        return None

    def find_pred(self, root: str, aliases: Dict[str, str]) -> Optional[PredInst]:
        canon = aliases.get(root, root)
        for c in self.chunks:
            if isinstance(c, PredInst) and aliases.get(
                c.ptr_args[0], c.ptr_args[0]
            ) == canon:
                return c
        return None

    def __repr__(self) -> str:
        if not self.chunks:
            return f"emp /\\ {self.pure!r}"
        body = " * ".join(repr(c) for c in self.chunks)
        return f"{body} /\\ {self.pure!r}"


@dataclass(frozen=True)
class PredDefn:
    """Metadata driving unfolding of an inductive list predicate.

    * ``ptr_arity`` -- number of pointer arguments (root first);
    * ``empty_when`` -- 'root_is_null' (``ll``) or 'root_eq_second'
      (``lseg``) or None (``cll`` has no empty case);
    * ``next_field`` -- the link field of the unfolded cell;
    * ``tail_pred`` -- predicate of the remainder after unfolding.
    """

    name: str
    ptr_arity: int
    empty_when: Optional[str]
    next_field: str
    tail_pred: str
    node_type: str = "node"


STANDARD_PREDS: Dict[str, PredDefn] = {
    "ll": PredDefn("ll", 1, "root_is_null", "next", "ll"),
    "lseg": PredDefn("lseg", 2, "root_eq_second", "next", "lseg"),
    "cll": PredDefn("cll", 1, None, "next", "lseg"),
}


@dataclass(frozen=True)
class HeapSpec:
    """One separation-logic specification case of a method.

    ``pre``/``post`` are symbolic heaps over the method's pointer
    parameters and fresh size variables; ``size_params`` lists the size
    variables (they become the parameters of the abstracted method).
    """

    pre: SymHeap
    post: SymHeap
    size_params: Tuple[str, ...]

    def __repr__(self) -> str:
        return f"requires {self.pre!r} ensures {self.post!r}"


# Context-local like the formula fresh-name counter (see
# repro.arith.formula._FRESH_COUNTER for the concurrency rationale).
_FRESH_PTR: contextvars.ContextVar[int] = contextvars.ContextVar(
    "repro-fresh-ptr-counter", default=0
)


def fresh_ptr(base: str = "p") -> str:
    n = _FRESH_PTR.get()
    _FRESH_PTR.set(n + 1)
    return f"{base}%{n}"


def reset_fresh_ptrs() -> None:
    """Restart the fresh-pointer counter in the current context (bench
    cold-start protocol; see
    :func:`repro.arith.formula.reset_fresh_names`)."""
    _FRESH_PTR.set(0)


def fresh_ptr_scope() -> contextvars.Token:
    """Enter a zero-based fresh-pointer scope; see
    :func:`repro.arith.formula.fresh_scope`."""
    return _FRESH_PTR.set(0)


def exit_fresh_ptr_scope(token: contextvars.Token) -> None:
    _FRESH_PTR.reset(token)


def unfold(
    heap: SymHeap,
    inst: PredInst,
    aliases: Dict[str, str],
    ctx: Optional[SolverContext] = None,
) -> List[Tuple[SymHeap, Dict[str, str]]]:
    """Unfold one predicate instance into its (consistent) case heaps.

    Returns ``(heap, aliases)`` pairs; the empty case may record a new
    pointer aliasing (``root = q`` for lseg) and the pure fact
    ``size = 0``; the nonempty case materialises the head cell and the
    tail instance with ``size - 1``.
    """
    defn = STANDARD_PREDS[inst.pred]
    out: List[Tuple[SymHeap, Dict[str, str]]] = []
    base = heap.without(inst)
    root = inst.ptr_args[0]
    # empty case
    if defn.empty_when == "root_is_null":
        empty = base.assume(atom_eq(inst.size, 0))
        new_aliases = dict(aliases)
        new_aliases[root] = NULL
        if empty.consistent(ctx):
            out.append((empty, new_aliases))
    elif defn.empty_when == "root_eq_second":
        q = inst.ptr_args[1]
        empty = base.assume(atom_eq(inst.size, 0))
        new_aliases = dict(aliases)
        new_aliases[root] = aliases.get(q, q)
        if empty.consistent(ctx):
            out.append((empty, new_aliases))
    # non-empty case
    nxt = fresh_ptr("nx")
    cell = PointsTo(root, defn.node_type, (("next", nxt),))
    if inst.pred == "cll":
        tail = PredInst("lseg", (nxt, root), inst.size - 1)
        nonempty = base.star(cell).star(tail).assume(atom_ge(inst.size, 1))
    elif inst.pred == "lseg":
        tail = PredInst("lseg", (nxt, inst.ptr_args[1]), inst.size - 1)
        nonempty = base.star(cell).star(tail).assume(atom_ge(inst.size, 1))
    else:  # ll
        tail = PredInst("ll", (nxt,), inst.size - 1)
        nonempty = base.star(cell).star(tail).assume(atom_ge(inst.size, 1))
    if nonempty.consistent(ctx):
        out.append((nonempty, dict(aliases)))
    return out
