"""Numeric size abstraction of heap-manipulating methods.

For every method carrying separation-logic specifications
(:class:`repro.seplog.heap.HeapSpec`), each spec case is symbolically
executed over symbolic heaps (unfolding inductive predicates on demand,
matching callee preconditions with the entailment engine) and compiled
into a pure integer method named ``<name>__h<k>`` whose parameters are the
spec's size variables plus the original integer parameters.  The pure TNT
pipeline then analyses those integer methods -- realising the paper's
"heap-based properties are handled prior to termination analysis".

Pure methods (no heap statements, no specs) pass through unchanged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arith.formula import (
    And,
    Atom,
    BoolConst,
    Formula,
    Not,
    Or,
    Rel,
    TRUE,
    conj,
)
from repro.arith.context import SolverContext, resolve
from repro.arith.terms import LinExpr, var
from repro.lang import ast
from repro.lang.ast import (
    Assign,
    Assume,
    Binary,
    CallExpr,
    CallStmt,
    Expr,
    FieldRead,
    FieldWrite,
    If,
    IntLit,
    Method,
    NewExpr,
    NullLit,
    Param,
    Program,
    Return,
    Seq,
    Skip,
    Stmt,
    Var,
    VarDecl,
    seq,
)
from repro.seplog.entail import match_instance
from repro.seplog.heap import (
    NULL,
    HeapSpec,
    PointsTo,
    PredInst,
    SymHeap,
    fresh_ptr,
    unfold,
)


class AbstractionError(Exception):
    """Raised when a heap construct falls outside the supported fragment."""


def _expr_of_linexpr(e: LinExpr) -> Expr:
    """Convert a LinExpr back into a language expression."""
    out: Optional[Expr] = None
    for name, c in sorted(e.coeffs.items()):
        if c.denominator != 1:
            raise AbstractionError(f"non-integer coefficient in {e}")
        term: Expr = Var(name)
        k = int(c)
        if k != 1:
            term = Binary("*", IntLit(abs(k)), Var(name))
        if k < 0:
            out = Binary("-", out if out is not None else IntLit(0), term)
        else:
            out = term if out is None else Binary("+", out, term)
    konst = e.constant
    if konst.denominator != 1:
        raise AbstractionError(f"non-integer constant in {e}")
    k = int(konst)
    if out is None:
        return IntLit(k)
    if k > 0:
        return Binary("+", out, IntLit(k))
    if k < 0:
        return Binary("-", out, IntLit(-k))
    return out


def _expr_of_formula(p: Formula) -> Expr:
    """Convert a (quantifier-free) formula back into a boolean expression."""
    if isinstance(p, BoolConst):
        return ast.BoolLit(p.value)
    if isinstance(p, Atom):
        lhs = _expr_of_linexpr(p.expr)
        if p.rel is Rel.LE:
            op = "<="
        elif p.rel is Rel.LT:
            op = "<"
        else:
            op = "=="
        return Binary(op, lhs, IntLit(0))
    if isinstance(p, And):
        out = _expr_of_formula(p.args[0])
        for a in p.args[1:]:
            out = Binary("&&", out, _expr_of_formula(a))
        return out
    if isinstance(p, Or):
        out = _expr_of_formula(p.args[0])
        for a in p.args[1:]:
            out = Binary("||", out, _expr_of_formula(a))
        return out
    if isinstance(p, Not):
        return ast.Unary("!", _expr_of_formula(p.arg))
    raise AbstractionError(f"cannot reify formula {p!r}")


@dataclass
class _State:
    """Symbolic execution state for one path."""

    heap: SymHeap
    aliases: Dict[str, str]
    ptr_env: Dict[str, str]          # pointer program var -> symbolic name
    int_env: Dict[str, LinExpr]      # integer program var -> value
    path: Formula                    # numeric path condition (size vars)
    ops: List[Stmt]                  # emitted numeric statements

    def clone(self) -> "_State":
        return _State(
            heap=self.heap,
            aliases=dict(self.aliases),
            ptr_env=dict(self.ptr_env),
            int_env=dict(self.int_env),
            path=self.path,
            ops=list(self.ops),
        )

    def canon(self, name: str) -> str:
        seen = set()
        while name in self.aliases and name not in seen:
            seen.add(name)
            name = self.aliases[name]
        return name


class _Abstractor:
    def __init__(self, program: Program, ctx: Optional[SolverContext] = None):
        self.program = program
        self.ctx = resolve(ctx)
        self._fresh = itertools.count()

    def fresh_int(self, base: str = "sz") -> str:
        return f"{base}${next(self._fresh)}"

    # -- expression classification ------------------------------------------

    def _is_ptr_var(self, name: str, state: _State) -> bool:
        return name in state.ptr_env

    def _ptr_value(self, e: Expr, state: _State) -> Optional[str]:
        """The symbolic pointer name of *e*, materialising field reads."""
        if isinstance(e, NullLit):
            return NULL
        if isinstance(e, Var) and e.name in state.ptr_env:
            return state.canon(state.ptr_env[e.name])
        return None

    def _int_value(self, e: Expr, state: _State) -> LinExpr:
        from repro.lang.to_arith import expr_to_linexpr

        raw = expr_to_linexpr(e)
        return raw.substitute(state.int_env)

    # -- method abstraction -----------------------------------------------------

    def abstract_method(self, method: Method) -> List[Method]:
        out: List[Method] = []
        for k, spec in enumerate(method.heap_specs):
            out.append(self._abstract_case(method, k, spec))
        return out

    def _abstract_case(self, method: Method, k: int, spec: HeapSpec) -> Method:
        assert method.body is not None
        ptr_env: Dict[str, str] = {}
        int_env: Dict[str, LinExpr] = {}
        for p in method.params:
            if isinstance(p.type, ast.NamedType):
                ptr_env[p.name] = p.name
            else:
                int_env[p.name] = var(p.name)
        state = _State(
            heap=spec.pre,
            aliases={},
            ptr_env=ptr_env,
            int_env=int_env,
            path=TRUE,
            ops=[],
        )
        finished: List[_State] = []
        self._exec(method.body, state, finished, method)
        body = self._emit(finished, spec)
        int_params = [
            p for p in method.params if not isinstance(p.type, ast.NamedType)
        ]
        params = [Param(ast.INT, s) for s in spec.size_params] + int_params
        requires = self.ctx.simplify(
            self.ctx.project(spec.pre.pure, keep=set(spec.size_params)
                    | {p.name for p in int_params})
        )
        return Method(
            ret_type=ast.VOID,
            name=f"{method.name}__h{k}",
            params=params,
            body=body,
            requires=requires,
        )

    def _emit(self, finished: List[_State], spec: HeapSpec) -> Stmt:
        """Compile finished paths into a numeric if-chain body."""
        if not finished:
            # no feasible path: method exit unreachable under this spec
            return Assume(ast.BoolLit(False))
        branches: List[Tuple[Formula, Stmt]] = []
        for st in finished:
            guard = self.ctx.simplify(st.path)
            body = seq(*st.ops, Return(None))
            branches.append((guard, body))
        out: Stmt = Assume(ast.BoolLit(False))
        for guard, body in reversed(branches):
            if guard == TRUE:
                out = body
            else:
                out = If(_expr_of_formula(guard), body, out)
        return out

    # -- statement execution ------------------------------------------------------

    def _exec(
        self,
        s: Stmt,
        state: Optional[_State],
        finished: List[_State],
        method: Method,
    ) -> List[Optional[_State]]:
        if state is None:
            return [None]
        if isinstance(s, Skip):
            return [state]
        if isinstance(s, Seq):
            states: List[Optional[_State]] = [state]
            for t in s.stmts:
                nxt: List[Optional[_State]] = []
                for st in states:
                    nxt.extend(self._exec(t, st, finished, method))
                states = nxt
            return states
        if isinstance(s, Return):
            finished.append(state)
            return [None]
        if isinstance(s, VarDecl):
            if isinstance(s.type, ast.NamedType):
                value = (
                    self._eval_ptr(s.init, state, finished, method)
                    if s.init is not None
                    else NULL
                )
                state.ptr_env[s.name] = value
                return [state]
            if s.init is None:
                state.int_env[s.name] = var(self.fresh_int(s.name))
                return [state]
            return self._exec(Assign(s.name, s.init), state, finished, method)
        if isinstance(s, Assign):
            if s.name in state.ptr_env or isinstance(
                s.value, (NullLit, NewExpr, FieldRead)
            ) or (isinstance(s.value, Var) and s.value.name in state.ptr_env):
                value = self._eval_ptr(s.value, state, finished, method)
                state.ptr_env[s.name] = value
                return [state]
            if isinstance(s.value, CallExpr):
                raise AbstractionError(
                    "int-returning heap calls are not supported by the "
                    "size abstraction"
                )
            state.int_env[s.name] = self._int_value(s.value, state)
            return [state]
        if isinstance(s, FieldWrite):
            self._write_field(s.base, s.fieldname, s.value, state)
            return [state]
        if isinstance(s, If):
            return self._branch(s, state, finished, method)
        if isinstance(s, CallStmt):
            return self._call(s.name, s.args, state, finished, method)
        raise AbstractionError(
            f"unsupported statement {type(s).__name__} in heap abstraction"
        )

    # -- pointer evaluation -------------------------------------------------------

    def _eval_ptr(
        self,
        e: Expr,
        state: _State,
        finished: List[_State],
        method: Method,
    ) -> str:
        if isinstance(e, NullLit):
            return NULL
        if isinstance(e, Var):
            return state.canon(state.ptr_env[e.name])
        if isinstance(e, NewExpr):
            loc = fresh_ptr("new")
            fields = []
            decl = self.program.data_decls.get(e.type_name)
            if decl is None:
                raise AbstractionError(f"unknown data type {e.type_name!r}")
            for f, a in zip(decl.fields, e.args):
                value = self._eval_ptr(a, state, finished, method)
                fields.append((f.name, value))
            for f in decl.fields[len(e.args):]:
                fields.append((f.name, NULL))
            state.heap = state.heap.star(
                PointsTo(loc, e.type_name, tuple(fields))
            )
            return loc
        if isinstance(e, FieldRead):
            base = self._eval_ptr(e.base, state, finished, method)
            cell = self._materialise(base, state)
            return state.canon(cell.field(e.fieldname))
        raise AbstractionError(f"unsupported pointer expression {e}")

    def _materialise(self, loc: str, state: _State) -> PointsTo:
        """Get the points-to cell for *loc*, unfolding a predicate there if
        needed.  The non-empty unfolding is taken (dereferencing the root
        of an empty segment would be a null dereference -- safety is
        assumed verified, per the paper's layering)."""
        cell = state.heap.find_points_to(loc, state.aliases)
        if cell is not None:
            return cell
        inst = state.heap.find_pred(loc, state.aliases)
        if inst is None:
            raise AbstractionError(f"no heap chunk at {loc}")
        cases = unfold(state.heap, inst, state.aliases, ctx=self.ctx)
        # choose the case that materialises a cell at loc
        for heap, aliases in cases:
            cell = heap.find_points_to(loc, aliases)
            if cell is not None:
                state.heap = heap
                state.aliases = aliases
                # record the size fact (size >= 1) in the path
                state.path = conj(state.path, heap.pure)
                return cell
        raise AbstractionError(f"cannot materialise a cell at {loc}")

    def _write_field(
        self, base: str, fieldname: str, value: Expr, state: _State
    ) -> None:
        loc = state.canon(state.ptr_env[base])
        cell = self._materialise(loc, state)
        target = self._eval_ptr(value, state, finished=[], method=None)  # type: ignore[arg-type]
        state.heap = state.heap.without(cell).star(
            cell.with_field(fieldname, target)
        )

    # -- branching -----------------------------------------------------------------

    def _branch(
        self,
        s: If,
        state: _State,
        finished: List[_State],
        method: Method,
    ) -> List[Optional[_State]]:
        cond = s.cond
        ptr_test = self._pointer_test(cond, state)
        if ptr_test is None:
            # pure integer condition
            from repro.lang.to_arith import expr_to_formula

            f = expr_to_formula(cond).substitute(state.int_env)
            out: List[Optional[_State]] = []
            then_state = state.clone()
            then_state.path = conj(then_state.path, f)
            if self.ctx.is_sat(conj(then_state.path, then_state.heap.pure)):
                out.extend(self._exec(s.then, then_state, finished, method))
            else_state = state.clone()
            from repro.arith.formula import neg

            else_state.path = conj(else_state.path, neg(f))
            if self.ctx.is_sat(conj(else_state.path, else_state.heap.pure)):
                out.extend(self._exec(s.els, else_state, finished, method))
            return out
        lhs, rhs, negated = ptr_test
        out = []
        for branch_state, equal in self._split_on_equality(state, lhs, rhs):
            taken_then = equal != negated
            branch = s.then if taken_then else s.els
            out.extend(self._exec(branch, branch_state, finished, method))
        return out

    def _pointer_test(
        self, cond: Expr, state: _State
    ) -> Optional[Tuple[Expr, Expr, bool]]:
        """Recognise ``p == q`` / ``p != q`` pointer comparisons."""
        if isinstance(cond, Binary) and cond.op in ("==", "!="):
            left_ptr = self._is_ptr_expr(cond.left, state)
            right_ptr = self._is_ptr_expr(cond.right, state)
            if left_ptr or right_ptr:
                return cond.left, cond.right, cond.op == "!="
        return None

    def _is_ptr_expr(self, e: Expr, state: _State) -> bool:
        if isinstance(e, NullLit):
            return True
        if isinstance(e, Var):
            return e.name in state.ptr_env
        if isinstance(e, FieldRead):
            return True
        return False

    def _split_on_equality(
        self, state: _State, lhs: Expr, rhs: Expr
    ) -> List[Tuple[_State, bool]]:
        """Case-split a pointer equality test, unfolding when needed."""
        st = state.clone()
        a = self._eval_ptr(lhs, st, [], None)  # type: ignore[arg-type]
        b = self._eval_ptr(rhs, st, [], None)  # type: ignore[arg-type]
        a, b = st.canon(a), st.canon(b)
        if a == b:
            return [(st, True)]
        # If one side is the root of a predicate instance, unfolding decides
        # (empty case aliases the root; nonempty case materialises a cell).
        for root, other in ((a, b), (b, a)):
            inst = st.heap.find_pred(root, st.aliases)
            if inst is None:
                continue
            results: List[Tuple[_State, bool]] = []
            for heap, aliases in unfold(st.heap, inst, st.aliases, ctx=self.ctx):
                case = st.clone()
                case.heap = heap
                case.aliases = aliases
                case.path = conj(case.path, heap.pure)
                ca, cb = case.canon(a), case.canon(b)
                results.append((case, ca == cb))
            if results:
                return results
        # Distinct allocated cells / null vs cell are unequal.
        cell_a = st.heap.find_points_to(a, st.aliases)
        cell_b = st.heap.find_points_to(b, st.aliases)
        if (cell_a is not None and (b == NULL or cell_b is not None)) or (
            cell_b is not None and a == NULL
        ):
            return [(st, False)]
        # Unknown: take both branches unconstrained (over-approximation).
        return [(st.clone(), True), (st.clone(), False)]

    # -- calls -----------------------------------------------------------------------

    def _call(
        self,
        callee_name: str,
        args: Sequence[Expr],
        state: _State,
        finished: List[_State],
        method: Method,
    ) -> List[Optional[_State]]:
        callee = self.program.methods.get(callee_name)
        if callee is None:
            raise AbstractionError(f"unknown callee {callee_name!r}")
        if not callee.heap_specs:
            # pure callee: forward integer arguments
            int_args = [
                _expr_of_linexpr(self._int_value(a, state)) for a in args
            ]
            state.ops.append(CallStmt(callee_name, tuple(int_args)))
            return [state]
        # match each heap spec case of the callee
        for k, spec in enumerate(callee.heap_specs):
            match = self._match_pre(callee, spec, args, state)
            if match is None:
                continue
            frame, size_args = match
            post = self._instantiate_post(spec, size_args, args, callee, state)
            new_chunks = frame.chunks + post.chunks
            state.heap = SymHeap(
                chunks=new_chunks, pure=conj(frame.pure, post.pure)
            )
            numeric_args = [_expr_of_linexpr(sz) for sz in size_args]
            int_args = [
                _expr_of_linexpr(self._int_value(a, state))
                for a, p in zip(args, callee.params)
                if not isinstance(p.type, ast.NamedType)
            ]
            state.ops.append(
                CallStmt(f"{callee_name}__h{k}", tuple(numeric_args + int_args))
            )
            return [state]
        raise AbstractionError(
            f"no heap spec of {callee_name!r} matches the call site"
        )

    def _match_pre(
        self,
        callee: Method,
        spec: HeapSpec,
        args: Sequence[Expr],
        state: _State,
    ) -> Optional[Tuple[SymHeap, List[LinExpr]]]:
        """Match the callee precondition; returns (frame, size argument
        expressions in spec.size_params order)."""
        formal_to_actual: Dict[str, str] = {}
        for p, a in zip(callee.params, args):
            if isinstance(p.type, ast.NamedType):
                formal_to_actual[p.name] = self._eval_ptr(a, state, [], None)  # type: ignore[arg-type]
        heap = state.heap
        size_values: Dict[str, LinExpr] = {}
        for chunk in spec.pre.chunks:
            if not isinstance(chunk, PredInst):
                raise AbstractionError(
                    "callee preconditions must be predicate instances"
                )
            ptr_args = tuple(
                formal_to_actual.get(x, x) for x in chunk.ptr_args
            )
            size_name = self._single_var(chunk.size)
            result = match_instance(
                heap, chunk.pred, ptr_args, state.aliases, ctx=self.ctx
            )
            if result is None:
                return None
            heap = result.frame
            size_values[size_name] = result.size
        try:
            size_args = [size_values[s] for s in spec.size_params]
        except KeyError:
            return None
        # precondition's pure part must hold
        pure_inst = spec.pre.pure.substitute(size_values)
        if not self.ctx.is_sat(conj(state.path, state.heap.pure, pure_inst)):
            return None
        return heap, size_args

    @staticmethod
    def _single_var(e: LinExpr) -> str:
        names = sorted(e.variables())
        if len(names) != 1 or e.coeff(names[0]) != 1 or e.constant != 0:
            raise AbstractionError(
                f"spec sizes must be plain variables, got {e}"
            )
        return names[0]

    def _instantiate_post(
        self,
        spec: HeapSpec,
        size_args: List[LinExpr],
        args: Sequence[Expr],
        callee: Method,
        state: _State,
    ) -> SymHeap:
        """The callee's postcondition heap with formals bound to actuals."""
        mapping = dict(zip(spec.size_params, size_args))
        chunks = []
        formal_to_actual: Dict[str, str] = {}
        for p, a in zip(callee.params, args):
            if isinstance(p.type, ast.NamedType):
                formal_to_actual[p.name] = self._eval_ptr(a, state, [], None)  # type: ignore[arg-type]
        for chunk in spec.post.chunks:
            if isinstance(chunk, PredInst):
                chunks.append(
                    PredInst(
                        chunk.pred,
                        tuple(formal_to_actual.get(x, x) for x in chunk.ptr_args),
                        chunk.size.substitute(mapping),
                    )
                )
            elif isinstance(chunk, PointsTo):
                chunks.append(
                    PointsTo(
                        formal_to_actual.get(chunk.loc, chunk.loc),
                        chunk.type_name,
                        tuple(
                            (f, formal_to_actual.get(v, v))
                            for f, v in chunk.fields
                        ),
                    )
                )
        return SymHeap(
            chunks=tuple(chunks), pure=spec.post.pure.substitute(mapping)
        )


def has_heap_statements(method: Method) -> bool:
    """Whether the method touches the heap syntactically."""
    if method.body is None:
        return False
    found = False

    def walk_expr(e: Expr) -> None:
        nonlocal found
        if isinstance(e, (FieldRead, NewExpr, NullLit)):
            found = True
        if isinstance(e, Binary):
            walk_expr(e.left)
            walk_expr(e.right)
        if isinstance(e, ast.Unary):
            walk_expr(e.arg)
        if isinstance(e, (CallExpr, NewExpr)):
            for a in e.args:
                walk_expr(a)

    def walk(s: Stmt) -> None:
        nonlocal found
        if isinstance(s, FieldWrite):
            found = True
        elif isinstance(s, VarDecl):
            if isinstance(s.type, ast.NamedType):
                found = True
            if s.init is not None:
                walk_expr(s.init)
        elif isinstance(s, Assign):
            walk_expr(s.value)
        elif isinstance(s, CallStmt):
            for a in s.args:
                walk_expr(a)
        elif isinstance(s, Seq):
            for t in s.stmts:
                walk(t)
        elif isinstance(s, If):
            walk_expr(s.cond)
            walk(s.then)
            walk(s.els)
        elif isinstance(s, Return):
            if s.value is not None:
                walk_expr(s.value)
        elif isinstance(s, Assume):
            walk_expr(s.cond)

    walk(method.body)
    return found


def abstract_program(
    program: Program, ctx: Optional[SolverContext] = None
) -> Program:
    """Replace heap methods (those carrying heap specs) by their numeric
    abstractions; pure methods pass through unchanged.

    *ctx* is the solver context used for every arithmetic side condition
    of the abstraction (path feasibility, spec projection, entailment
    matching)."""
    heap_methods = {
        name: m for name, m in program.methods.items() if m.heap_specs
    }
    if not heap_methods:
        return program
    abstractor = _Abstractor(program, ctx=ctx)
    methods: Dict[str, Method] = {}
    for name, m in program.methods.items():
        if name in heap_methods:
            for nm in abstractor.abstract_method(m):
                methods[nm.name] = nm
        else:
            if has_heap_statements(m) and m.body is not None:
                raise AbstractionError(
                    f"method {name!r} uses the heap but has no heap spec"
                )
            methods[name] = m
    return Program(data_decls=dict(program.data_decls), methods=methods)
