"""Entailment with frame for the list fragment, with lemma support.

The abstraction engine needs to answer goals of the form ::

    SymHeap  |-  pred(args) * frame

carving a predicate instance out of the current symbolic heap, leaving a
frame, and *computing* the arithmetic size of the carved instance in terms
of the heap's size variables.  The matcher works recursively with the
standard list lemmas (all are HIP-style user lemmas in the original
system):

* empty segment:     ``emp |- lseg(a, a; 0)`` and ``emp |- ll(null; 0)``
* head cons:         ``a |-> node(c) * lseg(c, t; m)  |-  lseg(a, t; m+1)``
* concatenation:     ``lseg(a, b; m1) * lseg(b, t; m2) |- lseg(a, t; m1+m2)``
* circular fold:     ``root |-> node(c) * lseg(c, root; m) |- cll(root; m+1)``
  (together with concatenation this yields the paper's rotation lemma:
  a circular list may be entered at any of its cells).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.arith.context import SolverContext
from repro.arith.terms import LinExpr, const
from repro.seplog.heap import NULL, PointsTo, PredInst, SymHeap

MAX_DEPTH = 12


@dataclass(frozen=True)
class MatchResult:
    """Outcome of carving a predicate instance out of a heap."""

    frame: SymHeap
    size: LinExpr  # the carved instance's size in heap size variables


def _canon(name: str, aliases: Dict[str, str]) -> str:
    seen = set()
    while name in aliases and name not in seen:
        seen.add(name)
        name = aliases[name]
    return name


def match_instance(
    heap: SymHeap,
    pred: str,
    ptr_args: Tuple[str, ...],
    aliases: Dict[str, str],
    depth: int = MAX_DEPTH,
    ctx: Optional[SolverContext] = None,
) -> Optional[MatchResult]:
    """Establish ``heap |- pred(ptr_args; size) * frame``; compute size.

    *ctx* is the solver context shared with the abstraction engine,
    threaded through the recursive match so any arithmetic side condition
    the matcher (or a future lemma) needs is answered from the same
    incremental cache as the rest of the method's heap analysis.  Matching
    itself is purely structural: passing or omitting *ctx* never changes
    the result.
    """
    if depth <= 0:
        return None
    if pred == "cll":
        return _match_cll(heap, ptr_args[0], aliases, depth, ctx)
    if pred in ("ll", "lseg"):
        return _match_segment(heap, pred, ptr_args, aliases, depth, ctx)
    return None


def _is_target(pred: str, ptr_args: Tuple[str, ...], root: str,
               aliases: Dict[str, str]) -> bool:
    if pred == "ll":
        return _canon(root, aliases) == NULL
    return _canon(root, aliases) == _canon(ptr_args[1], aliases)


def _match_segment(
    heap: SymHeap,
    pred: str,
    ptr_args: Tuple[str, ...],
    aliases: Dict[str, str],
    depth: int,
    ctx: Optional[SolverContext] = None,
) -> Optional[MatchResult]:
    root = ptr_args[0]
    # empty instance
    if _is_target(pred, ptr_args, root, aliases):
        return MatchResult(frame=heap, size=const(0))
    canon_root = _canon(root, aliases)
    # direct chunk at the root: same predicate kind (ll matches ll,
    # lseg matches lseg) -- possibly followed by concatenation
    for chunk in heap.chunks:
        if not isinstance(chunk, PredInst) or chunk.pred != pred:
            continue
        if _canon(chunk.ptr_args[0], aliases) != canon_root:
            continue
        rest = heap.without(chunk)
        if pred == "ll":
            return MatchResult(frame=rest, size=chunk.size)
        # lseg(root, q; m): done if q is the target, else concatenate
        q = chunk.ptr_args[1]
        if _canon(q, aliases) == _canon(ptr_args[1], aliases):
            return MatchResult(frame=rest, size=chunk.size)
        sub = _match_segment(
            rest, pred, (q,) + ptr_args[1:], aliases, depth - 1, ctx
        )
        if sub is not None:
            return MatchResult(frame=sub.frame, size=chunk.size + sub.size)
        continue
    # head cons: a |-> node(c) * P(c, ...; m)  =>  P(a, ...; m+1)
    cell = heap.find_points_to(canon_root, aliases)
    if cell is not None:
        try:
            nxt = cell.field("next")
        except KeyError:
            return None
        rest = heap.without(cell)
        sub = _match_segment(
            rest, pred, (nxt,) + ptr_args[1:], aliases, depth - 1, ctx
        )
        if sub is not None:
            return MatchResult(frame=sub.frame, size=sub.size + 1)
    return None


def _match_cll(
    heap: SymHeap,
    root: str,
    aliases: Dict[str, str],
    depth: int,
    ctx: Optional[SolverContext] = None,
) -> Optional[MatchResult]:
    """``root |-> node(c) * lseg(c, root; m)  |-  cll(root; m+1)``.

    With segment concatenation in :func:`_match_segment` this subsumes the
    paper's rotation lemma: a cll viewed from any cell on the cycle.
    """
    canon_root = _canon(root, aliases)
    # direct chunk
    for chunk in heap.chunks:
        if isinstance(chunk, PredInst) and chunk.pred == "cll":
            if _canon(chunk.ptr_args[0], aliases) == canon_root:
                return MatchResult(frame=heap.without(chunk), size=chunk.size)
    cell = heap.find_points_to(canon_root, aliases)
    if cell is not None:
        try:
            nxt = cell.field("next")
        except KeyError:
            return None
        rest = heap.without(cell)
        sub = _match_segment(
            rest, "lseg", (nxt, canon_root), aliases, depth - 1, ctx
        )
        if sub is not None:
            return MatchResult(frame=sub.frame, size=sub.size + 1)
        return None
    # Closing-cell rotation: lseg(root, b; m) * b |-> node(root)
    # (plus any intermediate segments via concatenation)  |-  cll(root; m+1)
    for chunk in heap.chunks:
        if not isinstance(chunk, PointsTo):
            continue
        try:
            nxt = chunk.field("next")
        except KeyError:
            continue
        if _canon(nxt, aliases) != canon_root:
            continue
        rest = heap.without(chunk)
        sub = _match_segment(
            rest, "lseg", (canon_root, chunk.loc), aliases, depth - 1, ctx
        )
        if sub is not None:
            return MatchResult(frame=sub.frame, size=sub.size + 1)
    return None
