"""Request/response schema for the analysis daemon's JSON API.

The wire format is deliberately small and stable: a ``POST /analyze``
body is one JSON object (see :data:`ANALYZE_REQUEST_SCHEMA`, also served
on ``GET /schema``), and every response -- success or error -- is one
JSON object with an ``ok`` boolean.  Validation happens here, before a
request ever touches the dedup table or the worker pool, so malformed
input costs one dict walk and never an analysis slot.

Success responses are built once per *analysis* (not per request) by
:func:`build_response` and cached as serialized bytes: deduplicated
joiners receive the leader's bytes verbatim, which is what makes the
"N identical submissions -> byte-identical responses" guarantee trivial
to uphold.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lang.frontends import available_languages

#: Hard ceilings on the analysis knobs a request may ask for.  They bound
#: what one request can cost; the daemon-level wall-clock cap
#: (:attr:`repro.serve.server.ServiceConfig.max_analysis_seconds`) backs
#: them up for cost paths the per-SCC budget does not cover.
MAX_MAX_ITER = 64
MAX_TIME_BUDGET = 300.0

#: Default source-size cap (bytes, UTF-8).  Configurable per service via
#: :class:`repro.serve.server.ServiceConfig`.
DEFAULT_MAX_SOURCE_BYTES = 256 * 1024

#: JSON-schema-style description of the ``POST /analyze`` request body.
#: Served on ``GET /schema`` so clients can introspect the contract.
ANALYZE_REQUEST_SCHEMA: Dict[str, object] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "repro.serve analyze request",
    "type": "object",
    "required": ["source"],
    "additionalProperties": False,
    "properties": {
        "source": {
            "type": "string",
            "minLength": 1,
            "description": "program text in the selected source language",
        },
        "language": {
            "type": ["string", "null"],
            "enum": [None, *available_languages()],
            "default": None,
            "description": "source frontend (see docs/frontends.md); "
            "null = native C-like syntax",
        },
        "max_iter": {
            "type": "integer",
            "minimum": 1,
            "maximum": MAX_MAX_ITER,
            "default": 8,
            "description": "refinement-iteration bound per SCC",
        },
        "time_budget": {
            "type": "number",
            "exclusiveMinimum": 0,
            "maximum": MAX_TIME_BUDGET,
            "default": 15.0,
            "description": "per-SCC solver wall-clock budget (seconds); "
            "on expiry the SCC degrades to weaker cases",
        },
        "backend": {
            "type": ["string", "null"],
            "default": None,
            "description": "decision-procedure backend name (reference, "
            "matrix, z3, differential[:a,b]); null = service default",
        },
        "preanalysis": {
            "type": "boolean",
            "default": False,
            "description": "run the dataflow pre-analysis layer first",
        },
        "validate": {
            "type": "boolean",
            "default": True,
            "description": "lint the program before analysis (errors "
            "return HTTP 422 with diagnostics)",
        },
    },
}

#: Knob names (request keys beyond ``source``) in canonical order; they
#: feed the request fingerprint, so the order must be stable.  The
#: resolved frontend name is part of the knobs: identical bytes submitted
#: in different languages must never share a dedup entry.
KNOB_FIELDS = (
    "language", "max_iter", "time_budget", "backend", "preanalysis",
    "validate",
)


def validate_analyze_request(
    obj: object, max_source_bytes: int = DEFAULT_MAX_SOURCE_BYTES
) -> Tuple[Optional[Dict[str, object]], List[str]]:
    """Check a decoded ``POST /analyze`` body against the schema.

    Returns ``(params, errors)``: on success *params* carries every knob
    with defaults filled in and *errors* is empty; on failure *params* is
    ``None`` and *errors* lists every violation (not just the first), so
    a client can fix its request in one round trip.
    """
    errors: List[str] = []
    if not isinstance(obj, dict):
        return None, ["request body must be a JSON object"]
    unknown = sorted(set(obj) - set(ANALYZE_REQUEST_SCHEMA["properties"]))
    if unknown:
        errors.append(f"unknown field(s): {', '.join(unknown)}")

    source = obj.get("source")
    if not isinstance(source, str) or not source.strip():
        errors.append("'source' is required and must be a non-empty string")
    elif len(source.encode()) > max_source_bytes:
        errors.append(
            f"'source' exceeds the {max_source_bytes}-byte limit"
        )

    max_iter = obj.get("max_iter", 8)
    if not isinstance(max_iter, int) or isinstance(max_iter, bool) \
            or not 1 <= max_iter <= MAX_MAX_ITER:
        errors.append(
            f"'max_iter' must be an integer in [1, {MAX_MAX_ITER}]"
        )

    time_budget = obj.get("time_budget", 15.0)
    if isinstance(time_budget, bool) or not isinstance(time_budget, (int, float)) \
            or not 0 < float(time_budget) <= MAX_TIME_BUDGET:
        errors.append(
            f"'time_budget' must be a number in (0, {MAX_TIME_BUDGET}]"
        )

    backend = obj.get("backend")
    if backend is not None and not isinstance(backend, str):
        errors.append("'backend' must be a string or null")

    language = obj.get("language")
    if language is not None and not isinstance(language, str):
        errors.append("'language' must be a string or null")
        language = None
    elif language is not None and language not in available_languages():
        known = ", ".join(available_languages())
        errors.append(f"unknown language {language!r} (known: {known})")

    flags = {}
    for name, default in (("preanalysis", False), ("validate", True)):
        value = obj.get(name, default)
        if not isinstance(value, bool):
            errors.append(f"'{name}' must be a boolean")
            value = default
        flags[name] = value

    if errors:
        return None, errors
    return {
        "source": source,
        # normalised to the frontend's canonical name so "language":
        # null and an explicit "native" deduplicate together
        "language": "native" if language is None else language,
        "max_iter": max_iter,
        "time_budget": float(time_budget),
        "backend": backend,
        "preanalysis": flags["preanalysis"],
        "validate": flags["validate"],
    }, []


def build_response(
    fingerprint: str,
    verdicts: Dict[str, str],
    specs: Dict[str, str],
    solver: Dict[str, int],
    analysis_seconds: float,
) -> Dict[str, object]:
    """The success payload for one completed analysis.

    ``analysis_seconds`` is the *leader's* wall-clock time: joiners
    receive the same payload (byte-identical by construction), so the
    field reports what the analysis cost, not what any one request
    waited."""
    return {
        "ok": True,
        "fingerprint": fingerprint,
        "verdicts": verdicts,
        "specs": specs,
        "solver": solver,
        "analysis_seconds": round(analysis_seconds, 6),
    }


def error_response(
    code: str, message: str, diagnostics: Optional[List[str]] = None
) -> Dict[str, object]:
    """A structured error payload (``ok: false``)."""
    payload: Dict[str, object] = {"ok": False, "error": code, "message": message}
    if diagnostics is not None:
        payload["diagnostics"] = diagnostics
    return payload
