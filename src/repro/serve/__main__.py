"""CLI entry point: ``python -m repro.serve``.

Runs one :class:`~repro.serve.server.AnalysisService` in the foreground
until SIGTERM/SIGINT, then drains in-flight analyses and exits 0.  The
bound address is printed (and flushed) as the first line of output --
``listening on http://HOST:PORT`` -- so scripts that start the daemon
with ``--port 0`` can parse the actual port.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.serve.server import AnalysisService, ServiceConfig


def _parse_args(argv=None) -> ServiceConfig:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve termination/non-termination analyses over HTTP.",
    )
    defaults = ServiceConfig()
    parser.add_argument("--host", default=defaults.host)
    parser.add_argument(
        "--port", type=int, default=defaults.port,
        help="TCP port (0 picks a free one; the bound port is printed)",
    )
    parser.add_argument(
        "--workers", type=int, default=defaults.workers,
        help="analysis worker threads (default %(default)s)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=defaults.queue_limit,
        help="max distinct analyses admitted at once (default %(default)s)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="persistent spec-store directory shared by all workers",
    )
    parser.add_argument(
        "--backend", default=None,
        help="default solver backend for requests that do not name one",
    )
    parser.add_argument(
        "--max-analysis-seconds", type=float,
        default=defaults.max_analysis_seconds,
        help="hard wall-clock cap per analysis (default %(default)s)",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.queue_limit < 1:
        parser.error("--queue-limit must be >= 1")
    if args.max_analysis_seconds <= 0:
        parser.error("--max-analysis-seconds must be > 0")
    return ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        store=args.store,
        backend=args.backend,
        max_analysis_seconds=args.max_analysis_seconds,
    )


async def _serve(config: ServiceConfig) -> None:
    service = AnalysisService(config)
    host, port = await service.start()
    print(f"listening on http://{host}:{port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)
    try:
        await stop.wait()
    finally:
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.remove_signal_handler(sig)
    print("shutting down", flush=True)
    await service.shutdown()


def main(argv=None) -> int:
    config = _parse_args(argv)
    try:
        asyncio.run(_serve(config))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
