"""The analysis daemon: asyncio HTTP server, worker pool, service state.

Architecture (see ``docs/serve.md`` for the full picture)::

    client --HTTP--> event loop (parse, validate, fingerprint, dedup)
                         |  leader only, bounded pool
                         v
                  ThreadPoolExecutor workers
                         |  infer_program(isolate_names=True,
                         |                store=<shared SpecStore>)
                         v
                  process-resident caches (interned formulas, DNF/FM
                  memos, backend singletons) + on-disk spec store

Everything stateful -- the dedup table, counters, the pending-job gauge
-- is touched from the event-loop thread only; worker threads run the
pure analysis function and hand their result back through the executor
future.  Worker threads never install signal handlers: per-request
wall-clock caps go through :func:`repro.bench.runner.run_with_timeout`,
which routes non-main-thread callers to its watchdog fallback.

The daemon deliberately never calls ``clear_caches``: resident caches
are the point.  Growth is bounded by the LRU caps of every memo layer
(``repro.arith.lru``) and the weak formula intern table; `/stats`
surfaces their sizes (:func:`repro.arith.solver.cache_telemetry`) so an
operator can watch them.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.arith.context import SolverStats
from repro.serve.dedup import CachedResponse, DedupTable, request_fingerprint
from repro.serve.schema import (
    ANALYZE_REQUEST_SCHEMA,
    DEFAULT_MAX_SOURCE_BYTES,
    KNOB_FIELDS,
    build_response,
    error_response,
    validate_analyze_request,
)

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    422: "Unprocessable Entity", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

#: Upper bound on the HTTP head (request line + headers) we will buffer.
_MAX_HEAD_BYTES = 32 * 1024


@dataclass
class ServiceConfig:
    """Tunables of one :class:`AnalysisService` instance."""

    host: str = "127.0.0.1"
    port: int = 8095
    #: Worker threads analyzing in parallel.  They share the process-wide
    #: interned-formula universe and memo caches (that is the perf win);
    #: see docs/serve.md for the concurrency contract.
    workers: int = 2
    #: Maximum *distinct* analyses admitted but not yet finished (queued +
    #: running).  Beyond it, new leaders get HTTP 503; joiners of admitted
    #: analyses are never rejected -- they cost no pool slot.
    queue_limit: int = 64
    #: Spec-store directory shared by every worker (``None`` disables the
    #: persistent layer; dedup and resident caches still apply).
    store: Optional[str] = None
    #: Default decision-procedure backend for requests that do not name one.
    backend: Optional[str] = None
    #: Hard per-analysis wall-clock cap (seconds), enforced by
    #: run_with_timeout around the whole inference; requests may ask for
    #: smaller per-SCC budgets but never exceed this.
    max_analysis_seconds: float = 120.0
    #: Reject request bodies larger than this many bytes.
    max_body_bytes: int = DEFAULT_MAX_SOURCE_BYTES + 4096
    #: Source-size cap handed to the schema validator.
    max_source_bytes: int = DEFAULT_MAX_SOURCE_BYTES


@dataclass
class _AnalysisGauges:
    """Lifecycle counters for analyses (not requests)."""

    started: int = 0
    completed: int = 0
    failed: int = 0
    timed_out: int = 0
    seconds_total: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "started": self.started, "completed": self.completed,
            "failed": self.failed, "timed_out": self.timed_out,
            "seconds_total": round(self.seconds_total, 6),
        }


class AnalysisService:
    """One daemon instance: routes, dedup, pool, counters.

    Create, then ``await start()``; ``await shutdown()`` drains and
    closes.  All mutable state is event-loop-confined."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.dedup = DedupTable()
        self.requests: Dict[str, int] = {}
        self.responses: Dict[int, int] = {}
        self.analyses = _AnalysisGauges()
        self.solver_totals = SolverStats()
        self.queue_rejected = 0
        self._pending = 0
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve-worker",
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._started_at = time.monotonic()
        self._store = None
        if self.config.store is not None:
            from repro.store.specstore import SpecStore

            self._store = SpecStore(self.config.store)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and serve; returns the actual (host, port) -- port 0 in
        the config picks a free one."""
        self._started_at = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def shutdown(self) -> None:
        """Stop accepting connections and drain the worker pool.

        In-flight analyses finish (each is bounded by
        ``max_analysis_seconds``); their joiners are answered through the
        dedup futures as usual.  New connections are refused as soon as
        the listening socket closes."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await asyncio.get_running_loop().run_in_executor(
            None, self._pool.shutdown
        )

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, body, extra = await self._handle_request(reader)
            await self._write_response(writer, status, body, extra)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except Exception:  # pragma: no cover - last-resort guard
            try:
                await self._write_response(
                    writer, 500,
                    _encode(error_response("internal", "internal error")), {},
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        extra: Dict[str, str],
    ) -> None:
        self.responses[status] = self.responses.get(status, 0) + 1
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        head += [f"{k}: {v}" for k, v in extra.items()]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, bytes, Dict[str, str]]:
        line = await reader.readline()
        if not line:
            raise ConnectionError("empty request")
        parts = line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            return 400, _encode(error_response("bad-request", "malformed request line")), {}
        method, target = parts[0].upper(), parts[1].split("?", 1)[0]
        headers: Dict[str, str] = {}
        head_bytes = len(line)
        while True:
            hline = await reader.readline()
            head_bytes += len(hline)
            if head_bytes > _MAX_HEAD_BYTES:
                return 400, _encode(error_response("bad-request", "headers too large")), {}
            if hline in (b"\r\n", b"\n", b""):
                break
            name, _, value = hline.decode("latin-1", "replace").partition(":")
            headers[name.strip().lower()] = value.strip()

        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            return 400, _encode(error_response("bad-request", "bad Content-Length")), {}
        if length > self.config.max_body_bytes:
            return 413, _encode(error_response(
                "too-large",
                f"body exceeds {self.config.max_body_bytes} bytes",
            )), {}
        body = await reader.readexactly(length) if length else b""
        return await self._route(method, target, body)

    # -- routing -------------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, bytes, Dict[str, str]]:
        routes = {
            "/healthz": ("GET", self._get_healthz),
            "/stats": ("GET", self._get_stats),
            "/schema": ("GET", self._get_schema),
            "/analyze": ("POST", None),
        }
        entry = routes.get(path)
        if entry is None:
            return 404, _encode(error_response("not-found", f"no route {path}")), {}
        want, handler = entry
        self.requests[path.lstrip("/")] = self.requests.get(path.lstrip("/"), 0) + 1
        if method != want:
            return 405, _encode(error_response(
                "method-not-allowed", f"{path} expects {want}"
            )), {"Allow": want}
        if handler is not None:
            return 200, _encode(handler()), {}
        return await self._post_analyze(body)

    def _get_healthz(self) -> Dict[str, object]:
        return {
            "ok": True,
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
        }

    def _get_schema(self) -> Dict[str, object]:
        return {"ok": True, "analyze_request": ANALYZE_REQUEST_SCHEMA}

    def _get_stats(self) -> Dict[str, object]:
        from repro.arith.solver import cache_telemetry

        store_stats = None
        if self._store is not None:
            store_stats = {
                "path": str(self._store.root),
                "entries": len(self._store),
            }
        return {
            "ok": True,
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "requests": dict(self.requests),
            "responses": {str(k): v for k, v in sorted(self.responses.items())},
            "dedup": self.dedup.stats(),
            "queue": {
                "workers": self.config.workers,
                "pending": self._pending,
                "capacity": self.config.queue_limit,
                "rejected_full": self.queue_rejected,
            },
            "analyses": self.analyses.as_dict(),
            "solver": self.solver_totals.as_dict(),
            "caches": cache_telemetry(),
            "store": store_stats,
        }

    # -- /analyze ------------------------------------------------------------

    async def _post_analyze(
        self, body: bytes
    ) -> Tuple[int, bytes, Dict[str, str]]:
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, _encode(error_response("bad-json", str(exc))), {}
        params, errors = validate_analyze_request(
            decoded, self.config.max_source_bytes
        )
        if params is None:
            return 400, _encode(error_response(
                "invalid-request", "; ".join(errors), diagnostics=errors
            )), {}

        backend = params["backend"] or self.config.backend
        if backend is not None:
            from repro.arith.backends import BackendUnavailable, get_backend

            try:
                get_backend(backend)
            except ValueError as exc:
                return 400, _encode(error_response("unknown-backend", str(exc))), {}
            except BackendUnavailable as exc:
                return 503, _encode(error_response(
                    "backend-unavailable", str(exc)
                )), {}

        from repro.lang.errors import SourceError
        from repro.lang.frontends import get_frontend

        # validated against available_languages() above, so this resolves
        frontend = get_frontend(params["language"])
        try:
            program = frontend.parse(params["source"])
        except SourceError as exc:
            return 400, _encode(error_response(
                "parse-error", str(exc),
                diagnostics=[d.render() for d in exc.diagnostics],
            )), {}

        knobs = {k: params[k] for k in KNOB_FIELDS}
        knobs["backend"] = backend
        fingerprint = request_fingerprint(program, knobs)

        role, found = self.dedup.claim(fingerprint)
        if role == "hit":
            return found.status, found.body, {"X-Repro-Dedup": "hit"}
        if role == "join":
            response = await asyncio.shield(found)
            return response.status, response.body, {"X-Repro-Dedup": "join"}

        if self._pending >= self.config.queue_limit:
            self.queue_rejected += 1
            return 503, _encode(error_response(
                "queue-full",
                f"{self._pending} analyses pending (limit "
                f"{self.config.queue_limit}); retry later",
            )), {"Retry-After": "1"}

        fut = self.dedup.begin(fingerprint)
        self._pending += 1
        self.analyses.started += 1
        loop = asyncio.get_running_loop()
        try:
            status, payload, cacheable, stats, seconds = (
                await loop.run_in_executor(
                    self._pool, self._analyze_blocking,
                    program, params, backend, fingerprint,
                )
            )
        except Exception as exc:  # executor infrastructure failure
            status, payload, cacheable, stats, seconds = (
                500, error_response("internal", str(exc)), False, None, 0.0
            )
        finally:
            self._pending -= 1
        if status == 200:
            self.analyses.completed += 1
        elif status == 504:
            self.analyses.timed_out += 1
        else:
            self.analyses.failed += 1
        self.analyses.seconds_total += seconds
        if stats is not None:
            self.solver_totals.merge_dict(stats)
        response = CachedResponse(status, _encode(payload))
        self.dedup.finish(fingerprint, response, cacheable)
        return response.status, response.body, {"X-Repro-Dedup": "leader"}

    def _analyze_blocking(
        self,
        program,
        params: Dict[str, object],
        backend: Optional[str],
        fingerprint: str,
    ):
        """Worker-thread body: the one call that does real work.

        Pure with respect to service state: everything it touches is
        either request-local (via ``isolate_names``) or a process-wide
        cache designed for concurrent readers.  Returns
        ``(status, payload, cacheable, stats_dict, seconds)``."""
        from repro.analysis.diagnostics import ProgramInvalid
        from repro.bench.runner import AnalysisTimeout, run_with_timeout
        from repro.core.pipeline import infer_program

        start = time.monotonic()
        try:
            result = run_with_timeout(
                lambda: infer_program(
                    program,
                    max_iter=params["max_iter"],
                    time_budget=params["time_budget"],
                    store=self._store,
                    backend=backend,
                    preanalysis=params["preanalysis"],
                    validate=params["validate"],
                    isolate_names=True,
                    language=params["language"],
                ),
                self.config.max_analysis_seconds,
            )
            verdicts = {m: str(result.verdict(m)) for m in result.specs}
            specs = {m: result.specs[m].pretty() for m in result.specs}
            stats = result.solver_stats.as_dict() if result.solver_stats else {}
            seconds = time.monotonic() - start
            payload = build_response(
                fingerprint, verdicts, specs, stats, seconds
            )
            return 200, payload, True, stats, seconds
        except AnalysisTimeout:
            seconds = time.monotonic() - start
            return 504, error_response(
                "analysis-timeout",
                f"analysis exceeded {self.config.max_analysis_seconds}s",
            ), False, None, seconds
        except ProgramInvalid as exc:
            seconds = time.monotonic() - start
            return 422, error_response(
                "program-invalid",
                "program failed validation",
                diagnostics=[d.render() for d in exc.diagnostics],
            ), True, None, seconds
        except Exception as exc:
            seconds = time.monotonic() - start
            return 500, error_response(
                "analysis-error", f"{type(exc).__name__}: {exc}"
            ), False, None, seconds


def _encode(payload: Dict[str, object]) -> bytes:
    """Canonical response serialization (sorted keys: deduplicated
    responses must be byte-identical, so the encoding is deterministic)."""
    return json.dumps(payload, sort_keys=True).encode("utf-8")
