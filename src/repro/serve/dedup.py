"""Request fingerprints and the in-flight/completed deduplication table.

**Fingerprints.**  A request is deduplicated by *structure*, not by
source bytes: the parsed program's per-method digests
(:func:`repro.store.fingerprint.method_digest` -- position-free, so
layout/whitespace edits do not change them) are combined with the
analysis knobs into one SHA-256.  Two near-identical submissions (same
program, reformatted) therefore share a fingerprint, while any change to
a body, signature, contract or knob produces a new one.  This is the
same digest family the persistent spec store keys on, applied one level
up: the store dedups per-SCC *summaries* across processes, this table
dedups whole *requests* within the daemon.

**Table.**  Two layers, consulted in order:

* ``completed`` -- an LRU of fully serialized responses.  A hit costs a
  dict probe and returns the leader's bytes verbatim.
* ``in_flight`` -- fingerprint -> ``asyncio.Future``.  A request arriving
  while the same analysis runs *joins* the future instead of starting a
  second analysis; the leader resolves it with the shared response.

Concurrency model: every method is called from the event-loop thread
only (the server awaits worker results back onto the loop before
touching the table), so the table needs no locking and its counters are
exact.  Failed analyses that are deterministic functions of the request
(lint rejections) are cached like successes; timeouts and internal
errors resolve their joiners but are *not* cached, so a transient
failure never poisons the table.  (Parse errors never reach the table at
all -- fingerprints are computed over the *parsed* program.)
"""

from __future__ import annotations

import asyncio
import hashlib
from dataclasses import dataclass
from typing import Dict, Tuple, Union

from repro.arith.lru import LRUCache
from repro.lang.ast import Program
from repro.store.fingerprint import FINGERPRINT_VERSION, method_digest

#: Completed-response cache capacity (entries; one entry is one serialized
#: response, typically a few KB).
DEFAULT_COMPLETED_CAPACITY = 4096


def request_fingerprint(program: Program, knobs: Dict[str, object]) -> str:
    """Structural fingerprint of one analyze request.

    Digests every method of the parsed (pre-desugaring) program plus the
    canonicalized knob mapping.  Positions are excluded by
    :func:`~repro.store.fingerprint.method_digest`, so formatting-only
    variants of a program collide -- deliberately."""
    h = hashlib.sha256()
    h.update(f"tnt-request:v{FINGERPRINT_VERSION}\n".encode())
    for name in sorted(program.methods):
        h.update(name.encode())
        h.update(b"=")
        h.update(method_digest(program.methods[name]).encode())
        h.update(b"\n")
    for key in sorted(knobs):
        h.update(f"{key}={knobs[key]!r}\n".encode())
    return h.hexdigest()


@dataclass
class CachedResponse:
    """One completed response: HTTP status plus the serialized body."""

    status: int
    body: bytes


@dataclass
class DedupCounters:
    """Exact accounting of how requests were satisfied (event-loop only)."""

    leaders: int = 0   # requests that started an analysis
    joins: int = 0     # requests that awaited an identical in-flight one
    hits: int = 0      # requests served from the completed cache

    def as_dict(self) -> Dict[str, int]:
        return {"leaders": self.leaders, "joins": self.joins, "hits": self.hits}


class DedupTable:
    """In-flight + completed request deduplication (event-loop only)."""

    def __init__(self, completed_capacity: int = DEFAULT_COMPLETED_CAPACITY):
        self.completed: LRUCache = LRUCache(completed_capacity)
        self.in_flight: Dict[str, "asyncio.Future[CachedResponse]"] = {}
        self.counters = DedupCounters()

    def claim(
        self, fingerprint: str
    ) -> Tuple[str, Union[CachedResponse, "asyncio.Future[CachedResponse]", None]]:
        """Route one request: ``("hit", response)``, ``("join", future)``
        or ``("lead", None)``.

        A ``lead`` outcome does *not* register anything yet -- the caller
        decides whether it has pool capacity and then calls
        :meth:`begin` (or rejects the request with no table side
        effects)."""
        cached = self.completed.get(fingerprint)
        if cached is not None:
            self.counters.hits += 1
            return "hit", cached
        fut = self.in_flight.get(fingerprint)
        if fut is not None:
            self.counters.joins += 1
            return "join", fut
        return "lead", None

    def begin(self, fingerprint: str) -> "asyncio.Future[CachedResponse]":
        """Register this request as the in-flight leader for its
        fingerprint and return the future later joiners will await."""
        fut: "asyncio.Future[CachedResponse]" = (
            asyncio.get_running_loop().create_future()
        )
        self.in_flight[fingerprint] = fut
        self.counters.leaders += 1
        return fut

    def finish(
        self, fingerprint: str, response: CachedResponse, cacheable: bool
    ) -> None:
        """Resolve the in-flight future with *response* and, when the
        outcome is a deterministic function of the request, publish it to
        the completed cache for future hits."""
        if cacheable:
            self.completed.put(fingerprint, response)
        fut = self.in_flight.pop(fingerprint, None)
        if fut is not None and not fut.done():
            fut.set_result(response)

    def stats(self) -> Dict[str, object]:
        return {
            **self.counters.as_dict(),
            "in_flight": len(self.in_flight),
            "cached_responses": len(self.completed),
            "cache_evictions": self.completed.evictions,
        }
