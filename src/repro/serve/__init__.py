"""Analysis-as-a-service: a long-lived HTTP/JSON daemon over the pipeline.

Every expensive asset the library builds -- the interned formula
universe, warm solver caches, backend singletons, the persistent spec
store -- lives exactly as long as its process.  This package keeps one
process alive and serves analyses over HTTP, so those assets amortise
across requests instead of dying with each CLI run:

* :mod:`repro.serve.schema` -- the ``POST /analyze`` request/response
  JSON schema and its validator;
* :mod:`repro.serve.dedup` -- structural request fingerprints and the
  in-flight/completed deduplication table (N identical concurrent
  submissions cost one analysis and N-1 joins);
* :mod:`repro.serve.server` -- the asyncio HTTP server, the bounded
  worker pool, and the service state (`/analyze`, `/healthz`, `/stats`,
  `/schema`);
* ``python -m repro.serve`` -- the CLI entry point.

Stdlib only: ``asyncio`` plus a small hand-rolled HTTP/1.1 layer; no web
framework.  See ``docs/serve.md``.
"""

from repro.serve.dedup import DedupTable, request_fingerprint
from repro.serve.schema import (
    ANALYZE_REQUEST_SCHEMA,
    validate_analyze_request,
)
from repro.serve.server import AnalysisService, ServiceConfig

__all__ = [
    "ANALYZE_REQUEST_SCHEMA",
    "AnalysisService",
    "DedupTable",
    "ServiceConfig",
    "request_fingerprint",
    "validate_analyze_request",
]
