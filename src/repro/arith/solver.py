"""Decision procedures: SAT, validity, entailment, projection, simplification.

The solver works by DNF conversion followed by Fourier-Motzkin reasoning on
each cube (:mod:`repro.arith.fm`).  Formulas are hash-consed
(:mod:`repro.arith.formula`), so every cache probe below is a pointer
comparison and every formula's hash is computed exactly once.

Completeness note: with the integer tightening performed at atom
construction, the procedure is exact on the unit-two-variable fragment
(difference-bound-like constraints with unit coefficients) that the paper's
verification conditions live in, and remains a sound UNSAT test in general.

**Contexts.**  Since the solver-context refactor, all state lives in
:class:`repro.arith.context.SolverContext` objects: per-context LRU-bounded
sat/entailment/projection caches with hit/miss/eviction statistics, and a
push/pop assumption stack whose DNF cubes are maintained incrementally.
The functions in this module are a thin facade over a process-wide
*default* context, kept for compatibility and for interactive use:

* every function accepts an optional ``ctx=`` keyword; passing an explicit
  :class:`~repro.arith.context.SolverContext` routes the query (and its
  caching) through that context;
* with ``ctx=None`` the query goes to
  :func:`repro.arith.context.default_context`.

Callers that issue many related queries -- an SCC resolution, a bench run
-- should create one context and pass it through (see ``docs/solver.md``
for the scoping guidance and the cache policy).

**Cache policy.**  All memo caches are LRU-bounded: at capacity the least
recently used entry is evicted (and counted in the statistics) rather than
the cache refusing new entries, so long runs keep benefiting from locality
instead of freezing an arbitrary early working set.  ``clear_caches()``
drops every module-level cache (default context, DNF memo, FM cube memo)
and resets all statistics.
"""

from __future__ import annotations

import threading
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arith import fm
from repro.arith.context import SolverContext, SolverStats, default_context, resolve
from repro.arith.formula import (
    Atom,
    Formula,
    clear_dnf_cache,
    conj,
    dnf_cache_stats,
    intern_table_size,
    to_dnf,
)

#: Serialises concurrent :func:`clear_caches` calls so two resets cannot
#: interleave their per-cache swaps (each individual swap is already safe
#: under concurrent readers; the lock only keeps a *pair* of resets from
#: producing a half-old, half-new cache family).
_CLEAR_LOCK = threading.Lock()


def clear_caches() -> None:
    """Drop all memoised solver results and reset statistics.

    Clears the default context's caches and stats, the module-level DNF
    memo, the FM cube-satisfiability memo and the private memo of every
    instantiated solver backend (mostly useful in benchmarks).

    **Thread contract.**  Safe to call while other threads are mid-query:
    every cache is an :class:`~repro.arith.lru.LRUCache`, whose ``clear``
    swaps the backing dict instead of mutating it, so a concurrent reader
    either finishes against the old memo (stale but valid -- memo entries
    are pure functions of their keys) or starts cold against the new one.
    What this call does *not* do is snapshot-reset a running query's
    statistics: counters incremented by in-flight queries after the reset
    land in the fresh statistics, so numbers sampled while analyses are
    running are best-effort.  Long-lived processes (the analysis daemon,
    see ``docs/serve.md``) normally never call this at all -- resident
    caches are the point -- and rely on LRU bounds for growth control.
    """
    from repro.arith.backends import clear_backend_caches

    with _CLEAR_LOCK:
        default_context().clear(reset_stats=True)
        clear_dnf_cache()
        fm.clear_fm_caches()
        clear_backend_caches()


def cache_telemetry() -> Dict[str, object]:
    """Sizes and eviction counters of every process-resident memo layer.

    One observability call for a process that never exits: the default
    context's per-kind caches, the module-level DNF and FM cube memos,
    each instantiated backend's private memo, and the live size of the
    formula intern table (weak, so it tracks the resident formula
    universe).  All numbers are read without locking -- they are
    monitoring data, exact only in a quiescent process."""
    from repro.arith.backends import backend_cache_stats

    return {
        "default_context": default_context().cache_sizes(),
        "dnf": dnf_cache_stats(),
        "fm": fm.fm_cache_stats(),
        "backends": backend_cache_stats(),
        "interned_formulas": intern_table_size(),
    }


def solver_stats(ctx: Optional[SolverContext] = None) -> SolverStats:
    """The statistics object of *ctx* (default context when ``None``)."""
    return resolve(ctx).stats


def dnf_disjuncts(p: Formula) -> List[List[Atom]]:
    """DNF of *p* as a list of cubes (conjunctions of atoms)."""
    return to_dnf(p)


def cube_formula(atoms: Sequence[Atom]) -> Formula:
    """Rebuild a conjunction from a cube."""
    return conj(*atoms)


def is_sat(p: Formula, ctx: Optional[SolverContext] = None) -> bool:
    """Satisfiability over the integers (see module completeness note).

    On DNF blow-up the query degrades to "satisfiable" -- the conservative
    answer for every use in the inference (assumptions are kept rather
    than dropped, proofs fail rather than succeed).
    """
    return resolve(ctx).is_sat(p)


def is_unsat(p: Formula, ctx: Optional[SolverContext] = None) -> bool:
    return not resolve(ctx).is_sat(p)


def is_valid(p: Formula, ctx: Optional[SolverContext] = None) -> bool:
    """Validity of a (possibly existential) formula."""
    return resolve(ctx).is_valid(p)


def entails(
    antecedent: Formula,
    consequent: Formula,
    ctx: Optional[SolverContext] = None,
) -> bool:
    """``antecedent => consequent`` (existentials in the consequent are
    eliminated by projection before negation)."""
    return resolve(ctx).entails(antecedent, consequent)


def equivalent(
    a: Formula, b: Formula, ctx: Optional[SolverContext] = None
) -> bool:
    return resolve(ctx).equivalent(a, b)


def model(
    p: Formula, ctx: Optional[SolverContext] = None
) -> Optional[Dict[str, Fraction]]:
    """A satisfying assignment for *p*, or ``None``."""
    return resolve(ctx).model(p)


def project(
    p: Formula,
    keep: Optional[Set[str]] = None,
    eliminate: Optional[Set[str]] = None,
    ctx: Optional[SolverContext] = None,
) -> Formula:
    """Quantifier elimination: ``exists eliminated-vars . p``.

    Exactly one of *keep*/*eliminate* must be given.  The result mentions
    only the kept variables.
    """
    return resolve(ctx).project(p, keep=keep, eliminate=eliminate)


def simplify(p: Formula, ctx: Optional[SolverContext] = None) -> Formula:
    """Semantic simplification via DNF.

    Drops unsatisfiable cubes, removes atoms implied by the rest of their
    cube, and removes cubes subsumed by other cubes.  The result is
    equivalent to the input (over the solver's integer semantics).
    """
    return resolve(ctx).simplify(p)
