"""Decision procedures: SAT, validity, entailment, projection, simplification.

The solver works by DNF conversion followed by Fourier-Motzkin reasoning on
each cube (:mod:`repro.arith.fm`).  Results of satisfiability queries are
memoised: formulas are immutable and hashable, so caching is safe.

Completeness note: with the integer tightening performed at atom
construction, the procedure is exact on the unit-two-variable fragment
(difference-bound-like constraints with unit coefficients) that the paper's
verification conditions live in, and remains a sound UNSAT test in general.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arith import fm
from repro.arith.formula import (
    Atom,
    BoolConst,
    Exists,
    FALSE,
    Formula,
    Rel,
    TRUE,
    conj,
    disj,
    exists,
    neg,
    to_dnf,
)

_SAT_CACHE: Dict[Formula, bool] = {}
_ENTAIL_CACHE: Dict[Tuple[Formula, Formula], bool] = {}
_CACHE_LIMIT = 200_000


def clear_caches() -> None:
    """Drop all memoised solver results (mostly useful in benchmarks)."""
    _SAT_CACHE.clear()
    _ENTAIL_CACHE.clear()


def dnf_disjuncts(p: Formula) -> List[List[Atom]]:
    """DNF of *p* as a list of cubes (conjunctions of atoms)."""
    return to_dnf(p)


def cube_formula(atoms: Sequence[Atom]) -> Formula:
    """Rebuild a conjunction from a cube."""
    return conj(*atoms)


def is_sat(p: Formula) -> bool:
    """Satisfiability over the integers (see module completeness note).

    On DNF blow-up the query degrades to "satisfiable" -- the conservative
    answer for every use in the inference (assumptions are kept rather
    than dropped, proofs fail rather than succeed).
    """
    cached = _SAT_CACHE.get(p)
    if cached is not None:
        return cached
    try:
        result = any(fm.cube_is_sat(cube) for cube in to_dnf(p))
    except MemoryError:
        return True
    if len(_SAT_CACHE) < _CACHE_LIMIT:
        _SAT_CACHE[p] = result
    return result


def is_unsat(p: Formula) -> bool:
    return not is_sat(p)


def is_valid(p: Formula) -> bool:
    """Validity of a (possibly existential) formula."""
    return is_unsat(neg(_eliminate_quantifiers(p)))


def entails(antecedent: Formula, consequent: Formula) -> bool:
    """``antecedent => consequent`` (existentials in the consequent are
    eliminated by projection before negation)."""
    key = (antecedent, consequent)
    cached = _ENTAIL_CACHE.get(key)
    if cached is not None:
        return cached
    try:
        result = is_unsat(
            conj(antecedent, neg(_eliminate_quantifiers(consequent)))
        )
    except MemoryError:
        # blow-up: conservatively fail the proof obligation
        return False
    if len(_ENTAIL_CACHE) < _CACHE_LIMIT:
        _ENTAIL_CACHE[key] = result
    return result


def equivalent(a: Formula, b: Formula) -> bool:
    return entails(a, b) and entails(b, a)


def model(p: Formula) -> Optional[Dict[str, Fraction]]:
    """A satisfying assignment for *p*, or ``None``."""
    for cube in to_dnf(p):
        env = fm.cube_model(cube)
        if env is not None:
            free = p.free_vars()
            for v in free:
                env.setdefault(v, Fraction(0))
            if all(a.evaluate(env) for a in cube):
                return env
    return None


def _eliminate_quantifiers(p: Formula) -> Formula:
    if isinstance(p, Exists):
        return project(p.body, eliminate=set(p.bound))
    if isinstance(p, (BoolConst, Atom)):
        return p
    # Rebuild children; And/Or/Not all expose .args or .arg
    from repro.arith.formula import And, Not, Or

    if isinstance(p, And):
        return conj(*(_eliminate_quantifiers(a) for a in p.args))
    if isinstance(p, Or):
        return disj(*(_eliminate_quantifiers(a) for a in p.args))
    if isinstance(p, Not):
        return neg(_eliminate_quantifiers(p.arg))
    raise TypeError(f"unknown formula node {type(p).__name__}")


def project(p: Formula, keep: Optional[Set[str]] = None,
            eliminate: Optional[Set[str]] = None) -> Formula:
    """Quantifier elimination: ``exists eliminated-vars . p``.

    Exactly one of *keep*/*eliminate* must be given.  The result mentions
    only the kept variables.
    """
    if (keep is None) == (eliminate is None):
        raise ValueError("specify exactly one of keep= or eliminate=")
    p = _eliminate_quantifiers(p) if _has_exists(p) else p
    cubes: List[Formula] = []
    for cube in to_dnf(p):
        try:
            projected = fm.project_cube(cube, keep=keep, eliminate=eliminate)
        except fm.Unsat:
            continue
        cubes.append(conj(*projected))
    return disj(*cubes)


def _has_exists(p: Formula) -> bool:
    from repro.arith.formula import And, Not, Or

    if isinstance(p, Exists):
        return True
    if isinstance(p, (And, Or)):
        return any(_has_exists(a) for a in p.args)
    if isinstance(p, Not):
        return _has_exists(p.arg)
    return False


def simplify(p: Formula) -> Formula:
    """Semantic simplification via DNF.

    Drops unsatisfiable cubes, removes atoms implied by the rest of their
    cube, and removes cubes subsumed by other cubes.  The result is
    equivalent to the input (over the solver's integer semantics).
    """
    try:
        cubes = to_dnf(p)
    except MemoryError:
        return p
    if len(cubes) > 12:
        # Large disjunctions: quadratic pruning/subsumption would dominate
        # the analysis; keep only the cheap unsat-cube filter.
        sat_cubes = [c for c in cubes if fm.cube_is_sat(c)]
        if not sat_cubes:
            return FALSE
        return disj(*(conj(*c) for c in sat_cubes))
    kept_cubes: List[List[Atom]] = []
    for cube in cubes:
        if not fm.cube_is_sat(cube):
            continue
        kept_cubes.append(_prune_cube(cube))
    # subsumption between cubes: cube A subsumes cube B when B => A
    result: List[List[Atom]] = []
    for i, cube in enumerate(kept_cubes):
        ci = conj(*cube)
        subsumed = False
        for j, other in enumerate(kept_cubes):
            if i == j:
                continue
            cj = conj(*other)
            if entails(ci, cj) and not (entails(cj, ci) and j > i):
                subsumed = True
                break
        if not subsumed:
            result.append(cube)
    if not result:
        return FALSE
    return disj(*(conj(*c) for c in result))


def _prune_cube(cube: List[Atom]) -> List[Atom]:
    pruned = list(cube)
    i = 0
    while i < len(pruned):
        candidate = pruned[i]
        rest = pruned[:i] + pruned[i + 1:]
        if rest and entails(conj(*rest), candidate):
            pruned = rest
        else:
            i += 1
    return pruned
