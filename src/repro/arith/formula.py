"""Quantifier-free formulas over linear integer arithmetic (plus ``exists``).

All atoms are normalised to one of two shapes over integer variables:

* ``e <= 0``  (relation :data:`Rel.LE`)
* ``e == 0``  (relation :data:`Rel.EQ`)

Strict comparisons are integer-tightened at construction time:
``e < 0`` becomes ``e + 1 <= 0``.  This makes Fourier-Motzkin elimination
exact on the (integer) fragment the paper's verification conditions use far
more often than a rational relaxation would be.

Formulas are immutable trees built by the smart constructors :func:`conj`,
:func:`disj`, :func:`neg` and :func:`exists`, which perform cheap
simplifications (flattening, unit laws, constant folding).

**Hash-consing.**  Every node class interns its instances: constructing a
node that is structurally equal to a live one returns the *same object*, so
structural equality is pointer equality on the fast path, ``__hash__`` is
computed exactly once at construction, and solver caches keyed on formulas
cost O(1) per probe.  Conjuncts and disjuncts are additionally put into a
canonical order at build time (by interning order, which is deterministic
for a deterministic construction sequence), so ``conj(a, b)`` and
``conj(b, a)`` yield the identical node and hit the same cache entries.
The intern table holds weak references: nodes are reclaimed once no
formula, cache or caller mentions them.
"""

from __future__ import annotations

import contextvars
import enum
import itertools
import weakref
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple, Union

from repro.arith.lru import LRUCache
from repro.arith.terms import Coeff, LinExpr, to_linexpr

#: Global intern table for formula nodes (weak values: entries die with
#: their last strong referent).  Keys embed the node tag, so one table
#: serves every class.
_INTERN: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

#: Monotone counter handing out interning-order ids; used as the canonical
#: sort key for conjuncts/disjuncts (deterministic within a run, and across
#: runs for deterministic construction sequences -- unlike str hashes).
_NODE_COUNTER = itertools.count()


def _node_uid(p: "Formula") -> int:
    return p._uid


class Rel(enum.Enum):
    """Relation of a normalised atom against zero.

    ``LT`` is the *rational*-strict relation ``e < 0``.  The language
    pipeline never produces it (strict integer comparisons are tightened to
    ``LE`` at construction, see :func:`atom_lt`); it exists for callers of
    the Fourier-Motzkin witness layer (:func:`repro.arith.fm.cube_model`)
    that need open bounds kept open, e.g. rational counterexample search.
    """

    LE = "<="
    EQ = "=="
    LT = "<"


class Formula:
    """Base class for all formula nodes."""

    __slots__ = ()

    def free_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Formula":
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, LinExpr]) -> "Formula":
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, Coeff]) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Formula") -> "Formula":
        return conj(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return disj(self, other)

    def __invert__(self) -> "Formula":
        return neg(self)


class BoolConst(Formula):
    """``true`` or ``false`` (two interned singletons)."""

    __slots__ = ("value", "_uid", "__weakref__")

    _instances: Dict[bool, "BoolConst"] = {}

    def __new__(cls, value: bool):
        value = bool(value)
        hit = cls._instances.get(value)
        if hit is not None:
            return hit
        self = object.__new__(cls)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_uid", next(_NODE_COUNTER))
        cls._instances[value] = self
        return self

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("BoolConst is immutable")

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def rename(self, mapping: Mapping[str, str]) -> "Formula":
        return self

    def substitute(self, mapping: Mapping[str, LinExpr]) -> "Formula":
        return self

    def evaluate(self, env: Mapping[str, Coeff]) -> bool:
        return self.value

    def __reduce__(self):
        return (BoolConst, (self.value,))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BoolConst) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("bool", self.value))

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


class Atom(Formula):
    """A normalised linear atom ``expr <= 0`` or ``expr == 0`` (interned)."""

    __slots__ = ("expr", "rel", "_hash", "_uid", "__weakref__")

    def __new__(cls, expr: LinExpr, rel: Rel):
        key = ("atom", expr, rel)
        hit = _INTERN.get(key)
        if hit is not None:
            return hit
        self = object.__new__(cls)
        object.__setattr__(self, "expr", expr)
        object.__setattr__(self, "rel", rel)
        object.__setattr__(self, "_hash", hash(key))
        object.__setattr__(self, "_uid", next(_NODE_COUNTER))
        _INTERN[key] = self
        return self

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("Atom is immutable")

    def free_vars(self) -> FrozenSet[str]:
        return self.expr.variables()

    def rename(self, mapping: Mapping[str, str]) -> "Formula":
        return Atom(self.expr.rename(mapping), self.rel)

    def substitute(self, mapping: Mapping[str, LinExpr]) -> "Formula":
        return _atom_or_const(self.expr.substitute(mapping), self.rel)

    def evaluate(self, env: Mapping[str, Coeff]) -> bool:
        value = self.expr.evaluate(env)
        if self.rel is Rel.LE:
            return value <= 0
        if self.rel is Rel.LT:
            return value < 0
        return value == 0

    def negated(self) -> Formula:
        """Negation of this atom (integer-exact on the LE/EQ fragment)."""
        if self.rel is Rel.LT:
            # not(e < 0)  <=>  e >= 0  <=>  -e <= 0  (rational fragment).
            # Built directly: routing through _atom_or_const would apply
            # _norm_le's integer tightening, which is wrong over the
            # rationals this relation exists for.
            e = -self.expr
            if e.is_constant():
                return TRUE if e.constant <= 0 else FALSE
            return Atom(e.normalized(), Rel.LE)
        if self.rel is Rel.LE:
            # not(e <= 0)  <=>  e >= 1  <=>  -e + 1 <= 0
            return _atom_or_const(-self.expr + 1, Rel.LE)
        # not(e == 0)  <=>  e <= -1  or  e >= 1
        return disj(
            _atom_or_const(self.expr + 1, Rel.LE),
            _atom_or_const(-self.expr + 1, Rel.LE),
        )

    def __reduce__(self):
        # Re-intern in the receiving process (see LinExpr.__reduce__).
        return (Atom, (self.expr, self.rel))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, Atom)
            and self.rel == other.rel
            and self.expr == other.expr
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"({self.expr} {self.rel.value} 0)"


class NaryOp(Formula):
    """Shared behaviour of :class:`And` and :class:`Or` (interned).

    Arguments are stored in canonical (interning) order, so two
    conjunctions over the same set of conjuncts are the same object no
    matter the order they were supplied in.
    """

    __slots__ = ("args", "_hash", "_fv", "_uid", "__weakref__")
    _tag = "nary"

    def __new__(cls, args: Sequence[Formula]):
        ordered = tuple(sorted(args, key=_node_uid))
        key = (cls._tag, ordered)
        hit = _INTERN.get(key)
        if hit is not None:
            return hit
        self = object.__new__(cls)
        object.__setattr__(self, "args", ordered)
        object.__setattr__(self, "_hash", hash(key))
        object.__setattr__(self, "_fv", None)
        object.__setattr__(self, "_uid", next(_NODE_COUNTER))
        _INTERN[key] = self
        return self

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("formula nodes are immutable")

    def free_vars(self) -> FrozenSet[str]:
        if self._fv is None:
            out: FrozenSet[str] = frozenset()
            for a in self.args:
                out |= a.free_vars()
            object.__setattr__(self, "_fv", out)
        return self._fv

    def __reduce__(self):
        return (type(self), (self.args,))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return type(self) is type(other) and self.args == other.args

    def __hash__(self) -> int:
        return self._hash


class And(NaryOp):
    __slots__ = ()
    _tag = "and"

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        return conj(*(a.rename(mapping) for a in self.args))

    def substitute(self, mapping: Mapping[str, LinExpr]) -> Formula:
        return conj(*(a.substitute(mapping) for a in self.args))

    def evaluate(self, env: Mapping[str, Coeff]) -> bool:
        return all(a.evaluate(env) for a in self.args)

    def __repr__(self) -> str:
        return "(" + " & ".join(map(repr, self.args)) + ")"


class Or(NaryOp):
    __slots__ = ()
    _tag = "or"

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        return disj(*(a.rename(mapping) for a in self.args))

    def substitute(self, mapping: Mapping[str, LinExpr]) -> Formula:
        return disj(*(a.substitute(mapping) for a in self.args))

    def evaluate(self, env: Mapping[str, Coeff]) -> bool:
        return any(a.evaluate(env) for a in self.args)

    def __repr__(self) -> str:
        return "(" + " | ".join(map(repr, self.args)) + ")"


class Not(Formula):
    __slots__ = ("arg", "_hash", "_uid", "__weakref__")

    def __new__(cls, arg: Formula):
        key = ("not", arg)
        hit = _INTERN.get(key)
        if hit is not None:
            return hit
        self = object.__new__(cls)
        object.__setattr__(self, "arg", arg)
        object.__setattr__(self, "_hash", hash(key))
        object.__setattr__(self, "_uid", next(_NODE_COUNTER))
        _INTERN[key] = self
        return self

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("formula nodes are immutable")

    def free_vars(self) -> FrozenSet[str]:
        return self.arg.free_vars()

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        return neg(self.arg.rename(mapping))

    def substitute(self, mapping: Mapping[str, LinExpr]) -> Formula:
        return neg(self.arg.substitute(mapping))

    def evaluate(self, env: Mapping[str, Coeff]) -> bool:
        return not self.arg.evaluate(env)

    def __reduce__(self):
        return (Not, (self.arg,))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, Not) and self.arg == other.arg

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"~{self.arg!r}"


class Exists(Formula):
    """Existential quantification over a tuple of variables (interned)."""

    __slots__ = ("bound", "body", "_hash", "_uid", "__weakref__")

    def __new__(cls, bound: Sequence[str], body: Formula):
        bound = tuple(sorted(set(bound)))
        key = ("exists", bound, body)
        hit = _INTERN.get(key)
        if hit is not None:
            return hit
        self = object.__new__(cls)
        object.__setattr__(self, "bound", bound)
        object.__setattr__(self, "body", body)
        object.__setattr__(self, "_hash", hash(key))
        object.__setattr__(self, "_uid", next(_NODE_COUNTER))
        _INTERN[key] = self
        return self

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("formula nodes are immutable")

    def free_vars(self) -> FrozenSet[str]:
        return self.body.free_vars() - frozenset(self.bound)

    def rename(self, mapping: Mapping[str, str]) -> Formula:
        safe = {k: v for k, v in mapping.items() if k not in self.bound}
        if any(v in self.bound for v in safe.values()):
            # Rename bound variables apart first to avoid capture.
            fresh = {b: _fresh_name(b, self) for b in self.bound}
            return Exists(
                tuple(fresh.values()), self.body.rename(fresh)
            ).rename(mapping)
        return exists(self.bound, self.body.rename(safe))

    def substitute(self, mapping: Mapping[str, LinExpr]) -> Formula:
        safe = {k: v for k, v in mapping.items() if k not in self.bound}
        used = set()
        for e in safe.values():
            used |= e.variables()
        if used & set(self.bound):
            fresh = {b: _fresh_name(b, self) for b in self.bound}
            return Exists(
                tuple(fresh.values()), self.body.rename(fresh)
            ).substitute(mapping)
        return exists(self.bound, self.body.substitute(safe))

    def evaluate(self, env: Mapping[str, Coeff]) -> bool:
        raise ValueError("cannot directly evaluate a quantified formula")

    def __reduce__(self):
        return (Exists, (self.bound, self.body))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, Exists)
            and self.bound == other.bound
            and self.body == other.body
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"(exists {', '.join(self.bound)} . {self.body!r})"


#: Fresh-variable counter.  A :class:`contextvars.ContextVar` rather than
#: a module global so that concurrent analyses (daemon worker threads,
#: see ``docs/serve.md``) each count independently: every thread starts
#: from the default and :func:`fresh_name_scope` gives one analysis a
#: private, zero-based counter.  Names generated by *independent*
#: analyses may therefore coincide -- which is sound (a formula's meaning
#: is a pure function of its structure; two analyses never mix free
#: variables inside one query) and is exactly what makes structural
#: fingerprints of generated names reproducible without a process-global
#: reset.
_FRESH_COUNTER: contextvars.ContextVar[int] = contextvars.ContextVar(
    "repro-fresh-name-counter", default=0
)


def reset_fresh_names() -> None:
    """Restart the fresh-variable counter at zero (current context only).

    Within one analysis this is only safe when no formulas from earlier
    analyses of *that same scope* are alive (the bench runner's cold-start
    protocol: caches cleared, cyclic garbage collected): fresh names must
    never collide with live ones they could be mixed with in one query.
    Resetting makes an analysis independent of how many fresh names the
    context handed out before it, which is what keeps a run inside a
    long-lived process identical to the same run in a freshly forked
    shard worker.
    """
    _FRESH_COUNTER.set(0)


def fresh_scope() -> contextvars.Token:
    """Enter a zero-based fresh-name scope; returns the reset token.

    Used (via :func:`repro.core.pipeline.fresh_name_scope`) to give each
    analysis of a long-lived multi-threaded process its own deterministic
    counter.  Pass the token to :func:`exit_fresh_scope` to restore the
    caller's counter."""
    return _FRESH_COUNTER.set(0)


def exit_fresh_scope(token: contextvars.Token) -> None:
    _FRESH_COUNTER.reset(token)


def _next_fresh() -> int:
    n = _FRESH_COUNTER.get()
    _FRESH_COUNTER.set(n + 1)
    return n


def _fresh_name(base: str, context: Formula) -> str:
    taken = context.free_vars()
    while True:
        cand = f"{base}#{_next_fresh()}"
        if cand not in taken:
            return cand


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def _atom_or_const(expr: LinExpr, rel: Rel) -> Formula:
    if expr.is_constant():
        value = expr.constant
        if rel is Rel.LE:
            return TRUE if value <= 0 else FALSE
        if rel is Rel.LT:
            return TRUE if value < 0 else FALSE
        return TRUE if value == 0 else FALSE
    if rel is Rel.LT:
        # Rational-strict atoms must not be integer-tightened, but a
        # positive rescale preserves them exactly: normalize to coprime
        # integer coefficients so elimination chains cannot blow up the
        # fractions and structurally equal strict atoms intern together.
        return Atom(expr.normalized(), rel)
    return Atom(expr.normalized() if rel is Rel.EQ else _norm_le(expr), rel)


def _norm_le(expr: LinExpr) -> LinExpr:
    """Normalise an LE atom: integer coefficients, gcd-reduced on the
    variable part, constant floored accordingly (integer tightening)."""
    # Fast path: unit integer coefficients need no work.
    coeffs = expr.coeffs
    if expr.constant.denominator == 1 and all(
        c.denominator == 1 and (c == 1 or c == -1) for c in coeffs.values()
    ):
        return expr
    # Scale to integer coefficients.
    denoms = [c.denominator for c in coeffs.values()]
    denoms.append(expr.constant.denominator)
    lcm = 1
    for d in denoms:
        g = _gcd_int(lcm, d)
        lcm = lcm * d // g
    e = expr.scale(lcm) if lcm != 1 else expr
    # gcd of variable coefficients only
    g = 0
    for c in e.coeffs.values():
        g = _gcd_int(g, int(c))
    if g > 1:
        coeffs = {n: c / g for n, c in e.coeffs.items()}
        # e <= 0  <=>  g*(sum) + k <= 0  <=>  sum <= floor(-k/g)
        from math import floor

        new_const = -floor(Fraction(-e.constant, g))
        e = LinExpr(coeffs, new_const)
    return e


from fractions import Fraction  # noqa: E402  (used by _norm_le)


def _gcd_int(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return abs(a)


def conj(*parts: Formula) -> Formula:
    """Conjunction with flattening and unit/zero laws."""
    flat: List[Formula] = []
    seen = set()
    for p in parts:
        if isinstance(p, BoolConst):
            if not p.value:
                return FALSE
            continue
        if isinstance(p, And):
            for q in p.args:
                if isinstance(q, BoolConst):
                    if not q.value:
                        return FALSE
                    continue
                if q not in seen:
                    seen.add(q)
                    flat.append(q)
            continue
        if p not in seen:
            seen.add(p)
            flat.append(p)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(flat)


def disj(*parts: Formula) -> Formula:
    """Disjunction with flattening and unit/zero laws."""
    flat: List[Formula] = []
    seen = set()
    for p in parts:
        if isinstance(p, BoolConst):
            if p.value:
                return TRUE
            continue
        if isinstance(p, Or):
            for q in p.args:
                if isinstance(q, BoolConst):
                    if q.value:
                        return TRUE
                    continue
                if q not in seen:
                    seen.add(q)
                    flat.append(q)
            continue
        if p not in seen:
            seen.add(p)
            flat.append(p)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(flat)


def neg(p: Formula) -> Formula:
    """Negation, pushed one level when cheap."""
    if isinstance(p, BoolConst):
        return FALSE if p.value else TRUE
    if isinstance(p, Not):
        return p.arg
    if isinstance(p, Atom):
        return p.negated()
    return Not(p)


def exists(bound: Iterable[str], body: Formula) -> Formula:
    bound = tuple(b for b in bound if b in body.free_vars())
    if not bound:
        return body
    if isinstance(body, Exists):
        return Exists(tuple(set(bound) | set(body.bound)), body.body)
    return Exists(bound, body)


# ---------------------------------------------------------------------------
# Atom builders over arbitrary expressions
# ---------------------------------------------------------------------------


ExprLike = Union[LinExpr, Coeff, str]


def atom_le(lhs: ExprLike, rhs: ExprLike) -> Formula:
    """``lhs <= rhs``."""
    return _atom_or_const(to_linexpr(lhs) - to_linexpr(rhs), Rel.LE)


def atom_lt(lhs: ExprLike, rhs: ExprLike) -> Formula:
    """``lhs < rhs`` over integers, tightened to ``lhs + 1 <= rhs``."""
    return _atom_or_const(to_linexpr(lhs) - to_linexpr(rhs) + 1, Rel.LE)


def atom_ge(lhs: ExprLike, rhs: ExprLike) -> Formula:
    """``lhs >= rhs``."""
    return atom_le(rhs, lhs)


def atom_gt(lhs: ExprLike, rhs: ExprLike) -> Formula:
    """``lhs > rhs`` over integers."""
    return atom_lt(rhs, lhs)


def atom_eq(lhs: ExprLike, rhs: ExprLike) -> Formula:
    """``lhs == rhs``."""
    return _atom_or_const(to_linexpr(lhs) - to_linexpr(rhs), Rel.EQ)


def atom_ne(lhs: ExprLike, rhs: ExprLike) -> Formula:
    """``lhs != rhs`` (expanded to a disjunction of strict inequalities)."""
    e = to_linexpr(lhs) - to_linexpr(rhs)
    return disj(_atom_or_const(e + 1, Rel.LE), _atom_or_const(-e + 1, Rel.LE))


# ---------------------------------------------------------------------------
# Normal forms
# ---------------------------------------------------------------------------


def to_nnf(p: Formula, negate: bool = False) -> Formula:
    """Negation normal form.  Quantifiers must not appear under negation."""
    if isinstance(p, BoolConst):
        return neg(p) if negate else p
    if isinstance(p, Atom):
        return p.negated() if negate else p
    if isinstance(p, Not):
        return to_nnf(p.arg, not negate)
    if isinstance(p, And):
        parts = [to_nnf(a, negate) for a in p.args]
        return disj(*parts) if negate else conj(*parts)
    if isinstance(p, Or):
        parts = [to_nnf(a, negate) for a in p.args]
        return conj(*parts) if negate else disj(*parts)
    if isinstance(p, Exists):
        if negate:
            raise ValueError(
                "negation over exists is outside the supported fragment; "
                "eliminate the quantifier (arith.solver.project) first"
            )
        return exists(p.bound, to_nnf(p.body))
    raise TypeError(f"unknown formula node {type(p).__name__}")


_DNF_CACHE = LRUCache(100_000)


def to_dnf(p: Formula, limit: int = 50_000) -> List[List[Atom]]:
    """Disjunctive normal form as a list of conjunctions of atoms.

    Existentials are pushed inward and recorded by renaming their bound
    variables to fresh names (sound for satisfiability-style queries, which
    is the only way the solver consumes DNF).  Results are memoised in an
    LRU-bounded cache (quantifier-free formulas only -- fresh renaming
    makes quantified results non-reusable).
    """
    cached = _DNF_CACHE.get(p)
    if cached is not None:
        return cached
    cubes = _dnf(to_nnf(p), limit)
    if not _contains_exists(p):
        _DNF_CACHE.put(p, cubes)
    return cubes


def clear_dnf_cache() -> None:
    """Drop all memoised DNF conversions and reset the eviction counter."""
    _DNF_CACHE.clear(reset_evictions=True)


def dnf_cache_stats() -> Dict[str, int]:
    """Size and eviction count of the module-level DNF cache."""
    return {"size": len(_DNF_CACHE), "evictions": _DNF_CACHE.evictions}


def intern_table_size() -> int:
    """Number of live interned formula nodes (weak table, so this tracks
    the resident formula universe of a long-lived process)."""
    return len(_INTERN)


def _contains_exists(p: Formula) -> bool:
    if isinstance(p, Exists):
        return True
    if isinstance(p, (And, Or)):
        return any(_contains_exists(a) for a in p.args)
    if isinstance(p, Not):
        return _contains_exists(p.arg)
    return False


def _dnf(p: Formula, limit: int) -> List[List[Atom]]:
    if isinstance(p, BoolConst):
        return [[]] if p.value else []
    if isinstance(p, Atom):
        return [[p]]
    if isinstance(p, Or):
        out: List[List[Atom]] = []
        for a in p.args:
            out.extend(_dnf(a, limit))
            if len(out) > limit:
                raise MemoryError("DNF explosion beyond configured limit")
        return out
    if isinstance(p, And):
        cubes: List[List[Atom]] = [[]]
        for a in p.args:
            sub = _dnf(a, limit)
            cubes = [c + s for c in cubes for s in sub]
            if len(cubes) > limit:
                raise MemoryError("DNF explosion beyond configured limit")
        return cubes
    if isinstance(p, Exists):
        # Rename bound variables to globally fresh ones, then drop the
        # quantifier: sound for SAT queries.
        fresh = {b: _fresh_name(b, p) for b in p.bound}
        return _dnf(to_nnf(p.body.rename(fresh)), limit)
    raise TypeError(f"cannot convert {type(p).__name__} to DNF (NNF expected)")
