"""Linear expressions over named integer variables.

A :class:`LinExpr` represents ``c0 + c1*v1 + ... + cn*vn`` with exact
rational coefficients.  Instances are immutable, hashable and
**hash-consed**: constructing a :class:`LinExpr` that is structurally equal
to a live one returns the same object, so structural equality degenerates
to pointer equality on the fast path and the hash is computed exactly once
per distinct expression.  The intern table holds weak references only --
expressions are reclaimed as soon as no formula mentions them.
"""

from __future__ import annotations

import weakref
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Tuple, Union

Coeff = Union[int, Fraction]


def _to_fraction(value: Coeff) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    raise TypeError(f"expected int or Fraction, got {type(value).__name__}")


class LinExpr:
    """An immutable, interned linear expression ``const + sum(coeff[v]*v)``.

    Zero coefficients are never stored, so two expressions are equal exactly
    when they denote the same affine function -- and, thanks to interning,
    exactly when they are the same object.
    """

    __slots__ = ("_coeffs", "_const", "_hash", "__weakref__")

    _intern: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __new__(cls, coeffs: Mapping[str, Coeff] = (), constant: Coeff = 0):
        items = coeffs.items() if isinstance(coeffs, Mapping) else coeffs
        cleaned: Dict[str, Fraction] = {}
        for name, c in items:
            f = c if type(c) is Fraction else _to_fraction(c)
            if f != 0:
                cleaned[name] = f
        key_coeffs: Tuple[Tuple[str, Fraction], ...] = tuple(
            sorted(cleaned.items())
        )
        const = constant if type(constant) is Fraction else _to_fraction(constant)
        key = (key_coeffs, const)
        hit = cls._intern.get(key)
        if hit is not None:
            return hit
        self = object.__new__(cls)
        self._coeffs = key_coeffs
        self._const = const
        self._hash = hash(key)
        cls._intern[key] = self
        return self

    # -- accessors ---------------------------------------------------------

    @property
    def constant(self) -> Fraction:
        return self._const

    @property
    def coeffs(self) -> Dict[str, Fraction]:
        return dict(self._coeffs)

    def coeff(self, name: str) -> Fraction:
        for n, c in self._coeffs:
            if n == name:
                return c
        return Fraction(0)

    def variables(self) -> frozenset:
        return frozenset(n for n, _ in self._coeffs)

    def is_constant(self) -> bool:
        return not self._coeffs

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: Union["LinExpr", Coeff]) -> "LinExpr":
        if not isinstance(other, LinExpr):
            return LinExpr(dict(self._coeffs), self._const + _to_fraction(other))
        coeffs = dict(self._coeffs)
        for name, c in other._coeffs:
            coeffs[name] = coeffs.get(name, _ZERO) + c
        return LinExpr(coeffs, self._const + other._const)

    def __radd__(self, other: Coeff) -> "LinExpr":
        return self.__add__(other)

    def __sub__(self, other: Union["LinExpr", Coeff]) -> "LinExpr":
        return self + (-to_linexpr(other))

    def __rsub__(self, other: Coeff) -> "LinExpr":
        return to_linexpr(other) - self

    def __neg__(self) -> "LinExpr":
        return self.scale(-1)

    def scale(self, k: Coeff) -> "LinExpr":
        k = _to_fraction(k)
        return LinExpr({n: c * k for n, c in self._coeffs}, self._const * k)

    def __mul__(self, k: Coeff) -> "LinExpr":
        return self.scale(k)

    def __rmul__(self, k: Coeff) -> "LinExpr":
        return self.scale(k)

    # -- substitution & evaluation ------------------------------------------

    def substitute(self, mapping: Mapping[str, "LinExpr"]) -> "LinExpr":
        """Replace each variable in *mapping* by the given expression."""
        if not any(name in mapping for name, _c in self._coeffs):
            return self
        coeffs: Dict[str, Fraction] = {}
        const = self._const
        for name, c in self._coeffs:
            repl = mapping.get(name)
            if repl is None:
                coeffs[name] = coeffs.get(name, _ZERO) + c
            else:
                for rn, rc in repl._coeffs:
                    coeffs[rn] = coeffs.get(rn, _ZERO) + rc * c
                const += repl._const * c
        return LinExpr(coeffs, const)

    def rename(self, mapping: Mapping[str, str]) -> "LinExpr":
        """Rename variables (non-capturing: all renames happen at once)."""
        coeffs: Dict[str, Fraction] = {}
        for name, c in self._coeffs:
            new = mapping.get(name, name)
            coeffs[new] = coeffs.get(new, Fraction(0)) + c
        return LinExpr(coeffs, self._const)

    def evaluate(self, env: Mapping[str, Coeff]) -> Fraction:
        total = self._const
        for name, c in self._coeffs:
            total += c * _to_fraction(env[name])
        return total

    # -- normalisation -------------------------------------------------------

    def normalized(self) -> "LinExpr":
        """Scale so all coefficients are coprime integers and the leading
        coefficient is positive.  Used for canonical atom representations."""
        if not self._coeffs and self._const == 0:
            return self
        denoms = [c.denominator for _, c in self._coeffs]
        denoms.append(self._const.denominator)
        lcm = 1
        for d in denoms:
            lcm = lcm * d // _gcd(lcm, d)
        scaled = self.scale(lcm)
        nums = [abs(int(c)) for _, c in scaled._coeffs if c != 0]
        if scaled._const != 0:
            nums.append(abs(int(scaled._const)))
        if not nums:
            return scaled
        g = 0
        for n in nums:
            g = _gcd(g, n)
        if g > 1:
            scaled = scaled.scale(Fraction(1, g))
        return scaled

    # -- dunder ---------------------------------------------------------------

    def __reduce__(self):
        # Interned instances cannot be pickled structurally (__slots__ plus
        # an argument-taking __new__); route unpickling through the
        # constructor so the receiving process re-interns the expression.
        return (LinExpr, (self._coeffs, self._const))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        # Interning makes structurally-equal live expressions identical;
        # keep the structural fallback for robustness (e.g. copies).
        return (
            isinstance(other, LinExpr)
            and self._coeffs == other._coeffs
            and self._const == other._const
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"LinExpr({self})"

    def __str__(self) -> str:
        parts = []
        for name, c in self._coeffs:
            if c == 1:
                parts.append(f"+ {name}")
            elif c == -1:
                parts.append(f"- {name}")
            elif c > 0:
                parts.append(f"+ {c}*{name}")
            else:
                parts.append(f"- {-c}*{name}")
        if self._const != 0 or not parts:
            if self._const >= 0:
                parts.append(f"+ {self._const}")
            else:
                parts.append(f"- {-self._const}")
        text = " ".join(parts)
        if text.startswith("+ "):
            text = text[2:]
        elif text.startswith("- "):
            text = "-" + text[2:]
        return text


_ZERO = Fraction(0)


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return abs(a)


def to_linexpr(value: Union[LinExpr, Coeff, str]) -> LinExpr:
    """Coerce an int, Fraction, variable name or LinExpr into a LinExpr."""
    if isinstance(value, LinExpr):
        return value
    if isinstance(value, str):
        return LinExpr({value: 1})
    return LinExpr({}, value)


def var(name: str) -> LinExpr:
    """The expression consisting of a single variable."""
    return LinExpr({name: 1})


def const(k: Coeff) -> LinExpr:
    """A constant expression."""
    return LinExpr({}, k)


def linear_combination(pairs: Iterable[Tuple[Coeff, str]], constant: Coeff = 0) -> LinExpr:
    """Build ``constant + sum(c*v for c, v in pairs)``."""
    coeffs: Dict[str, Fraction] = {}
    for c, v in pairs:
        coeffs[v] = coeffs.get(v, Fraction(0)) + _to_fraction(c)
    return LinExpr(coeffs, constant)
