"""Exact linear integer arithmetic: terms, formulas, decision procedures.

This package is the reproduction's stand-in for the Omega/Z3 back ends used
by the original HipTNT+ artifact.  Everything is computed with exact
``fractions.Fraction`` arithmetic:

* :mod:`repro.arith.terms` -- linear expressions over named variables.
* :mod:`repro.arith.formula` -- quantifier-free boolean structure plus
  existential quantifiers, with NNF/DNF conversions.
* :mod:`repro.arith.fm` -- Fourier-Motzkin variable elimination over
  conjunctions of linear constraints.
* :mod:`repro.arith.context` -- incremental solver contexts: LRU-bounded
  caches with statistics and push/pop assumption stacks.
* :mod:`repro.arith.solver` -- satisfiability, validity, entailment,
  projection (quantifier elimination) and simplification (a thin facade
  over a default context).
* :mod:`repro.arith.farkas` -- Farkas'-lemma encodings used by ranking
  function synthesis and abductive inference (LP solved via scipy, results
  rationalised and re-verified exactly).
"""

from repro.arith.terms import LinExpr, var, const
from repro.arith.formula import (
    Atom,
    Rel,
    Formula,
    TRUE,
    FALSE,
    conj,
    disj,
    neg,
    exists,
    atom_le,
    atom_lt,
    atom_eq,
    atom_ge,
    atom_gt,
    atom_ne,
)
from repro.arith.context import SolverContext, SolverStats, default_context
from repro.arith.solver import (
    clear_caches,
    is_sat,
    is_unsat,
    is_valid,
    entails,
    equivalent,
    project,
    simplify,
    dnf_disjuncts,
)

__all__ = [
    "SolverContext",
    "SolverStats",
    "default_context",
    "clear_caches",
    "LinExpr",
    "var",
    "const",
    "Atom",
    "Rel",
    "Formula",
    "TRUE",
    "FALSE",
    "conj",
    "disj",
    "neg",
    "exists",
    "atom_le",
    "atom_lt",
    "atom_eq",
    "atom_ge",
    "atom_gt",
    "atom_ne",
    "is_sat",
    "is_unsat",
    "is_valid",
    "entails",
    "equivalent",
    "project",
    "simplify",
    "dnf_disjuncts",
]
