"""Fourier-Motzkin elimination over conjunctions of linear atoms.

This is the engine behind satisfiability, entailment and projection in
:mod:`repro.arith.solver`.  All arithmetic is exact.  Every derived
inequality is re-normalised through the integer-tightening constructor in
:mod:`repro.arith.formula`, which gives a cheap approximation of the Omega
test's dark shadow: single-variable divisibility gaps are closed, so the
procedure is exact on the unit-coefficient (difference-bound-like) fragment
that dominates the paper's verification conditions.  In general it remains a
*sound* UNSAT test for integer constraints (rational UNSAT implies integer
UNSAT).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.arith.formula import Atom, BoolConst, FALSE, Rel, TRUE, _atom_or_const
from repro.arith.lru import LRUCache
from repro.arith.terms import LinExpr

#: Count of raw Fourier-Motzkin elimination *work* performed since the last
#: :func:`clear_fm_caches`: one unit per eliminated variable plus one per
#: lower/upper bound combination it generated, so the counter tracks the
#: quadratic pairing that actually costs time, not just the number of
#: variables touched.  :class:`repro.arith.context.SolverContext` snapshots
#: this around each query to attribute FM work to its statistics; the
#: perf-guard benchmarks assert warm-context runs do strictly less of it.
_ELIMINATIONS = 0


def elimination_count() -> int:
    """Total raw FM elimination work units performed so far."""
    return _ELIMINATIONS


def record_eliminations(n: int) -> None:
    """Add *n* elimination work units to the module counter.

    Alternative cube engines (:mod:`repro.arith.backends`) report their
    elimination work through here so context statistics and perf guards
    see one uniform counter regardless of the backend in use.
    """
    global _ELIMINATIONS
    _ELIMINATIONS += n


class Unsat(Exception):
    """Raised internally when a cube is discovered to be contradictory."""


def _check_const(atom: Atom) -> Optional[Atom]:
    """Fold a constant atom to None (true) or raise :class:`Unsat`."""
    if atom.expr.is_constant():
        value = atom.expr.constant
        if atom.rel is Rel.LE:
            ok = value <= 0
        elif atom.rel is Rel.LT:
            ok = value < 0
        else:
            ok = value == 0
        if not ok:
            raise Unsat()
        return None
    return atom


def _renorm(expr: LinExpr, rel: Rel) -> Optional[Atom]:
    """Rebuild an atom through the integer-tightening smart constructor."""
    f = _atom_or_const(expr, rel)
    if isinstance(f, BoolConst):
        if not f.value:
            raise Unsat()
        return None
    assert isinstance(f, Atom)
    return f


def substitute_equalities(
    atoms: Sequence[Atom],
    record: Optional[List[Tuple[str, LinExpr]]] = None,
) -> List[Atom]:
    """Use equality atoms to substitute variables away (Gaussian style).

    Returns an equisatisfiable cube in which remaining equalities mention
    only variables that could not be isolated (none, for linear systems).
    When *record* is given, each performed substitution ``name := expr``
    is appended to it (in application order) so callers can reconstruct
    the eliminated variables from a model of the residue.
    Raises :class:`Unsat` on contradiction.
    """
    eqs = [a for a in atoms if a.rel is Rel.EQ]
    les = [a for a in atoms if a.rel is not Rel.EQ]  # LE and (strict) LT
    solved: List[Atom] = []
    while eqs:
        eq = eqs.pop()
        folded = _check_const(eq)
        if folded is None:
            continue
        expr = folded.expr
        # pick the variable with coefficient of smallest absolute value to
        # keep numbers small; any choice is correct
        name, coeff = min(expr.coeffs.items(), key=lambda kv: abs(kv[1]))
        # name = -(expr - coeff*name)/coeff
        rest = expr - LinExpr({name: coeff})
        replacement = rest.scale(Fraction(-1, 1) / coeff)
        if record is not None:
            record.append((name, replacement))
        mapping = {name: replacement}
        new_eqs: List[Atom] = []
        for a in eqs:
            r = _renorm(a.expr.substitute(mapping), Rel.EQ)
            if r is not None:
                new_eqs.append(r)
        eqs = new_eqs
        new_les: List[Atom] = []
        for a in les:
            r = _renorm(a.expr.substitute(mapping), a.rel)
            if r is not None:
                new_les.append(r)
        les = new_les
        solved = [
            s
            for s in (
                _renorm(a.expr.substitute(mapping), a.rel) for a in solved
            )
            if s is not None
        ]
        solved.append(folded)
    return solved + les


def _partition_by_var(
    atoms: Sequence[Atom], name: str
) -> Tuple[List[Atom], List[Atom], List[Atom]]:
    """Split LE atoms into (lower bounds, upper bounds, unrelated)."""
    lowers: List[Atom] = []
    uppers: List[Atom] = []
    rest: List[Atom] = []
    for a in atoms:
        c = a.expr.coeff(name)
        if c == 0:
            rest.append(a)
        elif c > 0:
            uppers.append(a)  # c*v + r <= 0  => v <= -r/c
        else:
            lowers.append(a)  # -c*v + r <= 0 => v >= r/(-c)
    return lowers, uppers, rest


def eliminate_var(atoms: Sequence[Atom], name: str) -> List[Atom]:
    """Eliminate *name* from a cube of LE atoms by Fourier-Motzkin.

    Equalities must have been substituted away first.  Raises
    :class:`Unsat` when a contradiction becomes constant.
    """
    global _ELIMINATIONS
    lowers, uppers, rest = _partition_by_var(atoms, name)
    _ELIMINATIONS += 1 + len(lowers) * len(uppers)
    out = list(rest)
    for lo in lowers:
        cl = -lo.expr.coeff(name)  # positive
        for up in uppers:
            cu = up.expr.coeff(name)  # positive
            # cl * up + cu * lo eliminates name; the combination is strict
            # exactly when either parent bound is strict
            combined = up.expr.scale(cl) + lo.expr.scale(cu)
            rel = (
                Rel.LT
                if (lo.rel is Rel.LT or up.rel is Rel.LT)
                else Rel.LE
            )
            r = _renorm(combined, rel)
            if r is not None:
                out.append(r)
    return _dedup(out)


def _dedup(atoms: Iterable[Atom]) -> List[Atom]:
    seen: Set[Atom] = set()
    out: List[Atom] = []
    for a in atoms:
        if a not in seen:
            seen.add(a)
            out.append(a)
    return out


def _cheapest_var(atoms: Sequence[Atom], remaining: Set[str]) -> str:
    """The variable of *remaining* whose elimination from *atoms* produces
    the fewest combined constraints (ties broken lexicographically, so the
    choice is independent of set-iteration order)."""
    best = None
    best_cost = None
    for n in sorted(remaining):
        lowers, uppers, _ = _partition_by_var(atoms, n)
        cost = len(lowers) * len(uppers)
        if best_cost is None or cost < best_cost:
            best, best_cost = n, cost
    assert best is not None
    return best


def eliminate_all(
    atoms: Sequence[Atom],
    targets: Set[str],
    stack: Optional[List[Tuple[str, List[Atom]]]] = None,
) -> List[Atom]:
    """Eliminate every variable of *targets* from a cube of LE atoms.

    The cheapest-first heuristic is *interleaved* with elimination: after
    each round the next variable is scored against the current (partially
    eliminated) cube, not the original one -- scoring everything up front
    ranks variables by bound counts that the earlier eliminations have
    already invalidated, which can steer the quadratic pairing into far
    more combinations than necessary.

    When *stack* is given, ``(name, atoms-before-eliminating-name)`` is
    appended per round (the back-substitution input of :func:`cube_model`).
    Raises :class:`Unsat` when a contradiction becomes constant.
    """
    remaining = set(targets)
    current = list(atoms)
    while remaining:
        name = _cheapest_var(current, remaining)
        remaining.discard(name)
        if stack is not None:
            stack.append((name, current))
        current = eliminate_var(current, name)
    return current


def project_cube(atoms: Sequence[Atom], keep: Optional[Set[str]] = None,
                 eliminate: Optional[Set[str]] = None) -> List[Atom]:
    """Project a cube onto *keep* (or eliminate *eliminate*).

    Exactly one of *keep*/*eliminate* must be given.  Raises
    :class:`Unsat` when the cube is contradictory.
    """
    if (keep is None) == (eliminate is None):
        raise ValueError("specify exactly one of keep= or eliminate=")
    cube = substitute_equalities(list(atoms))
    free: Set[str] = set()
    for a in cube:
        free |= a.expr.variables()
    targets = (free - keep) if keep is not None else (free & set(eliminate or ()))
    # Equalities that survived substitution and still mention targets cannot
    # exist for a linear system; but guard anyway by downgrading them.
    les: List[Atom] = []
    for a in cube:
        if a.rel is Rel.EQ:
            if a.expr.variables() & targets:
                les.append(Atom(a.expr, Rel.LE))
                les.append(Atom(-a.expr, Rel.LE))
            else:
                les.append(a)
        else:
            les.append(a)
    eq_kept = [a for a in les if a.rel is Rel.EQ]
    ineqs = [a for a in les if a.rel is not Rel.EQ]
    ineqs = eliminate_all(ineqs, targets)
    return _dedup(eq_kept + ineqs)


_CUBE_SAT_CACHE = LRUCache(500_000)


def cube_is_sat(atoms: Sequence[Atom]) -> bool:
    """Satisfiability of a conjunction of atoms (integer-tightened FM).

    Results are memoised on the atom set in an LRU-bounded cache -- the
    inference re-checks the same contexts many times across specialisation
    iterations, and under memory pressure the least-recently-used entries
    are evicted instead of the cache silently refusing new entries.
    """
    key = frozenset(atoms)
    cached = _CUBE_SAT_CACHE.get(key)
    if cached is not None:
        return cached
    result = _cube_is_sat(atoms)
    _CUBE_SAT_CACHE.put(key, result)
    return result


def clear_fm_caches() -> None:
    """Drop the cube-satisfiability cache and reset all FM statistics."""
    global _ELIMINATIONS
    _CUBE_SAT_CACHE.clear(reset_evictions=True)
    _ELIMINATIONS = 0


def fm_cache_stats() -> Dict[str, int]:
    """Size/eviction/elimination counters of the FM layer."""
    return {
        "size": len(_CUBE_SAT_CACHE),
        "evictions": _CUBE_SAT_CACHE.evictions,
        "eliminations": _ELIMINATIONS,
    }


def _cube_is_sat(atoms: Sequence[Atom]) -> bool:
    try:
        cube = substitute_equalities(list(atoms))
        free: Set[str] = set()
        for a in cube:
            free |= a.expr.variables()
        ineqs = []
        for a in cube:
            if a.rel is Rel.EQ:
                # only var-free equalities can remain; _check_const folded them
                ineqs.append(Atom(a.expr, Rel.LE))
                ineqs.append(Atom(-a.expr, Rel.LE))
            else:
                ineqs.append(a)
        eliminate_all(ineqs, free)
        # all remaining atoms are constant-free-variable (none) -> checked in
        # _renorm; reaching here means no contradiction was found
        return True
    except Unsat:
        return False


def cube_model(atoms: Sequence[Atom]) -> Optional[Dict[str, Fraction]]:
    """Produce a (rational) model of a satisfiable cube by back-substitution.

    Returns ``None`` when the cube is unsatisfiable.  Values are chosen
    integral whenever the interval permits.  The returned environment is
    validated against **every input atom** before being handed out -- a
    witness-construction defect (e.g. a residual equality whose variables
    never flowed through back-substitution) degrades to ``None`` instead of
    an invalid model.
    """
    record: List[Tuple[str, LinExpr]] = []
    try:
        cube = substitute_equalities(list(atoms), record=record)
    except Unsat:
        return None
    eq_atoms = [a for a in cube if a.rel is Rel.EQ]
    ineqs = [a for a in cube if a.rel is not Rel.EQ]
    free: Set[str] = set()
    for a in cube:
        free |= a.expr.variables()
    stack: List[Tuple[str, List[Atom]]] = []
    try:
        eliminate_all(ineqs, free, stack=stack)
    except Unsat:
        return None
    env: Dict[str, Fraction] = {}
    for name, constraints in reversed(stack):
        lowers, uppers, _ = _partition_by_var(constraints, name)
        lo_val: Optional[Fraction] = None
        up_val: Optional[Fraction] = None
        lo_strict = False
        up_strict = False
        for a in lowers:
            c = a.expr.coeff(name)
            rest = (a.expr - LinExpr({name: c})).evaluate(env)
            bound = rest / (-c)  # v >= bound (v > bound when strict)
            if lo_val is None or bound > lo_val:
                lo_val, lo_strict = bound, a.rel is Rel.LT
            elif bound == lo_val and a.rel is Rel.LT:
                lo_strict = True
        for a in uppers:
            c = a.expr.coeff(name)
            rest = (a.expr - LinExpr({name: c})).evaluate(env)
            bound = -rest / c  # v <= bound (v < bound when strict)
            if up_val is None or bound < up_val:
                up_val, up_strict = bound, a.rel is Rel.LT
            elif bound == up_val and a.rel is Rel.LT:
                up_strict = True
        env[name] = _pick_value(lo_val, up_val, lo_strict, up_strict)
    # Recover the variables eliminated through equalities, in reverse
    # substitution order (later substitutions may mention earlier names).
    for name, expr in reversed(record):
        for v in expr.variables():
            env.setdefault(v, Fraction(0))
        env[name] = expr.evaluate(env)
    for a in eq_atoms:
        # Residual equalities still mentioning unassigned variables are
        # *solved* for one of them (the others default to 0), never blindly
        # zeroed: ``x == y + 5`` with y unconstrained must yield x = 5, not
        # the invalid x = y = 0.
        missing = sorted(a.expr.variables() - set(env))
        if not missing:
            continue
        pivot = missing[0]
        for m in missing[1:]:
            env[m] = Fraction(0)
        c = a.expr.coeff(pivot)
        rest = (a.expr - LinExpr({pivot: c})).evaluate(env)
        env[pivot] = rest / (-c)
    for a in atoms:
        for m in a.expr.variables() - set(env):
            env[m] = Fraction(0)
    # The witness must satisfy every *input* atom (not just the residue the
    # elimination worked on); if construction left a hole, answer "no model
    # found" rather than an assignment that violates the cube.
    if not all(a.evaluate(env) for a in atoms):
        return None
    return env


def _pick_value(
    lo: Optional[Fraction],
    up: Optional[Fraction],
    lo_strict: bool = False,
    up_strict: bool = False,
) -> Fraction:
    """A value inside the (possibly half-open) interval.

    A strict bound with an integral value must never be returned as the
    witness itself: ``ceil(lo)`` equals ``lo`` when ``lo`` is integral,
    which violates ``lo < v`` (symmetrically ``floor(up)`` for ``v < up``).
    FM has already established the interval is non-empty, so for two-sided
    bounds the midpoint is always a sound fallback (interior even when both
    endpoints are open).
    """
    import math

    if lo is None and up is None:
        return Fraction(0)
    if lo is None:
        assert up is not None
        c = math.floor(up)
        if up_strict and Fraction(c) == up:
            c -= 1
        return Fraction(c)
    if up is None:
        c = math.ceil(lo)
        if lo_strict and Fraction(c) == lo:
            c += 1
        return Fraction(c)
    # prefer an integer point inside the interval when one exists
    c = math.ceil(lo)
    if lo_strict and Fraction(c) == lo:
        c += 1
    if Fraction(c) < up or (not up_strict and Fraction(c) == up):
        return Fraction(c)
    return (lo + up) / 2
