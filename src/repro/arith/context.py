"""Incremental solver contexts: scoped caches, assumption stacks, statistics.

A :class:`SolverContext` owns everything one analysis scope (typically one
SCC of the call graph, see ``docs/solver.md``) needs from the decision
procedures:

* **LRU-bounded caches** for satisfiability, entailment and projection
  results, with hit/miss/eviction statistics.  Formulas are hash-consed
  (:mod:`repro.arith.formula`), so probes are pointer comparisons.
* **An assumption stack** (``push`` / ``pop`` / ``assume`` or the
  ``assuming`` context manager).  Queries issued while assumptions are
  active are answered relative to their conjunction.  The DNF cubes of the
  assumption stack are computed *incrementally*: pushing a new assumption
  only converts the new formula and extends the cached cube product, so a
  caller that fixes a context once and issues many queries against it pays
  the context's DNF conversion once.
* **Statistics** (:class:`SolverStats`), including the number of raw
  Fourier-Motzkin eliminations attributable to this context's queries.
  Several contexts may share one stats object (pass ``stats=``), which is
  how the pipeline aggregates per-SCC contexts into per-program numbers
  for bench reporting.
* **A pluggable cube backend** (pass ``backend=`` -- a name like
  ``"matrix"`` or ``"differential"``, or a live
  :class:`~repro.arith.backends.CubeBackend`).  All cube-level decision
  work (satisfiability, projection, models) is routed through it; the
  default is the exact-Fraction ``reference`` engine, preserving the
  pre-backend behaviour bit for bit.  See :mod:`repro.arith.backends`.

The module-level functions in :mod:`repro.arith.solver` remain available
as a thin facade over a process-wide default context, so existing callers
keep working unchanged.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.arith import backends as _backends
from repro.arith import fm
from repro.arith.formula import (
    And,
    Atom,
    BoolConst,
    Exists,
    FALSE,
    Formula,
    Not,
    Or,
    TRUE,
    _contains_exists,
    conj,
    disj,
    neg,
    to_dnf,
)
from repro.arith.lru import LRUCache

#: Maximum number of assumption cubes kept by the incremental product;
#: beyond this the context falls back to monolithic conjunction queries.
_ASSUMPTION_CUBE_LIMIT = 4096


@dataclass
class SolverStats:
    """Counters for one context (or a family of contexts sharing them).

    Besides the solver-cache counters, this also carries the persistent
    spec store's accounting (``store_hits`` / ``store_misses`` /
    ``store_invalidations``, see :mod:`repro.store`): the pipeline counts
    store lookups into the same stats object it aggregates solver work
    in, so bench outcomes report both through one channel.
    """

    sat_queries: int = 0
    sat_hits: int = 0
    entail_queries: int = 0
    entail_hits: int = 0
    project_queries: int = 0
    project_hits: int = 0
    evictions: int = 0
    fm_eliminations: int = 0
    store_hits: int = 0
    store_misses: int = 0
    store_invalidations: int = 0
    # Pre-analysis accounting (:mod:`repro.analysis`): SCCs resolved by a
    # quick verdict without entering the TNT solver, and methods whose
    # ranking-template search was seeded with modification hints.
    pre_quick: int = 0
    pre_seeded: int = 0

    @property
    def queries(self) -> int:
        return self.sat_queries + self.entail_queries + self.project_queries

    @property
    def hits(self) -> int:
        return self.sat_hits + self.entail_hits + self.project_hits

    @property
    def hit_rate(self) -> float:
        q = self.queries
        return self.hits / q if q else 0.0

    _COUNTER_FIELDS = (
        "sat_queries", "sat_hits", "entail_queries", "entail_hits",
        "project_queries", "project_hits", "evictions", "fm_eliminations",
        "store_hits", "store_misses", "store_invalidations",
        "pre_quick", "pre_seeded",
    )

    def reset(self) -> None:
        for f in self._COUNTER_FIELDS:
            setattr(self, f, 0)

    def merge_dict(self, snapshot: Dict[str, int]) -> None:
        """Add a counter snapshot (an :meth:`as_dict` produced in another
        process, shipped back over a pipe) into this stats object.  The
        derived ``queries``/``hits``/``hit_rate`` entries of the snapshot
        are ignored -- they are recomputed from the merged counters."""
        for f in self._COUNTER_FIELDS:
            setattr(self, f, getattr(self, f) + int(snapshot.get(f, 0)))

    def as_dict(self) -> Dict[str, int]:
        out = {"queries": self.queries, "hits": self.hits}
        for f in self._COUNTER_FIELDS:
            out[f] = getattr(self, f)
        return out


class _Frame:
    """One assumption-stack frame.

    ``cubes`` caches the DNF cube product of *all* assumptions from the
    stack bottom through this frame (``None`` until computed, so a pop
    never invalidates anything below it).
    """

    __slots__ = ("formulas", "cubes")

    def __init__(self) -> None:
        self.formulas: List[Formula] = []
        self.cubes: Optional[List[Tuple[Atom, ...]]] = None


class SolverContext:
    """Scoped, incremental interface to the arithmetic decision procedures.

    One context should be shared by all queries of one analysis scope (one
    SCC resolution, one bench run, ...) so structurally recurring queries
    hit the context's caches instead of redoing Fourier-Motzkin work.
    """

    def __init__(
        self,
        cache_size: int = 200_000,
        stats: Optional[SolverStats] = None,
        backend: Optional[object] = None,
    ):
        self.stats = stats if stats is not None else SolverStats()
        self.backend = _backends.get_backend(backend)
        self._sat = LRUCache(cache_size, self.stats)
        self._entail = LRUCache(cache_size, self.stats)
        self._project = LRUCache(cache_size, self.stats)
        self._frames: List[_Frame] = [_Frame()]
        self._fm_depth = 0  # re-entrancy guard for FM-work attribution

    @contextmanager
    def _fm_accounting(self) -> Iterator[None]:
        """Attribute raw FM eliminations performed in the block to this
        context's stats.  Nested blocks (e.g. ``project`` recursing into
        itself through quantifier elimination) are counted once, by the
        outermost block only."""
        if self._fm_depth == 0:
            start = fm.elimination_count()
        self._fm_depth += 1
        try:
            yield
        finally:
            self._fm_depth -= 1
            if self._fm_depth == 0:
                self.stats.fm_eliminations += fm.elimination_count() - start

    # -- assumption stack ---------------------------------------------------

    def push(self) -> None:
        """Open a new assumption frame."""
        self._frames.append(_Frame())

    def pop(self) -> None:
        """Discard the most recent assumption frame."""
        if len(self._frames) == 1:
            raise IndexError("pop from the base solver frame")
        self._frames.pop()

    def assume(self, p: Formula) -> None:
        """Add *p* to the current frame; later queries are relative to it."""
        frame = self._frames[-1]
        frame.formulas.append(p)
        frame.cubes = None

    @contextmanager
    def assuming(self, *ps: Formula) -> Iterator["SolverContext"]:
        """``with ctx.assuming(p, q): ...`` -- push, assume, auto-pop."""
        self.push()
        try:
            for p in ps:
                self.assume(p)
            yield self
        finally:
            self.pop()

    @property
    def assumption_depth(self) -> int:
        return len(self._frames) - 1

    def assumptions(self) -> List[Formula]:
        return [p for f in self._frames for p in f.formulas]

    def _assumption_formula(self) -> Formula:
        ps = self.assumptions()
        return conj(*ps) if ps else TRUE

    def _assumption_cubes(self) -> List[Tuple[Atom, ...]]:
        """Cumulative DNF cubes of the assumption stack, computed
        incrementally frame by frame.  Raises :class:`MemoryError` on
        cube-product blow-up (callers fall back to monolithic queries)."""
        prev: List[Tuple[Atom, ...]] = [()]
        for frame in self._frames:
            if frame.cubes is None:
                cubes = prev
                for p in frame.formulas:
                    step: List[Tuple[Atom, ...]] = []
                    for pc in to_dnf(p):
                        pc_t = tuple(pc)
                        for c in cubes:
                            step.append(c + pc_t)
                            if len(step) > _ASSUMPTION_CUBE_LIMIT:
                                raise MemoryError(
                                    "assumption cube product beyond limit"
                                )
                    cubes = step
                frame.cubes = cubes
            prev = frame.cubes
        return prev

    # -- satisfiability -----------------------------------------------------

    def is_sat(self, p: Formula) -> bool:
        """Satisfiability of *p* under the current assumptions.

        On DNF blow-up the query degrades to "satisfiable" -- the
        conservative answer for every use in the inference."""
        return self._sat_impl(p, record=True)

    def _sat_impl(self, p: Formula, record: bool) -> bool:
        """Cached satisfiability; *record* controls whether the probe is
        counted in the statistics (internal probes issued on behalf of an
        already-counted entailment pass ``record=False`` so the reported
        query/hit numbers match what callers actually asked)."""
        st = self.stats
        if record:
            st.sat_queries += 1
        assumption = self._assumption_formula()
        key = p if assumption is TRUE else (assumption, p)
        cached = self._sat.get(key)
        if cached is not None:
            if record:
                st.sat_hits += 1
            return cached
        try:
            with self._fm_accounting():
                result = self._raw_sat(p)
        except MemoryError:
            return True
        self._sat.put(key, result)
        return result

    def _raw_sat(self, p: Formula) -> bool:
        sat = self.backend.cube_is_sat
        if not self.assumptions():
            return any(sat(cube) for cube in to_dnf(p))
        try:
            acubes = self._assumption_cubes()
        except MemoryError:
            # Product blow-up: degrade to one monolithic conjunction.
            g = conj(self._assumption_formula(), p)
            return any(sat(cube) for cube in to_dnf(g))
        pcubes = to_dnf(p)
        for ac in acubes:
            if ac and not sat(ac):
                continue
            for pc in pcubes:
                if sat(list(ac) + pc):
                    return True
        return False

    def is_unsat(self, p: Formula) -> bool:
        return not self.is_sat(p)

    # -- validity and entailment --------------------------------------------

    def is_valid(self, p: Formula) -> bool:
        """Validity of a (possibly existential) formula."""
        try:
            return self.is_unsat(neg(self._eliminate_quantifiers(p)))
        except MemoryError:
            return False

    def entails(self, antecedent: Formula, consequent: Formula) -> bool:
        """``assumptions /\\ antecedent => consequent`` (existentials in
        the consequent are eliminated by projection before negation)."""
        st = self.stats
        st.entail_queries += 1
        assumption = self._assumption_formula()
        key = (
            (antecedent, consequent)
            if assumption is TRUE
            else (assumption, antecedent, consequent)
        )
        cached = self._entail.get(key)
        if cached is not None:
            st.entail_hits += 1
            return cached
        try:
            goal = conj(
                antecedent, neg(self._eliminate_quantifiers(consequent))
            )
        except MemoryError:
            return False  # blow-up: conservatively fail the obligation
        # The internal sat probe still populates/reuses the sat cache but
        # is not double-counted as a caller-issued query.
        result = not self._sat_impl(goal, record=False)
        self._entail.put(key, result)
        return result

    def _entails_plain(self, antecedent: Formula, consequent: Formula) -> bool:
        """Entailment ignoring the assumption stack.  Used by
        :meth:`simplify`, whose result must be equivalent to its input
        absolutely, not merely relative to the active assumptions."""
        st = self.stats
        st.entail_queries += 1
        key = (antecedent, consequent)
        cached = self._entail.get(key)
        if cached is not None:
            st.entail_hits += 1
            return cached
        try:
            with self._fm_accounting():
                goal = conj(
                    antecedent, neg(self._eliminate_quantifiers(consequent))
                )
                result = not any(
                    self.backend.cube_is_sat(cube) for cube in to_dnf(goal)
                )
        except MemoryError:
            return False
        self._entail.put(key, result)
        return result

    def equivalent(self, a: Formula, b: Formula) -> bool:
        return self.entails(a, b) and self.entails(b, a)

    # -- projection (quantifier elimination) --------------------------------

    def project(
        self,
        p: Formula,
        keep: Optional[Set[str]] = None,
        eliminate: Optional[Set[str]] = None,
    ) -> Formula:
        """Quantifier elimination: ``exists eliminated-vars . p``.

        Exactly one of *keep*/*eliminate* must be given.  The result
        mentions only the kept variables.  :class:`MemoryError` propagates
        on DNF blow-up (callers choose their own sound fallback)."""
        if (keep is None) == (eliminate is None):
            raise ValueError("specify exactly one of keep= or eliminate=")
        st = self.stats
        st.project_queries += 1
        key = (
            p,
            frozenset(keep) if keep is not None else None,
            frozenset(eliminate) if eliminate is not None else None,
        )
        cached = self._project.get(key)
        if cached is not None:
            st.project_hits += 1
            return cached
        with self._fm_accounting():
            result = self._raw_project(p, keep, eliminate)
        self._project.put(key, result)
        return result

    def _raw_project(
        self,
        p: Formula,
        keep: Optional[Set[str]],
        eliminate: Optional[Set[str]],
    ) -> Formula:
        p = self._eliminate_quantifiers(p) if _contains_exists(p) else p
        cubes: List[Formula] = []
        for cube in to_dnf(p):
            try:
                projected = self.backend.project_cube(
                    cube, keep=keep, eliminate=eliminate
                )
            except fm.Unsat:
                continue
            cubes.append(conj(*projected))
        return disj(*cubes)

    def _eliminate_quantifiers(self, p: Formula) -> Formula:
        if isinstance(p, Exists):
            return self.project(p.body, eliminate=set(p.bound))
        if isinstance(p, (BoolConst, Atom)):
            return p
        if isinstance(p, And):
            return conj(*(self._eliminate_quantifiers(a) for a in p.args))
        if isinstance(p, Or):
            return disj(*(self._eliminate_quantifiers(a) for a in p.args))
        if isinstance(p, Not):
            return neg(self._eliminate_quantifiers(p.arg))
        raise TypeError(f"unknown formula node {type(p).__name__}")

    # -- model construction -------------------------------------------------

    def model(self, p: Formula) -> Optional[Dict[str, Fraction]]:
        """A satisfying assignment for *p* (ignoring assumptions), or
        ``None``."""
        for cube in to_dnf(p):
            env = self.backend.cube_model(cube)
            if env is not None:
                for v in p.free_vars():
                    env.setdefault(v, Fraction(0))
                if all(a.evaluate(env) for a in cube):
                    return env
        return None

    # -- simplification -----------------------------------------------------

    def simplify(self, p: Formula) -> Formula:
        """Semantic simplification via DNF (see
        :func:`repro.arith.solver.simplify`)."""
        try:
            cubes = to_dnf(p)
        except MemoryError:
            return p
        if len(cubes) > 12:
            # Large disjunctions: quadratic pruning/subsumption would
            # dominate the analysis; keep the cheap unsat-cube filter.
            sat_cubes = [c for c in cubes if self.backend.cube_is_sat(c)]
            if not sat_cubes:
                return FALSE
            return disj(*(conj(*c) for c in sat_cubes))
        kept_cubes: List[List[Atom]] = []
        for cube in cubes:
            if not self.backend.cube_is_sat(cube):
                continue
            kept_cubes.append(self._prune_cube(cube))
        # subsumption between cubes: cube A subsumes cube B when B => A
        result: List[List[Atom]] = []
        for i, cube in enumerate(kept_cubes):
            ci = conj(*cube)
            subsumed = False
            for j, other in enumerate(kept_cubes):
                if i == j:
                    continue
                cj = conj(*other)
                if self._entails_plain(ci, cj) and not (
                    self._entails_plain(cj, ci) and j > i
                ):
                    subsumed = True
                    break
            if not subsumed:
                result.append(cube)
        if not result:
            return FALSE
        return disj(*(conj(*c) for c in result))

    def _prune_cube(self, cube: List[Atom]) -> List[Atom]:
        pruned = list(cube)
        i = 0
        while i < len(pruned):
            candidate = pruned[i]
            rest = pruned[:i] + pruned[i + 1:]
            if rest and self._entails_plain(conj(*rest), candidate):
                pruned = rest
            else:
                i += 1
        return pruned

    # -- maintenance --------------------------------------------------------

    def clear(self, reset_stats: bool = True) -> None:
        """Drop this context's caches (and, by default, its statistics).
        The assumption stack is left untouched.

        Safe to call while another thread is mid-query against this
        context: the underlying :class:`~repro.arith.lru.LRUCache` swaps
        its backing dict rather than clearing it in place, so concurrent
        readers finish against the old (stale but valid) memo and the
        next probe sees the empty one.  See
        :func:`repro.arith.solver.clear_caches` for the process-wide
        contract."""
        self._sat.clear()
        self._entail.clear()
        self._project.clear()
        if reset_stats:
            self.stats.reset()

    def cache_sizes(self) -> Dict[str, int]:
        return {
            "sat": len(self._sat),
            "entail": len(self._entail),
            "project": len(self._project),
        }


# ---------------------------------------------------------------------------
# Default context (backs the repro.arith.solver module-level facade)
# ---------------------------------------------------------------------------

_DEFAULT_CONTEXT: Optional[SolverContext] = None
_DEFAULT_CONTEXT_LOCK = threading.Lock()


def default_context() -> SolverContext:
    """The process-wide context used when callers pass ``ctx=None``.

    Lazily constructed under a lock: two threads racing the first call
    (daemon workers warming up concurrently) must agree on one context,
    or half the process would populate caches the other half never
    probes."""
    global _DEFAULT_CONTEXT
    if _DEFAULT_CONTEXT is None:
        with _DEFAULT_CONTEXT_LOCK:
            if _DEFAULT_CONTEXT is None:
                _DEFAULT_CONTEXT = SolverContext()
    return _DEFAULT_CONTEXT


def resolve(ctx: Optional[SolverContext]) -> SolverContext:
    """*ctx* itself, or the default context when ``None``."""
    return ctx if ctx is not None else default_context()
