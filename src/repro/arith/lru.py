"""A small LRU cache shared by the solver's memoisation layers.

One implementation serves the per-context caches
(:mod:`repro.arith.context`), the module-level DNF memo
(:mod:`repro.arith.formula`) and the FM cube-satisfiability memo
(:mod:`repro.arith.fm`), so the eviction policy and its accounting live
in exactly one place.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

#: Private miss sentinel for :meth:`LRUCache.get`.  Distinguishing a miss
#: from a stored value by identity with the *caller's* default would treat
#: a legitimately cached value that happens to be that default (``None``,
#: ``False``, ``0``, ...) as a miss and never promote it in the LRU order.
_MISS = object()


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    Evictions are counted on the cache itself (``evictions``) and, when a
    *stats* sink with an ``evictions`` attribute is supplied (e.g.
    :class:`repro.arith.context.SolverStats`), mirrored there too.
    """

    __slots__ = ("maxsize", "evictions", "_data", "_stats")

    def __init__(self, maxsize: int, stats: Optional[object] = None):
        if maxsize <= 0:
            raise ValueError("LRU cache size must be positive")
        self.maxsize = maxsize
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()
        self._stats = stats

    def get(self, key, default=None):
        hit = self._data.get(key, _MISS)
        if hit is _MISS:
            return default
        try:
            self._data.move_to_end(key)
        except KeyError:
            # Lost a race with a concurrent evict/clear (an abandoned
            # bench watchdog worker shares the module-level caches).
            # The value we read is still a valid memo result.
            pass
        return hit

    def put(self, key, value) -> None:
        data = self._data
        if key in data:
            data[key] = value
            try:
                data.move_to_end(key)
            except KeyError:
                pass  # concurrently evicted: fall through to re-insert
            else:
                return
        if len(data) >= self.maxsize:
            try:
                data.popitem(last=False)
            except KeyError:
                pass  # concurrently cleared: nothing left to evict
            else:
                self.evictions += 1
                if self._stats is not None:
                    self._stats.evictions += 1
        data[key] = value

    def clear(self, reset_evictions: bool = False) -> None:
        """Drop every entry.

        The backing dict is *swapped* for a fresh one rather than cleared
        in place: a concurrent reader (a daemon worker mid-query, an
        abandoned bench watchdog) that already fetched the old mapping
        keeps probing a consistent -- merely stale -- memo, instead of
        racing ``dict.clear`` mid-iteration.  Memo entries are pure
        functions of their keys, so serving a stale hit is always correct.
        """
        self._data = OrderedDict()
        if reset_evictions:
            self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data
