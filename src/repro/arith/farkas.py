"""Farkas'-lemma encodings and a small exact-result LP front end.

Farkas' lemma (affine form): for a satisfiable polyhedron ``A x <= b``,

    (A x <= b)  implies  (g . x <= d)
        iff
    exists lambda >= 0 .  lambda^T A = g  and  lambda^T b <= d

Ranking-function synthesis and abductive condition inference both reduce to
LP feasibility through this lemma (the encodings are *linear* in the Farkas
multipliers and the template coefficients jointly).  LPs are solved with
``scipy.optimize.linprog``; solutions are rationalised with bounded
denominators and **must be re-verified exactly** by the callers through
:func:`repro.arith.solver.entails` -- floating point never enters the
trusted path.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.arith.formula import Atom, Rel
from repro.arith.terms import LinExpr

try:  # scipy is an install-time dependency; degrade gracefully for safety
    from scipy.optimize import linprog

    _HAVE_SCIPY = True
except Exception:  # pragma: no cover - scipy is always present in CI
    _HAVE_SCIPY = False


class LPProblem:
    """A tiny LP builder over named unknowns with exact-input rows.

    Constraints are :class:`LinExpr` objects over the LP unknowns:
    ``add_le(e)`` asserts ``e <= 0`` and ``add_eq(e)`` asserts ``e == 0``.
    """

    def __init__(self) -> None:
        self._le_rows: List[LinExpr] = []
        self._eq_rows: List[LinExpr] = []
        self._nonneg: set = set()
        self._vars: List[str] = []
        self._var_set: set = set()

    def _register(self, expr: LinExpr) -> None:
        for v in sorted(expr.variables()):
            if v not in self._var_set:
                self._var_set.add(v)
                self._vars.append(v)

    def add_le(self, expr: LinExpr) -> None:
        self._register(expr)
        self._le_rows.append(expr)

    def add_eq(self, expr: LinExpr) -> None:
        self._register(expr)
        self._eq_rows.append(expr)

    def set_nonneg(self, name: str) -> None:
        if name not in self._var_set:
            self._var_set.add(name)
            self._vars.append(name)
        self._nonneg.add(name)

    def abs_objective(self, names: Sequence[str]) -> LinExpr:
        """Build an objective minimising ``sum |names|`` by introducing
        ``t_i >= name_i`` and ``t_i >= -name_i`` slack variables."""
        terms = {}
        for name in names:
            t = f"{name}.abs"
            self.set_nonneg(t)
            self.add_le(LinExpr({name: 1, t: -1}))
            self.add_le(LinExpr({name: -1, t: -1}))
            terms[t] = Fraction(1)
        return LinExpr(terms)

    @property
    def variables(self) -> List[str]:
        return list(self._vars)

    def solve(
        self,
        objective: Optional[LinExpr] = None,
        bound: int = 1000,
        denominators: Sequence[int] = (1, 2, 3, 4, 6, 8, 12, 24, 60, 120),
    ) -> Optional[Dict[str, Fraction]]:
        """Feasibility / optimisation; returns rationalised values.

        The caller must verify the returned assignment exactly; this method
        only guarantees that the floats scipy produced were rationalised
        with small denominators.
        """
        if not _HAVE_SCIPY:  # pragma: no cover
            return None
        names = self._vars
        if not names:
            return {}
        idx = {n: i for i, n in enumerate(names)}
        n = len(names)

        def row(expr: LinExpr) -> Tuple[np.ndarray, float]:
            r = np.zeros(n)
            for v, c in expr.coeffs.items():
                r[idx[v]] = float(c)
            return r, -float(expr.constant)

        a_ub, b_ub = [], []
        for e in self._le_rows:
            r, b = row(e)
            a_ub.append(r)
            b_ub.append(b)
        a_eq, b_eq = [], []
        for e in self._eq_rows:
            r, b = row(e)
            a_eq.append(r)
            b_eq.append(b)
        c = np.zeros(n)
        if objective is not None:
            for v, k in objective.coeffs.items():
                if v in idx:
                    c[idx[v]] = float(k)
        bounds = [
            (0.0, float(bound)) if name in self._nonneg
            else (-float(bound), float(bound))
            for name in names
        ]
        res = linprog(
            c,
            A_ub=np.array(a_ub) if a_ub else None,
            b_ub=np.array(b_ub) if b_ub else None,
            A_eq=np.array(a_eq) if a_eq else None,
            b_eq=np.array(b_eq) if b_eq else None,
            bounds=bounds,
            method="highs",
        )
        if not res.success:
            return None
        values = res.x
        for den in denominators:
            out = {
                name: Fraction(float(values[i])).limit_denominator(den)
                for i, name in enumerate(names)
            }
            if self._check_exact(out):
                return out
        # final fallback: generous rationalisation (caller re-verifies)
        return {
            name: Fraction(float(values[i])).limit_denominator(10**6)
            for i, name in enumerate(names)
        }

    def _check_exact(self, values: Mapping[str, Fraction]) -> bool:
        for e in self._eq_rows:
            if e.evaluate(values) != 0:
                return False
        for e in self._le_rows:
            if e.evaluate(values) > 0:
                return False
        for name in self._nonneg:
            if values.get(name, Fraction(0)) < 0:
                return False
        return True


def polyhedron_rows(atoms: Iterable[Atom]) -> List[Tuple[Dict[str, Fraction], Fraction]]:
    """Convert a cube into ``A x <= b`` rows ``(coeffs, b)``.

    Equalities contribute two opposing rows.
    """
    rows: List[Tuple[Dict[str, Fraction], Fraction]] = []
    for a in atoms:
        coeffs = a.expr.coeffs
        b = -a.expr.constant
        rows.append((coeffs, b))
        if a.rel is Rel.EQ:
            rows.append(({v: -c for v, c in coeffs.items()}, -b))
    return rows


def add_implication(
    lp: LPProblem,
    cube: Sequence[Atom],
    xs: Sequence[str],
    target_coeffs: Mapping[str, LinExpr],
    target_const: LinExpr,
    prefix: str,
) -> None:
    """Encode ``cube  =>  (sum target_coeffs[x]*x) <= target_const``.

    ``target_coeffs``/``target_const`` are linear expressions over LP
    unknowns (template coefficients).  Fresh multipliers named
    ``{prefix}.k`` are introduced; callers must keep prefixes unique per
    implication.  The caller is responsible for checking that *cube* is
    satisfiable (Farkas' affine form needs a nonempty polyhedron).
    """
    rows = polyhedron_rows(cube)
    lams = [f"{prefix}.{k}" for k in range(len(rows))]
    for name in lams:
        lp.set_nonneg(name)
    # for every program dimension x: sum_k lam_k * A[k][x] - g[x] = 0
    dims = set(xs)
    for coeffs, _b in rows:
        dims |= set(coeffs)
    for x in sorted(dims):
        expr = LinExpr({}, 0)
        for (coeffs, _b), lam in zip(rows, lams):
            c = coeffs.get(x, Fraction(0))
            if c != 0:
                expr = expr + LinExpr({lam: c})
        g = target_coeffs.get(x)
        if g is not None:
            expr = expr - g
        lp.add_eq(expr)
    # lambda^T b - d <= 0
    expr = LinExpr({}, 0)
    for (_coeffs, b), lam in zip(rows, lams):
        if b != 0:
            expr = expr + LinExpr({lam: b})
    expr = expr - target_const
    lp.add_le(expr)


def template(prefix: str, xs: Sequence[str]) -> Tuple[Dict[str, str], str]:
    """Fresh coefficient names for an affine template over *xs*.

    Returns ``(coeff_names, const_name)`` where ``coeff_names[x]`` is the
    LP unknown for the coefficient of ``x``.
    """
    return {x: f"{prefix}.c.{x}" for x in xs}, f"{prefix}.c0"


def instantiate(
    coeff_names: Mapping[str, str],
    const_name: str,
    values: Mapping[str, Fraction],
) -> LinExpr:
    """Build the concrete affine expression from solved template values."""
    coeffs = {
        x: values.get(name, Fraction(0)) for x, name in coeff_names.items()
    }
    return LinExpr(coeffs, values.get(const_name, Fraction(0)))
