"""Pluggable decision-procedure backends for the cube layer.

:class:`~repro.arith.context.SolverContext` answers every formula-level
query through three cube operations; this package supplies
interchangeable implementations of them:

``reference``
    The exact-Fraction pure-python Fourier-Motzkin engine (the trust
    anchor; always available).
``matrix``
    Vectorized FM on dense numpy matrices -- identical ``"fm"``
    semantics, same verdicts, vectorized hot path.
``z3``
    Exact linear integer arithmetic via the optional ``z3-solver``
    package; self-reports :class:`~repro.arith.backends.base
    .BackendUnavailable` where z3 is not importable.
``differential`` / ``differential:<a>,<b>``
    A meta-backend running two backends per query and raising
    :class:`~repro.arith.backends.differential.BackendDivergence` on
    disagreement (default pair: ``reference,matrix``).

Selection: pass a backend name (or instance) to ``SolverContext``,
``infer_program(..., backend=...)`` or ``python -m repro.bench
--backend ...``; the ``REPRO_SOLVER_BACKEND`` environment variable sets
the process-wide default, falling back to ``reference``.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Union

from repro.arith.backends.base import (
    BackendUnavailable,
    BackendUnsupported,
    CubeBackend,
)

__all__ = [
    "BackendUnavailable",
    "BackendUnsupported",
    "CubeBackend",
    "available_backends",
    "backend_cache_stats",
    "clear_backend_caches",
    "get_backend",
]

#: Environment variable naming the process-wide default backend.
BACKEND_ENV_VAR = "REPRO_SOLVER_BACKEND"

#: Default pair for the bare ``differential`` spec.
_DEFAULT_DIFFERENTIAL = ("reference", "matrix")


def _make_reference() -> CubeBackend:
    from repro.arith.backends.reference import ReferenceBackend

    return ReferenceBackend()


def _make_matrix() -> CubeBackend:
    from repro.arith.backends.matrix import MatrixBackend

    return MatrixBackend()


def _make_z3() -> CubeBackend:
    from repro.arith.backends.z3backend import Z3Backend

    return Z3Backend()  # raises BackendUnavailable without z3-solver


_FACTORIES: Dict[str, Callable[[], CubeBackend]] = {
    "reference": _make_reference,
    "matrix": _make_matrix,
    "z3": _make_z3,
}

#: Singleton instances, so repeated ``get_backend("matrix")`` calls share
#: one memo cache (mirroring the module-level reference memo).
_INSTANCES: Dict[str, CubeBackend] = {}


def _is_importable(name: str) -> bool:
    if name == "z3":
        from repro.arith.backends.z3backend import Z3_AVAILABLE

        return Z3_AVAILABLE
    if name == "matrix":
        try:
            import numpy  # noqa: F401
        except ImportError:
            return False
    return True


def available_backends() -> List[str]:
    """Names of backends constructible in this environment (sorted)."""
    return sorted(n for n in _FACTORIES if _is_importable(n))


def _instance(name: str) -> CubeBackend:
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown solver backend {name!r}; known: "
            + ", ".join(sorted(_FACTORIES))
            + ", differential[:<a>,<b>]"
        )
    if name not in _INSTANCES:
        _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]


def get_backend(
    spec: Optional[Union[str, CubeBackend]] = None,
) -> CubeBackend:
    """Resolve a backend spec to a live instance.

    ``spec`` may be ``None`` (use ``$REPRO_SOLVER_BACKEND`` or
    ``reference``), a registry name, ``"differential"`` /
    ``"differential:<a>,<b>"``, or an already-constructed
    :class:`CubeBackend` (returned as-is).
    """
    if isinstance(spec, CubeBackend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR) or "reference"
    spec = spec.strip()
    if spec == "differential" or spec.startswith("differential:"):
        from repro.arith.backends.differential import DifferentialBackend

        if spec == "differential":
            a, b = _DEFAULT_DIFFERENTIAL
        else:
            pair = spec.split(":", 1)[1].split(",")
            if len(pair) != 2 or not all(p.strip() for p in pair):
                raise ValueError(
                    f"bad differential spec {spec!r}; expected "
                    "'differential:<primary>,<secondary>'"
                )
            a, b = (p.strip() for p in pair)
        return DifferentialBackend(_instance(a), _instance(b))
    return _instance(spec)


def clear_backend_caches() -> None:
    """Clear the private memo caches of every instantiated backend."""
    for backend in _INSTANCES.values():
        backend.clear_caches()


def backend_cache_stats() -> Dict[str, Dict[str, int]]:
    """Per-instantiated-backend private cache counters (may be empty).

    Only backends actually constructed in this process appear; backends
    whose memo is a module-level cache reported elsewhere (the reference
    engine's FM cube memo) report ``{}`` and are omitted."""
    out: Dict[str, Dict[str, int]] = {}
    for name, backend in _INSTANCES.items():
        stats = backend.cache_stats()
        if stats:
            out[name] = stats
    return out
