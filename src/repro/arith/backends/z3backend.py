"""Optional z3 backend: exact linear *integer* arithmetic for cubes.

This backend is deliberately a different **semantics** (``"int"``) from
the Fourier-Motzkin engines (``"fm"``): variables range over the
integers and strict atoms mean ``e <= -1``, with no rational relaxation
anywhere.  Against an ``"fm"`` backend only the one-sided law holds
(fm-UNSAT implies int-UNSAT); see :mod:`repro.arith.backends.base`.

z3 is an *optional* dependency -- this module imports everywhere, and
only constructing :class:`Z3Backend` raises
:class:`~repro.arith.backends.base.BackendUnavailable` when the
``z3-solver`` package is absent.  The registry and the differential test
suite gate on :data:`Z3_AVAILABLE` and self-skip, so a z3-less
environment stays green.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, Optional, Sequence

from repro.arith.backends.base import BackendUnavailable, CubeBackend
from repro.arith.formula import Atom, Rel
from repro.arith.lru import LRUCache

try:  # pragma: no cover - exercised only where z3 is installed
    import z3  # type: ignore

    Z3_AVAILABLE = True
except ImportError:  # pragma: no cover - the common container case
    z3 = None  # type: ignore
    Z3_AVAILABLE = False


def _atom_to_z3(atom: Atom, consts: Dict[str, "z3.ArithRef"]) -> "z3.BoolRef":
    """Translate one normalised atom into a z3 integer constraint.

    Fractional coefficients (possible on raw ``Atom`` constructions) are
    cleared by scaling with the positive lcm of the denominators, which
    preserves each relation exactly.
    """
    coeffs = atom.expr.coeffs
    scale = atom.expr.constant.denominator
    for c in coeffs.values():
        scale = scale * c.denominator // gcd(scale, c.denominator)
    terms = [int(c * scale) * consts[n] for n, c in sorted(coeffs.items())]
    expr = z3.Sum(terms) + int(atom.expr.constant * scale) if terms else \
        z3.IntVal(int(atom.expr.constant * scale))
    if atom.rel is Rel.LE:
        return expr <= 0
    if atom.rel is Rel.EQ:
        return expr == 0
    return expr < 0  # Rel.LT; on integers this is expr <= -1


class Z3Backend(CubeBackend):
    """Cube decisions via the z3 SMT solver over the integers.

    No native projection (z3's quantifier elimination produces formulas in
    a different normal form; projection falls back to the reference
    engine, and differential mode skips the comparison).  Models are
    native and exact.
    """

    name = "z3"
    semantics = "int"
    trust = 2
    supports_projection = False

    def __init__(self, cache_size: int = 500_000):
        if not Z3_AVAILABLE:
            raise BackendUnavailable(
                "the z3 backend needs the 'z3-solver' package, which is not "
                "importable in this environment"
            )
        self._sat_cache = LRUCache(cache_size)

    def _solve(self, atoms: Sequence[Atom]) -> "z3.Solver":
        consts = {
            n: z3.Int(n)
            for a in atoms
            for n in a.expr.variables()
        }
        solver = z3.Solver()
        for a in atoms:
            solver.add(_atom_to_z3(a, consts))
        return solver

    def cube_is_sat(self, atoms: Sequence[Atom]) -> bool:
        key = frozenset(atoms)
        cached = self._sat_cache.get(key)
        if cached is not None:
            return cached
        verdict = self._solve(atoms).check()
        if verdict == z3.unknown:  # pragma: no cover - LIA is decidable
            raise RuntimeError("z3 returned 'unknown' on a linear cube")
        result = verdict == z3.sat
        self._sat_cache.put(key, result)
        return result

    def cube_model(self, atoms: Sequence[Atom]) -> Optional[Dict[str, Fraction]]:
        solver = self._solve(atoms)
        if solver.check() != z3.sat:
            return None
        model = solver.model()
        env: Dict[str, Fraction] = {}
        for a in atoms:
            for n in a.expr.variables():
                if n not in env:
                    val = model.eval(z3.Int(n), model_completion=True)
                    env[n] = Fraction(val.as_long())
        return env

    def clear_caches(self) -> None:
        self._sat_cache.clear(reset_evictions=True)

    def cache_stats(self) -> Dict[str, int]:
        return {
            "sat_size": len(self._sat_cache),
            "sat_evictions": self._sat_cache.evictions,
        }
