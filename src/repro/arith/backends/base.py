"""The cube-level decision-procedure interface every backend implements.

:class:`repro.arith.context.SolverContext` reduces all formula-level
queries (sat, entailment, projection, model search) to three operations on
*cubes* -- conjunctions of normalised :class:`~repro.arith.formula.Atom`
objects.  A :class:`CubeBackend` supplies those three operations:

* ``cube_is_sat(atoms)`` -- satisfiability of a cube;
* ``project_cube(atoms, keep=/eliminate=)`` -- existential projection,
  returning the projected cube (raises :class:`repro.arith.fm.Unsat` when
  the input cube is contradictory);
* ``cube_model(atoms)`` -- a rational witness, or ``None``.

Backends differ in **speed** and in **trust**, and may differ in
**semantics**:

* ``semantics = "fm"``: the integer-tightened Fourier-Motzkin relaxation
  this repository's reference engine implements -- exact on the
  unit-coefficient fragment, a sound UNSAT test in general (a "sat" answer
  may be a rational artefact outside that fragment).  Two ``"fm"``
  backends must agree **exactly** on every query.
* ``semantics = "int"``: exact linear integer arithmetic (the z3
  backend).  Against an ``"fm"`` backend only the one-sided law holds:
  *fm-UNSAT implies int-UNSAT* (the relaxation never loses integer
  solutions), so an ``"fm"`` backend answering UNSAT where an ``"int"``
  backend finds a model is a genuine soundness bug, while fm-SAT /
  int-UNSAT is the documented incompleteness gap of the relaxation.

The differential meta-backend (:mod:`repro.arith.backends.differential`)
encodes exactly these agreement laws.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set

from repro.arith.formula import Atom


class BackendUnavailable(RuntimeError):
    """Requested backend cannot run here (missing optional dependency)."""


class BackendUnsupported(NotImplementedError):
    """The backend does not implement the requested operation natively."""


class CubeBackend:
    """Base class for cube-level decision-procedure backends.

    Subclasses set ``name`` (the registry key), ``semantics`` (``"fm"`` or
    ``"int"``, see the module docstring) and ``trust`` (higher = more
    trusted; used for documentation and divergence reports, never to
    silently override an answer).
    """

    name: str = "abstract"
    semantics: str = "fm"
    trust: int = 0
    #: Whether :meth:`project_cube` is implemented natively.  When False
    #: the inherited implementation transparently falls back to the
    #: reference engine (and differential mode skips the comparison --
    #: reference-vs-reference would be vacuous).
    supports_projection: bool = True
    #: Same flag for :meth:`cube_model`.
    supports_model: bool = True

    def cube_is_sat(self, atoms: Sequence[Atom]) -> bool:
        raise NotImplementedError

    def project_cube(
        self,
        atoms: Sequence[Atom],
        keep: Optional[Set[str]] = None,
        eliminate: Optional[Set[str]] = None,
    ) -> List[Atom]:
        """Project a cube onto *keep* (or eliminate *eliminate*).

        Backends without a native projection inherit this reference
        fallback so every backend is usable behind the full
        :class:`~repro.arith.context.SolverContext` facade.
        """
        from repro.arith import fm

        return fm.project_cube(atoms, keep=keep, eliminate=eliminate)

    def cube_model(self, atoms: Sequence[Atom]) -> Optional[Dict[str, Fraction]]:
        """A rational model of the cube, or ``None``.

        Default: the reference engine's exact back-substitution witness.
        """
        from repro.arith import fm

        return fm.cube_model(atoms)

    def clear_caches(self) -> None:
        """Drop any backend-private memo state (no-op by default)."""

    def cache_stats(self) -> Dict[str, int]:
        """Size/eviction counters of any backend-private memo state.

        Surfaced by :func:`repro.arith.solver.cache_telemetry` (and the
        analysis daemon's ``/stats`` endpoint) so a long-lived process can
        watch its resident caches; backends without private memo state
        report ``{}``."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
