"""The exact-Fraction Fourier-Motzkin engine as a pluggable backend.

This is a thin adapter over :mod:`repro.arith.fm` -- the engine every
verdict in the repository bottomed out in before backends existed.  It is
the **trust anchor** of the ``"fm"`` semantics: the matrix backend must
agree with it exactly, and the differential meta-backend uses it as the
arbiter when comparing projections semantically.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set

from repro.arith import fm
from repro.arith.backends.base import CubeBackend
from repro.arith.formula import Atom


class ReferenceBackend(CubeBackend):
    """Pure-python exact-arithmetic FM (the historical implementation).

    Satisfiability is memoised in the module-level FM cube cache
    (:func:`repro.arith.fm.cube_is_sat`), exactly as before the backend
    split, so existing cache-behaviour guarantees -- and the perf-guard
    tests built on them -- are unchanged.
    """

    name = "reference"
    semantics = "fm"
    trust = 1

    def cube_is_sat(self, atoms: Sequence[Atom]) -> bool:
        return fm.cube_is_sat(atoms)

    def project_cube(
        self,
        atoms: Sequence[Atom],
        keep: Optional[Set[str]] = None,
        eliminate: Optional[Set[str]] = None,
    ) -> List[Atom]:
        return fm.project_cube(atoms, keep=keep, eliminate=eliminate)

    def cube_model(self, atoms: Sequence[Atom]) -> Optional[Dict[str, Fraction]]:
        return fm.cube_model(atoms)

    def clear_caches(self) -> None:
        fm.clear_fm_caches()
