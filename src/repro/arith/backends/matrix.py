"""Vectorized Fourier-Motzkin cube elimination on dense numpy matrices.

A cube of normalised LE/LT atoms becomes one dense integer matrix: one row
per atom, one column per variable plus a trailing constant column, with a
parallel boolean vector marking (rational-)strict rows.  One elimination
round is then three numpy operations instead of a quadratic python loop of
:class:`~repro.arith.terms.LinExpr` allocations:

* sign-partition the pivot column into lower/upper/unrelated rows,
* form every lower x upper combination in a single broadcast
  (``cl[:,None,None] * U + cu[None,:,None] * L``),
* gcd-reduce and integer-tighten all new rows column-wise.

Arithmetic is exact: rows live in ``int64`` while a cheap a-priori bound
shows one combination round cannot overflow, and the whole matrix is
upcast to arbitrary-precision python ints (``dtype=object``) the moment it
could.  Equality preprocessing (Gaussian substitution) is shared with the
reference engine -- it is linear and not the hot path.

The backend reproduces the reference engine bit for bit, including its
treatment of *raw* (not smart-constructed) atoms: input atoms that never
participate in a combination pass through **verbatim** (each row remembers
its origin atom), and only derived rows are renormalised -- with the same
gcd reduction, the same dark-shadow constant floor, and the same
cheapest-first interleaved elimination order with lexicographic ties as
:func:`repro.arith.fm.eliminate_all`.  Projections therefore re-intern to
the identical :class:`~repro.arith.formula.Atom` sets and sat verdicts
must match the reference exactly -- which is what the differential
meta-backend asserts.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.arith import fm
from repro.arith.backends.base import CubeBackend
from repro.arith.formula import Atom, Rel
from repro.arith.lru import LRUCache
from repro.arith.terms import LinExpr

#: Upcast to python-int (object dtype) when one combination round could
#: produce values at or beyond this magnitude in int64 arithmetic.
_INT64_SAFE = 2 ** 62


def _int_gcd_row(row: np.ndarray) -> int:
    g = 0
    for v in row:
        g = gcd(g, abs(int(v)))
        if g == 1:
            break
    return g


class _Tableau:
    """A cube as a dense integer matrix plus per-row metadata.

    ``origin[i]`` is the input atom row *i* was ingested from, or ``None``
    for rows derived by combination.  The reference engine emits untouched
    input atoms verbatim (even non-canonical ones), so the conversion back
    to atoms must do the same.
    """

    __slots__ = ("names", "rows", "strict", "origin")

    def __init__(
        self,
        names: List[str],
        rows: np.ndarray,
        strict: np.ndarray,
        origin: List[Optional[Atom]],
    ):
        self.names = names      # column order; constant column is last
        self.rows = rows        # shape (m, len(names) + 1)
        self.strict = strict    # shape (m,), True for Rel.LT rows
        self.origin = origin    # length m

    @property
    def width(self) -> int:
        return len(self.names) + 1


def _ingest(atoms: Sequence[Atom]) -> Tuple[_Tableau, List[Atom]]:
    """Build the tableau; constant atoms are split off as passthrough.

    Fractional coefficients (raw ``Atom`` constructions bypassing the
    normalising smart constructors) are cleared by scaling each row with
    the positive lcm of its denominators -- solution-set preserving for
    every relation.  No gcd reduction or tightening happens here: the
    reference engine leaves input atoms untouched until they take part in
    a combination, and derived rows are where both engines normalise.

    Constant atoms never participate in elimination (the reference keeps
    them in the untouched remainder forever), so they bypass the matrix
    entirely and are returned as a passthrough list.
    """
    names = sorted({v for a in atoms for v in a.expr.variables()})
    index = {n: i for i, n in enumerate(names)}
    width = len(names) + 1
    passthrough = [a for a in atoms if a.expr.is_constant()]
    keep = [a for a in atoms if not a.expr.is_constant()]
    rows = np.zeros((len(keep), width), dtype=object)
    strict = np.zeros(len(keep), dtype=bool)
    for r, a in enumerate(keep):
        coeffs = a.expr.coeffs
        scale = a.expr.constant.denominator
        for c in coeffs.values():
            scale = scale * c.denominator // gcd(scale, c.denominator)
        for n, c in coeffs.items():
            rows[r, index[n]] = int(c * scale)
        rows[r, width - 1] = int(a.expr.constant * scale)
        strict[r] = a.rel is Rel.LT
    # Start in int64 when everything fits comfortably; the elimination
    # loop upcasts again if combinations could overflow.
    if rows.size == 0 or max(abs(int(v)) for v in rows.flat) < _INT64_SAFE:
        rows = rows.astype(np.int64)
    return _Tableau(names, rows, strict, list(keep)), passthrough


def _renorm_rows(
    rows: np.ndarray, strict: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Gcd-reduce and integer-tighten derived rows; fold constant rows.

    Mirrors what :func:`repro.arith.fm._renorm` does to every combination
    the reference engine derives: non-strict rows divide the variable part
    by its gcd and floor the constant (the dark-shadow tightening, as in
    ``_norm_le``), strict rows divide the whole row by its common gcd
    (as in ``LinExpr.normalized``).  Satisfied constant rows are dropped;
    violated ones raise :class:`repro.arith.fm.Unsat`.
    """
    if rows.shape[0] == 0:
        return rows, strict
    var = rows[:, :-1]
    const = rows[:, -1]
    if rows.dtype == object:
        g = np.array([_int_gcd_row(row) for row in var], dtype=object)
    else:
        g = (
            np.gcd.reduce(np.abs(var), axis=1)
            if var.shape[1]
            else np.zeros(len(rows), dtype=rows.dtype)
        )
    is_const = g == 0
    if is_const.any():
        cv = const[is_const]
        st = strict[is_const]
        if np.any(np.where(st, cv >= 0, cv > 0)):
            raise fm.Unsat()
        rows = rows[~is_const]
        strict = strict[~is_const]
        g = g[~is_const]
        var = rows[:, :-1]
        const = rows[:, -1]
    if rows.shape[0] == 0:
        return rows, strict
    # Non-strict reduction: var //= g, const := ceil(const / g).
    red = (~strict) & (g > 1)
    if red.any():
        gr = g[red][:, None]
        var[red] = var[red] // gr
        const[red] = -((-const[red]) // g[red])
    # Strict reduction: divide the entire row by gcd(g, |const|).
    sm = strict & (g > 0)
    if sm.any():
        if rows.dtype == object:
            g2 = np.array(
                [gcd(int(a), abs(int(b))) for a, b in zip(g[sm], const[sm])],
                dtype=object,
            )
        else:
            g2 = np.gcd(g[sm], np.abs(const[sm]))
        g2 = np.where(g2 > 1, g2, 1)
        var[sm] = var[sm] // g2[:, None]
        const[sm] = const[sm] // g2
    return rows, strict


def _cheapest_column(t: _Tableau, remaining: Set[str]) -> str:
    """Same heuristic and tie-break as :func:`repro.arith.fm._cheapest_var`:
    fewest lower x upper combinations against the *current* tableau,
    lexicographically first on ties."""
    best = None
    best_cost = None
    index = {n: i for i, n in enumerate(t.names)}
    for n in sorted(remaining):
        j = index.get(n)
        if j is None:
            cost = 0
        else:
            col = t.rows[:, j]
            cost = int(np.count_nonzero(col > 0)) * int(
                np.count_nonzero(col < 0)
            )
        if best_cost is None or cost < best_cost:
            best, best_cost = n, cost
    assert best is not None
    return best


def _eliminate_column(t: _Tableau, name: str) -> _Tableau:
    """One FM round on the tableau, fully vectorized."""
    if name not in t.names:
        fm.record_eliminations(1)
        return t
    j = t.names.index(name)
    col = t.rows[:, j]
    neg = col < 0
    pos = col > 0
    zero = ~(neg | pos)
    L, Ls = t.rows[neg], t.strict[neg]
    U, Us = t.rows[pos], t.strict[pos]
    fm.record_eliminations(1 + L.shape[0] * U.shape[0])
    base_rows, base_strict = t.rows[zero], t.strict[zero]
    base_origin = [o for o, z in zip(t.origin, zero) if z]
    names = [n for n in t.names if n != name]
    keep_cols = [i for i in range(t.width) if i != j]
    if not (L.shape[0] and U.shape[0]):
        # One-sided bounds: every row mentioning the pivot is dropped.
        return _Tableau(names, base_rows[:, keep_cols], base_strict, base_origin)
    if t.rows.dtype != object:
        # |cl*up + cu*lo| <= 2 * max|pivot coeff| * max|entry|: upcast to
        # python ints before a round that could overflow int64.
        maxc = int(np.abs(col).max())
        maxv = int(np.abs(np.concatenate([L, U])).max())
        if 2 * maxc * maxv >= _INT64_SAFE:
            L = L.astype(object)
            U = U.astype(object)
            base_rows = base_rows.astype(object)
    cl = -L[:, j]          # positive lower-bound pivot coefficients
    cu = U[:, j]           # positive upper-bound pivot coefficients
    new = cl[:, None, None] * U[None, :, :] + cu[None, :, None] * L[:, None, :]
    new = new.reshape(-1, t.width)
    new_strict = (Ls[:, None] | Us[None, :]).reshape(-1)
    new, new_strict = _renorm_rows(new, new_strict)
    if base_rows.dtype != new.dtype:
        base_rows = base_rows.astype(new.dtype)
    rows = np.concatenate([base_rows, new])
    strict = np.concatenate([base_strict, new_strict])
    origin = base_origin + [None] * new.shape[0]
    # Per-round dedup on row values, first occurrence wins -- untouched
    # rows come first, exactly like the reference's ``rest + combinations``
    # ordering through _dedup.
    seen: set = set()
    keep: List[int] = []
    for i in range(rows.shape[0]):
        key = (tuple(int(v) for v in rows[i]), bool(strict[i]))
        if key not in seen:
            seen.add(key)
            keep.append(i)
    if len(keep) != rows.shape[0]:
        rows = rows[keep]
        strict = strict[keep]
        origin = [origin[i] for i in keep]
    return _Tableau(names, rows[:, keep_cols], strict, origin)


def _eliminate_all(t: _Tableau, targets: Set[str]) -> _Tableau:
    remaining = set(targets)
    while remaining:
        name = _cheapest_column(t, remaining)
        remaining.discard(name)
        t = _eliminate_column(t, name)
    return t


def _to_atoms(t: _Tableau) -> List[Atom]:
    """Convert surviving rows back to atoms.

    Untouched rows yield their original (possibly non-canonical) input
    atom verbatim; derived rows are re-interned through the normalising
    constructor -- an identity here, since :func:`_renorm_rows` already
    put them in the reference engine's canonical shape.
    """
    out: List[Atom] = []
    for i in range(t.rows.shape[0]):
        if t.origin[i] is not None:
            out.append(t.origin[i])
            continue
        coeffs = {
            n: int(t.rows[i, k])
            for k, n in enumerate(t.names)
            if t.rows[i, k] != 0
        }
        expr = LinExpr(coeffs, int(t.rows[i, -1]))
        rel = Rel.LT if t.strict[i] else Rel.LE
        r = fm._renorm(expr, rel)
        if r is not None:
            out.append(r)
    return out


class MatrixBackend(CubeBackend):
    """Dense-matrix FM: the raw-speed path of the ``"fm"`` semantics.

    Equality substitution and witness construction reuse the exact
    reference routines (linear, off the hot path); the quadratic cube
    elimination underneath sat and projection is vectorized.  Sat verdicts
    are memoised per backend instance in an LRU cache that is deliberately
    *separate* from the reference engine's module cache -- sharing it
    would let one backend answer from the other's memo and make
    differential cross-checking vacuous.
    """

    name = "matrix"
    semantics = "fm"
    trust = 1
    supports_model = False  # witness path is the shared reference one

    def __init__(self, cache_size: int = 500_000):
        self._sat_cache = LRUCache(cache_size)

    def cube_is_sat(self, atoms: Sequence[Atom]) -> bool:
        key = frozenset(atoms)
        cached = self._sat_cache.get(key)
        if cached is not None:
            return cached
        result = self._raw_cube_is_sat(atoms)
        self._sat_cache.put(key, result)
        return result

    def _raw_cube_is_sat(self, atoms: Sequence[Atom]) -> bool:
        try:
            cube = fm.substitute_equalities(list(atoms))
            les: List[Atom] = []
            for a in cube:
                if a.rel is Rel.EQ:
                    les.append(Atom(a.expr, Rel.LE))
                    les.append(Atom(-a.expr, Rel.LE))
                else:
                    les.append(a)
            t, _ = _ingest(les)
            _eliminate_all(t, set(t.names))
            return True
        except fm.Unsat:
            return False

    def project_cube(
        self,
        atoms: Sequence[Atom],
        keep: Optional[Set[str]] = None,
        eliminate: Optional[Set[str]] = None,
    ) -> List[Atom]:
        if (keep is None) == (eliminate is None):
            raise ValueError("specify exactly one of keep= or eliminate=")
        cube = fm.substitute_equalities(list(atoms))
        free: Set[str] = set()
        for a in cube:
            free |= a.expr.variables()
        targets = (
            (free - keep) if keep is not None else (free & set(eliminate or ()))
        )
        les: List[Atom] = []
        eq_kept: List[Atom] = []
        for a in cube:
            if a.rel is Rel.EQ:
                if a.expr.variables() & targets:
                    les.append(Atom(a.expr, Rel.LE))
                    les.append(Atom(-a.expr, Rel.LE))
                else:
                    eq_kept.append(a)
            else:
                les.append(a)
        t, passthrough = _ingest(les)
        t = _eliminate_all(t, targets)
        return fm._dedup(eq_kept + passthrough + _to_atoms(t))

    def clear_caches(self) -> None:
        self._sat_cache.clear(reset_evictions=True)

    def cache_stats(self) -> Dict[str, int]:
        return {
            "sat_size": len(self._sat_cache),
            "sat_evictions": self._sat_cache.evictions,
        }
