"""Differential meta-backend: run two backends per query, assert agreement.

Every cube query is answered by a *primary* backend and cross-checked
against a *secondary* one.  The agreement law depends on the pair's
semantics (see :mod:`repro.arith.backends.base`):

* two ``"fm"`` backends (or two ``"int"`` backends) must agree exactly,
  on sat verdicts and on projections;
* an ``"fm"`` backend against an ``"int"`` backend is held to the
  one-sided law only: *fm-UNSAT implies int-UNSAT*.  An fm backend
  answering UNSAT where the integer backend finds a model is a genuine
  soundness bug and raises; fm-SAT / int-UNSAT is the documented
  incompleteness gap of the relaxation and is merely counted
  (``relaxation_gaps``).

On disagreement the offending cube is first shrunk by a greedy
ddmin-style pass -- repeatedly dropping any atom whose removal preserves
the divergence -- so :class:`BackendDivergence` reports a *minimal*
reproducer, not the original thousand-atom cube.

Projections of two ``"fm"`` backends are compared structurally first
(both engines normalise identically, so the atom sets should be equal
object-for-object) and, when that fails, semantically: mutual cube
entailment decided by the reference engine as arbiter, using the
integer-tightened negations ``not(e<=0) == (-e+1<=0)``,
``not(e<0) == (-e<=0)`` and ``not(e==0) == (e<=-1) or (-e<=-1)``.
Structurally-different-but-equivalent projections pass; genuinely
different solution sets raise.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.arith import fm
from repro.arith.backends.base import CubeBackend
from repro.arith.formula import Atom, Rel


class BackendDivergence(AssertionError):
    """Two backends disagreed on a cube query.

    Carries the operation name, both backend names with their answers,
    and a minimized reproducer cube.
    """

    def __init__(
        self,
        op: str,
        primary: CubeBackend,
        secondary: CubeBackend,
        answers: Tuple[object, object],
        cube: Sequence[Atom],
    ):
        self.op = op
        self.primary = primary.name
        self.secondary = secondary.name
        self.answers = answers
        self.cube = list(cube)
        lines = [
            f"backend divergence on {op}:",
            f"  {primary.name} ({primary.semantics}, trust {primary.trust})"
            f" -> {answers[0]!r}",
            f"  {secondary.name} ({secondary.semantics}, trust {secondary.trust})"
            f" -> {answers[1]!r}",
            "  minimized cube:",
        ]
        lines.extend(f"    {a!r}" for a in self.cube)
        super().__init__("\n".join(lines))


def _minimize(
    atoms: Sequence[Atom], still_diverges: Callable[[Sequence[Atom]], bool]
) -> List[Atom]:
    """Greedy one-atom-at-a-time shrink preserving the divergence."""
    cur = list(atoms)
    changed = True
    while changed:
        changed = False
        for i in range(len(cur)):
            cand = cur[:i] + cur[i + 1:]
            try:
                keep = still_diverges(cand)
            except Exception:  # a backend crashing on the sub-cube
                keep = False   # is a different bug; do not chase it here
            if keep:
                cur = cand
                changed = True
                break
    return cur


def _negation_branches(atom: Atom) -> List[List[Atom]]:
    """Integer-tightened negation of one atom, as a disjunction of cubes."""
    e = atom.expr
    if atom.rel is Rel.LE:
        return [[Atom((-e) + 1, Rel.LE)]]
    if atom.rel is Rel.LT:
        return [[Atom(-e, Rel.LE)]]
    # Rel.EQ: e != 0  <=>  e <= -1  or  -e <= -1
    return [[Atom(e + 1, Rel.LE)], [Atom((-e) + 1, Rel.LE)]]


def _cube_entails_atom(
    arbiter: CubeBackend, cube: Sequence[Atom], atom: Atom
) -> bool:
    for branch in _negation_branches(atom):
        if arbiter.cube_is_sat(list(cube) + branch):
            return False
    return True


def _cubes_equivalent(
    arbiter: CubeBackend, a: Sequence[Atom], b: Sequence[Atom]
) -> bool:
    return all(_cube_entails_atom(arbiter, b, x) for x in a) and all(
        _cube_entails_atom(arbiter, a, x) for x in b
    )


class DifferentialBackend(CubeBackend):
    """Answer with *primary*, cross-check against *secondary*.

    The verdict returned to the caller is always the primary's, so
    plugging ``differential`` into a pipeline changes nothing but cost --
    unless the backends disagree, in which case the query raises
    :class:`BackendDivergence` instead of silently propagating either
    answer.
    """

    semantics = "fm"
    supports_projection = True

    def __init__(self, primary: CubeBackend, secondary: CubeBackend):
        self.primary = primary
        self.secondary = secondary
        self.name = f"differential:{primary.name},{secondary.name}"
        self.semantics = primary.semantics
        self.trust = max(primary.trust, secondary.trust)
        self.supports_projection = primary.supports_projection
        self.supports_model = primary.supports_model
        #: Total cross-checked queries.
        self.queries = 0
        #: fm-SAT / int-UNSAT cases (legal incompleteness of the relaxation).
        self.relaxation_gaps = 0

    # -- sat ------------------------------------------------------------

    def _sat_pair(self, atoms: Sequence[Atom]) -> Tuple[bool, bool]:
        return (
            self.primary.cube_is_sat(atoms),
            self.secondary.cube_is_sat(atoms),
        )

    def _sat_diverges(self, p: bool, s: bool) -> bool:
        if self.primary.semantics == self.secondary.semantics:
            return p != s
        # Mixed fm/int pair: only fm-UNSAT with an integer model is a bug.
        fm_ans, int_ans = (
            (p, s) if self.primary.semantics == "fm" else (s, p)
        )
        return (not fm_ans) and int_ans

    def cube_is_sat(self, atoms: Sequence[Atom]) -> bool:
        self.queries += 1
        p, s = self._sat_pair(atoms)
        if self._sat_diverges(p, s):
            small = _minimize(
                atoms, lambda sub: self._sat_diverges(*self._sat_pair(sub))
            )
            pa, sa = self._sat_pair(small)
            raise BackendDivergence(
                "cube_is_sat", self.primary, self.secondary, (pa, sa), small
            )
        if p != s:
            self.relaxation_gaps += 1
        return p

    # -- projection ------------------------------------------------------

    def _project_outcome(
        self, backend: CubeBackend, atoms, keep, eliminate
    ):
        try:
            return frozenset(
                backend.project_cube(atoms, keep=keep, eliminate=eliminate)
            )
        except fm.Unsat:
            return fm.Unsat

    def _projection_diverges(self, a, b) -> bool:
        if a is fm.Unsat or b is fm.Unsat:
            return a is not b
        if a == b:
            return False
        arbiter = (
            self.primary
            if self.primary.semantics == "fm"
            else self.secondary
        )
        return not _cubes_equivalent(arbiter, sorted(a, key=repr), sorted(b, key=repr))

    def project_cube(
        self,
        atoms: Sequence[Atom],
        keep: Optional[Set[str]] = None,
        eliminate: Optional[Set[str]] = None,
    ) -> List[Atom]:
        comparable = (
            self.secondary.supports_projection
            and self.primary.supports_projection
            and self.primary.semantics == self.secondary.semantics
        )
        if not comparable:
            # A reference fallback on either side would compare the
            # reference engine with itself -- vacuous, so skip the check.
            return self.primary.project_cube(
                atoms, keep=keep, eliminate=eliminate
            )
        self.queries += 1
        a = self._project_outcome(self.primary, atoms, keep, eliminate)
        b = self._project_outcome(self.secondary, atoms, keep, eliminate)
        if self._projection_diverges(a, b):
            small = _minimize(
                atoms,
                lambda sub: self._projection_diverges(
                    self._project_outcome(self.primary, sub, keep, eliminate),
                    self._project_outcome(self.secondary, sub, keep, eliminate),
                ),
            )
            pa = self._project_outcome(self.primary, small, keep, eliminate)
            sa = self._project_outcome(self.secondary, small, keep, eliminate)
            raise BackendDivergence(
                "project_cube",
                self.primary,
                self.secondary,
                (
                    pa if pa is fm.Unsat else sorted(pa, key=repr),
                    sa if sa is fm.Unsat else sorted(sa, key=repr),
                ),
                small,
            )
        if a is fm.Unsat:
            raise fm.Unsat()
        return self.primary.project_cube(atoms, keep=keep, eliminate=eliminate)

    # -- model -----------------------------------------------------------

    def cube_model(self, atoms: Sequence[Atom]) -> Optional[Dict[str, Fraction]]:
        model = self.primary.cube_model(atoms)
        if model is not None:
            env = dict(model)
            for a in atoms:
                for n in a.expr.variables():
                    env.setdefault(n, Fraction(0))
            if not all(a.evaluate(env) for a in atoms):
                raise BackendDivergence(
                    "cube_model",
                    self.primary,
                    self.secondary,
                    (model, "model does not satisfy the cube"),
                    list(atoms),
                )
        return model

    def clear_caches(self) -> None:
        self.primary.clear_caches()
        self.secondary.clear_caches()
