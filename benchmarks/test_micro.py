"""Micro-benchmarks of the analysis primitives.

Not a paper table; these time the substrate pieces (entailment, ranking
synthesis, full worked-example inference) so performance regressions in
the core are visible independently of the Fig. 10/11 sweeps.

The ``perf_guard``-marked test is a functional cache-regression guard: it
runs the same workload twice against one :class:`SolverContext` and
asserts the warm run performs strictly fewer raw Fourier-Motzkin
eliminations than the cold run, so a broken cache (e.g. one that silently
stops admitting entries) fails tier-1 instead of only showing up as a
slowdown.
"""

import pytest

from repro.arith.context import SolverContext
from repro.arith.formula import atom_eq, atom_ge, atom_lt, conj
from repro.arith.solver import clear_caches, entails, is_sat
from repro.arith.terms import var
from repro.core import infer_source
from repro.core.ranking import RankSynthesizer
from repro.core.reachgraph import Edge

FOO = """
void foo(int x, int y)
{ if (x < 0) { return; } else { foo(x + y, y); return; } }
"""

GCD = """
int gcd(int a, int b)
  requires a > 0 && b > 0 ensures res > 0;
{
  if (a == b) { return a; }
  else { if (a > b) { return gcd(a - b, b); }
         else { return gcd(a, b - a); } }
}
"""

x, y = var("x"), var("y")


def test_bench_entailment(benchmark):
    ctx = conj(
        atom_ge(x, 0), atom_lt(y, 0),
        atom_eq(var("x'"), x + y), atom_eq(var("y'"), y),
    )
    goal = atom_lt(var("x'"), x)

    def run():
        clear_caches()
        return entails(ctx, goal)

    assert benchmark(run)


def test_bench_sat_disjunctive(benchmark):
    from repro.arith.formula import disj

    f = conj(
        disj(atom_ge(x, 0), atom_lt(x, -5)),
        disj(atom_ge(y, 3), atom_lt(y, 0)),
        atom_eq(var("z"), x + y),
    )

    def run():
        clear_caches()
        return is_sat(f)

    assert benchmark(run)


def test_bench_ranking_synthesis(benchmark):
    ctx = conj(
        atom_ge(x, 0), atom_lt(y, 0),
        atom_eq(var("x'"), x + y), atom_eq(var("y'"), y),
        atom_ge(var("x'"), 0),
    )
    edge = Edge("U", "U", ctx, ("x", "y"), ("x'", "y'"))

    def run():
        s = RankSynthesizer({"U": ("x", "y")})
        return s.synthesize_linear(["U"], [edge])

    assert benchmark(run) is not None


def test_bench_full_foo_inference(benchmark):
    def run():
        clear_caches()
        return infer_source(FOO)

    result = benchmark(run)
    assert len(result.specs["foo"].cases) == 3


def test_bench_full_gcd_inference(benchmark):
    def run():
        clear_caches()
        return infer_source(GCD)

    result = benchmark(run)
    assert result.specs["gcd"] is not None


# ---------------------------------------------------------------------------
# Warm-context benchmarks and the cache-regression guard
# ---------------------------------------------------------------------------

def _guard_workload(ctx):
    """A batch of entailment/sat queries shaped like the inference's VCs
    (distinct variable names keep it out of other tests' cache entries)."""
    a, b, a2, b2 = var("pg_a"), var("pg_b"), var("pg_a'"), var("pg_b'")
    answers = []
    for k in range(6):
        step = conj(
            atom_ge(a, k), atom_ge(b, 1),
            atom_eq(a2, a - b), atom_eq(b2, b),
        )
        answers.append(ctx.entails(step, atom_lt(a2, a)))
        answers.append(ctx.is_sat(conj(step, atom_ge(a2, k))))
        answers.append(ctx.is_sat(conj(step, atom_lt(a2, -10 - k))))
    return answers


def test_bench_warm_context_entailment(benchmark):
    """The warm-context fast path: repeated queries against one shared
    context are answered from its caches (compare with
    test_bench_entailment, which clears all caches per round)."""
    ctx = SolverContext()
    _guard_workload(ctx)  # prime

    def run():
        return _guard_workload(ctx)

    assert benchmark(run)


# ---------------------------------------------------------------------------
# Parallel wave-scheduler micro benchmark
# ---------------------------------------------------------------------------

# A diamond condensation whose two middle SCCs are each a McCarthy-91
# variant with a symbolic decrement -- heavy enough (around a second each)
# that analyzing them concurrently amortises worker startup.  Variable
# names are disjoint per branch so the branches share no solver state.
PARALLEL_DIAMOND = """
int base(int n)
{ if (n <= 0) { return 0; } else { return base(n - 1); } }

int McL(int nl, int dl)
{
  if (nl > 100) { return nl - dl; }
  else { return McL(McL(nl + 11, dl), dl); }
}

int McR(int nr, int dr)
{
  if (nr > 100) { return nr - dr; }
  else { return McR(McR(nr + 11, dr), dr); }
}

void top(int t, int s) {
  base(t);
  int u = McL(t, s);
  int v = McR(t, s);
  return;
}
"""


def _cold():
    # the bench runner's full cold-start protocol (caches, cyclic garbage,
    # fresh-name counters), so sequential and parallel measurements start
    # from the same process state
    from repro.bench.runner import _cold_start

    _cold_start()


@pytest.mark.parallel
def test_parallel_diamond_speedup():
    """The acceptance shape of the wave scheduler: with two independent
    middle SCCs, ``jobs=2`` must beat sequential by >= 1.5x wall-clock.

    Wall-clock speedup needs real cores; on a single-CPU machine the two
    workers just time-slice, so only the (always-checked) verdict parity
    is meaningful there and the timing assertion is skipped."""
    import os
    import time

    # best-of-2 per mode: damps scheduler noise on shared CI runners
    # without weakening the acceptance threshold
    seq_elapsed = float("inf")
    for _ in range(2):
        _cold()
        t0 = time.monotonic()
        seq = infer_source(PARALLEL_DIAMOND)
        seq_elapsed = min(seq_elapsed, time.monotonic() - t0)

    par_elapsed = float("inf")
    for _ in range(2):
        _cold()
        t0 = time.monotonic()
        par = infer_source(PARALLEL_DIAMOND, jobs=2)
        par_elapsed = min(par_elapsed, time.monotonic() - t0)

    assert list(seq.specs) == list(par.specs)
    assert {m: str(seq.verdict(m)) for m in seq.specs} == \
        {m: str(par.verdict(m)) for m in par.specs}

    if (os.cpu_count() or 1) < 2:
        pytest.skip(
            f"sequential {seq_elapsed:.2f}s vs jobs=2 {par_elapsed:.2f}s: "
            "speedup assertion needs >= 2 CPUs"
        )
    speedup = seq_elapsed / par_elapsed
    assert speedup >= 1.5, (
        f"jobs=2 speedup {speedup:.2f}x on the diamond fixture "
        f"(sequential {seq_elapsed:.2f}s, parallel {par_elapsed:.2f}s)"
    )


# ---------------------------------------------------------------------------
# Decision-procedure backend micro comparison
# ---------------------------------------------------------------------------

# One benchmark per constructible backend (z3 appears only where the
# optional z3-solver package is importable), so ``pytest benchmarks -k
# backend_cube`` prints a per-backend timing table.  Verdict agreement is
# asserted inside each run: exact for "fm"-semantics engines, the
# one-sided UNSAT law for exact-integer ones (see docs/solver.md).


def _backend_micro_cubes():
    """A deterministic batch of ~60 raw-atom cubes over four variables,
    mixing satisfiable and contradictory systems (seeded, so every
    backend times the identical workload)."""
    import random

    from fractions import Fraction

    from repro.arith.formula import Atom, Rel
    from repro.arith.terms import LinExpr

    rng = random.Random(7)
    names = ["m", "n", "p", "q"]
    cubes = []
    for _ in range(60):
        atoms = []
        for _ in range(rng.randint(3, 7)):
            coeffs = {
                v: Fraction(rng.choice([-3, -2, -1, 1, 2, 3]))
                for v in rng.sample(names, rng.randint(1, 3))
            }
            rel = Rel.LT if rng.random() < 0.2 else Rel.LE
            atoms.append(
                Atom(LinExpr(coeffs, Fraction(rng.randint(-6, 6))), rel)
            )
        cubes.append(atoms)
    return cubes


def _available_backend_names():
    from repro.arith.backends import available_backends

    return available_backends()


@pytest.mark.parametrize("backend_name", _available_backend_names())
def test_bench_backend_cube_sat(benchmark, backend_name):
    from repro.arith.backends import get_backend

    be = get_backend(backend_name)
    ref = get_backend("reference")
    cubes = _backend_micro_cubes()
    expected = [ref.cube_is_sat(c) for c in cubes]

    def run():
        be.clear_caches()
        return [be.cube_is_sat(c) for c in cubes]

    got = benchmark(run)
    if be.semantics == "fm":
        assert got == expected, f"backend {be.name} diverged from reference"
    else:
        # exact-integer engines may prune models the fm relaxation keeps,
        # but fm-UNSAT must imply int-UNSAT
        for fm_sat, int_sat in zip(expected, got):
            if not fm_sat:
                assert not int_sat
    be.clear_caches()


def _backend_dense_cubes():
    """Three dense 18-atom cubes over five variables: the quadratic FM
    pairing dominates here, which is where the vectorized matrix engine
    pulls ahead (the small-cube workload above is overhead-bound)."""
    import random

    from fractions import Fraction

    from repro.arith.formula import Atom, Rel
    from repro.arith.terms import LinExpr

    rng = random.Random(3)
    names = [f"v{i}" for i in range(5)]
    cubes = []
    for _ in range(3):
        atoms = []
        for _ in range(18):
            coeffs = {
                v: Fraction(rng.choice([-3, -2, -1, 1, 2, 3]))
                for v in rng.sample(names, rng.randint(2, 3))
            }
            atoms.append(
                Atom(LinExpr(coeffs, Fraction(rng.randint(-8, 8))), Rel.LE)
            )
        cubes.append(atoms)
    return cubes


@pytest.mark.parametrize("backend_name", _available_backend_names())
def test_bench_backend_dense_cube_sat(benchmark, backend_name):
    from repro.arith.backends import get_backend

    be = get_backend(backend_name)
    ref = get_backend("reference")
    cubes = _backend_dense_cubes()
    expected = [ref.cube_is_sat(c) for c in cubes]

    def run():
        be.clear_caches()
        return [be.cube_is_sat(c) for c in cubes]

    got = benchmark(run)
    if be.semantics == "fm":
        assert got == expected, f"backend {be.name} diverged from reference"
    else:
        for fm_sat, int_sat in zip(expected, got):
            if not fm_sat:
                assert not int_sat
    be.clear_caches()


# ---------------------------------------------------------------------------
# Elimination-ordering perf guard
# ---------------------------------------------------------------------------

# A cube (found by randomized search, then frozen) where ranking all
# variables up front against the *original* atoms -- the historical
# ``_elimination_order`` behaviour -- steers the quadratic FM pairing into
# roughly twice the work of the interleaved cheapest-first heuristic.
_STALE_PESSIMAL_CUBE = [
    {"b": 2, "c": -1, "d": -1, "": -4},
    {"a": -2, "b": -1, "": -2},
    {"b": 1, "c": 1, "": -2},
    {"a": 2, "c": -2, "d": 2, "": 2},
    {"a": -2, "b": 1, "d": 1, "": -1},
    {"a": 1, "": -4},
    {"b": 1, "c": 1, "d": -2, "": -4},
    {"a": 2, "b": -1, "c": 1, "": -1},
    {"a": 2, "c": 1, "d": 2, "": -2},
]


def _stale_order_eliminate(atoms, targets):
    """Replay of the pre-fix ordering: every variable is scored once
    against the ORIGINAL cube (greedy re-selection over a never-updated
    ``current``), then eliminated in that fixed order."""
    from repro.arith import fm

    order = sorted(
        targets,
        key=lambda n: (
            (lambda lo, up, _r: len(lo) * len(up))(
                *fm._partition_by_var(atoms, n)
            ),
            n,
        ),
    )
    current = list(atoms)
    for name in order:
        current = fm.eliminate_var(current, name)
    return current


@pytest.mark.perf_guard
def test_perf_guard_interleaved_ordering_beats_stale_ordering():
    """Ordering-regression guard for :func:`fm.eliminate_all`.

    The cheapest-first heuristic must be re-scored against the current
    (partially eliminated) cube each round.  The historical bug ranked all
    variables once against the original cube; on this fixture that stale
    order does about twice the elimination work.  If the interleaving
    regresses, the work counts converge and this fails."""
    from fractions import Fraction

    from repro.arith import fm
    from repro.arith.formula import Atom, Rel
    from repro.arith.terms import LinExpr

    atoms = [
        Atom(
            LinExpr(
                {k: Fraction(v) for k, v in row.items() if k},
                Fraction(row[""]),
            ),
            Rel.LE,
        )
        for row in _STALE_PESSIMAL_CUBE
    ]
    targets = {"a", "b", "c", "d"}

    before = fm.elimination_count()
    interleaved_out = fm.eliminate_all(list(atoms), set(targets))
    interleaved = fm.elimination_count() - before

    before = fm.elimination_count()
    stale_out = _stale_order_eliminate(atoms, targets)
    stale = fm.elimination_count() - before

    # Both orders are sound projections: here both reach the same (empty,
    # satisfiable) residue -- only the work to get there differs.
    assert interleaved_out == stale_out == []
    assert interleaved > 0 and stale > 0
    assert interleaved < stale, (
        f"interleaved ordering did {interleaved} FM work units vs "
        f"{stale} for the stale up-front ordering: the cheapest-first "
        "re-scoring has regressed"
    )


@pytest.mark.perf_guard
def test_perf_guard_warm_context_fewer_fm_eliminations():
    """Cache-regression guard: a second (warm-context) run of the same
    workload must issue strictly fewer raw FM eliminations than the first.

    If context caching regresses (entries silently stop being admitted,
    keys stop matching after interning changes, ...), the warm run redoes
    the eliminations and this fails fast in tier-1."""
    clear_caches()
    ctx = SolverContext()

    cold_answers = _guard_workload(ctx)
    cold = ctx.stats.fm_eliminations
    assert cold > 0, "workload is expected to exercise raw FM elimination"

    warm_answers = _guard_workload(ctx)
    warm = ctx.stats.fm_eliminations - cold

    assert warm_answers == cold_answers
    assert warm < cold, (
        f"warm-context run did {warm} FM eliminations, cold run did {cold}: "
        "the solver context caches are not being reused"
    )
    # The warm run should in fact be answered entirely from the caches.
    assert warm == 0
    assert ctx.stats.hits > 0
