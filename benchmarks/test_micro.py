"""Micro-benchmarks of the analysis primitives.

Not a paper table; these time the substrate pieces (entailment, ranking
synthesis, full worked-example inference) so performance regressions in
the core are visible independently of the Fig. 10/11 sweeps.
"""

from repro.arith.formula import atom_eq, atom_ge, atom_lt, conj
from repro.arith.solver import clear_caches, entails, is_sat
from repro.arith.terms import var
from repro.core import infer_source
from repro.core.ranking import RankSynthesizer
from repro.core.reachgraph import Edge

FOO = """
void foo(int x, int y)
{ if (x < 0) { return; } else { foo(x + y, y); return; } }
"""

GCD = """
int gcd(int a, int b)
  requires a > 0 && b > 0 ensures res > 0;
{
  if (a == b) { return a; }
  else { if (a > b) { return gcd(a - b, b); }
         else { return gcd(a, b - a); } }
}
"""

x, y = var("x"), var("y")


def test_bench_entailment(benchmark):
    ctx = conj(
        atom_ge(x, 0), atom_lt(y, 0),
        atom_eq(var("x'"), x + y), atom_eq(var("y'"), y),
    )
    goal = atom_lt(var("x'"), x)

    def run():
        clear_caches()
        return entails(ctx, goal)

    assert benchmark(run)


def test_bench_sat_disjunctive(benchmark):
    from repro.arith.formula import disj

    f = conj(
        disj(atom_ge(x, 0), atom_lt(x, -5)),
        disj(atom_ge(y, 3), atom_lt(y, 0)),
        atom_eq(var("z"), x + y),
    )

    def run():
        clear_caches()
        return is_sat(f)

    assert benchmark(run)


def test_bench_ranking_synthesis(benchmark):
    ctx = conj(
        atom_ge(x, 0), atom_lt(y, 0),
        atom_eq(var("x'"), x + y), atom_eq(var("y'"), y),
        atom_ge(var("x'"), 0),
    )
    edge = Edge("U", "U", ctx, ("x", "y"), ("x'", "y'"))

    def run():
        s = RankSynthesizer({"U": ("x", "y")})
        return s.synthesize_linear(["U"], [edge])

    assert benchmark(run) is not None


def test_bench_full_foo_inference(benchmark):
    def run():
        clear_caches()
        return infer_source(FOO)

    result = benchmark(run)
    assert len(result.specs["foo"].cases) == 3


def test_bench_full_gcd_inference(benchmark):
    def run():
        clear_caches()
        return infer_source(GCD)

    result = benchmark(run)
    assert result.specs["gcd"] is not None
