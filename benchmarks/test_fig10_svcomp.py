"""Fig. 10 reproduction: termination outcomes on the four benchmark
categories for {AProVE-like, ULTIMATE-like, HIPTNT+}.

Run with ``pytest benchmarks/ --benchmark-only``.  Each benchmark times a
(tool, category) sweep; at the end of the module run, the assembled
Fig. 10-shaped table is printed and the paper's qualitative claims are
asserted:

* HIPTNT+ answers at least as many programs (Y+N) as each baseline;
* HIPTNT+ has zero timeouts;
* the AProVE-like baseline never answers N;
* no tool produced an unsound verdict (the paper re-verified all
  inferred specifications and reported no false positives/negatives).
"""

import pytest

from repro.baselines import AProVELikeAnalyzer, UltimateLikeAnalyzer
from repro.bench.programs import CATEGORIES, all_programs
from repro.bench.runner import HipTNTPlus, run_tool, tally

TIMEOUT = 60.0

_RESULTS = {}


def _sweep(tool_factory, category):
    outcomes = []
    for bench in all_programs(category):
        tool = tool_factory(bench)
        outcomes.append(run_tool(tool, bench, timeout=TIMEOUT))
    return outcomes


def _tool_factories():
    return {
        "AProVE-like": lambda b: AProVELikeAnalyzer(),
        "ULTIMATE-like": lambda b: UltimateLikeAnalyzer(),
        "HIPTNT+": lambda b: HipTNTPlus(b.main),
    }


@pytest.mark.parametrize("tool_name", list(_tool_factories()))
@pytest.mark.parametrize("category", CATEGORIES)
def test_fig10_cell(benchmark, tool_name, category):
    """One Fig. 10 cell: a full (tool, category) sweep, benchmarked."""
    factory = _tool_factories()[tool_name]

    def sweep():
        return _sweep(factory, category)

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _RESULTS[(tool_name, category)] = outcomes
    t = tally(outcomes)
    # soundness: every definite answer matches the ground truth
    assert t["unsound"] == 0, [
        o.program for o in outcomes if not o.sound
    ]


def test_fig10_shape_claims():
    """The qualitative shape of paper Fig. 10 (run after the cells)."""
    if len(_RESULTS) < 3 * len(CATEGORIES):
        pytest.skip("cells incomplete (run the whole module)")
    per_tool = {}
    for (tool, _cat), outcomes in _RESULTS.items():
        per_tool.setdefault(tool, []).extend(outcomes)
    tallies = {tool: tally(outs) for tool, outs in per_tool.items()}

    print("\n=== Fig. 10 (reproduced) ===")
    header = f"{'Tool':<14}{'Y':>5}{'N':>5}{'U':>5}{'T/O':>5}{'Time':>8}"
    print(header)
    for tool, t in tallies.items():
        print(f"{tool:<14}{t['Y']:>5}{t['N']:>5}{t['U']:>5}"
              f"{t['T/O']:>5}{t['time']:>8.1f}")

    hip = tallies["HIPTNT+"]
    # zero timeouts for HIPTNT+ (paper: T/O column is 0 everywhere)
    assert hip["T/O"] == 0
    # AProVE-like proves no non-termination (paper: N = 0 for AProVE)
    assert tallies["AProVE-like"]["N"] == 0
    # HIPTNT+ answers the most programs overall (paper's headline)
    for tool, t in tallies.items():
        assert hip["Y"] + hip["N"] >= t["Y"] + t["N"], tool
