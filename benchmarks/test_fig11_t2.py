"""Fig. 11 reproduction: loop-based integer programs, T2-like vs HIPTNT+.

The paper restricted this comparison to 221 loop-based programs because
T2's C frontend (llvm2KITTeL) "cannot properly handle pointers and
recursive methods"; the T2-like baseline enforces the same restriction.
Shape claims asserted: HIPTNT+ answers at least as many programs and has
no timeouts.
"""

import pytest

from repro.baselines import T2LikeAnalyzer
from repro.bench.programs import all_programs
from repro.bench.runner import HipTNTPlus, run_tool, tally

TIMEOUT = 60.0


def _loop_programs():
    return [
        p for p in all_programs()
        if p.loop_based and p.category in ("crafted", "crafted-lit", "numeric")
    ]


def test_fig11_t2_like(benchmark):
    programs = _loop_programs()
    t2 = T2LikeAnalyzer()

    def sweep():
        return [run_tool(t2, b, timeout=TIMEOUT) for b in programs]

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    t = tally(outcomes)
    assert t["unsound"] == 0
    test_fig11_t2_like.result = t  # stash for the shape check


def test_fig11_hiptnt(benchmark):
    programs = _loop_programs()

    def sweep():
        return [
            run_tool(HipTNTPlus(b.main), b, timeout=TIMEOUT)
            for b in programs
        ]

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    t = tally(outcomes)
    assert t["unsound"] == 0
    assert t["T/O"] == 0  # paper: HIPTNT+ has no timeouts in Fig. 11
    test_fig11_hiptnt.result = t


def test_fig11_shape():
    t2 = getattr(test_fig11_t2_like, "result", None)
    hip = getattr(test_fig11_hiptnt, "result", None)
    if t2 is None or hip is None:
        pytest.skip("run the whole module")
    print("\n=== Fig. 11 (reproduced) ===")
    print(f"{'Tool':<12}{'Y':>5}{'N':>5}{'U':>5}{'T/O':>5}{'Time':>8}")
    print(f"{'T2-like':<12}{t2['Y']:>5}{t2['N']:>5}{t2['U']:>5}"
          f"{t2['T/O']:>5}{t2['time']:>8.1f}")
    print(f"{'HIPTNT+':<12}{hip['Y']:>5}{hip['N']:>5}{hip['U']:>5}"
          f"{hip['T/O']:>5}{hip['time']:>8.1f}")
    # paper Fig. 11 shape: HIPTNT+ >= T2 on total answers
    assert hip["Y"] + hip["N"] >= t2["Y"] + t2["N"]
