"""Nested recursion (paper Fig. 3): Ackermann and McCarthy 91.

Demonstrates the paper's point that *safety* specifications (here, lower
bounds on return values) sharpen termination inference:

* McCarthy 91 without its postcondition only yields the base case
  ``n > 100``; with ``ensures n<=100 & res=91 | n>100 & res=n-10`` the
  inference proves termination for all inputs (``Term[100 - n]``).
* Ackermann without a spec cannot bound the inner call's result; with
  ``ensures res >= n+1`` more scenarios resolve.

Run:  python examples/nested_recursion.py
"""

from repro.core import infer_source

MC91_BARE = """
int Mc91(int n)
{
  if (n > 100) { return n - 10; }
  else { return Mc91(Mc91(n + 11)); }
}
"""

MC91_SPEC = """
int Mc91(int n)
  requires true
  ensures n <= 100 && res == 91 || n > 100 && res == n - 10;
{
  if (n > 100) { return n - 10; }
  else { return Mc91(Mc91(n + 11)); }
}
"""

ACK_SPEC = """
int Ack(int m, int n)
  requires true ensures res >= n + 1;
{
  if (m == 0) { return n + 1; }
  else { if (n == 0) { return Ack(m - 1, 1); }
         else { return Ack(m - 1, Ack(m, n - 1)); } }
}
"""


def main() -> None:
    print("=== McCarthy 91, no specification ===")
    bare = infer_source(MC91_BARE, time_budget=15.0)
    print(bare.pretty())
    print("verdict:", bare.verdict("Mc91"), "(base case only, as the paper notes)")

    print("\n=== McCarthy 91 with its safety postcondition ===")
    spec = infer_source(MC91_SPEC, time_budget=15.0)
    print(spec.pretty())
    print("verdict:", spec.verdict("Mc91"), "(terminates for ALL inputs)")

    print("\n=== Ackermann with ensures res >= n + 1 ===")
    ack = infer_source(ACK_SPEC, time_budget=20.0)
    for case in ack.specs["Ack"].cases:
        print("  ", case)
    print("verdict:", ack.verdict("Ack"),
          "(m < 0 diverges; the m = 0 base case terminates)")


if __name__ == "__main__":
    main()
