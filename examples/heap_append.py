"""Heap programs (paper Fig. 4): `append` on list segments vs circular lists.

The same code -- append(x, y) walks x's `next` chain and links y at the
end -- has opposite temporal behaviour depending on the shape of x:

* under ``requires lseg(x, null, n) & x != null`` it terminates with
  ranking ``[n]``;
* under ``requires cll(x, n)`` (circular list) it is definitely
  non-terminating: the inference strengthens its postcondition to false.

The separation-logic layer (:mod:`repro.seplog`) turns each heap spec case
into a pure integer method over the size variables -- "heap-based
properties are handled prior to termination analysis" (paper Sec. 2.1) --
and the standard TNT pipeline does the rest.

Run:  python examples/heap_append.py
"""

from repro.arith.formula import atom_ge
from repro.arith.terms import var
from repro.core import infer_program
from repro.lang import parse_program
from repro.seplog.heap import HeapSpec, PredInst, SymHeap

SOURCE = """
data node { node next; }

void append(node x, node y)
{
  if (x.next == null) { x.next = y; return; }
  else { append(x.next, y); return; }
}
"""


def lseg_case() -> HeapSpec:
    """requires lseg(x, null, n) & n >= 1 (x != null)."""
    pre = SymHeap(
        chunks=(PredInst("lseg", ("x", "null"), var("n")),),
        pure=atom_ge(var("n"), 1),
    )
    return HeapSpec(pre=pre, post=SymHeap(), size_params=("n",))


def cll_case() -> HeapSpec:
    """requires cll(x, n) (a circular list of n >= 1 cells)."""
    pre = SymHeap(
        chunks=(PredInst("cll", ("x",), var("n")),),
        pure=atom_ge(var("n"), 1),
    )
    return HeapSpec(pre=pre, post=SymHeap(), size_params=("n",))


def main() -> None:
    print("=== append on a null-terminated list segment ===")
    program = parse_program(SOURCE)
    program.methods["append"].heap_specs = [lseg_case()]
    result = infer_program(program)
    print(result.specs["append__h0"].pretty())
    print("verdict:", result.verdict("append__h0"))

    print("\n=== append on a circular list ===")
    program = parse_program(SOURCE)
    program.methods["append"].heap_specs = [cll_case()]
    result = infer_program(program)
    print(result.specs["append__h0"].pretty())
    print("verdict:", result.verdict("append__h0"),
          "(the rotation lemma closes the cycle: size never shrinks)")


if __name__ == "__main__":
    main()
