"""Quickstart: infer the termination summary of the paper's `foo` example.

Reproduces the worked example of Section 2: the inference discovers,
without any user annotation, the case-split summary

    case {
      x < 0          -> requires Term      ensures true;
      x >= 0, y < 0  -> requires Term[..]  ensures true;
      x >= 0, y >= 0 -> requires Loop      ensures false; }

Run:  python examples/quickstart.py
"""

from repro.core import infer_source
from repro.core.pipeline import Verdict

FOO = """
void foo(int x, int y)
{
  if (x < 0) { return; }
  else { foo(x + y, y); return; }
}
"""


def main() -> None:
    print("Analyzing the paper's foo example (Fig. 1)...\n")
    result = infer_source(FOO)
    print(result.pretty())
    verdict = result.verdict("foo")
    print(f"\nSV-COMP verdict for foo: {verdict}")
    assert verdict is Verdict.NONTERMINATING, (
        "foo has diverging inputs (x >= 0, y >= 0), so the whole-program "
        "verdict is N even though two of the three cases terminate"
    )
    print(
        "\nNote how the summary is *conditional*: a monolithic prover can "
        "only answer\nY/N/U for the whole input space, while the inference "
        "found the exact\nterminating and non-terminating regions."
    )
    print(
        "\nLarger programs: pass jobs=N (e.g. infer_source(src, jobs=2)) "
        "to analyze\nindependent call-graph SCCs in parallel worker "
        "processes, and run the\nbenchmark tables with "
        "`python -m repro.bench fig10 --jobs 4` -- verdicts\nare identical "
        "to a sequential run (see docs/parallel.md)."
    )


if __name__ == "__main__":
    main()
