"""Quickstart: infer the termination summary of the paper's `foo` example.

Reproduces the worked example of Section 2: the inference discovers,
without any user annotation, the case-split summary

    case {
      x < 0          -> requires Term      ensures true;
      x >= 0, y < 0  -> requires Term[..]  ensures true;
      x >= 0, y >= 0 -> requires Loop      ensures false; }

then demonstrates the persistent spec store (docs/store.md): the same
program analyzed again with ``store=`` resolves every SCC from cache --
zero re-analysis, identical summary.

Run:  PYTHONPATH=src python examples/quickstart.py
"""

import tempfile

from repro.core import infer_source
from repro.core.pipeline import Verdict

FOO = """
void foo(int x, int y)
{
  if (x < 0) { return; }
  else { foo(x + y, y); return; }
}
"""


def main() -> None:
    print("Analyzing the paper's foo example (Fig. 1)...\n")
    result = infer_source(FOO)
    print(result.pretty())
    verdict = result.verdict("foo")
    print(f"\nSV-COMP verdict for foo: {verdict}")
    assert verdict is Verdict.NONTERMINATING, (
        "foo has diverging inputs (x >= 0, y >= 0), so the whole-program "
        "verdict is N even though two of the three cases terminate"
    )
    print(
        "\nNote how the summary is *conditional*: a monolithic prover can "
        "only answer\nY/N/U for the whole input space, while the inference "
        "found the exact\nterminating and non-terminating regions."
    )
    print(
        "\nLarger programs: pass jobs=N (e.g. infer_source(src, jobs=2)) "
        "to analyze\nindependent call-graph SCCs in parallel worker "
        "processes, and run the\nbenchmark tables with "
        "`python -m repro.bench fig10 --jobs 4` -- verdicts\nare identical "
        "to a sequential run (see docs/parallel.md)."
    )

    print("\nWarm-store reuse (docs/store.md):")
    with tempfile.TemporaryDirectory() as store_dir:
        cold = infer_source(FOO, store=store_dir)
        warm = infer_source(FOO, store=store_dir)
    for label, r in (("cold", cold), ("warm", warm)):
        s = r.solver_stats
        print(
            f"  {label} run: {s.store_hits} store hits, "
            f"{s.store_misses} misses -> verdict {r.verdict('foo')}"
        )
    assert warm.solver_stats.store_misses == 0, "warm run re-analyzed an SCC"
    assert warm.pretty() == cold.pretty(), "warm summary must be identical"
    print(
        "  The warm run replayed every SCC summary from the store -- on "
        "real\n  workloads this is the difference between re-analyzing a "
        "codebase and\n  re-analyzing only what changed."
    )


if __name__ == "__main__":
    main()
