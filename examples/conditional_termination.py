"""Conditional termination vs monolithic proving.

Runs both the HipTNT+ inference and the baseline analyzers on a small
program with mixed behaviour, showing *why* the paper's per-method
case-split summaries answer programs that whole-program ranking proofs
cannot.

Run:  python examples/conditional_termination.py
"""

from repro.baselines import AProVELikeAnalyzer, UltimateLikeAnalyzer
from repro.core import infer_source
from repro.lang import parse_program

SOURCE = """
void drain(int x, int step) {
  while (x > 0) { x = x - step; }
}
"""


def main() -> None:
    print("Program: while (x > 0) x -= step;  -- terminates iff step >= 1\n")

    result = infer_source(SOURCE)
    loop_summary = next(
        spec for name, spec in result.specs.items() if "loop" in name
    )
    print("HipTNT+ summary of the loop:")
    print(loop_summary.pretty())

    program = parse_program(SOURCE)
    print("\nBaseline verdicts on the whole program:")
    print("  AProVE-like   :", AProVELikeAnalyzer().analyze(program),
          "(cannot prove termination for ALL inputs -- no case analysis)")
    print("  ULTIMATE-like :", UltimateLikeAnalyzer().analyze(program))
    print("  HIPTNT+       :", result.verdict("drain"),
          "(a diverging input region was isolated, so the answer is definite)")


if __name__ == "__main__":
    main()
