"""Unit tests for base-case inference and non-termination proving."""

from repro.arith.formula import TRUE, atom_eq, atom_ge, atom_lt, conj
from repro.arith.solver import entails, equivalent, is_sat
from repro.arith.terms import var
from repro.core.assumptions import PostAssume, PreAssume
from repro.core.basecase import refine_base, syn_base
from repro.core.nonterm import (
    abduce_conditions,
    check_unreachable,
    filter_rel,
    prove_nonterm,
)
from repro.core.predicates import (
    POST_FALSE,
    POST_TRUE,
    PostRef,
    PreRef,
    Term,
)
from repro.core.specs import DefStore
from repro.core.verifier import MethodAssumptions

x, y = var("x"), var("y")


def foo_assumptions():
    """Hand-built (a01)-(a03) of the paper's foo."""
    ma = MethodAssumptions(method="foo", pair="U0@foo", params=("x", "y"))
    rec_ctx = conj(
        atom_ge(x, 0), atom_eq(var("x'"), x + y), atom_eq(var("y'"), y)
    )
    ma.pre_assumptions = [
        PreAssume(rec_ctx, PreRef("U0@foo", ("x", "y")),
                  PreRef("U0@foo", ("x'", "y'"))),
    ]
    ma.post_assumptions = [
        PostAssume(atom_lt(x, 0), (), TRUE, PostRef("U0@foo", ("x", "y"))),
        PostAssume(rec_ctx, ((TRUE, PostRef("U0@foo", ("x'", "y'"))),),
                   TRUE, PostRef("U0@foo", ("x", "y"))),
    ]
    return ma


class TestSynBase:
    def test_foo_base_case(self):
        """syn_base = x<0 /\\ not(x>=0) = x<0 (paper Sec. 5.1)."""
        beta = syn_base(foo_assumptions())
        assert equivalent(beta, atom_lt(x, 0))

    def test_no_exit_means_no_base(self):
        ma = MethodAssumptions(method="spin", pair="U0@spin", params=("x",))
        ma.pre_assumptions = [
            PreAssume(atom_eq(var("x'"), x), PreRef("U0@spin", ("x",)),
                      PreRef("U0@spin", ("x'",)))
        ]
        ma.post_assumptions = [
            PostAssume(TRUE, ((TRUE, PostRef("U0@spin", ("x'",))),),
                       TRUE, PostRef("U0@spin", ("x",)))
        ]
        assert not is_sat(syn_base(ma))

    def test_refine_base_installs_cases(self):
        store = DefStore()
        store.register_root("U0@foo", ("x", "y"))
        refine_base(store, "U0@foo", atom_lt(x, 0))
        cases = store.defs["U0@foo"].cases
        term_cases = [c for c in cases if isinstance(c.pre, Term)]
        assert len(term_cases) == 1
        assert equivalent(term_cases[0].guard, atom_lt(x, 0))
        unknown = [c for c in cases if isinstance(c.pre, str)]
        assert unknown, "the x>=0 region must stay unknown"


class TestCheckUnreachable:
    def test_closed_region_proved(self):
        """x>=0, y>=0 region of foo: next state stays in the region."""
        ctx = conj(
            atom_ge(x, 0), atom_ge(y, 0),
            atom_eq(var("x'"), x + y), atom_eq(var("y'"), y),
        )
        t = PostAssume(
            ctx,
            ((conj(atom_ge(var("x'"), 0), atom_ge(var("y'"), 0)),
              PostRef("U2@foo", ("x'", "y'"))),),
            TRUE,
            PostRef("U2@foo", ("x", "y")),
        )
        assert check_unreachable(t, {"U2@foo"}, ("x", "y"))

    def test_escaping_region_fails(self):
        ctx = conj(atom_ge(x, 0), atom_eq(var("x'"), x + y),
                   atom_eq(var("y'"), y))
        t = PostAssume(
            ctx,
            ((atom_ge(var("x'"), 0), PostRef("U1@foo", ("x'", "y'"))),),
            TRUE,
            PostRef("U1@foo", ("x", "y")),
        )
        # without y >= 0 the recursion can escape to x' < 0
        assert not check_unreachable(t, {"U1@foo"}, ("x", "y"))

    def test_unsat_context_trivially_unreachable(self):
        t = PostAssume(conj(atom_ge(x, 1), atom_lt(x, 0)), (), TRUE,
                       PostRef("U", ("x",)))
        assert check_unreachable(t, {"U"}, ("x",))

    def test_false_entry_covering(self):
        t = PostAssume(
            atom_ge(x, 0), ((atom_ge(x, 0), POST_FALSE),), TRUE,
            PostRef("U", ("x",)),
        )
        assert check_unreachable(t, {"U"}, ("x",))


class TestAbduction:
    def test_foo_discovers_y_nonneg(self):
        """The paper's abduced split condition for foo is y >= 0."""
        ctx = conj(atom_ge(x, 0), atom_eq(var("x'"), x + y),
                   atom_eq(var("y'"), y))
        t = PostAssume(
            ctx,
            ((atom_ge(var("x'"), 0), PostRef("U1@foo", ("x'", "y'"))),),
            TRUE,
            PostRef("U1@foo", ("x", "y")),
        )
        conds = abduce_conditions(t, {"U1@foo"}, ("x", "y"))
        assert conds
        # some abduced condition must (under the context) imply x' >= 0
        # and be satisfiable; the single-variable template finds y >= 0
        assert any(
            entails(conj(ctx, c), atom_ge(var("x'"), 0)) for c in conds
        )
        assert any(equivalent(c, atom_ge(y, 0)) for c in conds)

    def test_abduction_requires_consistency(self):
        # context x = 0 cannot be strengthened towards x >= 5
        ctx = atom_eq(x, 0)
        t = PostAssume(
            ctx, ((atom_ge(x, 5), PostRef("U", ("x",))),), TRUE,
            PostRef("U", ("x",)),
        )
        conds = abduce_conditions(t, {"U"}, ("x",))
        assert conds == []


class TestProveNonterm:
    def test_whole_scc_loop(self):
        store = DefStore()
        store.register_root("U", ("x",))
        ctx = conj(atom_ge(x, 0), atom_eq(var("x'"), x + 1))
        t = PostAssume(
            ctx, ((atom_ge(var("x'"), 0), PostRef("U", ("x'",))),), TRUE,
            PostRef("U", ("x",)),
        )
        ok, conds = prove_nonterm(["U"], [t], store)
        assert ok

    def test_failure_returns_conditions(self):
        store = DefStore()
        store.register_root("U", ("x", "y"))
        ctx = conj(atom_ge(x, 0), atom_eq(var("x'"), x + y),
                   atom_eq(var("y'"), y))
        t = PostAssume(
            ctx, ((atom_ge(var("x'"), 0), PostRef("U", ("x'", "y'"))),),
            TRUE, PostRef("U", ("x", "y")),
        )
        ok, conds = prove_nonterm(["U"], [t], store)
        assert not ok
        assert conds["U"], "abduction must supply case-split conditions"
        # conditions are over the pair's formal parameters
        for c in conds["U"]:
            assert c.free_vars() <= {"x", "y"}

    def test_filter_rel(self):
        t1 = PostAssume(TRUE, (), TRUE, PostRef("A", ("x",)))
        t2 = PostAssume(TRUE, (), TRUE, PostRef("B", ("x",)))
        assert filter_rel([t1, t2], "A") == [t1]
