"""Property and unit tests for case-splitting (paper Sec. 5.6)."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.arith.formula import FALSE, TRUE, atom_ge, atom_le, conj, disj, neg
from repro.arith.solver import entails, equivalent, is_sat, is_valid
from repro.arith.terms import LinExpr, var
from repro.core.casesplit import split, subst_unk
from repro.core.specs import DefStore

x, y = var("x"), var("y")


@st.composite
def conditions(draw):
    coeff_x = draw(st.integers(min_value=-2, max_value=2))
    coeff_y = draw(st.integers(min_value=-2, max_value=2))
    const = draw(st.integers(min_value=-3, max_value=3))
    return atom_ge(LinExpr({"x": coeff_x, "y": coeff_y}, const), 0)


class TestSplitUnit:
    def test_empty(self):
        assert split([]) == []

    def test_single_condition(self):
        (r,) = split([atom_ge(x, 0)])
        assert equivalent(r, atom_ge(x, 0))

    def test_overlapping_pair_partitions(self):
        a, b = atom_ge(x, 0), atom_le(x, 5)
        regions = split([a, b])
        # pairwise exclusive
        for r1, r2 in itertools.combinations(regions, 2):
            assert not is_sat(conj(r1, r2))
        # cover the union exactly
        assert equivalent(disj(*regions), disj(a, b))

    def test_disjoint_pair(self):
        a, b = atom_ge(x, 5), atom_le(x, -5)
        regions = split([a, b])
        assert equivalent(disj(*regions), disj(a, b))


class TestSplitProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(conditions(), min_size=1, max_size=3))
    def test_split_is_exclusive_partition_of_union(self, conds):
        regions = split(conds)
        union = disj(*conds)
        if not is_sat(union):
            assert regions == []
            return
        # feasibility
        for r in regions:
            assert is_sat(r)
        # exclusivity
        for r1, r2 in itertools.combinations(regions, 2):
            assert not is_sat(conj(r1, r2))
        # exact coverage
        assert equivalent(disj(*regions), union)


class TestSubstUnk:
    def _store(self):
        store = DefStore()
        store.register_root("U0@f", ("x", "y"))
        return store

    def test_refinement_guards_partition_true(self):
        """Paper Definition 2: feasible, exclusive, exhaustive guards."""
        store = self._store()
        assert subst_unk(store, "U0@f", [atom_ge(x, 0)])
        cases = store.defs["U0@f"].cases
        guards = [c.guard for c in cases]
        for g in guards:
            assert is_sat(g)
        for g1, g2 in itertools.combinations(guards, 2):
            assert not is_sat(conj(g1, g2))
        assert is_valid(disj(*guards))

    def test_children_registered(self):
        store = self._store()
        subst_unk(store, "U0@f", [atom_ge(x, 0)])
        for c in store.defs["U0@f"].cases:
            assert isinstance(c.pre, str)
            assert store.pair_args[c.pre] == ("x", "y")

    def test_no_split_on_empty(self):
        store = self._store()
        assert not subst_unk(store, "U0@f", [])
        assert "U0@f" not in store.defs

    def test_no_split_when_condition_is_valid(self):
        store = self._store()
        # a tautological condition covers everything: complement empty,
        # single region -> no progress
        taut = disj(atom_ge(x, 0), atom_le(x, 0))
        assert not subst_unk(store, "U0@f", [taut])

    def test_dead_unsat_condition_skipped(self):
        """An unsatisfiable abduced condition must not trigger a split:
        installing it would burn a MAX_ITER slot on a no-op restart."""
        store = self._store()
        dead = conj(atom_ge(x, 1), atom_le(x, 0))
        assert not is_sat(dead)
        assert not subst_unk(store, "U0@f", [dead])
        assert "U0@f" not in store.defs

    def test_dead_condition_mixed_with_live_one(self):
        """Dead conditions are dropped, live ones still split."""
        store = self._store()
        dead = conj(atom_ge(x, 1), atom_le(x, 0))
        live = atom_ge(x, 0)
        assert subst_unk(store, "U0@f", [dead, live])
        guards = [c.guard for c in store.defs["U0@f"].cases]
        # the split is exactly the live condition's partition
        assert len(guards) == 2
        for g in guards:
            assert is_sat(g)
        assert is_valid(disj(*guards))


class TestExclusivePartition:
    def test_overlapping_dnf(self):
        from repro.core.basecase import exclusive_partition

        f = disj(atom_ge(x, 0), atom_ge(y, 0))
        parts = exclusive_partition(f)
        for p1, p2 in itertools.combinations(parts, 2):
            assert not is_sat(conj(p1, p2))
        assert equivalent(disj(*parts), f)

    def test_false_formula(self):
        from repro.core.basecase import exclusive_partition

        assert exclusive_partition(FALSE) == []
