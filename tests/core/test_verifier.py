"""Tests for assumption generation (paper Section 4)."""

import pytest

from repro.arith.formula import TRUE, atom_ge, atom_lt, conj
from repro.arith.solver import entails, equivalent, is_sat
from repro.arith.terms import var
from repro.core.assumptions import filter_trivial, PreAssume
from repro.core.predicates import (
    LOOP,
    MAYLOOP,
    MayLoop,
    PostRef,
    PreRef,
    TERM,
    Term,
)
from repro.core.specs import CaseSpec, SpecCase
from repro.core.predicates import POST_FALSE, POST_TRUE
from repro.core.verifier import Verifier, VerifierError
from repro.lang import desugar_program, parse_program

FOO = """
void foo(int x, int y)
{ if (x < 0) { return; } else { foo(x + y, y); return; } }
"""


def collect(source, name, solved=None, pairs=None):
    program = desugar_program(parse_program(source))
    pairs = pairs or {name: f"U0@{name}"}
    v = Verifier(program, pairs=pairs, solved=solved or {})
    return v.collect(program.method(name))


class TestFooAssumptions:
    """The paper's (a01), (a02), (a03)."""

    def test_counts(self):
        ma = collect(FOO, "foo")
        assert len(ma.pre_assumptions) == 1
        assert len(ma.post_assumptions) == 2

    def test_recursive_pre_assumption(self):
        ma = collect(FOO, "foo")
        (a,) = ma.pre_assumptions
        assert isinstance(a.lhs, PreRef) and isinstance(a.rhs, PreRef)
        assert a.lhs.args == ("x", "y")
        # context must entail x >= 0 and bind x' = x + y
        assert entails(a.ctx, atom_ge(var("x"), 0))
        xp, yp = a.rhs.args
        assert entails(a.ctx, atom_ge(var(xp) - var("x") - var("y"), 0))

    def test_base_post_assumption(self):
        ma = collect(FOO, "foo")
        base = [t for t in ma.post_assumptions if not t.entries]
        assert len(base) == 1
        assert equivalent(base[0].ctx, atom_lt(var("x"), 0))

    def test_inductive_post_assumption(self):
        ma = collect(FOO, "foo")
        ind = [t for t in ma.post_assumptions if t.entries]
        assert len(ind) == 1
        ((guard, ref),) = ind[0].entries
        assert guard is TRUE and isinstance(ref, PostRef)


class TestCalleeHandling:
    def test_solved_loop_callee_contributes_false_entry(self):
        src = """
void bad(int n) { }
void caller(int n) { bad(n); }
"""
        spec = CaseSpec(
            method="bad", params=("n",),
            cases=[SpecCase(TRUE, LOOP, POST_FALSE)],
        )
        ma = collect(src, "caller", solved={"bad": spec},
                     pairs={"caller": "U0@caller"})
        (t,) = ma.post_assumptions
        assert any(
            not p.reachable for _g, p in t.entries
            if hasattr(p, "reachable")
        )

    def test_solved_mayloop_callee_emits_demand(self):
        src = """
void maybe(int n) { }
void caller(int n) { maybe(n); }
"""
        spec = CaseSpec(
            method="maybe", params=("n",),
            cases=[SpecCase(TRUE, MAYLOOP, POST_TRUE)],
        )
        ma = collect(src, "caller", solved={"maybe": spec},
                     pairs={"caller": "U0@caller"})
        assert any(isinstance(a.rhs, MayLoop) for a in ma.pre_assumptions)

    def test_solved_term_callee_contributes_nothing(self):
        src = """
void fine(int n) { }
void caller(int n) { fine(n); }
"""
        spec = CaseSpec(
            method="fine", params=("n",),
            cases=[SpecCase(TRUE, TERM, POST_TRUE)],
        )
        ma = collect(src, "caller", solved={"fine": spec},
                     pairs={"caller": "U0@caller"})
        assert ma.pre_assumptions == []

    def test_callee_ensures_constrains_result(self):
        src = """
int inc(int n) requires true ensures res >= n + 1; { return n + 1; }
int caller(int n) { int r = inc(n); if (r > n) { return 1; } else { return 0; } }
"""
        program = desugar_program(parse_program(src))
        spec = CaseSpec(
            method="inc", params=("n",),
            cases=[SpecCase(TRUE, TERM, POST_TRUE)],
        )
        v = Verifier(program, pairs={"caller": "U0@caller"},
                     solved={"inc": spec})
        ma = v.collect(program.method("caller"))
        # with res >= n+1 the else branch (r <= n) is infeasible:
        # only one exit assumption survives
        assert len(ma.post_assumptions) == 1


class TestPathSensitivity:
    def test_infeasible_branch_pruned(self):
        ma = collect("""
void f(int x) {
  if (x > 0) { if (x < 0) { f(x); } }
}
""", "f")
        assert ma.pre_assumptions == []

    def test_assume_prunes(self):
        ma = collect("""
void f(int x) { assume(x > 0); assume(x < 0); f(x); }
""", "f")
        assert ma.pre_assumptions == []

    def test_nondet_becomes_fresh_var(self):
        ma = collect("""
void f(int x) { if (nondet() > 0) { f(x - 1); } }
""", "f")
        assert len(ma.pre_assumptions) == 1


class TestFilterTrivial:
    def test_loop_lhs_removed(self):
        a = PreAssume(TRUE, LOOP, PreRef("U", ("x",)))
        assert filter_trivial([a]) == []

    def test_unsat_ctx_removed(self):
        ctx = conj(atom_ge(var("x"), 1), atom_lt(var("x"), 0))
        a = PreAssume(ctx, PreRef("U", ("x",)), PreRef("U", ("x",)))
        assert filter_trivial([a]) == []

    def test_term_rhs_kept_only_for_mutual(self):
        a = PreAssume(TRUE, PreRef("U", ("x",)), TERM)
        assert filter_trivial([a], mutually_recursive={"U"}) == [a]
        assert filter_trivial([a], mutually_recursive={"V"}) == []

    def test_unknown_to_unknown_kept(self):
        a = PreAssume(TRUE, PreRef("U", ("x",)), PreRef("V", ("y",)))
        assert filter_trivial([a], mutually_recursive={"U", "V"}) == [a]


class TestErrors:
    def test_heap_statement_rejected(self):
        with pytest.raises(Exception):
            collect("""
data node { node next; }
void f(node x) { x.next = null; }
""", "f")
