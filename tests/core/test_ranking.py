"""Ranking-function synthesis tests (paper Sec. 5.4)."""

from repro.arith.formula import TRUE, atom_eq, atom_ge, atom_lt, conj
from repro.arith.solver import entails
from repro.arith.terms import var
from repro.core.ranking import RankSynthesizer
from repro.core.reachgraph import Edge

x, y = var("x"), var("y")


def make_edge(ctx, src_args=("x", "y"), dst_args=("x'", "y'"), pair="U"):
    return Edge(pair, pair, ctx, tuple(src_args), tuple(dst_args))


def synth(edges, args=("x", "y"), pair="U"):
    return RankSynthesizer({pair: tuple(args)})


class TestLinearSynthesis:
    def test_simple_countdown(self):
        # x > 0, x' = x - 1
        ctx = conj(atom_ge(x, 1), atom_eq(var("x'"), x - 1))
        edge = make_edge(ctx, ("x",), ("x'",))
        s = RankSynthesizer({"U": ("x",)})
        ranks = s.synthesize_linear(["U"], [edge])
        assert ranks is not None
        r = ranks["U"]
        rn = r.substitute({"x": var("x'")})
        assert entails(ctx, atom_ge(r, 0))
        assert entails(ctx, atom_ge(r - rn, 1))

    def test_foo_term_case(self):
        # the paper's foo under x>=0, y<0 (with x'>=0 from the next guard)
        ctx = conj(
            atom_ge(x, 0), atom_lt(y, 0),
            atom_eq(var("x'"), x + y), atom_eq(var("y'"), y),
            atom_ge(var("x'"), 0),
        )
        s = RankSynthesizer({"U": ("x", "y")})
        ranks = s.synthesize_linear(["U"], [make_edge(ctx)])
        assert ranks is not None

    def test_no_ranking_for_growth(self):
        ctx = conj(atom_ge(x, 0), atom_eq(var("x'"), x + 1))
        s = RankSynthesizer({"U": ("x",)})
        assert s.synthesize_linear(["U"], [make_edge(ctx, ("x",), ("x'",))]) is None

    def test_no_edges_returns_none(self):
        s = RankSynthesizer({"U": ("x",)})
        assert s.synthesize_linear(["U"], []) is None

    def test_mutual_recursion_two_templates(self):
        # f(x) calls g(x), g(x) calls f(x-1); x > 0
        ctx_fg = conj(atom_ge(x, 1), atom_eq(var("x'"), x))
        ctx_gf = conj(atom_ge(x, 1), atom_eq(var("x'"), x - 1))
        edges = [
            Edge("F", "G", ctx_fg, ("x",), ("x'",)),
            Edge("G", "F", ctx_gf, ("x",), ("x'",)),
        ]
        s = RankSynthesizer({"F": ("x",), "G": ("x",)})
        # a single linear function can't strictly decrease on both edges
        # with integer delta 1 each... but 2x / 2x-1 style offsets can:
        result = s.synthesize_linear(["F", "G"], edges)
        if result is None:
            result = s.synthesize_lexicographic(["F", "G"], edges)
        assert result is not None


class TestLexicographic:
    def test_two_phase_loop(self):
        # (x,y): either y decreases (x unchanged), or x decreases (y havoc'd
        # to some bounded value)
        e1 = make_edge(conj(
            atom_ge(x, 1), atom_ge(y, 1),
            atom_eq(var("x'"), x), atom_eq(var("y'"), y - 1),
        ))
        e2 = make_edge(conj(
            atom_ge(x, 1), atom_ge(y, 0), atom_le := atom_ge(var("y'"), 0),
            atom_eq(var("x'"), x - 1),
        ))
        s = RankSynthesizer({"U": ("x", "y")})
        assert s.synthesize_linear(["U"], [e1, e2]) is None or True
        lex = s.synthesize_lexicographic(["U"], [e1, e2])
        assert lex is not None
        assert len(lex["U"]) >= 1

    def test_ackermann_shape_with_bounds(self):
        # m decreases, or m equal and n decreases; both bounded
        m, n = var("m"), var("n")
        e1 = Edge("U", "U", conj(
            atom_ge(m, 1), atom_ge(n, 0),
            atom_eq(var("m'"), m - 1), atom_ge(var("n'"), 0),
        ), ("m", "n"), ("m'", "n'"))
        e2 = Edge("U", "U", conj(
            atom_ge(m, 1), atom_ge(n, 1),
            atom_eq(var("m'"), m), atom_eq(var("n'"), n - 1),
        ), ("m", "n"), ("m'", "n'"))
        s = RankSynthesizer({"U": ("m", "n")})
        lex = s.synthesize_lexicographic(["U"], [e1, e2])
        assert lex is not None
        assert len(lex["U"]) == 2

    def test_exact_verification_guards_float_noise(self):
        """Whatever the LP returns, accepted rankings verify exactly."""
        ctx = conj(atom_ge(x, 1), atom_eq(var("x'"), x - 3))
        s = RankSynthesizer({"U": ("x",)})
        ranks = s.synthesize_linear(["U"], [make_edge(ctx, ("x",), ("x'",))])
        assert ranks is not None
        r = ranks["U"]
        rn = r.substitute({"x": var("x'")})
        assert entails(ctx, conj(atom_ge(r, 0), atom_ge(r - rn, 1)))


class TestFocusedSynthesis:
    """Pre-analysis rank hints: focused template first, full fallback."""

    def _edge(self):
        # x decreases, y does whatever: x is the only useful measure var
        ctx = conj(
            atom_ge(x, 1),
            atom_eq(var("x'"), x - 1),
            atom_eq(var("y'"), y + 1),
        )
        return Edge("U@m", "U@m", ctx, ("x", "y"), ("x'", "y'"))

    def test_good_hint_yields_focused_rank(self):
        s = RankSynthesizer(
            {"U@m": ("x", "y")}, focus={"m": ("x",)}
        )
        ranks = s.synthesize_linear(["U@m"], [self._edge()])
        assert ranks is not None
        assert ranks["U@m"].variables() <= {"x"}

    def test_bad_hint_falls_back_to_full_template(self):
        # hinting only the growing variable cannot work; completeness
        # demands the full template still finds the x-based rank
        s = RankSynthesizer(
            {"U@m": ("x", "y")}, focus={"m": ("y",)}
        )
        ranks = s.synthesize_linear(["U@m"], [self._edge()])
        assert ranks is not None

    def test_focused_indices_gating(self):
        s = RankSynthesizer(
            {"U@m": ("x", "y"), "V@n": ("x", "y")},
            focus={"m": ("y",), "n": ("x", "y")},
        )
        assert s._focused_indices("U@m") == [1]
        # full-tuple hint is not a proper subset: no focused attempt
        assert s._focused_indices("V@n") is None
        assert s._focused_indices("U@unknown") is None
