"""End-to-end reproduction of the paper's Section 2 worked example."""

import pytest

from repro.arith.formula import atom_ge, atom_lt, conj
from repro.arith.solver import entails, equivalent, is_sat
from repro.arith.terms import var
from repro.core import Term, Loop, infer_source
from repro.core.pipeline import Verdict
from repro.core.predicates import Loop as LoopPred, Term as TermPred

FOO = """
void foo(int x, int y)
{ if (x < 0) { return; } else { foo(x + y, y); return; } }
"""

x, y = var("x"), var("y")


@pytest.fixture(scope="module")
def foo_result():
    return infer_source(FOO)


def _case_region(spec, pred_type, reachable):
    """Union precondition of cases with the given predicate/post shape."""
    from repro.arith.formula import FALSE, disj

    region = FALSE
    for c in spec.cases:
        if isinstance(c.pred, pred_type) and c.post.reachable == reachable:
            region = disj(region, c.guard)
    return region


class TestFooSummary:
    def test_three_cases(self, foo_result):
        spec = foo_result.specs["foo"]
        assert len(spec.cases) == 3

    def test_base_case_is_x_negative(self, foo_result):
        spec = foo_result.specs["foo"]
        base = [c for c in spec.cases if isinstance(c.pred, TermPred)
                and not c.pred.measure]
        assert len(base) == 1
        assert equivalent(base[0].guard, atom_lt(x, 0))

    def test_loop_case_is_x_and_y_nonneg(self, foo_result):
        spec = foo_result.specs["foo"]
        loops = [c for c in spec.cases if isinstance(c.pred, LoopPred)]
        assert len(loops) == 1
        assert equivalent(loops[0].guard, conj(atom_ge(x, 0), atom_ge(y, 0)))
        assert not loops[0].post.reachable  # ensures false

    def test_term_case_is_x_nonneg_y_neg(self, foo_result):
        spec = foo_result.specs["foo"]
        terms = [c for c in spec.cases if isinstance(c.pred, TermPred)
                 and c.pred.measure]
        assert len(terms) == 1
        assert equivalent(
            terms[0].guard, conj(atom_ge(x, 0), atom_lt(y, 0))
        )

    def test_ranking_function_is_valid(self, foo_result):
        """The measure must be bounded and decreasing on the recursion
        under the Term case (x>=0, y<0, next call stays in x>=0)."""
        from repro.arith.formula import atom_eq

        spec = foo_result.specs["foo"]
        (case,) = [c for c in spec.cases if isinstance(c.pred, TermPred)
                   and c.pred.measure]
        (rank,) = case.pred.measure
        xp, yp = var("x'"), var("y'")
        edge = conj(
            atom_ge(x, 0), atom_lt(y, 0),
            atom_eq(xp, x + y), atom_eq(yp, y), atom_ge(xp, 0),
        )
        rank_next = rank.substitute({"x": xp, "y": yp})
        assert entails(edge, atom_ge(rank, 0))
        assert entails(edge, atom_ge(rank - rank_next, 1))

    def test_guards_are_exclusive_and_exhaustive(self, foo_result):
        """Paper Definition 2 on the final summary."""
        from repro.arith.formula import FALSE, TRUE, conj as conj_, disj, neg
        from repro.arith.solver import is_valid

        spec = foo_result.specs["foo"]
        guards = [c.guard for c in spec.cases]
        for g in guards:
            assert is_sat(g)  # feasible
        for i in range(len(guards)):
            for j in range(i + 1, len(guards)):
                assert not is_sat(conj_(guards[i], guards[j]))  # exclusive
        assert is_valid(disj(*guards))  # exhaustive

    def test_verdict_is_nonterminating(self, foo_result):
        assert foo_result.verdict("foo") is Verdict.NONTERMINATING


class TestFooOracle:
    """Cross-validate the summary against concrete executions."""

    def test_agrees_with_interpreter(self, foo_result):
        from repro.lang import parse_program
        from repro.lang.interp import terminates

        program = parse_program(FOO)
        spec = foo_result.specs["foo"]
        for xv in range(-3, 4):
            for yv in range(-3, 4):
                case = spec.case_for({"x": xv, "y": yv})
                assert case is not None
                actual = terminates(program, "foo", [xv, yv], fuel=5000)
                if isinstance(case.pred, TermPred):
                    assert actual is True, (xv, yv)
                elif isinstance(case.pred, LoopPred):
                    assert actual is False, (xv, yv)
