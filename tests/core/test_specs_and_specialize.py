"""Unit tests: the definitions store, specialisation, reachability graph."""

import pytest

from repro.arith.formula import TRUE, atom_ge, atom_lt, conj
from repro.arith.solver import equivalent, is_sat
from repro.arith.terms import var
from repro.core.assumptions import PostAssume, PreAssume
from repro.core.predicates import (
    LOOP,
    MAYLOOP,
    POST_FALSE,
    POST_TRUE,
    PostRef,
    PreRef,
    TERM,
    Term,
)
from repro.core.reachgraph import (
    LOOP_NODE,
    MAYLOOP_NODE,
    ReachGraph,
    TERM_NODE,
)
from repro.core.specialize import specialize_post, specialize_pre
from repro.core.specs import Case, DefStore

x = var("x")


def fresh_store():
    store = DefStore()
    store.register_root("U0@f", ("x",))
    return store


class TestDefStore:
    def test_unresolved_root(self):
        store = fresh_store()
        assert not store.is_resolved("U0@f")
        assert store.unresolved_leaves("U0@f") == ["U0@f"]

    def test_resolve_leaf(self):
        store = fresh_store()
        store.resolve_leaf("U0@f", TERM, POST_TRUE)
        assert store.is_resolved("U0@f")
        assert store.unresolved_leaves("U0@f") == []

    def test_refinement_tree_flatten(self):
        store = fresh_store()
        child_a = store.new_pair("f", ("x",))
        child_b = store.new_pair("f", ("x",))
        store.define("U0@f", [
            Case(atom_ge(x, 0), child_a, child_a),
            Case(atom_lt(x, 0), child_b, child_b),
        ])
        store.resolve_leaf(child_a, LOOP, POST_FALSE)
        store.resolve_leaf(child_b, TERM, POST_TRUE)
        cases = store.flatten("U0@f")
        assert len(cases) == 2
        by_kind = {type(c.pred).__name__: c for c in cases}
        assert not by_kind["Loop"].post.reachable
        assert by_kind["Term"].post.reachable

    def test_flatten_unresolved_defaults_to_mayloop(self):
        store = fresh_store()
        (case,) = store.flatten("U0@f")
        from repro.core.predicates import MayLoop

        assert isinstance(case.pred, MayLoop)

    def test_flatten_context_restricts(self):
        store = fresh_store()
        store.resolve_leaf("U0@f", TERM, POST_TRUE)
        cases = store.flatten("U0@f", context=atom_ge(x, 5))
        assert len(cases) == 1
        assert equivalent(cases[0].guard, atom_ge(x, 5))

    def test_leaf_cases_cumulative_guards(self):
        store = fresh_store()
        child = store.new_pair("f", ("x",))
        store.define("U0@f", [Case(atom_ge(x, 0), child, child)])
        grand = store.new_pair("f", ("x",))
        store.define(child, [Case(atom_ge(x, 5), grand, grand),
                             Case(atom_lt(x, 5), TERM, POST_TRUE)])
        leaves = store.leaf_cases("U0@f")
        guards = [g for g, _p, _q in leaves]
        assert any(equivalent(g, conj(atom_ge(x, 0), atom_ge(x, 5)))
                   for g in guards)


class TestSpecializePre:
    def test_substitutes_definitions_and_splits(self):
        store = fresh_store()
        child_a = store.new_pair("f", ("x",))
        child_b = store.new_pair("f", ("x",))
        store.define("U0@f", [
            Case(atom_ge(x, 0), child_a, child_a),
            Case(atom_lt(x, 0), child_b, child_b),
        ])
        a = PreAssume(
            ctx=conj(atom_ge(var("u"), 0), TRUE),
            lhs=PreRef("U0@f", ("u",)),
            rhs=PreRef("U0@f", ("u",)),
        )
        out = specialize_pre([a], store)
        # lhs u>=0 picks child_a; rhs splits on u>=0 / u<0: u<0 is
        # inconsistent with the lhs guard, so a single assumption remains
        assert len(out) == 1
        assert out[0].lhs.name == child_a
        assert out[0].rhs.name == child_a

    def test_resolved_lhs_dropped(self):
        store = fresh_store()
        store.resolve_leaf("U0@f", TERM, POST_TRUE)
        a = PreAssume(TRUE, PreRef("U0@f", ("u",)), PreRef("U0@f", ("u",)))
        assert specialize_pre([a], store) == []

    def test_rhs_resolved_to_term_becomes_sink(self):
        store = DefStore()
        store.register_root("U0@f", ("x",))
        store.register_root("U0@g", ("x",))
        store.resolve_leaf("U0@g", Term((var("x"),)), POST_TRUE)
        a = PreAssume(TRUE, PreRef("U0@f", ("u",)), PreRef("U0@g", ("u",)))
        (out,) = specialize_pre([a], store)
        assert isinstance(out.rhs, Term)


class TestSpecializePost:
    def test_true_entries_vanish(self):
        store = DefStore()
        store.register_root("U0@f", ("x",))
        store.register_root("U0@g", ("x",))
        store.resolve_leaf("U0@g", TERM, POST_TRUE)
        t = PostAssume(
            ctx=TRUE,
            entries=((TRUE, PostRef("U0@g", ("u",))),),
            guard=TRUE,
            rhs=PostRef("U0@f", ("u",)),
        )
        (out,) = specialize_post([t], store)
        assert out.entries == ()

    def test_false_entries_materialise(self):
        store = DefStore()
        store.register_root("U0@f", ("x",))
        store.register_root("U0@g", ("x",))
        store.resolve_leaf("U0@g", LOOP, POST_FALSE)
        t = PostAssume(
            ctx=TRUE,
            entries=((TRUE, PostRef("U0@g", ("u",))),),
            guard=TRUE,
            rhs=PostRef("U0@f", ("u",)),
        )
        (out,) = specialize_post([t], store)
        ((g, p),) = out.entries
        assert not p.reachable

    def test_resolved_rhs_discharges(self):
        store = fresh_store()
        store.resolve_leaf("U0@f", TERM, POST_TRUE)
        t = PostAssume(TRUE, (), TRUE, PostRef("U0@f", ("u",)))
        assert specialize_post([t], store) == []


class TestReachGraph:
    def _edge_assumption(self, src, dst, ctx=TRUE):
        return PreAssume(ctx, PreRef(src, ("x",)), PreRef(dst, ("x",)))

    def test_sink_nodes(self):
        a = PreAssume(TRUE, PreRef("A", ("x",)), TERM)
        b = PreAssume(TRUE, PreRef("A", ("x",)), LOOP)
        c = PreAssume(TRUE, PreRef("A", ("x",)), MAYLOOP)
        g = ReachGraph([a, b, c])
        assert g.scc_succ(["A"]) == {TERM_NODE, LOOP_NODE, MAYLOOP_NODE}

    def test_scc_bottom_up_order(self):
        g = ReachGraph([
            self._edge_assumption("A", "B"),
            self._edge_assumption("B", "B"),
        ])
        order = g.sccs_bottom_up()
        assert order.index(["B"]) < order.index(["A"])

    def test_mutual_scc(self):
        g = ReachGraph([
            self._edge_assumption("A", "B"),
            self._edge_assumption("B", "A"),
        ])
        assert ["A", "B"] in g.sccs_bottom_up()
        assert g.has_cycle(["A", "B"])

    def test_self_loop_cycle(self):
        g = ReachGraph([self._edge_assumption("A", "A")])
        assert g.has_cycle(["A"])
        g2 = ReachGraph([self._edge_assumption("A", "B")])
        assert not g2.has_cycle(["A"])

    def test_internal_edges(self):
        g = ReachGraph([
            self._edge_assumption("A", "A"),
            self._edge_assumption("A", "B"),
        ])
        internal = g.internal_edges(["A"])
        assert len(internal) == 1 and internal[0].dst == "A"

    def test_isolated_vertices_addable(self):
        g = ReachGraph([])
        g.add_vertices(["Z"])
        assert ["Z"] in g.sccs_bottom_up()
