"""Unit and property tests for the resource-capacity semantics (Sec. 3)."""

from hypothesis import given, settings, strategies as st

from repro.core.resources import (
    INF,
    LOOP_CAPACITY,
    MAYLOOP_CAPACITY,
    RC,
    consume,
    nat_add,
    nat_le,
    sub_lower,
    sub_upper,
)

nats = st.one_of(st.integers(min_value=0, max_value=40), st.just(INF))


class TestNatInf:
    def test_le_total_on_samples(self):
        assert nat_le(0, INF)
        assert nat_le(INF, INF)
        assert not nat_le(INF, 5)
        assert nat_le(3, 5)

    def test_add(self):
        assert nat_add(2, 3) == 5
        assert nat_add(2, INF) == INF
        assert nat_add(INF, INF) == INF


class TestSubtractionOperators:
    def test_paper_identities(self):
        # inf -L inf = 0 and inf -U inf = inf (the paper's special cases)
        assert sub_lower(INF, INF) == 0
        assert sub_upper(INF, INF) == INF

    def test_never_negative(self):
        assert sub_lower(3, 5) == 0
        assert sub_lower(5, 3) == 2

    def test_sub_upper_requires_order(self):
        import pytest

        with pytest.raises(ValueError):
            sub_upper(3, 5)
        with pytest.raises(ValueError):
            sub_upper(3, INF)

    def test_sub_upper_finite(self):
        assert sub_upper(7, 3) == 4
        assert sub_upper(INF, 3) == INF

    @settings(max_examples=200, deadline=None)
    @given(nats, nats)
    def test_sub_lower_is_minimal_residue(self, l1, l2):
        r = sub_lower(l1, l2)
        # r + L2 >= L1
        assert nat_le(l1, nat_add(r, l2))
        # minimality on finite candidates below r
        if not isinstance(r, type(INF)) and r > 0:
            assert not nat_le(l1, nat_add(r - 1, l2))

    @settings(max_examples=200, deadline=None)
    @given(nats, nats)
    def test_sub_upper_is_maximal_residue(self, u1, u2):
        if not nat_le(u2, u1):
            return
        r = sub_upper(u1, u2)
        assert nat_le(nat_add(r, u2), u1)
        if not isinstance(r, type(INF)):
            # r + 1 would overshoot unless u1 is infinite
            if not isinstance(u1, type(INF)):
                assert not nat_le(nat_add(r + 1, u2), u1)


class TestCapacities:
    def test_known_predicate_capacities(self):
        assert LOOP_CAPACITY == RC(INF, INF)
        assert MAYLOOP_CAPACITY == RC(0, INF)

    def test_mayloop_subsumes_all(self):
        # MayLoop is the strongest pre-predicate: its capacity interval
        # contains every other capacity
        assert MAYLOOP_CAPACITY.subsumes(LOOP_CAPACITY)
        assert MAYLOOP_CAPACITY.subsumes(RC(0, 7))

    def test_loop_and_term_incomparable(self):
        term = RC(0, 7)
        assert not LOOP_CAPACITY.subsumes(term)
        assert not term.subsumes(LOOP_CAPACITY)

    @settings(max_examples=200, deadline=None)
    @given(nats, nats, nats, nats)
    def test_subsumption_is_interval_containment(self, l1, u1, l2, u2):
        a, b = RC(l1, u1), RC(l2, u2)
        assert a.subsumes(b) == (nat_le(l1, l2) and nat_le(u2, u1))


class TestConsumptionEntailment:
    def test_term_from_mayloop(self):
        # MayLoop |-t Term[bound]  ~>  residue exists
        residue = consume(MAYLOOP_CAPACITY, RC(0, 5))
        assert residue == RC(0, INF)

    def test_loop_consumes_loop(self):
        residue = consume(LOOP_CAPACITY, LOOP_CAPACITY)
        assert residue == RC(0, INF)

    def test_term_cannot_consume_loop(self):
        # a bounded caller cannot pay for a definitely diverging callee
        assert consume(RC(0, 5), LOOP_CAPACITY) is None

    def test_upper_bound_check(self):
        assert consume(RC(0, 3), RC(0, 5)) is None
        assert consume(RC(0, 5), RC(0, 3)) == RC(0, 2)

    def test_residue_wellformedness_enforced(self):
        # La=5,Ua=5 consuming Lc=0,Uc=5 -> Lr=5, Ur=0: ill-formed residue
        assert consume(RC(5, 5), RC(0, 5)) is None

    @settings(max_examples=300, deadline=None)
    @given(nats, nats, nats, nats)
    def test_weak_relation_to_subsumption(self, l1, u1, l2, u2):
        # paper: (theta_a =>r theta_c) implies a residue exists
        a, c = RC(l1, u1), RC(l2, u2)
        if not (a.is_wellformed() and c.is_wellformed()):
            return
        if a.subsumes(c) and nat_le(c.upper, a.upper):
            # subsumption with the upper-bound side condition
            assert consume(a, c) is not None
