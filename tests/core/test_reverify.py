"""The paper's re-verification step: inferred summaries must re-check."""

import pytest

from repro.core import infer_source
from repro.core.reverify import reverify

PROGRAMS = {
    "foo": """
void foo(int x, int y)
{ if (x < 0) { return; } else { foo(x + y, y); return; } }
""",
    "countdown": "void main(int x) { while (x > 0) { x = x - 1; } }",
    "growth": "void main(int x) { while (x > 0) { x = x + 1; } }",
    "drain": "void main(int x, int y) { while (x > 0) { x = x - y; } }",
    "gcd": """
int gcd(int a, int b)
  requires a > 0 && b > 0 ensures res > 0;
{
  if (a == b) { return a; }
  else { if (a > b) { return gcd(a - b, b); }
         else { return gcd(a, b - a); } }
}
""",
    "even-odd": """
int even(int n) requires n >= 0 ensures true;
{ if (n == 0) { return 1; } else { return odd(n - 1); } }
int odd(int n) requires n >= 0 ensures true;
{ if (n == 0) { return 0; } else { return even(n - 1); } }
""",
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_summaries_reverify(name):
    result = infer_source(PROGRAMS[name])
    failures = reverify(result)
    assert failures == [], failures
