"""Parallel wave-scheduler tests: jobs=2 must reproduce jobs=1 exactly.

The diamond condensation (top -> {left, right} -> base) is the smallest
shape with a genuinely parallel wave: the two middle SCCs are mutually
independent.  The fixture gives every method disjoint variable names so
the two branches share no FM cubes -- then even the raw FM-elimination
count is identical between sequential and parallel runs (with shared
cubes, cross-SCC cache warmth legitimately differs between process
layouts; the deterministic per-context counters are equal either way).
"""

import pytest

from repro.bench.runner import _cold_start
from repro.core.pipeline import infer_program
from repro.core.scheduler import infer_program_parallel, resolve_jobs
from repro.lang import parse_program

DIAMOND = """
int base(int n)
{ if (n <= 0) { return 0; } else { return base(n - 1); } }

int lgcd(int a, int b)
  requires a > 0 && b > 0 ensures res > 0;
{
  if (a == b) { return a; }
  else { if (a > b) { return lgcd(a - b, b); }
         else { return lgcd(a, b - a); } }
}

int rgcd(int p, int q)
  requires p > 0 && q > 0 ensures res > 0;
{
  if (p == q) { return q; }
  else { if (p < q) { return rgcd(p, q - p); }
         else { return rgcd(p - q, q); } }
}

void top(int x, int y) { base(x); int u = lgcd(x, y); int v = rgcd(x, y); return; }
"""

MUTUAL = """
int even(int n)
{ if (n == 0) { return 1; } else { return odd(n - 1); } }
int odd(int n)
{ if (n == 0) { return 0; } else { return even(n - 1); } }
void drive(int k) { int r = even(k); return; }
"""


def _exploding_task(*args, **kwargs):
    # module-level so the (forked) pool worker can unpickle the reference
    raise RuntimeError("worker failure")


def _run_both(source):
    """(sequential result+stats, parallel result+stats), cold each time
    (the bench runner's full cold-start protocol, fresh-name counters
    included, so both modes start from the same process state)."""
    _cold_start()
    seq = infer_program(parse_program(source))
    seq_stats = seq.solver_stats.as_dict()
    _cold_start()
    par = infer_program(parse_program(source), jobs=2)
    par_stats = par.solver_stats.as_dict()
    return seq, seq_stats, par, par_stats


class TestDiamondParity:
    def test_verdicts_specs_and_stats_identical(self):
        seq, seq_stats, par, par_stats = _run_both(DIAMOND)
        # deterministic spec order: sequential callee-first order, not
        # worker completion order
        assert list(seq.specs) == list(par.specs)
        assert {m: str(seq.verdict(m)) for m in seq.specs} == \
            {m: str(par.verdict(m)) for m in par.specs}
        # per-case summaries agree structurally (guards are hash-consed,
        # so equality here is deep formula equality)
        for m in seq.specs:
            assert seq.specs[m].cases == par.specs[m].cases, m
        # merged per-context counters are identical; the branches use
        # disjoint variable names, so even raw FM work lines up
        assert seq_stats == par_stats
        assert seq_stats["fm_eliminations"] > 0

    def test_expected_verdicts(self):
        _seq, _s, par, _p = _run_both(DIAMOND)
        verdicts = {m: str(par.verdict(m)) for m in par.specs}
        assert verdicts == {"base": "Y", "lgcd": "Y", "rgcd": "Y", "top": "Y"}


class TestOtherShapes:
    def test_mutual_recursion_scc(self):
        seq, seq_stats, par, par_stats = _run_both(MUTUAL)
        assert list(seq.specs) == list(par.specs)
        assert {m: str(seq.verdict(m)) for m in seq.specs} == \
            {m: str(par.verdict(m)) for m in par.specs}
        for key in ("queries", "hits", "evictions"):
            assert seq_stats[key] == par_stats[key], key

    def test_heap_program(self):
        """Heap-abstracted programs ship through the pickled-summary
        contract too (SymHeap specs stay in the parent; workers see the
        numeric abstraction)."""
        from repro.bench.programs import by_name

        bench = by_name("append-lseg")
        _cold_start()
        seq = infer_program(bench.program())
        _cold_start()
        par = infer_program(bench.program(), jobs=2)
        assert str(seq.verdict(bench.main)) == str(par.verdict(bench.main)) == "Y"

    def test_single_scc_program(self):
        src = "void f(int x) { if (x > 0) { f(x - 1); return; } else { return; } }"
        par = infer_program(parse_program(src), jobs=2)
        assert str(par.verdict("f")) == "Y"

    def test_bodyless_scc_completed_inline(self):
        """An extern-only SCC has nothing to analyze: the scheduler must
        resolve it inline (no worker round-trip) and still produce the
        same result set as the sequential path."""
        import dataclasses

        def with_extern():
            program = parse_program(
                "void g(int x) { if (x > 0) { g(x - 1); return; }"
                " else { return; } }"
            )
            g = program.methods["g"]
            program.methods["ext"] = dataclasses.replace(
                g, name="ext", body=None
            )
            return program

        seq = infer_program(with_extern())
        par = infer_program(with_extern(), jobs=2)
        assert "ext" not in seq.specs  # bodyless methods get no summary
        assert list(seq.specs) == list(par.specs)
        assert str(seq.verdict("g")) == str(par.verdict("g")) == "Y"


class TestSchedulerPlumbing:
    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            infer_program_parallel(parse_program(DIAMOND), jobs=0)

    def test_resolve_jobs(self):
        import os

        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        with pytest.raises(ValueError):
            resolve_jobs(-4)

    def test_caller_owned_context_stays_sequential(self):
        """jobs>1 with a caller-owned context cannot cross processes; the
        pipeline falls back to the sequential path sharing that context."""
        from repro.arith.context import SolverContext

        ctx = SolverContext()
        result = infer_program(
            parse_program(MUTUAL), jobs=4, solver_ctx=ctx
        )
        assert result.solver_stats is ctx.stats
        assert ctx.stats.queries > 0

    def test_worker_errors_propagate(self):
        """A worker crash must surface in the parent, not hang the wave
        loop."""
        from repro.core import scheduler

        original = scheduler._analyze_scc_task
        scheduler._analyze_scc_task = _exploding_task
        try:
            with pytest.raises(RuntimeError, match="worker failure"):
                infer_program_parallel(parse_program(MUTUAL), jobs=2)
        finally:
            scheduler._analyze_scc_task = original
