"""End-to-end inference tests: nested recursion, loops, mutual recursion."""

import pytest

from repro.core import infer_source
from repro.core.pipeline import Verdict
from repro.core.predicates import Loop as LoopPred, Term as TermPred


def loop_spec(result):
    """The summary of the (single) desugared loop method."""
    (name,) = [n for n in result.specs if "loop" in n]
    return result.specs[name]


class TestMcCarthy91:
    def test_with_spec_terminates_everywhere(self):
        result = infer_source("""
int Mc91(int n)
  requires true
  ensures n <= 100 && res == 91 || n > 100 && res == n - 10;
{
  if (n > 100) { return n - 10; }
  else { return Mc91(Mc91(n + 11)); }
}
""", time_budget=20.0)
        assert result.verdict("Mc91") is Verdict.TERMINATING
        assert all(
            isinstance(c.pred, TermPred) for c in result.specs["Mc91"].cases
        )

    def test_without_spec_only_base_case(self):
        result = infer_source("""
int Mc91(int n)
{
  if (n > 100) { return n - 10; }
  else { return Mc91(Mc91(n + 11)); }
}
""", time_budget=10.0)
        # paper: "the inference only shows that the McCarthy 91 function
        # terminates in its base case when n > 100"
        assert result.verdict("Mc91") is Verdict.UNKNOWN
        base = [c for c in result.specs["Mc91"].cases
                if isinstance(c.pred, TermPred)]
        assert base, "the n > 100 base case must be Term"


class TestAckermann:
    def test_negative_m_diverges(self):
        result = infer_source("""
int Ack(int m, int n)
  requires true ensures res >= n + 1;
{
  if (m == 0) { return n + 1; }
  else { if (n == 0) { return Ack(m - 1, 1); }
         else { return Ack(m - 1, Ack(m, n - 1)); } }
}
""", time_budget=20.0)
        spec = result.specs["Ack"]
        assert result.verdict("Ack") is Verdict.NONTERMINATING
        # m < 0 must be a Loop region
        loop_cases = [c for c in spec.cases if isinstance(c.pred, LoopPred)]
        assert loop_cases
        assert spec.case_for({"m": -1, "n": 5}) is not None
        case = spec.case_for({"m": -1, "n": 5})
        assert isinstance(case.pred, LoopPred)
        # m = 0 is base-case terminating
        case0 = spec.case_for({"m": 0, "n": 5})
        assert isinstance(case0.pred, TermPred)


class TestMutualRecursion:
    def test_even_odd_guarded_terminates(self):
        result = infer_source("""
int even(int n) requires n >= 0 ensures true;
{ if (n == 0) { return 1; } else { return odd(n - 1); } }
int odd(int n) requires n >= 0 ensures true;
{ if (n == 0) { return 0; } else { return even(n - 1); } }
""")
        assert result.verdict("even") is Verdict.TERMINATING
        assert result.verdict("odd") is Verdict.TERMINATING

    def test_even_odd_unguarded_has_loop_region(self):
        result = infer_source("""
int even(int n)
{ if (n == 0) { return 1; } else { return odd(n - 1); } }
int odd(int n)
{ if (n == 0) { return 0; } else { return even(n - 1); } }
""")
        assert result.verdict("even") is Verdict.NONTERMINATING


class TestLoops:
    def test_countdown(self):
        result = infer_source(
            "void main(int x) { while (x > 0) { x = x - 1; } }"
        )
        assert result.verdict("main") is Verdict.TERMINATING

    def test_growth_is_loop(self):
        result = infer_source(
            "void main(int x) { while (x > 0) { x = x + 1; } }"
        )
        assert result.verdict("main") is Verdict.NONTERMINATING
        spec = loop_spec(result)
        loop_case = [c for c in spec.cases if isinstance(c.pred, LoopPred)]
        assert loop_case and not loop_case[0].post.reachable

    def test_conditional_drain_split(self):
        """while (x>0) x -= y: Loop for y<=0 (x>0), Term for y>=1."""
        result = infer_source(
            "void main(int x, int y) { while (x > 0) { x = x - y; } }"
        )
        assert result.verdict("main") is Verdict.NONTERMINATING
        spec = loop_spec(result)
        kinds = {type(c.pred).__name__ for c in spec.cases}
        assert "Loop" in kinds and "Term" in kinds

    def test_nested_loops(self):
        result = infer_source("""
void main(int n, int m) {
  int i = 0;
  while (i < n) {
    int j = 0;
    while (j < m) { j = j + 1; }
    i = i + 1;
  }
}
""")
        assert result.verdict("main") is Verdict.TERMINATING

    def test_nondet_choice_terminates(self):
        result = infer_source("""
void main(int x) {
  while (x > 0) {
    if (nondet() > 0) { x = x - 1; } else { x = x - 2; }
  }
}
""")
        assert result.verdict("main") is Verdict.TERMINATING


class TestModularReuse:
    def test_caller_inherits_callee_divergence(self):
        """A caller of a definitely non-terminating callee is Loop on the
        region where the callee diverges -- the modular-summary claim."""
        result = infer_source("""
void spin(int x)
{ if (x <= 0) { return; } else { spin(x + 1); return; } }
void main(int a) { spin(a); }
""")
        assert result.verdict("spin") is Verdict.NONTERMINATING
        assert result.verdict("main") is Verdict.NONTERMINATING
        case = result.specs["main"].case_for({"a": 1})
        assert isinstance(case.pred, LoopPred)
        case = result.specs["main"].case_for({"a": 0})
        assert isinstance(case.pred, TermPred)

    def test_requires_clause_restricts_summary(self):
        result = infer_source("""
int gcd(int a, int b)
  requires a > 0 && b > 0 ensures res > 0;
{
  if (a == b) { return a; }
  else { if (a > b) { return gcd(a - b, b); }
         else { return gcd(a, b - a); } }
}
""")
        assert result.verdict("gcd") is Verdict.TERMINATING

    def test_phase_change_program(self):
        result = infer_source("""
void main(int x, int y) {
  while (x >= 0) {
    if (y > 0) { x = x + 1; y = y - 1; }
    else { x = x - 1; }
  }
}
""", time_budget=25.0)
        assert result.verdict("main") in (
            Verdict.TERMINATING, Verdict.UNKNOWN
        )


class TestOracleCrossValidation:
    """Inferred verdicts must agree with concrete executions."""

    @pytest.mark.parametrize("source,main,grid", [
        ("void f(int x) { if (x <= 0) { return; } else { f(x - 2); return; } }",
         "f", [(-3,), (0,), (5,), (8,)]),
        ("void f(int x, int d) { if (x <= 0) { return; } else { f(x + d, d); return; } }",
         "f", [(1, 1), (1, -1), (5, 0), (-1, 3)]),
    ])
    def test_summary_matches_interpreter(self, source, main, grid):
        from repro.lang import parse_program
        from repro.lang.interp import terminates

        result = infer_source(source)
        program = parse_program(source)
        spec = result.specs[main]
        params = spec.params
        for point in grid:
            env = dict(zip(params, point))
            case = spec.case_for(env)
            assert case is not None
            actual = terminates(program, main, list(point), fuel=20000)
            if isinstance(case.pred, TermPred):
                assert actual is True, point
            elif isinstance(case.pred, LoopPred):
                assert actual is False, point
