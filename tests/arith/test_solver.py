"""Unit tests for the decision procedures."""

from repro.arith.formula import (
    FALSE,
    TRUE,
    atom_eq,
    atom_ge,
    atom_gt,
    atom_le,
    atom_lt,
    atom_ne,
    conj,
    disj,
    exists,
    neg,
)
from repro.arith.solver import (
    entails,
    equivalent,
    is_sat,
    is_unsat,
    is_valid,
    model,
    project,
    simplify,
)
from repro.arith.terms import var

x, y, z = var("x"), var("y"), var("z")


class TestSat:
    def test_trivial(self):
        assert is_sat(TRUE)
        assert is_unsat(FALSE)

    def test_interval(self):
        assert is_sat(conj(atom_ge(x, 0), atom_le(x, 10)))
        assert is_unsat(conj(atom_ge(x, 1), atom_le(x, 0)))

    def test_equality_chain(self):
        f = conj(atom_eq(x, y + 1), atom_eq(y, z + 1), atom_eq(x, z))
        assert is_unsat(f)

    def test_integer_gap(self):
        # 1 <= 2x <= 1 has no integer solution
        f = conj(atom_le(x.scale(2), 1), atom_ge(x.scale(2), 1))
        assert is_unsat(f)

    def test_strict_inequality_tightening(self):
        # x < y and y < x + 2 and x != y - 1 -> unsat over integers
        f = conj(atom_lt(x, y), atom_lt(y, x + 2), atom_ne(x, y - 1))
        assert is_unsat(f)

    def test_disjunction(self):
        f = disj(conj(atom_ge(x, 1), atom_le(x, 0)), atom_eq(x, 5))
        assert is_sat(f)

    def test_foo_nonterm_region(self):
        # the paper's foo: x>=0, x'=x+y, y'=y, x'<0, y>=0 is infeasible
        xp, yp = var("x'"), var("y'")
        f = conj(
            atom_ge(x, 0),
            atom_eq(xp, x + y),
            atom_eq(yp, y),
            atom_lt(xp, 0),
            atom_ge(y, 0),
        )
        assert is_unsat(f)


class TestModel:
    def test_model_satisfies(self):
        f = conj(atom_ge(x, 3), atom_le(x, 7), atom_eq(y, x + 1))
        env = model(f)
        assert env is not None
        assert f.evaluate(env)

    def test_model_none_for_unsat(self):
        assert model(conj(atom_ge(x, 1), atom_le(x, 0))) is None

    def test_model_prefers_integers(self):
        env = model(conj(atom_ge(x, 0), atom_le(x, 10)))
        assert env is not None and env["x"].denominator == 1


class TestEntailment:
    def test_basic(self):
        assert entails(atom_ge(x, 5), atom_ge(x, 0))
        assert not entails(atom_ge(x, 0), atom_ge(x, 5))

    def test_with_equalities(self):
        ctx = conj(atom_eq(y, x + 1), atom_ge(x, 0))
        assert entails(ctx, atom_ge(y, 1))

    def test_disjunctive_antecedent(self):
        f = disj(atom_ge(x, 5), atom_le(x, -5))
        assert entails(f, atom_ne(x, 0))

    def test_disjunctive_consequent(self):
        assert entails(atom_ge(x, 0), disj(atom_ge(x, 0), atom_le(x, -3)))

    def test_exists_consequent(self):
        # x >= 0  =>  exists y . y = x + 1
        goal = exists(["w"], atom_eq(var("w"), x + 1))
        assert entails(atom_ge(x, 0), goal)

    def test_equivalent(self):
        assert equivalent(atom_lt(x, 5), atom_le(x, 4))
        assert not equivalent(atom_lt(x, 5), atom_le(x, 5))


class TestValidity:
    def test_excluded_middle(self):
        assert is_valid(disj(atom_ge(x, 0), atom_lt(x, 0)))

    def test_non_valid(self):
        assert not is_valid(atom_ge(x, 0))


class TestProjection:
    def test_eliminate_equality(self):
        f = conj(atom_eq(y, x + 1), atom_ge(y, 3))
        g = project(f, eliminate={"y"})
        assert equivalent(g, atom_ge(x, 2))

    def test_keep_form(self):
        f = conj(atom_eq(y, x + 1), atom_ge(y, 3))
        g = project(f, keep={"x"})
        assert g.free_vars() <= {"x"}
        assert equivalent(g, atom_ge(x, 2))

    def test_project_disjunction(self):
        f = disj(
            conj(atom_eq(y, x), atom_ge(y, 0)),
            conj(atom_eq(y, -x), atom_ge(y, 1)),
        )
        g = project(f, eliminate={"y"})
        assert equivalent(g, disj(atom_ge(x, 0), atom_le(x, -1)))

    def test_project_drops_unsat_disjunct(self):
        f = disj(conj(atom_ge(y, 1), atom_le(y, 0)), atom_ge(x, 0))
        g = project(f, eliminate={"y"})
        assert equivalent(g, atom_ge(x, 0))

    def test_fm_bound_combination(self):
        # y <= x, z <= y  =>  (eliminate y)  z <= x
        f = conj(atom_le(y, x), atom_le(z, y))
        g = project(f, eliminate={"y"})
        assert equivalent(g, atom_le(z, x))


class TestSimplify:
    def test_drops_redundant_atom(self):
        f = conj(atom_ge(x, 5), atom_ge(x, 0))
        assert simplify(f) == atom_ge(x, 5)

    def test_drops_unsat_cube(self):
        f = disj(conj(atom_ge(x, 1), atom_le(x, 0)), atom_ge(x, 3))
        assert simplify(f) == atom_ge(x, 3)

    def test_false_result(self):
        f = conj(atom_ge(x, 1), atom_le(x, 0))
        assert simplify(f) is FALSE

    def test_subsumed_cube_removed(self):
        f = disj(atom_ge(x, 5), atom_ge(x, 0))
        assert equivalent(simplify(f), atom_ge(x, 0))
