"""Tests for :mod:`repro.arith.context`: LRU caches, statistics, and the
push/pop assumption stack with incremental DNF cube reuse."""

import pytest

from repro.arith import fm
from repro.arith.context import (
    LRUCache,
    SolverContext,
    SolverStats,
    default_context,
)
from repro.arith.formula import TRUE, atom_eq, atom_ge, atom_le, conj, disj
from repro.arith.solver import clear_caches, is_sat, solver_stats
from repro.arith.terms import var

x, y, z = var("x"), var("y"), var("z")


class TestLRUCache:
    def test_eviction_order_and_count(self):
        stats = SolverStats()
        c = LRUCache(2, stats)
        c.put("a", 1)
        c.put("b", 2)
        assert c.get("a") == 1  # refresh "a": "b" is now LRU
        c.put("c", 3)
        assert "b" not in c
        assert "a" in c and "c" in c
        assert stats.evictions == 1

    def test_update_does_not_evict(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)
        assert len(c) == 2
        assert c.get("a") == 10

    def test_falsy_values_are_hits_and_promoted(self):
        # None/False/0 are legitimate cached values (e.g. a memoised UNSAT
        # verdict): they must come back as hits, not the caller's miss
        # default, and the hit must refresh their LRU position.
        c = LRUCache(2)
        c.put("none", None)
        c.put("zero", 0)
        assert c.get("none", "MISS") is None  # hit: "zero" is now LRU
        c.put("false", False)  # evicts "zero", not the refreshed "none"
        assert "none" in c and "zero" not in c
        assert c.get("false", "MISS") is False
        assert c.get("none", "MISS") is None

    def test_miss_returns_caller_default(self):
        c = LRUCache(2)
        assert c.get("absent") is None
        assert c.get("absent", 42) == 42
        c.put("present", False)
        assert c.get("present", 42) is False


class TestStats:
    def test_hits_and_misses_counted(self):
        ctx = SolverContext()
        f = conj(atom_ge(x, 0), atom_le(x, 5))
        assert ctx.is_sat(f)
        assert ctx.is_sat(f)
        assert ctx.stats.sat_queries == 2
        assert ctx.stats.sat_hits == 1
        assert 0 < ctx.stats.hit_rate <= 0.5

    def test_fm_eliminations_attributed(self):
        ctx = SolverContext()
        f = conj(atom_ge(x, 0), atom_le(x + y, 3), atom_ge(y, 1))
        ctx.is_sat(f)
        assert ctx.stats.fm_eliminations > 0
        before = ctx.stats.fm_eliminations
        ctx.is_sat(f)  # cache hit: no new FM work
        assert ctx.stats.fm_eliminations == before

    def test_shared_stats_across_contexts(self):
        stats = SolverStats()
        a = SolverContext(stats=stats)
        b = SolverContext(stats=stats)
        a.is_sat(atom_ge(x, 0))
        b.is_sat(atom_ge(y, 0))
        assert stats.sat_queries == 2

    def test_clear_caches_resets_default_stats(self):
        is_sat(conj(atom_ge(x, 0), atom_le(x, 1)))
        assert solver_stats().sat_queries > 0
        clear_caches()
        assert solver_stats().sat_queries == 0
        assert solver_stats().fm_eliminations == 0
        assert fm.fm_cache_stats()["size"] == 0
        assert fm.fm_cache_stats()["eliminations"] == 0

    def test_small_cache_evicts_but_stays_correct(self):
        ctx = SolverContext(cache_size=4)
        formulas = [conj(atom_ge(x, i), atom_le(x, i + 1)) for i in range(10)]
        first = [ctx.is_sat(f) for f in formulas]
        second = [ctx.is_sat(f) for f in formulas]
        assert first == second == [True] * 10
        assert ctx.stats.evictions > 0


class TestAssumptionStack:
    def test_assumptions_constrain_queries(self):
        ctx = SolverContext()
        assert ctx.is_sat(atom_ge(x, 5))
        with ctx.assuming(atom_le(x, 0)):
            assert not ctx.is_sat(atom_ge(x, 5))
            assert ctx.is_sat(atom_le(x, -1))
        assert ctx.is_sat(atom_ge(x, 5))  # popped: unconstrained again

    def test_nested_frames(self):
        ctx = SolverContext()
        ctx.push()
        ctx.assume(atom_ge(x, 0))
        ctx.push()
        ctx.assume(atom_le(x, -1))
        assert not ctx.is_sat(TRUE)
        ctx.pop()
        assert ctx.is_sat(TRUE)
        assert ctx.is_sat(atom_ge(x, 3))
        ctx.pop()
        assert ctx.assumption_depth == 0

    def test_pop_base_frame_rejected(self):
        ctx = SolverContext()
        with pytest.raises(IndexError):
            ctx.pop()

    def test_base_frame_assumptions_honoured(self):
        """assume() without push() constrains queries too."""
        ctx = SolverContext()
        ctx.assume(atom_le(x, 0))
        assert not ctx.is_sat(atom_ge(x, 1))
        assert ctx.is_sat(atom_le(x, -2))

    def test_entails_under_assumptions(self):
        ctx = SolverContext()
        with ctx.assuming(atom_ge(x, 10)):
            assert ctx.entails(TRUE, atom_ge(x, 5))
            assert not ctx.entails(TRUE, atom_ge(x, 11))

    def test_disjunctive_assumption_cubes(self):
        ctx = SolverContext()
        with ctx.assuming(disj(atom_eq(x, 1), atom_eq(x, 2))):
            assert ctx.is_sat(atom_eq(x, 2))
            assert not ctx.is_sat(atom_eq(x, 3))
            assert ctx.entails(TRUE, conj(atom_ge(x, 1), atom_le(x, 2)))

    def test_incremental_cube_reuse(self):
        """Pushing an assumption converts its DNF once; subsequent queries
        against the frame reuse the cached cubes."""
        ctx = SolverContext()
        big = disj(
            conj(atom_ge(x, 0), atom_le(y, 0)),
            conj(atom_le(x, -1), atom_ge(y, 1)),
        )
        with ctx.assuming(big):
            ctx.is_sat(atom_eq(z, 1))
            frame = ctx._frames[-1]
            cubes_first = frame.cubes
            assert cubes_first is not None
            ctx.is_sat(atom_eq(z, 2))
            assert frame.cubes is cubes_first  # not recomputed

    def test_simplify_ignores_assumptions(self):
        ctx = SolverContext()
        f = conj(atom_ge(x, 0), atom_le(x, 5))
        with ctx.assuming(atom_eq(x, 3)):
            simplified = ctx.simplify(f)
        # must stay equivalent to f absolutely, not merely under x == 3
        assert ctx.equivalent(simplified, f)


class TestFacade:
    def test_default_context_is_shared(self):
        assert default_context() is default_context()

    def test_explicit_ctx_routes_caching(self):
        ctx = SolverContext()
        f = conj(atom_ge(x, 0), atom_le(x, 2))
        assert is_sat(f, ctx)
        assert ctx.stats.sat_queries == 1
