"""Unit tests for formula construction and normal forms."""

import pytest

from repro.arith.formula import (
    Atom,
    FALSE,
    Rel,
    TRUE,
    atom_eq,
    atom_ge,
    atom_gt,
    atom_le,
    atom_lt,
    atom_ne,
    conj,
    disj,
    exists,
    neg,
    to_dnf,
    to_nnf,
)
from repro.arith.terms import var

x, y = var("x"), var("y")


class TestAtoms:
    def test_le_normalisation(self):
        a = atom_le(x, 5)
        assert isinstance(a, Atom) and a.rel is Rel.LE

    def test_lt_integer_tightening(self):
        # x < 5 over ints is x <= 4, i.e. x - 4 <= 0
        a = atom_lt(x, 5)
        assert a == atom_le(x, 4)

    def test_gt_ge_duals(self):
        assert atom_gt(x, 0) == atom_lt(0, x)
        assert atom_ge(x, 0) == atom_le(0, x)

    def test_constant_folding(self):
        assert atom_le(3, 5) is TRUE
        assert atom_le(5, 3) is FALSE
        assert atom_eq(4, 4) is TRUE
        assert atom_eq(4, 5) is FALSE

    def test_ne_expands_to_disjunction(self):
        a = atom_ne(x, 0)
        cubes = to_dnf(a)
        assert len(cubes) == 2

    def test_coefficient_gcd_tightening(self):
        # 2x <= 1 over ints means x <= 0
        assert atom_le(x.scale(2), 1) == atom_le(x, 0)

    def test_atom_evaluate(self):
        a = atom_le(x, 5)
        assert a.evaluate({"x": 5}) and not a.evaluate({"x": 6})

    def test_eq_atom_evaluate(self):
        a = atom_eq(x, y)
        assert a.evaluate({"x": 2, "y": 2})
        assert not a.evaluate({"x": 2, "y": 3})


class TestConnectives:
    def test_conj_unit_laws(self):
        a = atom_le(x, 0)
        assert conj(a, TRUE) == a
        assert conj(a, FALSE) is FALSE
        assert conj() is TRUE

    def test_disj_unit_laws(self):
        a = atom_le(x, 0)
        assert disj(a, FALSE) == a
        assert disj(a, TRUE) is TRUE
        assert disj() is FALSE

    def test_flattening_and_dedup(self):
        a, b = atom_le(x, 0), atom_le(y, 0)
        f = conj(conj(a, b), a)
        assert f == conj(a, b)

    def test_neg_involution(self):
        a = atom_le(x, 0)
        assert neg(neg(a)) == a

    def test_neg_le_atom_integer_exact(self):
        # not(x <= 0) is x >= 1
        assert neg(atom_le(x, 0)) == atom_ge(x, 1)

    def test_neg_eq_atom(self):
        cubes = to_dnf(neg(atom_eq(x, 0)))
        assert len(cubes) == 2


class TestNormalForms:
    def test_nnf_pushes_negation(self):
        f = neg(conj(atom_le(x, 0), atom_le(y, 0)))
        nnf = to_nnf(f)
        cubes = to_dnf(nnf)
        assert len(cubes) == 2

    def test_dnf_distributes(self):
        f = conj(disj(atom_le(x, 0), atom_ge(x, 5)), atom_le(y, 0))
        cubes = to_dnf(f)
        assert len(cubes) == 2
        assert all(len(c) == 2 for c in cubes)

    def test_dnf_true_false(self):
        assert to_dnf(TRUE) == [[]]
        assert to_dnf(FALSE) == []

    def test_dnf_limit(self):
        big = conj(*(disj(atom_le(var(f"v{i}"), 0), atom_ge(var(f"v{i}"), 5))
                     for i in range(40)))
        with pytest.raises(MemoryError):
            to_dnf(big, limit=1000)


class TestQuantifiers:
    def test_exists_drops_unused_binder(self):
        a = atom_le(x, 0)
        assert exists(["z"], a) == a

    def test_exists_free_vars(self):
        f = exists(["x"], conj(atom_le(x, y), atom_le(y, x)))
        assert f.free_vars() == {"y"}

    def test_substitute_avoids_capture(self):
        f = exists(["x"], atom_le(x, y))
        g = f.substitute({"y": var("x")})
        # the bound x must have been renamed apart from the substituted x
        assert "x" in g.free_vars()

    def test_rename_avoids_capture(self):
        f = exists(["x"], atom_le(x, y))
        g = f.rename({"y": "x"})
        assert "x" in g.free_vars()


class TestSubstitution:
    def test_formula_substitute(self):
        f = conj(atom_le(x, 0), atom_ge(y, 0))
        g = f.substitute({"x": y + 1})
        assert g == conj(atom_le(y + 1, 0), atom_ge(y, 0))

    def test_formula_rename(self):
        f = atom_le(x, y)
        assert f.rename({"x": "a", "y": "b"}) == atom_le(var("a"), var("b"))

    def test_evaluate_connectives(self):
        f = disj(atom_le(x, 0), atom_ge(y, 5))
        assert f.evaluate({"x": 1, "y": 5})
        assert not f.evaluate({"x": 1, "y": 4})
