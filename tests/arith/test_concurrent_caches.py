"""Long-lived-process concurrency: solver caches under concurrent
readers and cache clears, the thread-safe default context, and the
telemetry surface the serve daemon exposes.

These are the satellite regressions for the analysis daemon: its worker
threads hammer the shared caches while (in tooling or tests)
``clear_caches()`` may run concurrently.  The contract (documented on
:func:`repro.arith.solver.clear_caches`) is swap-clear: in-flight
readers finish against the stale-but-valid cache generation; no reader
ever observes a half-cleared structure or a wrong answer."""

import threading

from repro.arith.formula import atom_ge, atom_le, atom_lt, conj, disj
from repro.arith.solver import cache_telemetry, clear_caches, is_sat
from repro.arith.terms import var

x, y = var("x"), var("y")

#: (formula, expected satisfiability) -- a mix that exercises the DNF
#: memo, the FM memo, and the context sat cache.
CASES = [
    (conj(atom_ge(x, 0), atom_le(x, 10)), True),
    (conj(atom_ge(x, 1), atom_le(x, 0)), False),
    (conj(atom_lt(x, y), atom_lt(y, x)), False),
    (disj(conj(atom_ge(x, 5), atom_le(x, 3)), atom_ge(y, 0)), True),
    (conj(atom_le(x.scale(2), 1), atom_ge(x.scale(2), 1)), False),
]


class TestConcurrentClear:
    def test_readers_survive_concurrent_clears(self):
        """8 reader threads querying in a loop while the main thread
        clears all caches repeatedly: every answer stays correct and no
        thread dies."""
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                for formula, expected in CASES:
                    try:
                        got = is_sat(formula)
                    except Exception as exc:  # noqa: BLE001
                        failures.append(repr(exc))
                        return
                    if got is not expected:
                        failures.append(f"{formula}: {got} != {expected}")
                        return

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for t in threads:
            t.start()
        try:
            for _ in range(200):
                clear_caches()
        finally:
            stop.set()
            for t in threads:
                t.join(30.0)
        assert not failures, failures[:5]

    def test_concurrent_clears_do_not_interleave(self):
        """clear_caches() from many threads at once is serialized (the
        _CLEAR_LOCK): no exceptions, caches empty afterwards."""
        barrier = threading.Barrier(6)
        failures = []

        def clearer():
            barrier.wait()
            try:
                for _ in range(50):
                    clear_caches()
            except Exception as exc:  # noqa: BLE001
                failures.append(repr(exc))

        threads = [threading.Thread(target=clearer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert not failures


class TestDefaultContextRace:
    def test_single_instance_under_concurrent_first_use(self):
        """default_context() double-checked locking: N threads racing the
        first call all get the same instance."""
        import repro.arith.context as context_module

        with context_module._DEFAULT_CONTEXT_LOCK:
            saved = context_module._DEFAULT_CONTEXT
            context_module._DEFAULT_CONTEXT = None
        try:
            barrier = threading.Barrier(8)
            seen = []

            def grab():
                barrier.wait()
                seen.append(context_module.default_context())

            threads = [threading.Thread(target=grab) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(10.0)
            assert len(seen) == 8
            assert len({id(ctx) for ctx in seen}) == 1
        finally:
            with context_module._DEFAULT_CONTEXT_LOCK:
                context_module._DEFAULT_CONTEXT = saved


class TestTelemetry:
    def test_cache_telemetry_shape(self):
        for formula, _ in CASES:
            is_sat(formula)
        telemetry = cache_telemetry()
        assert set(telemetry) == {
            "default_context", "dnf", "fm", "backends", "interned_formulas",
        }
        assert telemetry["interned_formulas"] > 0
        assert telemetry["default_context"]["sat"] >= 1
        assert isinstance(telemetry["backends"], dict)
