"""Regression tests for strict-bound witness picking in the FM layer.

Historically ``_pick_value`` only knew closed bounds: for a strict lower
bound with an integral value, ``math.ceil(lo)`` returned ``lo`` itself --
a "model" violating ``lo < x`` (symmetrically ``math.floor(up)`` for
strict upper bounds).  ``Rel.LT`` atoms keep strict bounds strict through
substitution and elimination, and the picker now steps off integral open
endpoints.
"""

from fractions import Fraction

import pytest

from repro.arith import fm
from repro.arith.fm import cube_is_sat, cube_model, _pick_value
from repro.arith.formula import Atom, Rel
from repro.arith.terms import LinExpr


def _lt(coeffs, const):
    """Atom ``expr < 0`` (rational-strict)."""
    return Atom(LinExpr(coeffs, const), Rel.LT)


def _le(coeffs, const):
    return Atom(LinExpr(coeffs, const), Rel.LE)


class TestStrictIntegralBounds:
    def test_strict_lower_integral(self):
        # 3 - x < 0  i.e.  x > 3: ceil(3) == 3 is NOT a witness
        env = cube_model([_lt({"x": -1}, 3)])
        assert env is not None
        assert env["x"] > 3

    def test_strict_upper_integral(self):
        # x + 2 < 0  i.e.  x < -2: floor(-2) == -2 is NOT a witness
        env = cube_model([_lt({"x": 1}, 2)])
        assert env is not None
        assert env["x"] < -2

    def test_strict_bounds_both_sides(self):
        # 1 < x < 2: no integer inside; the midpoint witness is interior
        env = cube_model([_lt({"x": -1}, 1), _lt({"x": 1}, -2)])
        assert env is not None
        assert Fraction(1) < env["x"] < Fraction(2)

    def test_strict_lower_closed_upper_single_point_gap(self):
        # 0 < x <= 1 admits the integer 1
        env = cube_model([_lt({"x": -1}, 0), _le({"x": 1}, -1)])
        assert env is not None
        assert Fraction(0) < env["x"] <= Fraction(1)

    def test_open_empty_interval_unsat(self):
        # 0 < x < 0 is contradictory; the strict combination 0 < 0 folds
        assert cube_is_sat([_lt({"x": -1}, 0), _lt({"x": 1}, 0)]) is False
        assert cube_model([_lt({"x": -1}, 0), _lt({"x": 1}, 0)]) is None

    def test_closed_single_point_still_sat(self):
        # 0 <= x <= 0 keeps its unique witness
        env = cube_model([_le({"x": -1}, 0), _le({"x": 1}, 0)])
        assert env is not None
        assert env["x"] == 0

    def test_strictness_survives_equality_substitution(self):
        # y == x + 1  and  3 - y < 0: substituting leaves 4 - ... wait,
        # 3 - (x + 1) < 0  i.e.  x > 2 -- strictness must survive, so an
        # integral bound of 2 cannot be returned for x.
        eq = Atom(LinExpr({"y": 1, "x": -1}, -1), Rel.EQ)  # y - x - 1 == 0
        lt = _lt({"y": -1}, 3)  # 3 - y < 0
        env = cube_model([eq, lt])
        assert env is not None
        assert env["y"] == env["x"] + 1
        assert env["y"] > 3

    def test_strictness_survives_elimination(self):
        # x < y and y < x + 1: eliminating y gives the strict constant
        # 0 < 1 (sat); witnesses must satisfy both strict atoms.
        a = _lt({"x": 1, "y": -1}, 0)  # x - y < 0
        b = _lt({"y": 1, "x": -1}, -1)  # y - x - 1 < 0
        env = cube_model([a, b])
        assert env is not None
        assert env["x"] < env["y"] < env["x"] + 1

    def test_model_evaluates_all_atoms(self):
        atoms = [_lt({"x": -1}, 5), _le({"x": 1, "z": -1}, 0), _lt({"z": 1}, -9)]
        env = cube_model(atoms)
        assert env is not None
        for a in atoms:
            assert a.evaluate(env)


class TestStrictAtomAlgebra:
    def test_strict_negation_is_rational_exact(self):
        # not(2x - 1 < 0) is x >= 1/2; integer tightening to x >= 1 would
        # wrongly exclude the whole interval [1/2, 1)
        a = Atom(LinExpr({"x": 2}, -1), Rel.LT)
        neg_a = a.negated()
        env = {"x": Fraction(1, 2)}
        assert not a.evaluate(env)
        assert neg_a.evaluate(env)

    def test_strict_atoms_gcd_normalized(self):
        # positive rescale preserves strictness; 2x < 0 and x < 0 intern
        # to the same node
        from repro.arith.formula import _atom_or_const

        a = _atom_or_const(LinExpr({"x": 2}), Rel.LT)
        b = _atom_or_const(LinExpr({"x": 1}), Rel.LT)
        assert a is b

    def test_strict_constant_folds(self):
        from repro.arith.formula import _atom_or_const, FALSE, TRUE

        assert _atom_or_const(LinExpr({}, -1), Rel.LT) is TRUE
        assert _atom_or_const(LinExpr({}, 0), Rel.LT) is FALSE


class TestResidualEqualityModels:
    """Witness construction must *solve* equalities whose free variables
    are unconstrained elsewhere in the cube.  The historical defect
    defaulted every unassigned variable to 0, returning the invalid
    ``x = y = 0`` for ``x == y + 5``; the model is now validated against
    every input atom, so a construction hole degrades to ``None`` rather
    than an assignment that violates the cube."""

    def test_equality_with_unconstrained_free_variable(self):
        # x == y + 5 with y appearing nowhere else
        eq = Atom(LinExpr({"x": 1, "y": -1}, -5), Rel.EQ)
        env = cube_model([eq])
        assert env is not None
        assert env["x"] == env["y"] + 5

    def test_equality_chain_through_unconstrained_variables(self):
        # x == y + 5 and y == z - 2 with z unconstrained: the chain holds
        e1 = Atom(LinExpr({"x": 1, "y": -1}, -5), Rel.EQ)
        e2 = Atom(LinExpr({"y": 1, "z": -1}, 2), Rel.EQ)
        env = cube_model([e1, e2])
        assert env is not None
        assert env["x"] == env["y"] + 5
        assert env["y"] == env["z"] - 2

    def test_equality_beside_unrelated_inequalities(self):
        # the inequality constrains w only; the equality still pins x - y
        eq = Atom(LinExpr({"x": 1, "y": -1}, -5), Rel.EQ)
        ineq = _le({"w": 1}, -7)  # w <= 7
        env = cube_model([eq, ineq])
        assert env is not None
        for a in (eq, ineq):
            assert a.evaluate(env)

    def test_model_validated_against_every_input_atom(self):
        atoms = [
            Atom(LinExpr({"x": 1, "y": -1}, -5), Rel.EQ),
            _le({"x": 1, "z": 1}, 0),
            _lt({"z": -1}, 1),
        ]
        env = cube_model(atoms)
        assert env is not None
        for a in atoms:
            assert a.evaluate(env)


class TestPickValueUnit:
    def test_closed_bounds_unchanged(self):
        assert _pick_value(Fraction(3), None) == 3
        assert _pick_value(None, Fraction(-2)) == -2
        assert _pick_value(Fraction(1), Fraction(2)) == 1
        assert _pick_value(None, None) == 0

    def test_strict_integral_endpoints_stepped_off(self):
        assert _pick_value(Fraction(3), None, lo_strict=True) > 3
        assert _pick_value(None, Fraction(-2), up_strict=True) < -2
        v = _pick_value(Fraction(1), Fraction(2), lo_strict=True, up_strict=True)
        assert Fraction(1) < v < Fraction(2)

    def test_strict_fractional_endpoints(self):
        # ceil/floor already step off non-integral strict endpoints
        assert _pick_value(Fraction(5, 2), None, lo_strict=True) == 3
        assert _pick_value(None, Fraction(5, 2), up_strict=True) == 2

    def test_strict_lower_closed_upper_prefers_integer(self):
        assert _pick_value(Fraction(0), Fraction(1), lo_strict=True) == 1
