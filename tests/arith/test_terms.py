"""Unit tests for linear expressions."""

from fractions import Fraction

import pytest

from repro.arith.terms import LinExpr, const, linear_combination, to_linexpr, var


class TestConstruction:
    def test_zero_coefficients_dropped(self):
        e = LinExpr({"x": 0, "y": 2})
        assert e.variables() == {"y"}

    def test_constant_expression(self):
        e = const(5)
        assert e.is_constant()
        assert e.constant == 5

    def test_var_expression(self):
        e = var("x")
        assert e.coeff("x") == 1
        assert e.coeff("y") == 0

    def test_fraction_coefficients(self):
        e = LinExpr({"x": Fraction(1, 2)})
        assert e.coeff("x") == Fraction(1, 2)

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            LinExpr({"x": 0.5})

    def test_to_linexpr_coercions(self):
        assert to_linexpr(3) == const(3)
        assert to_linexpr("x") == var("x")
        assert to_linexpr(var("x")) == var("x")

    def test_linear_combination(self):
        e = linear_combination([(2, "x"), (3, "y"), (1, "x")], 7)
        assert e.coeff("x") == 3
        assert e.coeff("y") == 3
        assert e.constant == 7


class TestArithmetic:
    def test_addition(self):
        e = var("x") + var("y") + 3
        assert e.coeff("x") == 1 and e.coeff("y") == 1 and e.constant == 3

    def test_subtraction_cancels(self):
        e = var("x") - var("x")
        assert e.is_constant() and e.constant == 0

    def test_radd_rsub(self):
        assert (3 + var("x")) == var("x") + 3
        assert (3 - var("x")) == -var("x") + 3

    def test_scaling(self):
        e = (var("x") + 2).scale(3)
        assert e.coeff("x") == 3 and e.constant == 6

    def test_mul_operator(self):
        assert 2 * var("x") == var("x").scale(2)
        assert var("x") * 2 == var("x").scale(2)

    def test_negation(self):
        e = -(var("x") - 1)
        assert e.coeff("x") == -1 and e.constant == 1


class TestSubstitution:
    def test_substitute_var(self):
        e = var("x") + var("y")
        r = e.substitute({"x": var("a") + 1})
        assert r == var("a") + var("y") + 1

    def test_substitute_scales_coefficient(self):
        e = var("x").scale(3)
        r = e.substitute({"x": var("a") + 1})
        assert r.coeff("a") == 3 and r.constant == 3

    def test_substitute_no_hit_is_identity(self):
        e = var("x") + 1
        assert e.substitute({"z": var("q")}) is e

    def test_rename_merges(self):
        e = var("x") + var("y")
        r = e.rename({"x": "y"})
        assert r == var("y").scale(2)

    def test_evaluate(self):
        e = var("x").scale(2) + var("y") - 3
        assert e.evaluate({"x": 5, "y": 1}) == 8


class TestNormalization:
    def test_normalized_scales_to_integers(self):
        e = LinExpr({"x": Fraction(1, 2), "y": Fraction(1, 3)})
        n = e.normalized()
        assert all(c.denominator == 1 for c in n.coeffs.values())

    def test_normalized_gcd_reduced(self):
        e = LinExpr({"x": 4, "y": 6}, 8)
        n = e.normalized()
        assert n == LinExpr({"x": 2, "y": 3}, 4)

    def test_hash_equality_consistency(self):
        a = var("x") + var("y")
        b = var("y") + var("x")
        assert a == b and hash(a) == hash(b)

    def test_str_roundtrip_sanity(self):
        assert str(var("x") - var("y") + 1) == "x - y + 1"
        assert str(const(0)) == "0"
