"""Property tests for the hash-consed formula core.

Invariants under test:

* **Interning**: building a term/formula structurally equal to a live one
  returns the identical object (``is``), including across argument
  orderings of ``conj``/``disj`` (canonical ordering at build time).
* **Hash stability**: hashes are computed at construction and never
  change; structurally equal nodes hash equal.
* **Semantic transparency**: interning does not change ``is_sat`` /
  ``entails`` answers -- checked on a randomized corpus against a fresh
  (cache-cold) context and against concrete model evaluation.
"""

import random

from repro.arith.context import SolverContext
from repro.arith.formula import (
    And,
    Atom,
    BoolConst,
    Exists,
    FALSE,
    Formula,
    Not,
    Or,
    Rel,
    TRUE,
    atom_eq,
    atom_ge,
    atom_le,
    conj,
    disj,
    exists,
    neg,
)
from repro.arith.solver import entails, is_sat, model
from repro.arith.terms import LinExpr, var

VARS = ("a", "b", "c", "d")


def random_linexpr(rng: random.Random) -> LinExpr:
    coeffs = {
        v: rng.randint(-3, 3)
        for v in rng.sample(VARS, rng.randint(1, len(VARS)))
    }
    return LinExpr(coeffs, rng.randint(-5, 5))


def random_formula(rng: random.Random, depth: int = 3) -> Formula:
    if depth == 0 or rng.random() < 0.3:
        e = random_linexpr(rng)
        rel = rng.choice(["le", "ge", "eq"])
        if rel == "le":
            return atom_le(e, rng.randint(-4, 4))
        if rel == "ge":
            return atom_ge(e, rng.randint(-4, 4))
        return atom_eq(e, rng.randint(-4, 4))
    kind = rng.random()
    if kind < 0.45:
        return conj(*(random_formula(rng, depth - 1) for _ in range(2)))
    if kind < 0.9:
        return disj(*(random_formula(rng, depth - 1) for _ in range(2)))
    return neg(random_formula(rng, depth - 1))


def rebuild(p: Formula) -> Formula:
    """Reconstruct *p* bottom-up through the public constructors."""
    if isinstance(p, BoolConst):
        return TRUE if p.value else FALSE
    if isinstance(p, Atom):
        return Atom(LinExpr(dict(p.expr.coeffs), p.expr.constant), p.rel)
    if isinstance(p, And):
        return conj(*(rebuild(a) for a in p.args))
    if isinstance(p, Or):
        return disj(*(rebuild(a) for a in p.args))
    if isinstance(p, Not):
        return neg(rebuild(p.arg))
    if isinstance(p, Exists):
        return exists(p.bound, rebuild(p.body))
    raise TypeError(type(p).__name__)


class TestInterning:
    def test_linexpr_interned(self):
        e1 = LinExpr({"x": 1, "y": -2}, 3)
        e2 = LinExpr({"y": -2, "x": 1}, 3)
        assert e1 is e2
        assert var("x") + var("y") is var("y") + var("x")

    def test_atom_interned(self):
        a1 = atom_le(var("x"), 3)
        a2 = atom_le(var("x"), 3)
        assert a1 is a2
        assert Atom(LinExpr({"x": 1}, -3), Rel.LE) is a1

    def test_bool_const_singletons(self):
        assert BoolConst(True) is TRUE
        assert BoolConst(False) is FALSE

    def test_conj_order_canonical(self):
        a = atom_le(var("x"), 0)
        b = atom_ge(var("y"), 2)
        assert conj(a, b) is conj(b, a)
        assert disj(a, b) is disj(b, a)
        # direct N-ary construction canonicalises too
        assert And([a, b]) is And([b, a])
        assert Or([a, b]) is Or([b, a])

    def test_not_and_exists_interned(self):
        p = conj(atom_le(var("x"), 0), atom_ge(var("y"), 1))
        q = disj(p, atom_eq(var("z"), 5))
        assert Not(q) is Not(q)
        assert exists(["x"], p) is exists(["x"], p)
        assert Exists(("x", "y"), p) is Exists(("y", "x"), p)

    def test_randomized_rebuild_identity(self):
        rng = random.Random(20260729)
        for _ in range(60):
            f = random_formula(rng)
            g = rebuild(f)
            assert f is g, (f, g)

    def test_hash_stability(self):
        rng = random.Random(42)
        for _ in range(40):
            f = random_formula(rng)
            h1 = hash(f)
            assert hash(rebuild(f)) == h1
            assert hash(f) == h1  # precomputed, stable across calls


class TestSemanticTransparency:
    def test_sat_answers_preserved(self):
        """Interned formulas give the same SAT answers through the warm
        default context, a cold context, and concrete evaluation."""
        rng = random.Random(987)
        cold = SolverContext()
        for _ in range(40):
            f = random_formula(rng, depth=2)
            warm_answer = is_sat(f)
            assert cold.is_sat(f) == warm_answer
            if warm_answer:
                env = model(f)
                assert env is not None
                assert f.evaluate(env)

    def test_entails_answers_preserved(self):
        rng = random.Random(555)
        cold = SolverContext()
        for _ in range(25):
            f = random_formula(rng, depth=2)
            g = random_formula(rng, depth=2)
            assert entails(conj(f, g), f)
            assert cold.entails(conj(f, g), f)
            assert entails(f, g) == cold.entails(f, g)

    def test_substitute_rename_stay_interned(self):
        f = conj(atom_le(var("x"), 0), atom_ge(var("y"), 1))
        r1 = f.rename({"x": "u"})
        r2 = f.rename({"x": "u"})
        assert r1 is r2
        s1 = f.substitute({"y": var("x") + 1})
        s2 = f.substitute({"y": var("x") + 1})
        assert s1 is s2
