"""Property-based tests (hypothesis) for the arithmetic core.

Random small formulas are generated and the decision procedures are
checked against brute-force evaluation over a small integer grid:
a model found by the solver must satisfy the formula; a formula with a
grid witness must be declared satisfiable; entailment must never claim
implications a grid counterexample refutes, etc.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.arith.formula import (
    Formula,
    atom_eq,
    atom_ge,
    atom_le,
    atom_lt,
    conj,
    disj,
    neg,
    to_dnf,
)
from repro.arith.solver import entails, is_sat, model, project, simplify
from repro.arith.terms import LinExpr, var

VARS = ("x", "y", "z")
GRID = range(-4, 5)


@st.composite
def linexprs(draw):
    coeffs = {
        v: draw(st.integers(min_value=-3, max_value=3)) for v in VARS
    }
    constant = draw(st.integers(min_value=-5, max_value=5))
    return LinExpr(coeffs, constant)


@st.composite
def atoms(draw):
    e = draw(linexprs())
    kind = draw(st.sampled_from(["le", "lt", "eq", "ge"]))
    builder = {"le": atom_le, "lt": atom_lt, "eq": atom_eq, "ge": atom_ge}[kind]
    return builder(e, 0)


@st.composite
def formulas(draw, depth=2):
    if depth == 0:
        return draw(atoms())
    choice = draw(st.integers(min_value=0, max_value=3))
    if choice == 0:
        return draw(atoms())
    if choice == 1:
        return conj(draw(formulas(depth=depth - 1)),
                    draw(formulas(depth=depth - 1)))
    if choice == 2:
        return disj(draw(formulas(depth=depth - 1)),
                    draw(formulas(depth=depth - 1)))
    return neg(draw(formulas(depth=depth - 1)))


def grid_models(f: Formula):
    for values in itertools.product(GRID, repeat=len(VARS)):
        env = dict(zip(VARS, values))
        try:
            if f.evaluate(env):
                yield env
        except ValueError:
            return


@settings(max_examples=120, deadline=None)
@given(formulas())
def test_grid_witness_implies_sat(f):
    for env in grid_models(f):
        assert is_sat(f), f"grid model {env} exists but solver says UNSAT"
        break


@settings(max_examples=120, deadline=None)
@given(formulas())
def test_model_satisfies_formula(f):
    env = model(f)
    if env is not None:
        full = {v: env.get(v, 0) for v in VARS}
        # rationals from the model must actually satisfy the formula
        assert f.evaluate(full)


@settings(max_examples=80, deadline=None)
@given(formulas(), formulas())
def test_entailment_respects_grid(a, b):
    if entails(a, b):
        for env in grid_models(a):
            assert b.evaluate(env), (
                f"claimed {a!r} => {b!r} but {env} is a counterexample"
            )


@settings(max_examples=80, deadline=None)
@given(formulas())
def test_simplify_preserves_grid_semantics(f):
    g = simplify(f)
    for values in itertools.product(range(-3, 4), repeat=len(VARS)):
        env = dict(zip(VARS, values))
        assert f.evaluate(env) == g.evaluate(env)


@settings(max_examples=80, deadline=None)
@given(formulas())
def test_dnf_preserves_grid_semantics(f):
    cubes = to_dnf(f)
    for values in itertools.product(range(-2, 3), repeat=len(VARS)):
        env = dict(zip(VARS, values))
        dnf_value = any(all(a.evaluate(env) for a in cube) for cube in cubes)
        assert f.evaluate(env) == dnf_value


@settings(max_examples=60, deadline=None)
@given(formulas())
def test_projection_is_sound_overapproximation(f):
    g = project(f, eliminate={"z"})
    assert g.free_vars() <= {"x", "y"}
    # every grid model of f must satisfy the projection
    for env in grid_models(f):
        assert g.evaluate({"x": env["x"], "y": env["y"]})


# ---------------------------------------------------------------------------
# Differential backend properties: on random small cubes the matrix engine
# must agree with the reference exactly (same "fm" semantics), and the z3
# integer backend -- when importable -- must obey the one-sided law:
# fm-UNSAT implies int-UNSAT (the relaxation never loses integer models).
# ---------------------------------------------------------------------------

from repro.arith import fm as _fm
from repro.arith.backends import get_backend
from repro.arith.backends.z3backend import Z3_AVAILABLE

_REF = get_backend("reference")
_MAT = get_backend("matrix")


@st.composite
def cubes(draw):
    from repro.arith.formula import Atom as _Atom

    drawn = [draw(atoms()) for _ in range(draw(st.integers(1, 5)))]
    # the smart constructors fold constant atoms to BoolConst; cubes are
    # conjunctions of real atoms
    return [a for a in drawn if isinstance(a, _Atom)]


@settings(max_examples=150, deadline=None)
@given(cubes())
def test_matrix_backend_sat_agrees_with_reference(cube):
    assert _MAT.cube_is_sat(cube) == _REF.cube_is_sat(cube)


@settings(max_examples=100, deadline=None)
@given(cubes())
def test_matrix_backend_projection_agrees_with_reference(cube):
    try:
        expected = frozenset(_REF.project_cube(cube, keep={"x"}))
    except _fm.Unsat:
        with __import__("pytest").raises(_fm.Unsat):
            _MAT.project_cube(cube, keep={"x"})
        return
    assert frozenset(_MAT.project_cube(cube, keep={"x"})) == expected


if Z3_AVAILABLE:

    @settings(max_examples=100, deadline=None)
    @given(cubes())
    def test_z3_backend_obeys_one_sided_law(cube):
        fm_sat = _REF.cube_is_sat(cube)
        int_sat = get_backend("z3").cube_is_sat(cube)
        if not fm_sat:
            assert not int_sat, (
                "fm relaxation answered UNSAT on a cube with an integer "
                f"model: {cube!r}"
            )
        # And on the exact unit-coefficient fragment the grid agrees too:
        if int_sat:
            assert fm_sat
