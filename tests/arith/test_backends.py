"""Tests for :mod:`repro.arith.backends`: the registry, matrix-vs-reference
parity, the differential meta-backend's agreement laws and cube
minimization, z3 (self-skipping where absent), and the backend knob on
:class:`~repro.arith.context.SolverContext` and the pipeline."""

import random
from fractions import Fraction

import pytest

from repro.arith import fm
from repro.arith.backends import (
    BackendUnavailable,
    CubeBackend,
    available_backends,
    clear_backend_caches,
    get_backend,
)
from repro.arith.backends.differential import (
    BackendDivergence,
    DifferentialBackend,
)
from repro.arith.backends.matrix import MatrixBackend
from repro.arith.backends.reference import ReferenceBackend
from repro.arith.backends.z3backend import Z3_AVAILABLE
from repro.arith.context import SolverContext
from repro.arith.formula import Atom, Rel, atom_eq, atom_ge, atom_le, atom_lt, conj
from repro.arith.terms import LinExpr, var

x, y, z = var("x"), var("y"), var("z")


class TestRegistry:
    def test_default_is_reference(self):
        assert get_backend(None).name == "reference"
        assert get_backend().name == "reference"

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_BACKEND", "matrix")
        assert get_backend(None).name == "matrix"

    def test_instances_are_singletons(self):
        assert get_backend("matrix") is get_backend("matrix")
        assert get_backend("reference") is get_backend("reference")

    def test_instance_passthrough(self):
        b = MatrixBackend()
        assert get_backend(b) is b

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown solver backend"):
            get_backend("simplex")

    def test_differential_default_pair(self):
        d = get_backend("differential")
        assert d.primary.name == "reference"
        assert d.secondary.name == "matrix"

    def test_differential_explicit_pair(self):
        d = get_backend("differential:matrix,reference")
        assert d.primary.name == "matrix"
        assert d.secondary.name == "reference"

    def test_differential_bad_spec_rejected(self):
        with pytest.raises(ValueError, match="differential"):
            get_backend("differential:matrix")

    def test_available_backends(self):
        names = available_backends()
        assert "reference" in names
        assert "matrix" in names
        assert ("z3" in names) == Z3_AVAILABLE

    def test_z3_unavailable_raises_cleanly(self):
        if Z3_AVAILABLE:
            pytest.skip("z3 importable here; the guard path cannot fire")
        with pytest.raises(BackendUnavailable, match="z3-solver"):
            get_backend("z3")


class TestMatrixParity:
    """The matrix backend must agree with the reference **exactly**."""

    ref = ReferenceBackend()
    mat = MatrixBackend()

    def both_sat(self, cube):
        r = self.ref.cube_is_sat(cube)
        assert self.mat.cube_is_sat(cube) == r
        return r

    def both_project(self, cube, **kw):
        try:
            r = self.ref.project_cube(cube, **kw)
        except fm.Unsat:
            with pytest.raises(fm.Unsat):
                self.mat.project_cube(cube, **kw)
            return None
        m = self.mat.project_cube(cube, **kw)
        assert frozenset(m) == frozenset(r)
        return r

    def test_bounded_interval(self):
        assert self.both_sat([atom_ge(x, 0), atom_le(x, 5)])
        assert not self.both_sat([atom_ge(x, 6), atom_le(x, 5)])

    def test_chain_with_equalities(self):
        cube = [atom_eq(x, y + 1), atom_eq(y, z + 1), atom_le(x, 0),
                atom_ge(z, 0)]
        assert not self.both_sat(cube)

    def test_strict_endpoints(self):
        assert not self.both_sat([atom_lt(x, 1), atom_ge(x, 1)])
        assert self.both_sat([atom_lt(x, 1), atom_ge(x, 0)])

    def test_integer_tightening(self):
        # 2x <= 1 and 2x >= 1 tighten to x <= 0 and x >= 1: unsat for both
        # engines, though the rational point x = 1/2 satisfies the raw cube.
        assert not self.both_sat([atom_le(2 * x, 1), atom_ge(2 * x, 1)])

    def test_projection_structural_parity(self):
        cube = [atom_ge(x, 0), atom_le(x + y, 3), atom_ge(y, 1),
                atom_le(y + z, 7), atom_ge(z, 2)]
        proj = self.both_project(cube, keep={"x"})
        assert proj is not None
        for a in proj:
            assert a.expr.variables() <= {"x"}
        self.both_project(cube, eliminate={"y"})

    def test_projection_keeps_untouched_raw_atoms_verbatim(self):
        # Atoms that never take part in a combination come out object-
        # identical, even when not in canonical form (raw constructor).
        raw = Atom(LinExpr({"x": Fraction(2)}, Fraction(-6)), Rel.LE)
        out = self.mat.project_cube([raw, atom_ge(y, 0)], keep={"x"})
        assert raw in out

    def test_huge_coefficients_upcast_exactly(self):
        # One combination of these rows overflows int64; the object-dtype
        # upcast must keep the arithmetic exact, not wrap around.
        big = 2 ** 40
        cube = [
            atom_le(big * x + big * y, 1),
            atom_ge(big * x - big * y, 3 * big * big),
            atom_ge(y, 0),
        ]
        assert self.mat.cube_is_sat(cube) == self.ref.cube_is_sat(cube)
        self.both_project(cube, keep={"y"})

    def test_empty_and_constant_cubes(self):
        assert self.both_sat([])
        # A raw constant atom (the smart constructor would fold it away).
        assert self.both_sat([Atom(LinExpr({}, Fraction(-3)), Rel.LE)])

    def test_model_delegates_to_reference_witness(self):
        cube = [atom_ge(x, 2), atom_le(x, 2)]
        env = self.mat.cube_model(cube)
        assert env is not None and env["x"] == 2

    def test_sat_cache_is_private_and_clearable(self):
        mat = MatrixBackend()
        cube = [atom_ge(x, 0)]
        assert mat.cube_is_sat(cube)
        assert len(mat._sat_cache) == 1
        assert len(fm._CUBE_SAT_CACHE) == 0 or True  # reference untouched
        mat.clear_caches()
        assert len(mat._sat_cache) == 0

    def test_randomized_parity_raw_atoms(self):
        rng = random.Random(20260808)
        rels = [Rel.LE, Rel.LE, Rel.LE, Rel.LT, Rel.EQ]
        for _ in range(300):
            cube = []
            for _ in range(rng.randint(1, 5)):
                coeffs = {
                    v: Fraction(rng.randint(-4, 4))
                    for v in rng.sample(("x", "y", "z"), rng.randint(1, 3))
                }
                coeffs = {k: c for k, c in coeffs.items() if c}
                if coeffs and rng.random() < 0.2:
                    k = next(iter(coeffs))
                    coeffs[k] += Fraction(1, rng.randint(2, 4))
                cube.append(
                    Atom(
                        LinExpr(coeffs, Fraction(rng.randint(-6, 6))),
                        rng.choice(rels),
                    )
                )
            assert self.mat.cube_is_sat(cube) == self.ref.cube_is_sat(cube)


class _AlwaysUnsat(CubeBackend):
    """A deliberately broken fm backend: everything is unsat."""

    name = "always-unsat"
    semantics = "fm"
    trust = 0

    def cube_is_sat(self, atoms):
        return False


class _FakeInt(CubeBackend):
    """A fake integer-semantics backend wrapping the reference, with a
    forced verdict override for chosen cubes."""

    name = "fake-int"
    semantics = "int"
    trust = 2
    supports_projection = False

    def __init__(self, override=None):
        self._ref = ReferenceBackend()
        self._override = override or {}

    def cube_is_sat(self, atoms):
        key = frozenset(atoms)
        if key in self._override:
            return self._override[key]
        return self._ref.cube_is_sat(atoms)


class TestDifferential:
    def test_agreement_passes_through(self):
        d = DifferentialBackend(ReferenceBackend(), MatrixBackend())
        assert d.cube_is_sat([atom_ge(x, 0), atom_le(x, 5)])
        assert not d.cube_is_sat([atom_ge(x, 6), atom_le(x, 5)])
        assert d.queries == 2

    def test_divergence_raises_with_minimized_cube(self):
        d = DifferentialBackend(ReferenceBackend(), _AlwaysUnsat())
        cube = [atom_ge(x, 0), atom_le(x, 5), atom_ge(y, 1), atom_le(y, 9),
                atom_le(z, 100)]
        with pytest.raises(BackendDivergence) as exc:
            d.cube_is_sat(cube)
        # Everything is removable: the broken backend diverges already on
        # the empty cube, so ddmin must shrink all the way down.
        assert exc.value.cube == []
        assert exc.value.answers == (True, False)
        assert "always-unsat" in str(exc.value)

    def test_projection_divergence_minimized(self):
        class _DropsAtoms(MatrixBackend):
            name = "drops-atoms"

            def project_cube(self, atoms, keep=None, eliminate=None):
                return []  # claims every projection is trivial

        d = DifferentialBackend(ReferenceBackend(), _DropsAtoms())
        cube = [atom_ge(x, 3), atom_ge(y, 0), atom_le(y, 8)]
        with pytest.raises(BackendDivergence) as exc:
            d.project_cube(cube, keep={"x"})
        # x >= 3 alone already shows the divergence.
        assert len(exc.value.cube) == 1

    def test_fm_int_one_sided_law(self):
        sat_cube = (atom_ge(x, 0), atom_le(x, 5))
        # fm-SAT / int-UNSAT: the legal relaxation gap -- counted, no raise.
        gap = _FakeInt({frozenset(sat_cube): False})
        d = DifferentialBackend(ReferenceBackend(), gap)
        assert d.cube_is_sat(list(sat_cube)) is True
        assert d.relaxation_gaps == 1
        # fm-UNSAT / int-SAT: a genuine soundness bug -- must raise.
        unsat_cube = (atom_ge(x, 6), atom_le(x, 5))
        bug = _FakeInt({frozenset(unsat_cube): True, frozenset(): False})
        d2 = DifferentialBackend(ReferenceBackend(), bug)
        with pytest.raises(BackendDivergence):
            d2.cube_is_sat(list(unsat_cube))

    def test_projection_check_skipped_without_native_projection(self):
        d = DifferentialBackend(ReferenceBackend(), _FakeInt())
        out = d.project_cube([atom_ge(x, 0), atom_ge(y, 1)], keep={"x"})
        assert frozenset(out) == frozenset(
            ReferenceBackend().project_cube(
                [atom_ge(x, 0), atom_ge(y, 1)], keep={"x"}
            )
        )
        assert d.queries == 0  # the comparison would be reference-vs-reference

    def test_equivalent_but_structurally_different_projections_pass(self):
        class _Doubles(MatrixBackend):
            name = "doubles"

            def project_cube(self, atoms, keep=None, eliminate=None):
                out = super().project_cube(atoms, keep=keep, eliminate=eliminate)
                # Add a redundant consequence: semantically a no-op.
                return out + [
                    Atom(a.expr + a.expr, a.rel) for a in out
                    if a.rel is Rel.LE
                ]

        d = DifferentialBackend(ReferenceBackend(), _Doubles())
        out = d.project_cube([atom_ge(x, 0), atom_ge(y, 1)], keep={"x"})
        assert frozenset(out) == frozenset(
            ReferenceBackend().project_cube(
                [atom_ge(x, 0), atom_ge(y, 1)], keep={"x"}
            )
        )

    def test_invalid_model_raises(self):
        class _BadModel(ReferenceBackend):
            name = "bad-model"

            def cube_model(self, atoms):
                return {"x": Fraction(-1)}

        d = DifferentialBackend(_BadModel(), MatrixBackend())
        with pytest.raises(BackendDivergence, match="cube_model"):
            d.cube_model([atom_ge(x, 0)])

    def test_clear_caches_cascades(self):
        primary, secondary = MatrixBackend(), MatrixBackend()
        d = DifferentialBackend(primary, secondary)
        d.cube_is_sat([atom_ge(x, 0)])
        assert len(primary._sat_cache) == 1
        assert len(secondary._sat_cache) == 1
        d.clear_caches()
        assert len(primary._sat_cache) == 0
        assert len(secondary._sat_cache) == 0


@pytest.mark.skipif(not Z3_AVAILABLE, reason="z3-solver not installed")
class TestZ3:
    def test_integer_sat_parity_on_exact_fragment(self):
        z3b = get_backend("z3")
        ref = get_backend("reference")
        cubes = [
            [atom_ge(x, 0), atom_le(x, 5)],
            [atom_ge(x, 6), atom_le(x, 5)],
            [atom_eq(x, y + 1), atom_le(x, 0), atom_ge(y, 0)],
            [atom_lt(x, 1), atom_ge(x, 1)],
        ]
        for cube in cubes:
            assert z3b.cube_is_sat(cube) == ref.cube_is_sat(cube)

    def test_model_is_integral_and_valid(self):
        z3b = get_backend("z3")
        cube = [atom_ge(x, 2), atom_le(x, 2), atom_ge(y, 0)]
        env = z3b.cube_model(cube)
        assert env is not None
        assert env["x"] == 2
        assert all(v.denominator == 1 for v in env.values())

    def test_differential_reference_vs_z3(self):
        d = DifferentialBackend(get_backend("reference"), get_backend("z3"))
        assert d.cube_is_sat([atom_ge(x, 0), atom_le(x, 5)])
        assert not d.cube_is_sat([atom_ge(x, 6), atom_le(x, 5)])
        # The relaxation-vs-integer gap must be tolerated one-sidedly.
        d.cube_is_sat(
            [Atom(LinExpr({"x": Fraction(2)}, Fraction(-1)), Rel.EQ)]
        )


class TestContextIntegration:
    def test_context_backend_knob(self):
        f = conj(atom_ge(x, 0), atom_le(x + y, 3), atom_ge(y, 1))
        expected = SolverContext().is_sat(f)
        for be in ("matrix", "differential"):
            ctx = SolverContext(backend=be)
            assert ctx.backend.name.startswith(be)
            assert ctx.is_sat(f) == expected

    def test_context_projection_and_model_routed(self):
        f = conj(atom_ge(x, 0), atom_le(x + y, 3), atom_ge(y, 1))
        ref_ctx = SolverContext()
        mat_ctx = SolverContext(backend="matrix")
        assert mat_ctx.project(f, keep={"x"}) == ref_ctx.project(f, keep={"x"})
        env = mat_ctx.model(f)
        assert env is not None and f.evaluate(env)

    def test_differential_context_entailment(self):
        ctx = SolverContext(backend="differential")
        assert ctx.entails(atom_ge(x, 2), atom_ge(x, 0))
        assert not ctx.entails(atom_ge(x, 0), atom_ge(x, 2))

    def test_clear_caches_clears_backends(self):
        mat = get_backend("matrix")
        mat.cube_is_sat([atom_ge(x, 7)])
        assert len(mat._sat_cache) > 0
        from repro.arith.solver import clear_caches

        clear_caches()
        assert len(mat._sat_cache) == 0

    def test_pipeline_backend_verdict_parity(self):
        from repro.core.pipeline import infer_source

        src = """
        int dec(int n) { if (n <= 0) { return 0; } else { return dec(n - 1); } }
        void top(int i) { int r = dec(i); return; }
        """
        base = infer_source(src)
        for be in ("matrix", "differential"):
            got = infer_source(src, backend=be)
            for m in base.specs:
                assert got.verdict(m) == base.verdict(m)
