"""Baseline analyzer tests: capability profiles match DESIGN.md's table."""

import pytest

from repro.baselines import (
    AProVELikeAnalyzer,
    MonolithicTerminationProver,
    RecurrentSetProver,
    T2LikeAnalyzer,
    UltimateLikeAnalyzer,
)
from repro.core.pipeline import Verdict
from repro.lang import parse_program

COUNTDOWN = "void main(int x) { while (x > 0) { x = x - 1; } }"
GROWTH = "void main(int x) { while (x > 0) { x = x + 1; } }"
CONDITIONAL = "void main(int x, int y) { while (x > 0) { x = x - y; } }"
RECURSIVE = """
void f(int n) { if (n <= 0) { return; } else { f(n - 1); return; } }
"""


class TestMonolithic:
    def test_proves_countdown(self):
        assert MonolithicTerminationProver(
            parse_program(COUNTDOWN)
        ).prove() is True

    def test_fails_growth(self):
        assert MonolithicTerminationProver(
            parse_program(GROWTH)
        ).prove() is False

    def test_fails_conditional(self):
        """The paper's point: no case analysis means no answer on programs
        that terminate only under a derivable input condition."""
        assert MonolithicTerminationProver(
            parse_program(CONDITIONAL)
        ).prove() is False

    def test_proves_recursive_countdown(self):
        assert MonolithicTerminationProver(
            parse_program(RECURSIVE)
        ).prove() is True

    def test_nonrecursive_program_trivially_proved(self):
        assert MonolithicTerminationProver(
            parse_program("void main(int x) { x = x + 1; }")
        ).prove() is True


class TestRecurrentSet:
    def test_finds_growth_witness(self):
        assert RecurrentSetProver(parse_program(GROWTH)).prove() is True

    def test_no_witness_for_countdown(self):
        assert RecurrentSetProver(parse_program(COUNTDOWN)).prove() is False

    def test_finds_conditional_witness(self):
        # while (x > 0) x -= y diverges for y <= 0: candidate sign
        # conditions include y <= 0
        assert RecurrentSetProver(parse_program(CONDITIONAL)).prove() is True

    def test_mutual_recursion_unsupported(self):
        program = parse_program("""
void f(int n) { g(n); }
void g(int n) { f(n); }
""")
        assert RecurrentSetProver(program).prove() in (False, None)


class TestToolProfiles:
    def test_aprove_like_never_answers_n(self):
        for src in (COUNTDOWN, GROWTH, CONDITIONAL):
            verdict = AProVELikeAnalyzer().analyze(parse_program(src))
            assert verdict in (Verdict.TERMINATING, Verdict.UNKNOWN)

    def test_aprove_like_proves_termination(self):
        assert AProVELikeAnalyzer().analyze(
            parse_program(COUNTDOWN)
        ) is Verdict.TERMINATING

    def test_ultimate_like_answers_n(self):
        assert UltimateLikeAnalyzer().analyze(
            parse_program(GROWTH)
        ) is Verdict.NONTERMINATING

    def test_t2_like_refuses_recursion(self):
        t2 = T2LikeAnalyzer()
        assert not t2.supports(parse_program(RECURSIVE))
        assert t2.analyze(parse_program(RECURSIVE)) is None

    def test_t2_like_accepts_loops(self):
        t2 = T2LikeAnalyzer()
        assert t2.supports(parse_program(COUNTDOWN))
        assert t2.analyze(parse_program(COUNTDOWN)) is Verdict.TERMINATING

    def test_conditional_program_splits_tools(self):
        """foo-style mixed behaviour: baselines say U, HipTNT+ says N --
        the architectural difference the paper's Fig. 10 demonstrates."""
        from repro.core import infer_source
        from repro.core.pipeline import classify

        program = parse_program(CONDITIONAL)
        assert AProVELikeAnalyzer().analyze(program) is Verdict.UNKNOWN
        result = infer_source(CONDITIONAL)
        assert result.verdict("main") is Verdict.NONTERMINATING
