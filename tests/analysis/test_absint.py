"""Interval abstract interpreter: invariants, widening, dead code."""

from repro.analysis import intervals as iv
from repro.analysis.absint import analyze_method, refine
from repro.analysis.intervals import Interval
from repro.lang.ast import While
from repro.lang.parser import parse_expr, parse_program


def _analyze(source, name="main"):
    program = parse_program(source)
    method = program.methods[name]
    return program, method, analyze_method(method, program)


def _only_while(method):
    whiles = []

    def walk(s):
        if isinstance(s, While):
            whiles.append(s)
        for attr in ("then", "els", "body"):
            sub = getattr(s, attr, None)
            if sub is not None:
                walk(sub)
        for t in getattr(s, "stmts", ()):
            walk(t)

    walk(method.body)
    assert len(whiles) == 1
    return whiles[0]


class TestInvariants:
    def test_counting_loop_head_invariant(self):
        _, m, facts = _analyze(
            """
            void main() { int i = 0; while (i < 10) { i = i + 1; } return; }
            """
        )
        inv = facts.head_invariants[id(_only_while(m))]
        # lower bound is stable (i starts at 0 and only grows); the upper
        # bound 10 comes from narrowing the widened interval by the guard
        # exit -- at the head, i <= 10 after the last increment.
        assert inv["i"].lo == 0
        assert inv["i"].hi is None or inv["i"].hi >= 9

    def test_widening_terminates_on_unbounded_growth(self):
        _, m, facts = _analyze(
            "void main(int n) { int i = 0; while (i < n) { i = i + 1; } return; }"
        )
        inv = facts.head_invariants[id(_only_while(m))]
        assert inv["i"].lo == 0 and inv["i"].hi is None

    def test_exit_state_reflects_guard_negation(self):
        _, _, facts = _analyze(
            "int main() { int i = 0; while (i < 10) { i = i + 1; } return i; }"
        )
        assert facts.exit_state is not None
        assert facts.exit_state["i"].lo is not None
        assert facts.exit_state["i"].lo >= 10

    def test_requires_seeds_initial_state(self):
        _, _, facts = _analyze(
            """
            void main(int n)
              requires n >= 5
            { int b = n + 1; return; }
            """
        )
        assert facts.exit_state["b"].lo == 6


class TestDeadCode:
    def test_dead_loop_detected(self):
        _, m, facts = _analyze(
            "void main() { int i = 5; while (i < 0) { i = i + 1; } return; }"
        )
        assert id(_only_while(m)) in facts.dead_whiles

    def test_dead_then_branch(self):
        _, _, facts = _analyze(
            "void main() { int i = 1; if (i < 0) { i = 2; } else { i = 3; } return; }"
        )
        assert len(facts.dead_then) == 1 and not facts.dead_else

    def test_code_after_return_recorded(self):
        _, _, facts = _analyze(
            "void main() { int i = 0; return; i = 1; }"
        )
        assert facts.dead_stmts

    def test_live_loop_not_flagged(self):
        _, m, facts = _analyze(
            "void main() { int i = 0; while (i < 3) { i = i + 1; } return; }"
        )
        assert id(_only_while(m)) not in facts.dead_whiles
        assert not facts.dead_stmts


class TestRefine:
    def test_comparison_narrows_both_sides(self):
        st = {"x": iv.TOP, "y": iv.const(5)}
        out = refine(st, parse_expr("x < y"), True)
        assert out["x"].hi == 4

    def test_negated_condition(self):
        st = {"x": iv.TOP}
        out = refine(st, parse_expr("x < 0"), False)
        assert out["x"].lo == 0

    def test_contradiction_is_bottom(self):
        st = {"x": iv.const(1)}
        assert refine(st, parse_expr("x > 3"), True) is None

    def test_conjunction_refines_both(self):
        st = {"x": iv.TOP}
        out = refine(st, parse_expr("x >= 0 && x <= 9"), True)
        assert out["x"] == Interval(0, 9)

    def test_equality(self):
        st = {"x": iv.TOP}
        out = refine(st, parse_expr("x == 7"), True)
        assert out["x"] == iv.const(7)


class TestCallsAndHavoc:
    def test_call_havocs_by_ref_args(self):
        program = parse_program(
            """
            void bump(ref int z) { z = z + 1; return; }
            void main() { int a = 0; int b = 0; bump(a); return; }
            """
        )
        facts = analyze_method(program.methods["main"], program)
        assert facts.exit_state["b"] == iv.const(0)
        assert "a" not in facts.exit_state  # havocked to TOP, so dropped

    def test_nondet_is_top(self):
        _, _, facts = _analyze(
            "void main() { int a = nondet(); int b = 1; return; }"
        )
        # TOP entries are dropped from the state entirely
        assert "a" not in facts.exit_state
        assert facts.exit_state["b"] == iv.const(1)
