"""Pre-analysis parity: full corpora differential + interpreter oracle.

Two layers of evidence that ``preanalysis=True`` never changes what the
pipeline *claims* (it may only resolve U to a correct definite answer):

* the complete fig10/fig11 benchmark corpora run through
  :func:`repro.analysis.check.check_corpus` -- the same differential
  harness behind ``python -m repro.bench ... --check-preanalysis``;
* randomly generated (seeded, deterministic) loop programs are analyzed
  both ways and every definite verdict is cross-checked against actually
  *running* the program on the concrete interpreter
  (:func:`repro.lang.interp.terminates`), the ground-truth oracle.
"""

import random

from repro.analysis.check import check_corpus
from repro.bench.programs import all_programs
from repro.core.pipeline import Verdict, infer_program
from repro.lang.interp import terminates
from repro.lang.parser import parse_program


class TestCorpusDifferential:
    """Complete-corpus differential checks (the slow, load-bearing ones)."""

    def test_fig11_corpus_no_divergence(self):
        corpus = [
            p for p in all_programs()
            if p.loop_based
            and p.category in ("crafted", "crafted-lit", "numeric")
        ]
        assert check_corpus(programs=corpus, time_budget=5.0) == []

    def test_fig10_remainder_no_divergence(self):
        # everything fig11 does not cover: recursive programs and the
        # memory-alloca category (heap methods are ineligible for
        # interval facts, so this mostly exercises the "pre-analysis
        # must not disturb them" direction)
        corpus = [
            p for p in all_programs()
            if not (
                p.loop_based
                and p.category in ("crafted", "crafted-lit", "numeric")
            )
        ]
        assert check_corpus(programs=corpus, time_budget=5.0) == []


# ---------------------------------------------------------------------------
# Random-program generator: deterministic, parameterless, call-free loop
# programs, so a pipeline verdict is checkable by simply running them.
# ---------------------------------------------------------------------------


def _gen_program(rng: random.Random) -> str:
    names = ["a", "b", "c"]
    decls = "".join(
        f"  int {n} = {rng.randint(-3, 8)};\n" for n in names
    )

    def atom():
        left = rng.choice(names)
        right = rng.choice([str(rng.randint(-2, 12)), rng.choice(names)])
        op = rng.choice(["<", "<=", ">", ">="])
        return f"{left} {op} {right}"

    def update():
        tgt = rng.choice(names)
        src = rng.choice(names)
        k = rng.randint(-2, 3)
        form = rng.choice(
            [f"{tgt} + {k}", f"{src} + {k}", f"{tgt} - 1", f"{k}"]
        )
        return f"    {tgt} = {form};\n"

    guard = atom() if rng.random() < 0.7 else f"{atom()} && {atom()}"
    body = "".join(update() for _ in range(rng.randint(1, 3)))
    if rng.random() < 0.4:
        body += f"    if ({atom()}) {{\n  {update()}    }} else {{\n  {update()}    }}\n"
    return (
        "void main() {\n"
        + decls
        + f"  while ({guard}) {{\n{body}  }}\n  return;\n}}\n"
    )


class TestRandomProgramsAgainstInterpreter:
    def test_verdicts_sound_with_and_without_preanalysis(self):
        rng = random.Random(20260808)
        checked_definite = 0
        for _ in range(30):
            source = _gen_program(rng)
            program = parse_program(source)
            # ground truth by execution: deterministic + parameterless,
            # so one run decides (fuel exhaustion == divergence here:
            # the state space of 3 bounded-update ints loops quickly)
            truth = terminates(parse_program(source), "main", [], fuel=200_000)
            for preanalysis in (False, True):
                result = infer_program(
                    program, preanalysis=preanalysis, time_budget=5.0
                )
                verdict = result.verdict("main")
                label = f"{source}\n(preanalysis={preanalysis})"
                if verdict is Verdict.TERMINATING:
                    assert truth is True, label
                    checked_definite += 1
                elif verdict is Verdict.NONTERMINATING:
                    assert truth is False, label
                    checked_definite += 1
        # the generator must actually exercise the oracle, not emit 30
        # programs the pipeline punts on
        assert checked_definite >= 20
