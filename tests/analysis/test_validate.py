"""Validator tests: one structured diagnostic per failure mode."""

import pytest

from repro.analysis import ProgramInvalid, validate_source
from repro.analysis.diagnostics import errors, warnings
from repro.core import infer_source


def _codes(diags):
    return [d.code for d in diags]


class TestUndefinedCallee:
    def test_unknown_callee_is_structured_error(self):
        _, diags = validate_source(
            "void main() { helper(1); return; }"
        )
        errs = errors(diags)
        assert _codes(errs) == ["unknown-callee"]
        assert errs[0].method == "main"
        assert "helper" in errs[0].message

    def test_unknown_callee_carries_position(self):
        _, diags = validate_source(
            "void main() {\n  helper(1);\n  return;\n}"
        )
        (err,) = errors(diags)
        assert err.pos is not None and err.pos[0] == 2

    def test_pipeline_raises_program_invalid_not_internal_error(self):
        # Before the validator, this died deep in the verifier with an
        # internal KeyError; now it is a typed, renderable exception.
        with pytest.raises(ProgramInvalid) as exc:
            infer_source("void main() { helper(1); return; }")
        assert any(
            d.code == "unknown-callee" for d in exc.value.diagnostics
        )
        assert "unknown-callee" in str(exc.value)

    def test_validate_false_opts_out(self):
        # The opt-out exists for callers feeding already-checked ASTs;
        # the failure then surfaces however the core happens to fail.
        with pytest.raises(Exception) as exc:
            infer_source("void main() { helper(1); return; }",
                         validate=False)
        assert not isinstance(exc.value, ProgramInvalid)


class TestVariableChecks:
    def test_undefined_variable(self):
        _, diags = validate_source(
            "void main() { int a = b + 1; return; }"
        )
        assert "undefined-variable" in _codes(errors(diags))

    def test_maybe_undefined_on_one_branch(self):
        _, diags = validate_source(
            """
            void main(int c) {
              int a;
              if (c > 0) { a = 1; } else { c = 0; }
              int d = a;
              return;
            }
            """
        )
        assert "maybe-undefined" in _codes(warnings(diags))

    def test_both_branches_defined_is_clean(self):
        _, diags = validate_source(
            """
            void main(int c) {
              int a;
              if (c > 0) { a = 1; } else { a = 2; }
              int d = a;
              return;
            }
            """
        )
        assert not diags

    def test_duplicate_param(self):
        _, diags = validate_source(
            "void main(int x, int x) { return; }"
        )
        assert "duplicate-param" in _codes(errors(diags))


class TestCallShapeChecks:
    TWO = "void two(int a, int b) { return; }\n"

    def test_call_arity(self):
        _, diags = validate_source(
            self.TWO + "void main() { two(1); return; }"
        )
        assert "call-arity" in _codes(errors(diags))

    def test_void_call_in_expression(self):
        _, diags = validate_source(
            self.TWO + "void main() { int a = two(1, 2); return; }"
        )
        assert "void-call-value" in _codes(errors(diags))

    def test_ref_arg_must_be_var(self):
        _, diags = validate_source(
            "void bump(ref int z) { z = z + 1; return; }\n"
            "void main() { bump(1 + 2); return; }"
        )
        assert "ref-arg-not-var" in _codes(errors(diags))


class TestSpecAndTypeChecks:
    def test_spec_free_var(self):
        _, diags = validate_source(
            """
            int f(int x)
              requires y > 0
            { return x; }
            void main() { int a = f(1); return; }
            """
        )
        assert "spec-free-var" in _codes(warnings(diags))

    def test_unknown_type_in_new(self):
        _, diags = validate_source(
            "void main() { node p = new node(1); return; }"
        )
        assert "unknown-type" in _codes(errors(diags))

    def test_valid_program_is_clean(self):
        _, diags = validate_source(
            """
            data node { int val; node next; }
            int f(int x) { if (x < 0) { return 0; } else { return f(x - 1); } }
            void main() { int a = f(3); node p = new node(a, null); return; }
            """
        )
        assert not errors(diags)
