"""Pre-analysis driver + pipeline integration."""

import pytest

from repro.analysis import pre_analyze
from repro.analysis.check import checked_infer
from repro.core import infer_source
from repro.core.pipeline import Verdict, infer_program
from repro.lang.parser import parse_program

COUNT_UP = """
void main(int n) { int i = 0; while (i < n) { i = i + 1; } return; }
"""

STUCK = """
void main(int n) { int i = 0; while (n > 0) { i = i + 1; } return; }
"""

DEAD_LOOP = """
void main() { int i = 5; while (i < 0) { i = i + 1; } return; }
"""


class TestPreFacts:
    def test_seeding_strengthens_loop_contract(self):
        pre = pre_analyze(parse_program(COUNT_UP))
        (loop_name,) = pre.origins
        assert loop_name in pre.seeded
        req = pre.desugared.methods[loop_name].requires
        assert req is not None  # carries i >= 0 from the head invariant

    def test_rank_hints_are_proper_subset(self):
        pre = pre_analyze(parse_program(COUNT_UP))
        (loop_name,) = pre.origins
        carried = set(pre.origins[loop_name].carried)
        hint = pre.hints.get(loop_name)
        if hint is not None:
            assert set(hint) < carried
            assert pre.desugared.methods[loop_name].rank_hints == hint

    def test_quick_verdicts_recorded(self):
        pre = pre_analyze(parse_program(COUNT_UP))
        assert [v.kind for v in pre.quick.values()] == ["term"]
        pre = pre_analyze(parse_program(STUCK))
        assert [v.kind for v in pre.quick.values()] == ["stuck"]

    def test_dead_loop_pruned_with_warning(self):
        pre = pre_analyze(parse_program(DEAD_LOOP))
        assert pre.pruned == ["main"]
        assert not pre.origins  # the only loop is gone
        assert any(d.code == "dead-loop" for d in pre.diagnostics)
        from repro.lang.ast import While

        def has_while(s):
            subs = list(getattr(s, "stmts", ()))
            for attr in ("then", "els", "body"):
                if getattr(s, attr, None) is not None:
                    subs.append(getattr(s, attr))
            return isinstance(s, While) or any(has_while(t) for t in subs)

        assert not has_while(pre.source.methods["main"].body)


class TestPipelineIntegration:
    @pytest.mark.parametrize(
        "source,expected",
        [(COUNT_UP, Verdict.TERMINATING), (STUCK, Verdict.NONTERMINATING),
         (DEAD_LOOP, Verdict.TERMINATING)],
    )
    def test_preanalysis_verdicts_match_ground_truth(self, source, expected):
        plain = infer_source(source)
        pre = infer_source(source, preanalysis=True)
        assert pre.verdict("main") is expected
        assert plain.verdict("main") is expected

    def test_quick_short_circuit_counted(self):
        result = infer_source(COUNT_UP, preanalysis=True)
        assert result.solver_stats.pre_quick == 1
        assert result.solver_stats.pre_seeded >= 1

    def test_plain_run_reports_no_pre_counters(self):
        result = infer_source(COUNT_UP)
        assert result.solver_stats.pre_quick == 0
        assert result.solver_stats.pre_seeded == 0

    def test_checked_infer_passes_on_agreement(self):
        program = parse_program(COUNT_UP)
        result = checked_infer(program)
        assert result.verdict("main") is Verdict.TERMINATING

    def test_desugared_input_ignores_preanalysis(self):
        # pre-analysis needs source loops; on already-desugared input the
        # flag is documented as a no-op, not an error
        from repro.lang.desugar import desugar_program

        program = desugar_program(parse_program(COUNT_UP))
        result = infer_program(program, desugared=True, preanalysis=True)
        assert result.verdict("main") is Verdict.TERMINATING
        assert result.solver_stats.pre_quick == 0


@pytest.mark.parallel
class TestSchedulerIntegration:
    def test_parallel_quick_parity(self):
        from repro.core.scheduler import infer_program_parallel

        seq = infer_program(parse_program(STUCK), preanalysis=True)
        par = infer_program_parallel(
            parse_program(STUCK), jobs=2, preanalysis=True
        )
        assert par.verdict("main") is seq.verdict("main")
        assert par.solver_stats.pre_quick == seq.solver_stats.pre_quick
