"""Quick-verdict certificates and their materialised specs."""

from repro.analysis import pre_analyze
from repro.analysis.quick import (
    build_quick_spec,
    stuck_certificate,
    term_certificate,
)
from repro.analysis import intervals as iv
from repro.arith.context import SolverContext
from repro.core.predicates import Loop, Term
from repro.lang.ast import While
from repro.lang.parser import parse_program


def _the_while(source, name="main"):
    program = parse_program(source)
    method = program.methods[name]

    found = []

    def walk(s):
        if isinstance(s, While):
            found.append(s)
        for attr in ("then", "els", "body"):
            sub = getattr(s, attr, None)
            if sub is not None:
                walk(sub)
        for t in getattr(s, "stmts", ()):
            walk(t)

    walk(method.body)
    assert len(found) == 1
    return found[0]


class TestTermCertificate:
    def test_counting_loop(self):
        w = _the_while(
            "void main(int n) { int i = 0; while (i < n) { i = i + 1; } return; }"
        )
        m = term_certificate(w.cond, w.body, {}, ["i", "n"])
        assert m is not None  # measure n - i drops by 1

    def test_drift_needs_head_invariant(self):
        # i grows by i itself: only a lower bound on i makes that a drop
        # of the measure n - i.
        src = "void main(int n) { int i = 1; while (i < n) { i = i + i; } return; }"
        w = _the_while(src)
        assert term_certificate(w.cond, w.body, {}, ["i", "n"]) is None
        inv = {"i": iv.at_least(1)}
        assert term_certificate(w.cond, w.body, inv, ["i", "n"]) is not None

    def test_growing_variable_rejected(self):
        w = _the_while(
            "void main(int n) { int i = 0; while (i < n) { i = i - 1; } return; }"
        )
        assert term_certificate(w.cond, w.body, {}, ["i", "n"]) is None

    def test_call_in_body_bails(self):
        w = _the_while(
            """
            void f() { return; }
            void main(int n) { int i = 0; while (i < n) { i = i + 1; f(); } return; }
            """
        )
        assert term_certificate(w.cond, w.body, {}, ["i", "n"]) is None

    def test_nondet_assignment_bails(self):
        w = _the_while(
            "void main(int n) { int i = 0; while (i < n) { i = nondet(); } return; }"
        )
        assert term_certificate(w.cond, w.body, {}, ["i", "n"]) is None


class TestStuckCertificate:
    def test_guard_untouched(self):
        w = _the_while(
            "void main(int n) { int i = 0; while (n > 0) { i = i + 1; } return; }"
        )
        assert stuck_certificate(w.cond, w.body) is not None

    def test_guard_var_written_bails(self):
        w = _the_while(
            "void main(int n) { while (n > 0) { n = n - 1; } return; }"
        )
        assert stuck_certificate(w.cond, w.body) is None

    def test_assume_in_body_bails(self):
        # a violated assume halts execution: the loop is not stuck
        w = _the_while(
            "void main(int n) { int i = 0; while (n > 0) { assume(i < 5); i = i + 1; } return; }"
        )
        assert stuck_certificate(w.cond, w.body) is None


class TestBuildQuickSpec:
    def _loop_method(self, source, kind):
        pre = pre_analyze(parse_program(source))
        (loop_name,) = [n for n, v in pre.quick.items() if v.kind == kind]
        return pre.desugared.methods[loop_name], pre.quick[loop_name]

    def test_term_spec_shape(self):
        method, verdict = self._loop_method(
            "void main(int n) { int i = 0; while (i < n) { i = i + 1; } return; }",
            "term",
        )
        spec = build_quick_spec(method, verdict, SolverContext())
        assert spec is not None and len(spec.cases) == 1
        (case,) = spec.cases
        assert isinstance(case.pred, Term) and case.post.reachable

    def test_stuck_spec_has_loop_case(self):
        method, verdict = self._loop_method(
            "void main(int n) { int i = 0; while (n > 0) { i = i + 1; } return; }",
            "stuck",
        )
        spec = build_quick_spec(method, verdict, SolverContext())
        assert spec is not None
        assert any(isinstance(c.pred, Loop) for c in spec.cases)
        assert any(isinstance(c.pred, Term) for c in spec.cases)

    def test_unsat_requires_yields_none(self):
        method, verdict = self._loop_method(
            "void main(int n) { int i = 0; while (i < n) { i = i + 1; } return; }",
            "term",
        )
        from repro.arith.formula import FALSE

        method.requires = FALSE
        assert build_quick_spec(method, verdict, SolverContext()) is None
