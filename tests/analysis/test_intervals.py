"""Unit tests for the interval lattice."""

import pytest

from repro.analysis import intervals as iv
from repro.analysis.intervals import TOP, Interval


class TestLattice:
    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(3, 2)

    def test_join_is_hull(self):
        assert iv.join(iv.const(1), iv.const(5)) == Interval(1, 5)
        assert iv.join(Interval(0, 2), Interval(1, None)) == Interval(0, None)
        assert iv.join(TOP, iv.const(7)) == TOP

    def test_meet_is_intersection(self):
        assert iv.meet(Interval(0, 10), Interval(5, 20)) == Interval(5, 10)
        assert iv.meet(iv.at_least(0), iv.at_most(3)) == Interval(0, 3)
        assert iv.meet(iv.const(1), iv.const(2)) is None

    def test_widen_jumps_unstable_bounds(self):
        assert iv.widen(Interval(0, 3), Interval(0, 4)) == Interval(0, None)
        assert iv.widen(Interval(0, 3), Interval(-1, 3)) == Interval(None, 3)
        # stable bounds survive
        assert iv.widen(Interval(0, 3), Interval(1, 2)) == Interval(0, 3)

    def test_leq_order(self):
        assert iv.leq(iv.const(2), Interval(0, 5))
        assert not iv.leq(Interval(0, 5), iv.const(2))
        assert iv.leq(Interval(0, 5), TOP)
        assert not iv.leq(TOP, Interval(0, 5))

    def test_join_is_upper_bound(self):
        a, b = Interval(-3, 1), Interval(0, None)
        j = iv.join(a, b)
        assert iv.leq(a, j) and iv.leq(b, j)


class TestArithmetic:
    def test_add_sub(self):
        assert iv.add(Interval(1, 2), Interval(10, 20)) == Interval(11, 22)
        assert iv.sub(Interval(1, 2), Interval(10, 20)) == Interval(-19, -8)
        assert iv.add(iv.at_least(0), iv.const(1)) == iv.at_least(1)

    def test_negate(self):
        assert iv.negate(Interval(1, 5)) == Interval(-5, -1)
        assert iv.negate(iv.at_least(2)) == iv.at_most(-2)

    def test_scale(self):
        assert iv.scale(Interval(1, 3), 2) == Interval(2, 6)
        assert iv.scale(Interval(1, 3), -1) == Interval(-3, -1)
        assert iv.scale(TOP, 0) == iv.const(0)

    def test_mul_constant_exact(self):
        assert iv.mul(iv.const(3), Interval(1, 2)) == Interval(3, 6)
        assert iv.mul(Interval(-1, 2), iv.const(-2)) == Interval(-4, 2)

    def test_mul_corners(self):
        assert iv.mul(Interval(-1, 2), Interval(-3, 4)) == Interval(-6, 8)
        assert iv.mul(iv.at_least(0), Interval(1, 2)) == TOP

    def test_splits(self):
        assert iv.split_lt(Interval(0, 10), 5) == Interval(0, 4)
        assert iv.split_ge(Interval(0, 10), 5) == Interval(5, 10)
        assert iv.split_lt(Interval(5, 10), 5) is None
