"""The known-verdict generator: reproducibility and constructed labels.

The heavyweight guarantee (every constructed label agrees with the
concrete interpreter) is exercised here over a fixed slice of the seed
space; `test_roundtrip.py` adds the hypothesis-driven sweep and the CI
``corpus-fuzz`` job runs 200 fresh instances per build.
"""

import pytest

from repro.corpus.benchmark import Label
from repro.corpus.generate import (
    GeneratedBenchmark,
    generate_instance,
    generate_program,
)
from repro.lang.interp import Outcome, observe
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program

FUEL = 60_000


def test_generation_is_reproducible():
    a = generate_instance("repro-test", 7)
    b = generate_instance("repro-test", 7)
    assert a == b  # same id, source, label, witness
    assert a.source == b.source


def test_generation_varies_with_seed_and_index():
    sources = {
        generate_instance(seed, i).source
        for seed in ("a", "b") for i in range(6)
    }
    assert len(sources) > 8  # overwhelmingly distinct programs


def test_instance_shape():
    inst = generate_instance("shape", 0)
    assert inst.id == "gen-shape-0000"
    assert inst.language == "native"
    assert inst.entry == "main"
    assert inst.witness is not None
    assert inst.origin == "generate(seed='shape', index=0)"
    bench = inst.to_bench()
    assert bench.name == inst.id
    assert bench.category == "corpus"


def test_source_is_the_pretty_printed_ast():
    program, entry, label, witness = generate_program("pp", 3)
    inst = generate_instance("pp", 3)
    assert inst.source == pretty_program(program) + "\n"
    assert parse_program(inst.source) == program


@pytest.mark.parametrize("index", range(12))
def test_constructed_labels_agree_with_oracle(index):
    """NONTERM witnesses must out-run the fuel budget; TERM programs must
    halt on the witness sample -- the label is falsifiable, and isn't
    falsified."""
    program, entry, label, witness = generate_program("oracle-test", index)
    outcome = observe(
        program, entry, list(witness), fuel=FUEL, wall_clock=10.0
    )
    if label is Label.NONTERM:
        assert outcome is Outcome.FUEL_OUT
    else:
        assert label is Label.TERM
        assert outcome is Outcome.HALTED


def test_term_programs_halt_on_many_inputs():
    for index in range(8):
        program, entry, label, witness = generate_program("halt-test", index)
        if label is not Label.TERM:
            continue
        arity = len(program.method(entry).params)
        for vec in ([0] * arity, [5] * arity, [-4] * arity):
            outcome = observe(
                program, entry, vec, fuel=FUEL, wall_clock=10.0
            )
            assert outcome is Outcome.HALTED, (index, vec)


def test_generated_benchmark_corpus():
    bench = GeneratedBenchmark(10, seed="bench")
    assert len(bench) == 10
    assert bench.name == "generated(n=10, seed='bench')"
    ids = [inst.id for inst in bench]
    assert ids == [f"gen-bench-{i:04d}" for i in range(10)]
    # both classes are represented at this size
    labels = set(bench.labels())
    assert Label.TERM in labels and Label.NONTERM in labels
