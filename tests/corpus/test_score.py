"""The scoring layer: confusion, precision/recall, soundness audit."""

import pytest

from repro.core.pipeline import Verdict
from repro.corpus.benchmark import CorpusInstance, Label
from repro.corpus.score import score


def _inst(i, label):
    return CorpusInstance(
        id=f"i{i}", source="", language="native", entry="main", label=label
    )


def test_perfect_sweep():
    instances = [_inst(0, Label.TERM), _inst(1, Label.NONTERM)]
    report = score("t", instances,
                   [Verdict.TERMINATING, Verdict.NONTERMINATING])
    assert report.ok
    assert report.total == 2
    assert report.per_class[Label.TERM].precision == 1.0
    assert report.per_class[Label.TERM].recall == 1.0
    assert report.per_class[Label.NONTERM].recall == 1.0
    assert report.confusion[(Label.TERM, Label.TERM)] == 1


def test_unknown_costs_recall_not_soundness():
    instances = [_inst(0, Label.TERM), _inst(1, Label.TERM)]
    report = score("t", instances, [Verdict.TERMINATING, Verdict.UNKNOWN])
    assert report.ok  # imprecision is not unsoundness
    assert report.per_class[Label.TERM].recall == 0.5
    assert report.per_class[Label.TERM].precision == 1.0


@pytest.mark.parametrize(
    "label,verdict",
    [
        (Label.NONTERM, Verdict.TERMINATING),
        (Label.TERM, Verdict.NONTERMINATING),
    ],
)
def test_definite_contradiction_is_a_violation(label, verdict):
    report = score("t", [_inst(0, label)], [verdict])
    assert not report.ok
    assert len(report.violations) == 1
    violation = report.violations[0]
    assert violation.instance_id == "i0"
    assert violation.label is label
    assert "SOUNDNESS VIOLATION" in violation.render()
    assert "SOUNDNESS VIOLATION" in report.render()


def test_unknown_label_imposes_no_constraint():
    """A definite answer on an UNKNOWN-labeled instance is neither a
    violation nor a precision hit -- the corpus has no opinion."""
    instances = [_inst(0, Label.UNKNOWN), _inst(1, Label.TERM)]
    report = score("t", instances,
                   [Verdict.TERMINATING, Verdict.TERMINATING])
    assert report.ok
    assert report.per_class[Label.TERM].precision == 1.0
    assert report.confusion[(Label.UNKNOWN, Label.TERM)] == 1


def test_timeouts_score_as_unknown():
    report = score("t", [_inst(0, Label.NONTERM)], [None])
    assert report.ok
    assert report.timeouts == 1
    assert report.confusion[(Label.NONTERM, Label.UNKNOWN)] == 1
    assert "timeouts: 1" in report.render()


def test_render_is_timing_free_and_deterministic():
    instances = [_inst(i, Label.TERM) for i in range(3)]
    verdicts = [Verdict.TERMINATING, Verdict.UNKNOWN, Verdict.TERMINATING]
    a = score("t", instances, verdicts).render()
    b = score("t", instances, verdicts).render()
    assert a == b
    assert "sec" not in a and "time" not in a
    assert "prec" in a and "rec" in a
    assert a.endswith("soundness violations: 0")


def test_length_mismatch_rejected():
    with pytest.raises(ValueError, match="1 instances but 2 verdicts"):
        score("t", [_inst(0, Label.TERM)], [None, None])
