"""Replay of minimized fuzzer findings as permanent regressions.

Every catch of the generator/oracle/analyzer cross-check lands here as a
JSON artifact in ``regressions/`` and replays as a plain parametrized
test.  Artifact schema (all program-level fields optional):

* ``seed``/``index``/``expected_label`` -- regenerate the original
  instance and re-check its constructed label against the oracle;
* ``program``/``entry``/``label`` (+ optional ``witness``,
  ``expect_verdict``) -- the minimized reproducer: checked against the
  oracle, round-tripped through the parser, and run through the bench
  harness, which must stay *sound* (a crash degrades to UNKNOWN, never
  to a wrong definite answer).
"""

import json
import pathlib

import pytest

from repro.bench.runner import HipTNTPlus, run_tool
from repro.corpus.benchmark import (
    CorpusInstance,
    Label,
    label_to_verdict,
    parse_label,
)
from repro.corpus.generate import generate_instance
from repro.corpus.run import crosscheck_instance
from repro.lang.interp import Outcome, observe
from repro.lang.parser import parse_program

REGRESSIONS = pathlib.Path(__file__).resolve().parent / "regressions"
ARTIFACTS = sorted(REGRESSIONS.glob("*.json"))


def _load(path):
    return json.loads(path.read_text())


def test_regression_directory_is_populated():
    assert ARTIFACTS, "regressions/ must hold at least the seed findings"


@pytest.mark.parametrize(
    "path", ARTIFACTS, ids=[p.stem for p in ARTIFACTS]
)
def test_generator_replay(path):
    """The original (seed, index) still generates the recorded label, and
    the constructed label still agrees with the oracle."""
    artifact = _load(path)
    if "seed" not in artifact:
        pytest.skip("artifact carries no generator coordinates")
    inst = generate_instance(artifact["seed"], artifact["index"])
    assert inst.label is parse_label(artifact["expected_label"])
    assert crosscheck_instance(inst, shrink=False) is None


@pytest.mark.parametrize(
    "path", ARTIFACTS, ids=[p.stem for p in ARTIFACTS]
)
def test_minimized_reproducer(path):
    artifact = _load(path)
    if "program" not in artifact:
        pytest.skip("artifact carries no minimized program")
    label = parse_label(artifact["label"])
    source = artifact["program"]
    entry = artifact["entry"]
    program = parse_program(source)  # the reproducer must stay parseable

    witness = artifact.get("witness")
    if witness is not None and label is Label.NONTERM:
        outcome = observe(
            program, entry, list(witness), fuel=60_000, wall_clock=10.0
        )
        assert outcome is Outcome.FUEL_OUT

    inst = CorpusInstance(
        id=path.stem, source=source, language="native", entry=entry,
        label=label, origin=str(path),
        witness=tuple(witness) if witness is not None else None,
    )
    outcome = run_tool(
        HipTNTPlus(entry, time_budget=5.0), inst.to_bench(), timeout=30.0
    )
    assert outcome.sound, (
        f"{path.stem}: unsound verdict {outcome.verdict} against {label}"
    )
    if "expect_verdict" in artifact:
        assert outcome.verdict is label_to_verdict(
            parse_label(artifact["expect_verdict"])
        )
