"""The corpus harness: cross-check, sweep, flip self-test, warm store."""

import dataclasses

import pytest

from repro.corpus.benchmark import CorpusInstance, Label
from repro.corpus.generate import GeneratedBenchmark, generate_instance
from repro.corpus.run import (
    crosscheck_instance,
    inject_flip,
    run_corpus,
    wants_crosscheck,
)

TERM_SRC = """\
void main(int p)
{
  int i = 0;
  while ((i < 4)) {
    i = (i + 1);
  }
}
"""

DIV_SRC = """\
void main(int p)
{
  int d = 1;
  while ((d > 0)) {
    d = (d + 1);
  }
}
"""


def _inst(source, label, witness=(0,), id="hand"):
    return CorpusInstance(
        id=id, source=source, language="native", entry="main",
        label=label, witness=witness,
    )


# -- oracle cross-check ------------------------------------------------------


def test_crosscheck_accepts_correct_labels():
    assert crosscheck_instance(_inst(TERM_SRC, Label.TERM)) is None
    assert crosscheck_instance(_inst(DIV_SRC, Label.NONTERM)) is None
    # UNKNOWN labels are never falsifiable
    assert crosscheck_instance(_inst(DIV_SRC, Label.UNKNOWN)) is None


def test_crosscheck_catches_bogus_nonterm_label():
    found = crosscheck_instance(_inst(TERM_SRC, Label.NONTERM))
    assert found is not None
    assert found.kind == "oracle"
    assert "HALTED" in found.detail
    assert "minimized reproducer" in found.render()


def test_crosscheck_catches_bogus_term_label():
    found = crosscheck_instance(_inst(DIV_SRC, Label.TERM))
    assert found is not None
    assert found.kind == "oracle"
    assert "still running" in found.detail
    # the minimized reproducer keeps the divergent core
    assert "while" in found.minimized


def test_crosscheck_reports_unparseable_source():
    found = crosscheck_instance(_inst("void main( {", Label.TERM))
    assert found is not None
    assert "does not parse" in found.detail


def test_wants_crosscheck_auto_mode():
    assert wants_crosscheck(generate_instance("auto", 0))
    assert wants_crosscheck(_inst(DIV_SRC, Label.NONTERM))  # has witness
    no_witness = dataclasses.replace(_inst(TERM_SRC, Label.TERM), witness=None)
    assert not wants_crosscheck(no_witness)


# -- the full harness --------------------------------------------------------


def test_run_corpus_clean_generated_sweep():
    bench = GeneratedBenchmark(4, seed="harness")
    result = run_corpus(bench, timeout=30.0, time_budget=5.0)
    assert result.ok
    assert len(result.outcomes) == len(bench)
    assert result.report.total == len(bench)
    rendered = result.render()
    assert "result: OK" in rendered
    assert "prec" in rendered
    # deterministic: the same sweep renders byte-identically
    again = run_corpus(bench, timeout=30.0, time_budget=5.0)
    assert again.render() == rendered


def test_run_corpus_injected_flip_is_caught_and_minimized():
    bench = GeneratedBenchmark(2, seed="harness")
    victim = bench.instances()[0].id
    result = run_corpus(
        bench, timeout=30.0, time_budget=5.0, flip=victim
    )
    assert not result.ok
    kinds = {d.kind for d in result.disagreements}
    assert kinds, "flip must surface as at least one disagreement"
    assert any(d.minimized for d in result.disagreements)
    rendered = result.render()
    assert "result: FAILURES" in rendered
    assert "[label flipped]" in rendered


def test_inject_flip_unknown_id():
    bench = GeneratedBenchmark(1, seed="harness")
    with pytest.raises(KeyError, match="no-such-id"):
        inject_flip(bench.instances(), "no-such-id")


def test_run_corpus_warm_store_is_fingerprint_identical(tmp_path):
    """Second run against a populated spec store replays cached SCC
    summaries (store hits, no misses) and scores identically."""
    bench = GeneratedBenchmark(3, seed="warm")
    store = str(tmp_path / "specs")
    cold = run_corpus(
        bench, timeout=30.0, time_budget=5.0, store=store, crosscheck=False
    )
    warm = run_corpus(
        bench, timeout=30.0, time_budget=5.0, store=store, crosscheck=False
    )
    assert cold.ok and warm.ok
    assert warm.render() == cold.render()
    warm_hits = sum(
        (o.solver_stats or {}).get("store_hits", 0) for o in warm.outcomes
    )
    warm_misses = sum(
        (o.solver_stats or {}).get("store_misses", 0) for o in warm.outcomes
    )
    assert warm_hits > 0
    assert warm_misses == 0
