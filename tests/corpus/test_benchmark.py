"""The labeled-benchmark abstraction: labels, loaders, manifests."""

import json
import pathlib

import pytest

from repro.core.pipeline import Verdict
from repro.corpus.benchmark import (
    DirectoryBenchmark,
    Label,
    MANIFEST_NAME,
    ManifestError,
    RegistryBenchmark,
    builtin_benchmarks,
    label_to_verdict,
    load_benchmark,
    parse_label,
    verdict_to_label,
)

REPO = pathlib.Path(__file__).resolve().parents[2]
ST_DIR = REPO / "examples" / "st_controllers"


# -- labels ------------------------------------------------------------------


@pytest.mark.parametrize(
    "spelling,label",
    [
        ("TERM", Label.TERM),
        ("terminating", Label.TERM),
        ("y", Label.TERM),
        ("true", Label.TERM),
        ("NONTERM", Label.NONTERM),
        ("N", Label.NONTERM),
        ("false", Label.NONTERM),
        ("maybe", Label.UNKNOWN),
        (" U ", Label.UNKNOWN),
    ],
)
def test_parse_label_aliases(spelling, label):
    assert parse_label(spelling) is label


def test_parse_label_rejects_unknown():
    with pytest.raises(ValueError, match="unknown ground-truth label"):
        parse_label("SOMETIMES")


def test_verdict_label_round_trip():
    for label in Label:
        assert verdict_to_label(label_to_verdict(label)) is label
    assert verdict_to_label(None) is Label.UNKNOWN  # timeout
    assert verdict_to_label(Verdict.UNKNOWN) is Label.UNKNOWN


# -- registry loader ---------------------------------------------------------


def test_registry_benchmark_mirrors_ground_truth():
    bench = RegistryBenchmark()
    assert len(bench) > 30  # fig10 + fig11 + ST programs
    for inst in bench:
        assert inst.label is verdict_to_label(inst.to_bench().expected)
        assert inst.id
        assert inst.origin.startswith("registry:")
    # heap programs keep their builder-backed BenchProgram
    assert any(inst.bench is not None for inst in bench)


def test_registry_benchmark_category_filter():
    crafted = RegistryBenchmark(categories=["crafted"], name="crafted-only")
    full = RegistryBenchmark()
    assert 0 < len(crafted) < len(full)
    assert {i.origin for i in crafted} == {"registry:crafted"}


def test_get_by_id_and_classes():
    bench = RegistryBenchmark()
    first = bench.instances()[0]
    assert bench.get_by_id(first.id) == first
    with pytest.raises(KeyError):
        bench.get_by_id("no-such-instance")
    assert Label.TERM in bench.classes()
    assert len(bench.labels()) == len(bench)


def test_map_class_rejects_unmapped():
    bench = RegistryBenchmark()
    with pytest.raises(ValueError, match="unmapped class"):
        bench.map_class("SOMETIMES")


# -- directory loader --------------------------------------------------------


def test_st_controllers_manifest_loads():
    bench = DirectoryBenchmark(ST_DIR)
    assert bench.name == "st-controllers"
    assert len(bench) == 5
    by_id = {inst.id: inst for inst in bench}
    assert by_id["ramp_up"].label is Label.TERM
    assert by_id["ramp_up"].entry == "RampUp"
    assert by_id["watchdog_stuck"].label is Label.NONTERM
    assert all(inst.language == "st" for inst in bench)
    # sources parse through the declared frontend
    program = by_id["ramp_up"].program()
    assert "RampUp" in program.methods


def test_directory_language_override():
    bench = DirectoryBenchmark(ST_DIR, language="native")
    assert all(inst.language == "native" for inst in bench)


def _write_manifest(tmp_path, manifest, files=("p.imp",)):
    for fname in files:
        (tmp_path / fname).write_text("void main() { }\n")
    (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
    return tmp_path


def test_directory_manifest_happy_path(tmp_path):
    _write_manifest(
        tmp_path,
        {
            "benchmark": "tiny",
            "language": "native",
            "class_mapping": {"halts": "TERM", "loops": "NONTERM"},
            "instances": [
                {"file": "p.imp", "entry": "main", "label": "halts"},
            ],
        },
    )
    bench = DirectoryBenchmark(tmp_path)
    assert bench.name == "tiny"
    inst = bench.instances()[0]
    assert inst.id == "p"
    assert inst.label is Label.TERM  # via the custom class mapping
    assert inst.program().method("main") is not None


def test_directory_manifest_witness(tmp_path):
    _write_manifest(
        tmp_path,
        {
            "instances": [
                {"file": "p.imp", "entry": "main", "label": "N",
                 "witness": [3, 0]},
            ],
        },
    )
    inst = DirectoryBenchmark(tmp_path).instances()[0]
    assert inst.witness == (3, 0)


@pytest.mark.parametrize(
    "manifest,match",
    [
        ({"instances": [{"file": "p.imp", "entry": "m", "label": "WAT"}]},
         "unmapped class"),
        ({"instances": [{"file": "missing.imp", "entry": "m", "label": "Y"}]},
         "no such file"),
        ({"instances": [{"entry": "m", "label": "Y"}]}, "needs file"),
        ({"no_instances": []}, "no 'instances'"),
        ({"class_mapping": {"x": "SOMETIMES"}, "instances": []},
         "bad class_mapping"),
    ],
)
def test_directory_manifest_errors(tmp_path, manifest, match):
    _write_manifest(tmp_path, manifest)
    with pytest.raises(ManifestError, match=match):
        DirectoryBenchmark(tmp_path)


def test_directory_manifest_duplicate_ids(tmp_path):
    (tmp_path / "p.imp").write_text("void main() { }\n")
    (tmp_path / MANIFEST_NAME).write_text(json.dumps({
        "instances": [
            {"file": "p.imp", "entry": "main", "label": "Y"},
            {"file": "p.imp", "entry": "main", "label": "N"},
        ],
    }))
    with pytest.raises(ManifestError, match="duplicate instance id"):
        DirectoryBenchmark(tmp_path)


def test_directory_without_manifest(tmp_path):
    with pytest.raises(ManifestError, match=MANIFEST_NAME):
        DirectoryBenchmark(tmp_path)


def test_directory_invalid_json(tmp_path):
    (tmp_path / MANIFEST_NAME).write_text("{not json")
    with pytest.raises(ManifestError, match="invalid JSON"):
        DirectoryBenchmark(tmp_path)


# -- builtins / specs --------------------------------------------------------


def test_builtin_benchmarks_include_st_corpus():
    names = [b.name for b in builtin_benchmarks()]
    assert names[0] == "fig-programs"
    assert "st-controllers" in names


def test_load_benchmark_by_name_and_path():
    assert load_benchmark("fig-programs").name == "fig-programs"
    assert load_benchmark(str(ST_DIR)).name == "st-controllers"
    with pytest.raises(ManifestError):
        load_benchmark("no-such-benchmark")
