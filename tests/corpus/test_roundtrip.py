"""Hypothesis property: generated corpora survive the round trip.

For arbitrary generator coordinates, ``generate -> pretty -> parse``
reproduces the exact AST (so ``language="native"`` instances analyze the
program the generator constructed), the printed source is a fixpoint,
and the constructed label stays consistent with the concrete
interpreter after the round trip -- i.e. re-scoring the reparsed
program cannot change the ground truth.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.benchmark import Label, label_to_verdict
from repro.corpus.generate import generate_instance, generate_program
from repro.corpus.score import score
from repro.lang.interp import Outcome, observe
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program

coords = st.tuples(
    st.sampled_from(["hyp", "hyp2", "round"]),
    st.integers(min_value=0, max_value=500),
)


@settings(max_examples=25, deadline=None)
@given(coords)
def test_pretty_parse_is_the_identity(coord):
    seed, index = coord
    program, entry, label, witness = generate_program(seed, index)
    source = pretty_program(program)
    reparsed = parse_program(source)
    assert reparsed == program
    assert pretty_program(reparsed) == source  # printing is a fixpoint


@settings(max_examples=12, deadline=None)
@given(coords)
def test_label_is_stable_across_the_round_trip(coord):
    seed, index = coord
    inst = generate_instance(seed, index)
    reparsed = parse_program(inst.source)
    outcome = observe(
        reparsed, inst.entry, list(inst.witness), fuel=60_000,
        wall_clock=10.0,
    )
    if inst.label is Label.NONTERM:
        assert outcome is Outcome.FUEL_OUT
    else:
        assert outcome is Outcome.HALTED
    # re-scoring the reparsed instance against an ideal tool is clean
    report = score("roundtrip", [inst], [label_to_verdict(inst.label)])
    assert report.ok and report.total == 1


@settings(max_examples=10, deadline=None)
@given(coords)
def test_generation_is_a_pure_function_of_coordinates(coord):
    seed, index = coord
    assert generate_instance(seed, index) == generate_instance(seed, index)
