"""The greedy structural shrinker."""

from repro.corpus.shrink import pred_guard, program_size, shrink_program
from repro.lang.ast import (
    Assign,
    Binary,
    If,
    IntLit,
    Method,
    Param,
    Program,
    Var,
    VarDecl,
    While,
    INT,
    VOID,
    seq,
)
from repro.lang.interp import Outcome, observe
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program


def _program(*stmts, helpers=()):
    methods = {
        m.name: m for m in helpers
    }
    methods["main"] = Method(VOID, "main", [Param(INT, "p")], seq(*stmts))
    return Program(data_decls={}, methods=methods)


PUMP = [
    VarDecl(INT, "d", IntLit(1)),
    While(Binary(">", Var("d"), IntLit(0)),
          Assign("d", Binary("+", Var("d"), IntLit(1)))),
]

def _noise(prefix="n"):
    x, y = f"{prefix}x", f"{prefix}y"
    return [
        VarDecl(INT, x, IntLit(3)),
        VarDecl(INT, y, Binary("+", Var(x), IntLit(2))),
        If(Binary(">", Var("p"), IntLit(0)),
           Assign(x, IntLit(0)), Assign(y, IntLit(1))),
    ]


NOISE = _noise()


def _diverges(program) -> bool:
    return (
        observe(program, "main", [0], fuel=5_000, wall_clock=5.0)
        is Outcome.FUEL_OUT
    )


def test_shrink_strips_irrelevant_structure():
    helper = Method(
        VOID, "noisehelper", [Param(INT, "a")], seq(*NOISE[:2])
    )
    program = _program(*(NOISE + PUMP), helpers=[helper])
    shrunk, calls = shrink_program(program, "main", _diverges)
    assert _diverges(shrunk)
    assert calls > 1
    assert program_size(shrunk) < program_size(program)
    assert "noisehelper" not in shrunk.methods  # whole method dropped
    source = pretty_program(shrunk)
    assert "while" in source  # the divergent core survives
    assert "if" not in source  # the noise branch does not
    # the minimized reproducer still round-trips through the parser
    assert parse_program(source) == shrunk


def test_shrink_keeps_original_when_predicate_fails():
    program = _program(*NOISE)
    shrunk, calls = shrink_program(program, "main", _diverges)
    assert shrunk is program
    assert calls == 1


def test_shrink_tolerates_ill_formed_candidates():
    """Deleting a declaration orphans its uses; the predicate blows up on
    the ill-formed candidate and the shrinker must treat that as
    'uninteresting', not crash."""
    program = _program(
        VarDecl(INT, "k", IntLit(1)),
        Assign("k", Binary("+", Var("k"), IntLit(1))),
        *PUMP,
    )

    def strict(candidate) -> bool:
        # raises InterpError on candidates that dropped the decl of k
        return _diverges(candidate)

    shrunk, _ = shrink_program(program, "main", strict)
    assert _diverges(shrunk)
    assert program_size(shrunk) <= program_size(program)


def test_shrink_respects_call_budget():
    layers = [s for k in range(4) for s in _noise(f"n{k}")]
    program = _program(*(layers + PUMP))
    shrunk, calls = shrink_program(program, "main", _diverges, max_calls=5)
    assert calls <= 5
    assert _diverges(shrunk)


def test_pred_guard_reads_exceptions_as_false():
    def boom(_):
        raise RuntimeError("no")

    assert pred_guard(boom)(None) is False
    assert pred_guard(lambda _: True)(None) is True
