"""``python -m repro.bench corpus``: the CLI face of the harness."""

import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[2]
ST_DIR = REPO / "examples" / "st_controllers"


def bench_cli(*argv, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro.bench", *argv],
        capture_output=True, text=True, cwd=REPO, timeout=timeout,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_generated_sweep_scores_clean():
    proc = bench_cli("corpus", "--generate", "6", "--seed", "cli-test")
    assert proc.returncode == 0, proc.stderr or proc.stdout
    assert "corpus generated(n=6, seed='cli-test')" in proc.stdout
    assert "prec" in proc.stdout and "rec" in proc.stdout
    assert "soundness violations: 0" in proc.stdout
    assert "result: OK (6 instances)" in proc.stdout


def test_seeded_rerun_is_byte_identical():
    a = bench_cli("corpus", "--generate", "5", "--seed", "bytes")
    b = bench_cli("corpus", "--generate", "5", "--seed", "bytes")
    assert a.returncode == b.returncode == 0
    assert a.stdout == b.stdout
    assert a.stdout  # and it actually printed a report


def test_injected_flip_fails_with_minimized_reproducer():
    proc = bench_cli(
        "corpus", "--generate", "3", "--seed", "cli-test",
        "--inject-flip", "gen-cli-test-0000",
    )
    assert proc.returncode == 1, proc.stdout
    assert "SOUNDNESS VIOLATION" in proc.stdout or \
        "DISAGREEMENT" in proc.stdout
    assert "minimized reproducer" in proc.stdout
    assert "result: FAILURES" in proc.stdout


def test_flip_of_unknown_instance_is_an_error():
    proc = bench_cli(
        "corpus", "--generate", "2", "--seed", "cli-test",
        "--inject-flip", "no-such-id",
    )
    assert proc.returncode == 2
    assert "no instance named" in proc.stderr


def test_directory_corpus(tmp_path):
    (tmp_path / "halt.imp").write_text(
        "void main(int p)\n{\n  int i = 0;\n  while ((i < 3)) {\n"
        "    i = (i + 1);\n  }\n}\n"
    )
    (tmp_path / "labels.json").write_text(json.dumps({
        "benchmark": "tiny",
        "language": "native",
        "instances": [
            {"file": "halt.imp", "entry": "main", "label": "Y"},
        ],
    }))
    proc = bench_cli("corpus", "--dir", str(tmp_path))
    assert proc.returncode == 0, proc.stderr or proc.stdout
    assert "corpus tiny: 1 instances" in proc.stdout
    assert "result: OK" in proc.stdout


def test_missing_manifest_exits_two(tmp_path):
    proc = bench_cli("corpus", "--dir", str(tmp_path))
    assert proc.returncode == 2
    assert "labels.json" in proc.stderr


def test_corpus_flags_rejected_elsewhere():
    proc = bench_cli("fig10", "--generate", "3")
    assert proc.returncode == 2
    assert "--generate" in proc.stderr


def test_generate_and_dir_are_exclusive():
    proc = bench_cli(
        "corpus", "--generate", "3", "--dir", str(ST_DIR)
    )
    assert proc.returncode == 2
    assert "mutually exclusive" in proc.stderr
