"""Separation-logic substrate tests: heaps, entailment, abstraction."""

import pytest

from repro.arith.formula import TRUE, atom_ge
from repro.arith.solver import entails, equivalent, is_sat
from repro.arith.terms import const, var
from repro.core import infer_program
from repro.core.pipeline import Verdict
from repro.lang import parse_program
from repro.seplog.abstraction import abstract_program, AbstractionError
from repro.seplog.entail import match_instance
from repro.seplog.heap import (
    NULL,
    HeapSpec,
    PointsTo,
    PredInst,
    SymHeap,
    unfold,
)

SRC = """
data node { node next; }
void append(node x, node y)
{
  if (x.next == null) { x.next = y; return; }
  else { append(x.next, y); return; }
}
"""


def lseg_heap(size="n"):
    return SymHeap(
        chunks=(PredInst("lseg", ("x", "null"), var(size)),),
        pure=atom_ge(var(size), 1),
    )


class TestUnfold:
    def test_lseg_two_cases(self):
        heap = SymHeap(chunks=(PredInst("lseg", ("x", "q"), var("n")),))
        cases = unfold(heap, heap.chunks[0], {})
        assert len(cases) == 2

    def test_lseg_empty_case_aliases_root(self):
        heap = SymHeap(chunks=(PredInst("lseg", ("x", "q"), var("n")),))
        (empty, aliases), _ = unfold(heap, heap.chunks[0], {})
        assert aliases["x"] == "q"
        assert entails(empty.pure, atom_ge(-var("n"), 0))

    def test_cll_has_no_empty_case(self):
        heap = SymHeap(chunks=(PredInst("cll", ("x",), var("n")),))
        cases = unfold(heap, heap.chunks[0], {})
        assert len(cases) == 1
        nonempty, _aliases = cases[0]
        assert any(isinstance(c, PointsTo) for c in nonempty.chunks)

    def test_nonempty_case_constrains_size(self):
        heap = SymHeap(chunks=(PredInst("ll", ("x",), var("n")),))
        cases = unfold(heap, heap.chunks[0], {})
        nonempty = [h for h, _a in cases if h.chunks][0]
        assert entails(nonempty.pure, atom_ge(var("n"), 1))

    def test_inconsistent_case_dropped(self):
        heap = SymHeap(
            chunks=(PredInst("ll", ("x",), var("n")),),
            pure=atom_ge(var("n"), 1),
        )
        cases = unfold(heap, heap.chunks[0], {})
        # n >= 1 kills the empty case
        assert len(cases) == 1


class TestMatch:
    def test_direct_match(self):
        heap = lseg_heap()
        r = match_instance(heap, "lseg", ("x", "null"), {})
        assert r is not None
        assert r.size == var("n")
        assert not r.frame.chunks

    def test_empty_segment(self):
        r = match_instance(SymHeap(), "lseg", ("a", "a"), {})
        assert r is not None and r.size == const(0)

    def test_ll_null(self):
        r = match_instance(SymHeap(), "ll", (NULL,), {})
        assert r is not None and r.size == const(0)

    def test_cons_lemma(self):
        heap = SymHeap(chunks=(
            PointsTo("x", "node", (("next", "p"),)),
            PredInst("lseg", ("p", "null"), var("m")),
        ))
        r = match_instance(heap, "lseg", ("x", "null"), {})
        assert r is not None and r.size == var("m") + 1

    def test_concatenation_lemma(self):
        heap = SymHeap(chunks=(
            PredInst("lseg", ("a", "b"), var("m1")),
            PredInst("lseg", ("b", "c"), var("m2")),
        ))
        r = match_instance(heap, "lseg", ("a", "c"), {})
        assert r is not None and r.size == var("m1") + var("m2")

    def test_circular_fold(self):
        # p |-> node(c) * lseg(c, p; m)  |-  cll(p; m+1)
        heap = SymHeap(chunks=(
            PointsTo("p", "node", (("next", "c"),)),
            PredInst("lseg", ("c", "p"), var("m")),
        ))
        r = match_instance(heap, "cll", ("p",), {})
        assert r is not None and r.size == var("m") + 1

    def test_rotation_via_concatenation(self):
        # entering the cycle one cell later:
        # p |-> node(c) * lseg(c, x; m) * x |-> node(p)  |-  cll(p; m+2)
        heap = SymHeap(chunks=(
            PointsTo("p", "node", (("next", "c"),)),
            PredInst("lseg", ("c", "x"), var("m")),
            PointsTo("x", "node", (("next", "p"),)),
        ))
        r = match_instance(heap, "cll", ("p",), {})
        assert r is not None and r.size == var("m") + 2

    def test_self_loop_cell_is_cll(self):
        heap = SymHeap(chunks=(PointsTo("x", "node", (("next", "x"),)),))
        r = match_instance(heap, "cll", ("x",), {})
        assert r is not None and r.size == const(1)

    def test_no_match(self):
        heap = SymHeap(chunks=(PredInst("ll", ("y",), var("n")),))
        assert match_instance(heap, "ll", ("x",), {}) is None


class TestAbstraction:
    def _spec(self, pred, args, size="n", lower=1):
        pre = SymHeap(
            chunks=(PredInst(pred, args, var(size)),),
            pure=atom_ge(var(size), lower),
        )
        return HeapSpec(pre=pre, post=SymHeap(), size_params=(size,))

    def test_append_lseg_is_conditionally_terminating(self):
        program = parse_program(SRC)
        program.methods["append"].heap_specs = [
            self._spec("lseg", ("x", "null"))
        ]
        result = infer_program(program)
        assert result.verdict("append__h0") is Verdict.TERMINATING

    def test_append_cll_is_nonterminating(self):
        program = parse_program(SRC)
        program.methods["append"].heap_specs = [self._spec("cll", ("x",))]
        result = infer_program(program)
        assert result.verdict("append__h0") is Verdict.NONTERMINATING
        (case,) = result.specs["append__h0"].cases
        assert not case.post.reachable  # postcondition strengthened to false

    def test_abstracted_method_is_pure(self):
        from repro.seplog.abstraction import has_heap_statements

        program = parse_program(SRC)
        program.methods["append"].heap_specs = [
            self._spec("lseg", ("x", "null"))
        ]
        abstracted = abstract_program(program)
        m = abstracted.methods["append__h0"]
        assert not has_heap_statements(m)
        assert [p.name for p in m.params] == ["n"]

    def test_pure_program_passthrough(self):
        program = parse_program("void f(int x) { return; }")
        assert abstract_program(program) is program

    def test_heap_without_spec_rejected(self):
        program = parse_program(SRC + "\nvoid g(node z) { z.next = null; }")
        program.methods["append"].heap_specs = [
            self._spec("lseg", ("x", "null"))
        ]
        with pytest.raises(AbstractionError):
            abstract_program(program)

    def test_ll_traversal_terminates(self):
        program = parse_program("""
data node { node next; }
void walk(node x)
{ if (x == null) { return; } else { walk(x.next); return; } }
""")
        program.methods["walk"].heap_specs = [
            self._spec("ll", ("x",), lower=0)
        ]
        result = infer_program(program)
        assert result.verdict("walk__h0") is Verdict.TERMINATING
