"""Structural fingerprints: stability, order-insensitivity, invalidation
locality (editing a method changes exactly its own SCC's key and its
transitive callers')."""

import pytest

from repro.arith.formula import And, Atom, Or, Rel, atom_le
from repro.arith.terms import LinExpr, var
from repro.lang import desugar_program, parse_program
from repro.store.fingerprint import (
    formula_key,
    method_digest,
    program_store_keys,
)

DIAMOND = """
int bottom(int n) { if (n <= 0) { return 0; } else { return bottom(n - 1); } }
int left(int n) { return bottom(n); }
int right(int n) { if (n <= 0) { return 0; } else { return right(n - 2); } }
int top(int x, int y) { int a = left(x); int b = right(y); return a + b; }
"""

# Same shape, but `left` gained an extra decrement -- a one-method edit.
DIAMOND_EDITED = DIAMOND.replace(
    "int left(int n) { return bottom(n); }",
    "int left(int n) { return bottom(n - 1); }",
)


def _keys_by_scc(source: str, max_iter: int = 8, budget: float = 30.0):
    program = desugar_program(parse_program(source))
    sccs, _deps, keys = program_store_keys(program, max_iter, budget)
    return {tuple(scc): key for scc, key in zip(sccs, keys)}


class TestMethodDigest:
    def test_stable_across_reparses(self):
        d1 = {
            name: method_digest(m)
            for name, m in parse_program(DIAMOND).methods.items()
        }
        d2 = {
            name: method_digest(m)
            for name, m in parse_program(DIAMOND).methods.items()
        }
        assert d1 == d2

    def test_distinct_methods_distinct_digests(self):
        program = parse_program(DIAMOND)
        digests = [method_digest(m) for m in program.methods.values()]
        assert len(set(digests)) == len(digests)

    def test_body_edit_changes_digest(self):
        before = parse_program(DIAMOND).methods["left"]
        after = parse_program(DIAMOND_EDITED).methods["left"]
        assert method_digest(before) != method_digest(after)


class TestFormulaKey:
    def test_conjunct_order_insensitive(self):
        a = atom_le(var("x"), 0)
        b = atom_le(var("y"), 3)
        assert formula_key(And((a, b))) == formula_key(And((b, a)))
        assert formula_key(Or((a, b))) == formula_key(Or((b, a)))

    def test_key_is_sorted_join_of_children(self):
        a = atom_le(var("x"), 0)
        b = atom_le(var("y"), 3)
        ka, kb = sorted([formula_key(a), formula_key(b)])
        assert formula_key(And((a, b))) == f"(and {ka} {kb})"

    def test_atom_key_uses_canonical_linexpr_text(self):
        # Coefficients print sorted by variable name regardless of
        # construction order.
        e1 = LinExpr({"a": 1, "z": 2}, 5)
        e2 = LinExpr({"z": 2, "a": 1}, 5)
        assert formula_key(Atom(e1, Rel.LE)) == formula_key(Atom(e2, Rel.LE))


class TestSccKeys:
    def test_editing_a_method_invalidates_exactly_its_dependents(self):
        before = _keys_by_scc(DIAMOND)
        after = _keys_by_scc(DIAMOND_EDITED)
        assert before.keys() == after.keys()
        changed = {s for s in before if before[s] != after[s]}
        # `left` itself and its (transitive) caller `top` change; the
        # untouched `bottom` and the independent `right` keep their keys.
        assert changed == {("left",), ("top",)}

    def test_knobs_enter_the_key(self):
        assert _keys_by_scc(DIAMOND, max_iter=8) != _keys_by_scc(
            DIAMOND, max_iter=9
        )
        assert _keys_by_scc(DIAMOND, budget=30.0) != _keys_by_scc(
            DIAMOND, budget=31.0
        )

    def test_keys_depend_on_transitive_callees(self):
        # Editing `bottom` must ripple through left (direct caller) and
        # top (transitive caller), but not right.
        edited = DIAMOND.replace("bottom(n - 1)", "bottom(n - 2)")
        before = _keys_by_scc(DIAMOND)
        after = _keys_by_scc(edited)
        changed = {s for s in before if before[s] != after[s]}
        assert changed == {("bottom",), ("left",), ("top",)}


class TestPositionAndHintFields:
    """Source positions never reach the digest; ranking hints always do."""

    def test_positions_do_not_perturb_digest(self):
        # identical program text shifted by blank lines and indentation:
        # every AST node gets different pos, digests must be identical
        shifted = "\n\n\n" + DIAMOND.replace("\n", "\n   ")
        d1 = {
            name: method_digest(m)
            for name, m in parse_program(DIAMOND).methods.items()
        }
        d2 = {
            name: method_digest(m)
            for name, m in parse_program(shifted).methods.items()
        }
        assert d1 == d2

    def test_rank_hints_change_digest(self):
        # a seeded/hinted loop method must not alias the plain one in the
        # store: the cached spec was computed under a different search
        program = parse_program(DIAMOND)
        base = method_digest(program.methods["bottom"])
        program.methods["bottom"].rank_hints = ("n",)
        assert method_digest(program.methods["bottom"]) != base


class TestGoldenDigests:
    """Pinned pre-frontend-refactor digests.

    The frontends refactor threaded a ``language`` salt through the
    store-key header with the contract that the native path stays
    *byte-identical*: a warm store populated before the refactor must
    keep hitting after it.  These hex digests were captured on the
    pre-refactor tree; if one changes, native store compatibility broke.
    """

    SRC = (
        "int dec(int n) { if (n <= 0) { return 0; } "
        "else { return dec(n - 1); } }\n"
        "void main(int x) {\n"
        "  while (x > 0) { x = x - 1; }\n"
        "}"
    )

    GOLDEN_METHOD_DIGESTS = {
        "dec":
            "28c3f6b3c44200d05dc819cf53ac213325b534cd"
            "02d8342866cdb3bae3e07a10",
        "main":
            "f7c809231c3353e6b77651b890524602cef9d234"
            "e7f8da46070c3af13a7ff4ce",
        "main_loop0":
            "2c9d395ef22947e59d0fab18806d43c0ae8fda8e"
            "d2eda7461fc3234be0493075",
    }

    GOLDEN_SCC_KEYS = {
        ("dec",):
            "bd5553ac6a322adb28ecea1cca6da70713562c7f"
            "adb3109b2e64dc9cd128d6a3",
        ("main",):
            "974180ed4af864ab149d484d13b3790e19852296"
            "78cf7236669b9724b91fd888",
        ("main_loop0",):
            "e6fb8c6d48308642d5909cafd967044f963b5601"
            "fc58474591e12fe2139d6b88",
    }

    def _program(self):
        return desugar_program(parse_program(self.SRC))

    def test_method_digests_unchanged(self):
        program = self._program()
        got = {name: method_digest(m)
               for name, m in program.methods.items()}
        assert got == self.GOLDEN_METHOD_DIGESTS

    def test_native_scc_keys_unchanged(self):
        assert _keys_by_scc(self.SRC) == self.GOLDEN_SCC_KEYS

    def test_language_salt_changes_every_key(self):
        program = self._program()
        _, _, native = program_store_keys(program, 8, 30.0)
        _, _, salted = program_store_keys(program, 8, 30.0, language="st")
        assert set(native).isdisjoint(set(salted))

    def test_native_is_the_default_language(self):
        program = self._program()
        _, _, implicit = program_store_keys(program, 8, 30.0)
        _, _, explicit = program_store_keys(program, 8, 30.0,
                                            language="native")
        assert implicit == explicit
