"""SpecStore on-disk behaviour: round-trip fidelity (including formula
re-interning), corruption/staleness rejection, and the atomic-rename
write protocol's crash droppings tolerance."""

import hashlib
import pickle
import struct

import pytest

from repro.core import infer_source
from repro.store.specstore import MAGIC, STORE_VERSION, SpecStore, as_store

CHAIN = """
int dec(int n) { if (n <= 0) { return 0; } else { return dec(n - 1); } }
int mid(int n) { return dec(n); }
void top(int x) { int r = mid(x); return; }
"""


@pytest.fixture
def store(tmp_path):
    return SpecStore(tmp_path / "store")


def _cold_specs():
    return infer_source(CHAIN).specs


class TestRoundTrip:
    def test_specs_survive_save_load(self, store):
        specs = _cold_specs()
        store.save("ab" * 32, specs)
        loaded, rejected = store.load("ab" * 32)
        assert not rejected
        assert loaded == specs

    def test_loaded_formulas_reintern(self, store):
        """A loaded spec's guards re-intern: structurally equal formulas
        are pointer-equal to the originals in this process, so caches and
        canonical conjunct order behave as for freshly built formulas."""
        specs = _cold_specs()
        store.save("cd" * 32, specs)
        loaded, _ = store.load("cd" * 32)
        for name, spec in specs.items():
            for orig, back in zip(spec.cases, loaded[name].cases):
                assert back.guard is orig.guard
                assert back.pred == orig.pred

    def test_missing_key_is_clean_miss(self, store):
        loaded, rejected = store.load("00" * 32)
        assert loaded is None and not rejected

    def test_store_pickles_as_path(self, store):
        clone = pickle.loads(pickle.dumps(store))
        assert clone.root == store.root


class TestRejection:
    KEY = "ef" * 32

    def _entry_path(self, store):
        store.save(self.KEY, _cold_specs())
        return store._path(self.KEY)

    def _assert_rejected_and_deleted(self, store):
        loaded, rejected = store.load(self.KEY)
        assert loaded is None and rejected
        assert not store._path(self.KEY).exists()

    def test_corrupt_payload_rejected_and_deleted(self, store):
        path = self._entry_path(store)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip a payload byte: checksum must catch it
        path.write_bytes(bytes(blob))
        self._assert_rejected_and_deleted(store)

    def test_truncated_entry_rejected(self, store):
        path = self._entry_path(store)
        path.write_bytes(path.read_bytes()[:20])
        self._assert_rejected_and_deleted(store)

    def test_stale_version_rejected(self, store):
        path = self._entry_path(store)
        payload = pickle.dumps({"key": self.KEY, "specs": _cold_specs()})
        blob = (
            struct.pack(">4sH", MAGIC, STORE_VERSION + 1)
            + hashlib.sha256(payload).digest()
            + payload
        )
        path.write_bytes(blob)
        self._assert_rejected_and_deleted(store)

    def test_key_mismatch_rejected(self, store):
        # A valid entry renamed under a different key must not be trusted:
        # the payload records the key it was written for.
        store.save("11" * 32, _cold_specs())
        src = store._path("11" * 32)
        dst = store._path(self.KEY)
        dst.parent.mkdir(parents=True, exist_ok=True)
        dst.write_bytes(src.read_bytes())
        self._assert_rejected_and_deleted(store)

    def test_unpicklable_garbage_rejected(self, store):
        path = store._path(self.KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        garbage = b"\x01\x02\x03 not a pickle"
        blob = (
            struct.pack(">4sH", MAGIC, STORE_VERSION)
            + hashlib.sha256(garbage).digest()
            + garbage
        )
        path.write_bytes(blob)
        self._assert_rejected_and_deleted(store)


class TestMaintenance:
    def test_len_keys_wipe(self, store):
        specs = _cold_specs()
        store.save("aa" * 32, specs)
        store.save("bb" * 32, specs)
        assert len(store) == 2
        assert sorted(store.keys()) == ["aa" * 32, "bb" * 32]
        store.wipe()
        assert len(store) == 0

    def test_as_store_coercions(self, store, tmp_path):
        assert as_store(None) is None
        assert as_store(store) is store
        assert as_store(str(tmp_path / "fresh")).root == tmp_path / "fresh"


class TestTmpCleanup:
    """Satellite bugfix: the atomic-write protocol must not litter
    ``.{key}.{pid}.tmp`` files -- not on write failures, and crash
    droppings from dead processes are swept at store open."""

    KEY = "ef" * 32

    def _tmp_files(self, store):
        return list((store.root / "objects").glob("*/.*.tmp"))

    def test_failed_replace_cleans_tmp(self, store, monkeypatch):
        """Simulated crash between write_bytes and the rename: the tmp
        file must not survive the raising save() call."""
        def boom(src, dst):
            raise OSError("simulated replace failure")

        monkeypatch.setattr("repro.store.specstore.os.replace", boom)
        with pytest.raises(OSError, match="simulated"):
            store.save(self.KEY, _cold_specs())
        assert self._tmp_files(store) == []
        loaded, rejected = store.load(self.KEY)
        assert loaded is None and not rejected  # nothing half-published

    def test_failed_write_cleans_tmp(self, store, monkeypatch):
        """Disk-full style failure inside write_bytes: same guarantee."""
        from pathlib import Path

        real_write = Path.write_bytes

        def boom(self, data):
            if self.name.endswith(".tmp"):
                real_write(self, data[: len(data) // 2])  # partial write
                raise OSError(28, "No space left on device")
            return real_write(self, data)

        monkeypatch.setattr(Path, "write_bytes", boom)
        with pytest.raises(OSError, match="No space left"):
            store.save(self.KEY, _cold_specs())
        assert self._tmp_files(store) == []

    def test_open_sweeps_dead_pid_orphans(self, store):
        """A tmp file left by a hard-crashed (SIGKILL) writer is removed
        when the store is next opened."""
        import subprocess
        import sys

        # A real pid that is guaranteed dead: a subprocess we already
        # reaped.  (Not a made-up number -- pid liveness is the check.)
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        orphan_dir = store.root / "objects" / self.KEY[:2]
        orphan_dir.mkdir(parents=True, exist_ok=True)
        orphan = orphan_dir / f".{self.KEY}.{proc.pid}.tmp"
        orphan.write_bytes(b"half-written crash dropping")

        reopened = SpecStore(store.root)
        assert self._tmp_files(reopened) == []

    def test_open_keeps_live_writers_fresh_tmp(self, store):
        """A live process's recent tmp file is in-flight, not an orphan:
        the sweep must leave it so the pending rename can succeed."""
        import os as _os

        tmp_dir = store.root / "objects" / self.KEY[:2]
        tmp_dir.mkdir(parents=True, exist_ok=True)
        inflight = tmp_dir / f".{self.KEY}.{_os.getpid()}.tmp"
        inflight.write_bytes(b"in-flight write")

        reopened = SpecStore(store.root)
        assert self._tmp_files(reopened) == [inflight]

    def test_open_sweeps_ancient_tmp_even_from_live_pid(self, store):
        """Age backstop (pid reuse, NFS writers from other hosts): a tmp
        file older than the threshold goes away even if its pid is
        alive."""
        import os as _os
        import time as _time

        from repro.store.specstore import _TMP_MAX_AGE

        tmp_dir = store.root / "objects" / self.KEY[:2]
        tmp_dir.mkdir(parents=True, exist_ok=True)
        ancient = tmp_dir / f".{self.KEY}.{_os.getpid()}.tmp"
        ancient.write_bytes(b"forgotten")
        old = _time.time() - _TMP_MAX_AGE - 60
        _os.utime(ancient, (old, old))

        reopened = SpecStore(store.root)
        assert self._tmp_files(reopened) == []

    def test_successful_save_leaves_no_tmp(self, store):
        store.save(self.KEY, _cold_specs())
        assert self._tmp_files(store) == []
        loaded, rejected = store.load(self.KEY)
        assert loaded is not None and not rejected
