"""End-to-end incremental re-analysis: warm runs replay every SCC from
the store (sequential and jobs=2), edits re-analyze exactly the edited
method's dependents, and a corrupt store degrades to cold analysis with
identical answers."""

import pytest

from repro.core import infer_source
from repro.store import SpecStore

DIAMOND = """
int bottom(int n) { if (n <= 0) { return 0; } else { return bottom(n - 1); } }
int left(int n) { return bottom(n); }
int right(int n) { if (n <= 0) { return 0; } else { return right(n - 2); } }
int top(int x, int y) { int a = left(x); int b = right(y); return a + b; }
void foo(int x, int y) { if (x < 0) { return; } else { foo(x + y, y); return; } }
"""

#: Number of call-graph SCCs with bodies in DIAMOND (one per method).
N_SCCS = 5


def _snapshot(result):
    return (
        result.pretty(),
        {m: result.verdict(m) for m in result.specs},
    )


class TestWarmRuns:
    def test_warm_run_replays_every_scc(self, tmp_path):
        store = tmp_path / "store"
        cold = infer_source(DIAMOND, store=str(store))
        assert cold.solver_stats.store_hits == 0
        assert cold.solver_stats.store_misses == N_SCCS
        warm = infer_source(DIAMOND, store=str(store))
        assert warm.solver_stats.store_hits == N_SCCS
        assert warm.solver_stats.store_misses == 0
        assert warm.solver_stats.store_invalidations == 0
        assert _snapshot(warm) == _snapshot(cold)

    def test_warm_run_under_jobs2(self, tmp_path):
        store = tmp_path / "store"
        cold = infer_source(DIAMOND, store=str(store))
        warm = infer_source(DIAMOND, store=str(store), jobs=2)
        assert warm.solver_stats.store_hits == N_SCCS
        assert warm.solver_stats.store_misses == 0
        assert _snapshot(warm) == _snapshot(cold)

    def test_parallel_cold_run_populates_for_sequential_warm(self, tmp_path):
        store = tmp_path / "store"
        cold = infer_source(DIAMOND, store=str(store), jobs=2)
        assert cold.solver_stats.store_misses == N_SCCS
        assert len(SpecStore(store)) == N_SCCS  # workers wrote back
        warm = infer_source(DIAMOND, store=str(store))
        assert warm.solver_stats.store_hits == N_SCCS
        assert warm.solver_stats.store_misses == 0
        assert _snapshot(warm) == _snapshot(cold)

    def test_store_accepts_open_instance(self, tmp_path):
        store = SpecStore(tmp_path / "store")
        infer_source(DIAMOND, store=store)
        warm = infer_source(DIAMOND, store=store)
        assert warm.solver_stats.store_misses == 0


class TestDeepChains:
    def test_warm_store_on_deep_scc_chain_jobs2(self, tmp_path):
        """Regression: warm hits resolve SCCs inline in the scheduler's
        parent; on a long call chain the old recursive submit()/finish()
        overflowed the stack exactly on the fully cached runs the store
        exists to accelerate.  The ready-worklist must drain a ~900-SCC
        chain iteratively."""
        n = 900
        parts = [f"int f{n}(int x) {{ return 0; }}"]
        for i in range(n - 1, -1, -1):
            parts.append(f"int f{i}(int x) {{ return f{i + 1}(x); }}")
        src = "\n".join(parts)
        store = str(tmp_path / "store")
        cold = infer_source(src, store=store, jobs=2)
        warm = infer_source(src, store=store, jobs=2)
        assert warm.solver_stats.store_misses == 0
        assert warm.solver_stats.store_hits == n + 1
        assert warm.pretty() == cold.pretty()


class TestIncrementalEdits:
    def test_editing_a_leaf_reanalyzes_only_its_dependents(self, tmp_path):
        store = str(tmp_path / "store")
        infer_source(DIAMOND, store=store)
        edited = DIAMOND.replace("bottom(n - 1)", "bottom(n - 2)")
        warm = infer_source(edited, store=store)
        # bottom changed; left and top transitively call it and must
        # re-analyze; right and foo replay from the store.
        assert warm.solver_stats.store_hits == 2
        assert warm.solver_stats.store_misses == 3

    def test_editing_the_root_reanalyzes_only_the_root(self, tmp_path):
        store = str(tmp_path / "store")
        infer_source(DIAMOND, store=store)
        edited = DIAMOND.replace("return a + b;", "return a + b + 1;")
        warm = infer_source(edited, store=store)
        assert warm.solver_stats.store_hits == N_SCCS - 1
        assert warm.solver_stats.store_misses == 1

    def test_edited_program_matches_its_own_cold_run(self, tmp_path):
        store = str(tmp_path / "store")
        infer_source(DIAMOND, store=store)
        edited = DIAMOND.replace("bottom(n - 1)", "bottom(n - 2)")
        incremental = infer_source(edited, store=store)
        from_scratch = infer_source(edited)
        assert _snapshot(incremental) == _snapshot(from_scratch)


class TestCorruptStoreFallback:
    def test_corrupt_entries_fall_back_to_cold_analysis(self, tmp_path):
        root = tmp_path / "store"
        cold = infer_source(DIAMOND, store=str(root))
        for path in (root / "objects").glob("*/*.spec"):
            blob = bytearray(path.read_bytes())
            blob[-1] ^= 0xFF
            path.write_bytes(bytes(blob))
        warm = infer_source(DIAMOND, store=str(root))
        assert warm.solver_stats.store_hits == 0
        assert warm.solver_stats.store_misses == N_SCCS
        assert warm.solver_stats.store_invalidations == N_SCCS
        assert _snapshot(warm) == _snapshot(cold)
        # ... and the rewritten entries serve the next run.
        again = infer_source(DIAMOND, store=str(root))
        assert again.solver_stats.store_hits == N_SCCS
        assert again.solver_stats.store_invalidations == 0
