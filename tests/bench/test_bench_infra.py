"""Benchmark infrastructure tests: corpus integrity, runner, tallying."""

import pytest

from repro.bench.programs import CATEGORIES, all_programs, by_name
from repro.bench.runner import BenchOutcome, HipTNTPlus, run_tool, tally
from repro.core.pipeline import Verdict
from repro.lang import parse_program
from repro.lang.interp import terminates


class TestCorpus:
    def test_categories_populated(self):
        for c in CATEGORIES:
            assert len(all_programs(c)) >= 8, c

    def test_all_programs_parse_and_build(self):
        for p in all_programs():
            program = p.program()
            assert program.methods

    def test_mains_exist_after_abstraction(self):
        from repro.lang import desugar_program
        from repro.seplog.abstraction import abstract_program

        for p in all_programs():
            program = abstract_program(desugar_program(p.program()))
            assert p.main in program.methods, p.name

    def test_names_unique(self):
        names = [p.name for p in all_programs()]
        assert len(names) == len(set(names))

    def test_loop_based_flags_honest(self):
        """loop_based programs must have no user-written recursion."""
        from repro.baselines import T2LikeAnalyzer

        t2 = T2LikeAnalyzer()
        for p in all_programs():
            if p.loop_based:
                assert t2.supports(p.program()), p.name

    def test_by_name(self):
        assert by_name("foo-paper").category == "crafted"
        with pytest.raises(KeyError):
            by_name("no-such-program")


class TestGroundTruth:
    """Spot-check the recorded expected verdicts against the interpreter
    (pure programs only; heap programs carry spec-relative truths)."""

    @pytest.mark.parametrize("name,args,halts", [
        ("foo-paper", [3, 1], False),
        ("foo-paper", [3, -1], True),
        ("plain-countdown", [5], True),
        ("nonterm-simple-lit", [1], False),
        ("even-odd-mutual", [-1], False),
        ("fib-rec", [8], True),
    ])
    def test_concrete_run(self, name, args, halts):
        bench = by_name(name)
        program = bench.program()
        assert terminates(program, bench.main.split("__")[0], args,
                          fuel=50_000) is halts


class TestRunner:
    def test_run_tool_produces_outcome(self):
        bench = by_name("plain-countdown")
        out = run_tool(HipTNTPlus(bench.main), bench, timeout=30.0)
        assert isinstance(out, BenchOutcome)
        assert out.verdict is Verdict.TERMINATING
        assert out.sound

    def test_timeout_classified(self):
        bench = by_name("ackermann-spec")
        out = run_tool(HipTNTPlus(bench.main, time_budget=50.0), bench,
                       timeout=0.05)
        assert out.timed_out

    def test_tally_columns(self):
        outs = [
            BenchOutcome("a", "t", Verdict.TERMINATING, 1.0, True),
            BenchOutcome("b", "t", Verdict.NONTERMINATING, 2.0, True),
            BenchOutcome("c", "t", Verdict.UNKNOWN, 3.0, True),
            BenchOutcome("d", "t", None, 60.0, True),
        ]
        t = tally(outs)
        assert (t["Y"], t["N"], t["U"], t["T/O"]) == (1, 1, 1, 1)
        assert t["time"] == 6.0  # timeouts excluded, as in the paper
        assert t["unsound"] == 0

    def test_unsound_accounting(self):
        outs = [BenchOutcome("a", "t", Verdict.TERMINATING, 1.0, False)]
        assert tally(outs)["unsound"] == 1

    def test_solver_stats_in_outcome_and_tally(self):
        bench = by_name("plain-countdown")
        out = run_tool(HipTNTPlus(bench.main), bench, timeout=30.0)
        assert out.solver_stats is not None
        assert out.solver_stats["queries"] > 0
        agg = tally([out])["solver"]
        assert agg["runs_reporting"] == 1
        assert agg["queries"] == out.solver_stats["queries"]
        assert 0.0 <= agg["hit_rate"] <= 1.0


class TestTimeoutMachinery:
    def test_nested_timeout_restores_outer_timer(self):
        """An inner _with_timeout must not clobber an enclosing armed
        ITIMER_REAL: the outer budget still fires after the inner scope."""
        import signal
        import time

        from repro.bench.runner import AnalysisTimeout, _with_timeout

        def inner_then_spin():
            _with_timeout(lambda: time.sleep(0.05), 5.0)
            delay, _interval = signal.getitimer(signal.ITIMER_REAL)
            assert delay > 0, "outer timer was clobbered by the nested scope"
            t0 = time.monotonic()
            while time.monotonic() - t0 < 10.0:
                pass
            return "unreachable"

        t0 = time.monotonic()
        with pytest.raises(AnalysisTimeout):
            _with_timeout(inner_then_spin, 0.4)
        assert time.monotonic() - t0 < 5.0

    def test_inner_budget_capped_by_outer(self):
        """A nested scope with a larger budget still expires when the
        enclosing budget does."""
        import time

        from repro.bench.runner import AnalysisTimeout, _with_timeout

        def spin():
            t0 = time.monotonic()
            while time.monotonic() - t0 < 10.0:
                pass

        t0 = time.monotonic()
        with pytest.raises(AnalysisTimeout):
            _with_timeout(lambda: _with_timeout(spin, 60.0), 0.3)
        assert time.monotonic() - t0 < 5.0

    def test_off_main_thread_watchdog(self):
        """Off the main thread, signal.signal is unavailable: the runner
        falls back to a daemon-thread watchdog."""
        import threading
        import time

        from repro.bench.runner import AnalysisTimeout, _with_timeout

        results = {}

        def worker():
            try:
                results["quick"] = _with_timeout(lambda: "done", 5.0)
            except BaseException as exc:  # pragma: no cover - debug aid
                results["quick"] = exc
            try:
                _with_timeout(lambda: time.sleep(10.0), 0.2)
                results["slow"] = "no-timeout"
            except AnalysisTimeout:
                results["slow"] = "timeout"

        t = threading.Thread(target=worker)
        t.start()
        t.join(30.0)
        assert results["quick"] == "done"
        assert results["slow"] == "timeout"

    def test_watchdog_relays_exceptions(self):
        import threading

        from repro.bench.runner import _with_timeout

        results = {}

        def worker():
            def boom():
                raise ValueError("inner failure")

            try:
                _with_timeout(boom, 5.0)
            except ValueError as exc:
                results["exc"] = str(exc)

        t = threading.Thread(target=worker)
        t.start()
        t.join(30.0)
        assert results["exc"] == "inner failure"

    def test_capability_probe_falls_back_to_watchdog(self, monkeypatch):
        """When the signal layer refuses SIGALRM installation even on the
        main thread (embedded/non-main interpreters), the probe detects
        it before fn starts and routes to the watchdog -- fn must run
        exactly once, on the watchdog thread."""
        from repro.bench import runner

        def refuse(signum, handler):
            raise ValueError(
                "signal only works in main thread of the main interpreter"
            )

        monkeypatch.setattr(runner.signal, "signal", refuse)
        import threading

        calls = []

        def fn():
            calls.append(threading.current_thread().name)
            return 42

        assert runner.run_with_timeout(fn, 5.0) == 42
        assert calls == ["bench-watchdog-worker"]

    def test_inference_under_budget_from_worker_thread(self):
        """The serve-daemon regression: a full inference wrapped in
        run_with_timeout must work from a worker-pool thread (where
        SIGALRM is forbidden) and return the same verdict as on the main
        thread."""
        import threading

        from repro.bench.runner import run_with_timeout
        from repro.core import infer_source
        from repro.core.pipeline import Verdict

        source = """
int down(int n) { if (n <= 0) { return 0; } else { return down(n - 1); } }
"""
        results = {}

        def worker():
            try:
                result = run_with_timeout(
                    lambda: infer_source(source, isolate_names=True), 60.0
                )
                results["verdict"] = result.verdict("down")
            except BaseException as exc:  # pragma: no cover - debug aid
                results["verdict"] = exc

        t = threading.Thread(target=worker)
        t.start()
        t.join(120.0)
        assert results["verdict"] is Verdict.TERMINATING
