"""Sharded bench runner: parent-enforced timeouts, deterministic ordering,
sequential/parallel outcome parity, and the SIGALRM bugfix regressions."""

import signal
import time

import pytest

from repro.bench.programs import BenchProgram, by_name
from repro.bench.runner import (
    AnalysisTimeout,
    BenchOutcome,
    HipTNTPlus,
    _bench_spec,
    _with_timeout,
    run_tool,
    run_tools_sharded,
)
from repro.core.pipeline import Verdict

_FAST = ("foo-paper", "plain-countdown", "even-odd-mutual")


def _hip_pairs(names):
    out = []
    for n in names:
        bench = by_name(n)
        out.append((HipTNTPlus(bench.main), bench))
    return out


class TestShardedParity:
    def test_jobs2_outcomes_equal_sequential(self):
        """Verdicts, soundness and per-run solver statistics of a sharded
        sweep are identical to the sequential sweep (run_tool's cold-start
        protocol makes each run history-independent)."""
        seq = run_tools_sharded(_hip_pairs(_FAST), timeout=60.0, jobs=1)
        par = run_tools_sharded(_hip_pairs(_FAST), timeout=60.0, jobs=2)
        assert [o.program for o in par] == list(_FAST)  # task order kept
        for s, p in zip(seq, par):
            assert (s.program, s.tool) == (p.program, p.tool)
            assert s.verdict == p.verdict
            assert s.sound == p.sound
            assert s.solver_stats == p.solver_stats

    def test_expected_verdicts(self):
        par = run_tools_sharded(_hip_pairs(_FAST), timeout=60.0, jobs=2)
        verdicts = {o.program: o.verdict for o in par}
        assert verdicts["foo-paper"] is Verdict.NONTERMINATING
        assert verdicts["plain-countdown"] is Verdict.TERMINATING
        assert verdicts["even-odd-mutual"] is Verdict.NONTERMINATING


class TestShardTimeouts:
    def test_one_shard_times_out_others_still_report(self):
        """A worker killed at its deadline is recorded as T/O in its task
        slot; the remaining shards report normally."""
        slow = by_name("ackermann-spec")
        pairs = _hip_pairs(("foo-paper",))
        pairs.append((HipTNTPlus(slow.main, time_budget=120.0), slow))
        pairs.extend(_hip_pairs(("plain-countdown",)))
        t0 = time.monotonic()
        outs = run_tools_sharded(pairs, timeout=4.0, jobs=2)
        elapsed = time.monotonic() - t0
        assert [o.program for o in outs] == [
            "foo-paper", "ackermann-spec", "plain-countdown"
        ]
        assert outs[0].verdict is Verdict.NONTERMINATING
        assert outs[1].timed_out
        assert outs[1].sound  # a timeout is never unsound
        assert outs[2].verdict is Verdict.TERMINATING
        # the kill happened near the budget, not at some far-later join
        assert elapsed < 60.0

    def test_unregistered_builder_program_rejected(self):
        """A builder-carrying program outside the registry cannot be
        shipped to a worker; the parent refuses loudly instead of
        analyzing the wrong thing."""
        custom = BenchProgram(
            name="custom-heap", category="crafted", source="", main="m",
            expected=Verdict.TERMINATING, builder=lambda: None,
        )
        with pytest.raises(ValueError, match="not in the registry"):
            _bench_spec(custom)

    def test_plain_custom_program_ships_directly(self):
        custom = BenchProgram(
            name="custom-plain", category="crafted",
            source="void m(int x) { return; }", main="m",
            expected=Verdict.TERMINATING,
        )
        assert _bench_spec(custom) is custom
        outs = run_tools_sharded(
            [(HipTNTPlus("m"), custom), (HipTNTPlus("m"), custom)],
            timeout=30.0, jobs=2,
        )
        assert all(o.verdict is Verdict.TERMINATING for o in outs)


class TestTimeoutFlagFixes:
    """Regressions for the SIGALRM bugfixes: a timeout swallowed inside
    the analyzed function's cleanup must still classify as a timeout, and
    teardown must restore the previous handler on every path."""

    def test_swallowed_timeout_still_raises(self):
        def swallowing():
            try:
                t0 = time.monotonic()
                while time.monotonic() - t0 < 30.0:
                    pass
                return "never"
            except AnalysisTimeout:
                # simulates a finally/solver-cleanup eating the raise
                return "survived cleanup"

        t0 = time.monotonic()
        with pytest.raises(AnalysisTimeout):
            _with_timeout(swallowing, 0.3)
        assert time.monotonic() - t0 < 10.0

    def test_handler_restored_when_fn_raises(self):
        before = signal.getsignal(signal.SIGALRM)

        def boom():
            raise ValueError("analyzer exploded")

        with pytest.raises(ValueError):
            _with_timeout(boom, 5.0)
        assert signal.getsignal(signal.SIGALRM) is before
        delay, _interval = signal.getitimer(signal.ITIMER_REAL)
        assert delay == 0  # timer fully disarmed

    def test_handler_restored_after_swallowed_timeout(self):
        before = signal.getsignal(signal.SIGALRM)

        def swallowing():
            try:
                t0 = time.monotonic()
                while time.monotonic() - t0 < 30.0:
                    pass
            except AnalysisTimeout:
                pass
            return None

        with pytest.raises(AnalysisTimeout):
            _with_timeout(swallowing, 0.3)
        assert signal.getsignal(signal.SIGALRM) is before
        delay, _interval = signal.getitimer(signal.ITIMER_REAL)
        assert delay == 0

    def test_successful_run_unaffected(self):
        assert _with_timeout(lambda: 41 + 1, 5.0) == 42

    def test_secondary_error_after_swallowed_timeout_is_timeout(self):
        """If the budget expired, the injected raise was eaten, and some
        follow-up error escapes the half-torn-down analyzer state, the
        run classifies as a timeout -- not as an analyzer failure."""

        def swallow_then_explode():
            try:
                t0 = time.monotonic()
                while time.monotonic() - t0 < 30.0:
                    pass
            except AnalysisTimeout:
                raise RuntimeError("cleanup failed on torn-down state")

        with pytest.raises(AnalysisTimeout):
            _with_timeout(swallow_then_explode, 0.3)

    def test_run_tool_classifies_swallowed_timeout(self):
        """End to end: an analyzer whose cleanup swallows the timeout
        exception is reported as T/O, never as a (half-finished)
        success."""

        class SwallowingAnalyzer:
            name = "swallower"

            def analyze(self, program):
                try:
                    t0 = time.monotonic()
                    while time.monotonic() - t0 < 30.0:
                        pass
                except AnalysisTimeout:
                    pass  # cleanup ate the raise
                return Verdict.TERMINATING  # a lie the runner must reject

        bench = by_name("plain-countdown")
        out = run_tool(SwallowingAnalyzer(), bench, timeout=0.3)
        assert out.timed_out
        assert out.verdict is None
